// Streaming sensor diagnostics (the paper's IoT/RSSI motivation + the
// Section X dynamic extension): sensor readings arrive as letters with a
// normalized signal-strength utility; the operator asks, for recurring
// reading sequences, how weak the link got during them (min-aggregated
// utility = worst link quality over all occurrences).

#include <cstdio>

#include "usi/core/dynamic_usi.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/timer.hpp"

int main() {
  using namespace usi;

  const DatasetSpec& spec = DatasetSpecByName("IOT");
  const WeightedString trace = MakeDataset(spec, 120'000);
  const index_t warmup = 100'000;

  // Seed the dynamic index with the first 100k readings...
  DynamicUsiOptions options;
  options.k = 2048;
  options.utility = GlobalUtilityKind::kMin;  // Worst link quality.
  DynamicUsi index(trace.Prefix(warmup), options);
  std::printf("seeded with %u readings; tracking %zu recurring sequences\n",
              warmup, index.TrackedEntries());

  // ...then stream the rest, as a live deployment would.
  Timer timer;
  for (index_t i = warmup; i < trace.size(); ++i) {
    index.Append(trace.letter(i), trace.weight(i));
  }
  const double per_append =
      timer.ElapsedSeconds() * 1e6 / (trace.size() - warmup);
  std::printf("streamed %u readings at %.2f us/append (staleness bound: %u)\n",
              trace.size() - warmup, per_append, index.StalenessBound());

  // Diagnose: probe recent reading windows of increasing length.
  for (index_t len : {4u, 16u, 64u}) {
    const Text window = Text(trace.text().begin() + trace.size() - len,
                             trace.text().end());
    const QueryResult result = index.Query(window);
    std::printf("last %3u readings recurred %5u time(s); weakest link quality "
                "during any recurrence: %.3f%s\n",
                len, result.occurrences, result.utility,
                result.from_hash_table ? " [tracked]" : "");
  }

  // Periodic maintenance re-selects the tracked set (Section X's deferred
  // cost, paid explicitly and observably here).
  Timer refresh_timer;
  index.RefreshTopK();
  std::printf("top-K refresh after the burst took %.3f s\n",
              refresh_timer.ElapsedSeconds());
  return 0;
}
