// Quickstart: index a weighted string and answer utility queries.
//
// Reproduces Example 1 of the paper end to end: the text S, per-position
// utilities w, the "sum of sums" global utility, and the query P = TACCCC
// whose global utility is 14.6 — then serves a batch of patterns through
// UsiService, the batched/sharded serving layer over the QueryEngine
// contract.

#include <cstdio>
#include <string>
#include <vector>

#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/text/alphabet.hpp"

int main() {
  using namespace usi;

  // 1. A weighted string (S, w): DNA letters with per-position utilities.
  const std::string raw = "ATACCCCGATAATACCCCAG";
  const Alphabet alphabet = Alphabet::FromRaw(raw);
  Text text = alphabet.EncodeString(raw);
  const std::vector<double> weights = {0.9, 1, 3,   2, 0.7, 1, 1, 0.6, 0.5, 0.5,
                                       0.5, 0.8, 1, 1, 1,   0.9, 1, 1, 0.8, 1};
  const WeightedString ws(std::move(text), weights);

  // 2. Build USI_TOP-K. K trades query time for space; n/100 is the paper's
  //    recommended regime (here the text is tiny, so precompute top-10).
  UsiOptions options;
  options.k = 10;
  options.utility = GlobalUtilityKind::kSum;  // "sum of sums", as in [1].
  // options.threads = 0 would run the staged parallel build pipeline at
  // hardware concurrency — same bytes, faster on big texts.
  UsiIndex index(ws, options);

  std::printf("indexed %u positions; hash table holds %zu top-K substrings; "
              "tau_K = %u\n",
              ws.size(), index.HashTableEntries(), index.build_info().tau_k);

  // 3. Query patterns.
  for (const char* pattern_raw : {"TACCCC", "ATA", "CCCC", "GGG"}) {
    const Text pattern = alphabet.EncodeString(pattern_raw);
    const QueryResult result = index.Query(pattern);
    std::printf("U(%-7s) = %6.2f over %u occurrence(s)%s\n", pattern_raw,
                result.utility, result.occurrences,
                result.from_hash_table ? "  [precomputed]" : "  [SA + PSW]");
  }
  // Example 1 check: U(TACCCC) = (1+3+2+0.7+1+1) + (1+1+1+0.9+1+1) = 14.6.

  // 4. Batched serving: UsiService shards a batch across a thread pool
  //    (UsiIndex queries are concurrency-safe) and returns results in batch
  //    order — the serving path benches and drivers share.
  UsiService service(index);  // Owns a pool at hardware concurrency.
  std::vector<Text> batch;
  for (const char* raw : {"ATA", "CCCC", "TACCCC", "GGG"}) {
    batch.push_back(alphabet.EncodeString(raw));
  }
  const std::vector<QueryResult> answers = service.QueryBatch(batch);
  // last_batch() reports what actually happened — a batch this small stays
  // on one thread rather than paying fan-out overhead.
  std::printf("QueryBatch: served %zu patterns on %u thread(s):",
              answers.size(), service.last_batch().threads_used);
  for (const QueryResult& answer : answers) {
    std::printf(" %.2f", answer.utility);
  }
  std::printf("\n");
  return 0;
}
