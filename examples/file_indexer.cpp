// File indexer: the adoption path for users with their own data. Indexes an
// arbitrary byte file as a weighted string (utilities drawn per the paper's
// recipe for corpora without native scores), persists the index, and answers
// pattern queries — demonstrating SaveToFile/LoadFromFile and the tuning
// helper that picks K under a hash-table budget.
//
// Usage: file_indexer <file> [pattern...]
// With no file argument, indexes a self-generated sample so the example is
// runnable out of the box.

#include <cstdio>
#include <string>

#include "usi/core/usi_index.hpp"
#include "usi/text/dataset.hpp"
#include "usi/text/generators.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/memory.hpp"
#include "usi/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace usi;

  WeightedString ws;
  Alphabet alphabet = Alphabet::Identity(256);
  if (argc > 1) {
    if (!LoadTextFile(argv[1], /*seed=*/42, &ws, &alphabet)) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::printf("indexed file %s: %u bytes\n", argv[1], ws.size());
  } else {
    ws = MakeXmlLike(200'000, 7);
    std::printf("no file given; indexing a generated 200k XML-like sample\n");
  }

  // Pick K under a 16 MB hash-table budget via the trade-off curve.
  SubstringStats stats(ws.text());
  const std::size_t budget_entries = (16u << 20) / 64;  // ~64 B per entry.
  const auto point = stats.RecommendForBudget(budget_entries);
  std::printf("operating point: K=%llu (tau=%u, %u distinct lengths)\n",
              static_cast<unsigned long long>(point.k), point.tau,
              point.num_lengths);

  UsiOptions options;
  options.k = point.k > 0 ? point.k : ws.size() / 100;
  Timer build_timer;
  const UsiIndex index(ws, options);
  std::printf("built in %.2f s; index size %s\n", build_timer.ElapsedSeconds(),
              FormatBytes(index.SizeInBytes()).c_str());

  // Persist + reload (a real deployment builds once, serves many).
  const std::string index_path = "/tmp/usi_file_index.bin";
  if (index.SaveToFile(index_path)) {
    const auto loaded = UsiIndex::LoadFromFile(ws, index_path);
    std::printf("round-tripped through %s: %s\n", index_path.c_str(),
                loaded != nullptr ? "ok" : "FAILED");
  }

  // Answer queries from the command line, encoding each raw byte pattern
  // over the same alphabet as the indexed text. A pattern using a byte the
  // text never contains cannot occur at all.
  for (int arg = 2; arg < argc; ++arg) {
    const std::string raw = argv[arg];
    Text pattern;
    bool encodable = true;
    for (char c : raw) {
      const u8 byte = static_cast<u8>(c);
      if (!alphabet.Contains(byte)) {
        encodable = false;
        break;
      }
      pattern.push_back(alphabet.Encode(byte));
    }
    if (!encodable) {
      std::printf("U(\"%s\") = 0.000 over 0 occurrence(s) [byte outside text "
                  "alphabet]\n",
                  raw.c_str());
      continue;
    }
    const QueryResult result = index.Query(pattern);
    std::printf("U(\"%s\") = %.3f over %u occurrence(s)%s\n", raw.c_str(),
                result.utility, result.occurrences,
                result.from_hash_table ? " [precomputed]" : "");
  }
  if (argc <= 2) {
    std::printf("pass patterns as extra arguments to query them\n");
  }
  return 0;
}
