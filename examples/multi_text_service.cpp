// Serving many texts: one UsiMultiService fronting several named weighted
// strings, with mixed-text batches routed by text id and asynchronous
// generational rebuilds — the service keeps answering from the previous
// index generation while a new one builds on the pool, then swaps it in
// atomically for subsequent batches.

#include <cstdio>
#include <string>
#include <vector>

#include "usi/core/multi_service.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/text/generators.hpp"

int main() {
  using namespace usi;

  // 1. One service, many texts. Each SubmitText schedules an asynchronous
  //    staged build; queries for a text are rejected with kNotReady only
  //    until its first generation lands (WaitForBuilds makes that
  //    deterministic here).
  UsiMultiServiceOptions options;
  options.max_inflight_batches = 64;  // Backpressure: shed, don't queue.
  UsiMultiService service(options);
  service.SubmitText("dna", MakeDnaLike(20'000, /*seed=*/1));
  service.SubmitText("sensors", MakeIotLike(15'000, /*seed=*/2));
  service.SubmitText("markup", MakeXmlLike(10'000, /*seed=*/3));
  service.WaitForBuilds();
  std::printf("serving %zu texts on %u pool thread(s)\n\n",
              service.stats().texts, service.threads());

  // 2. A mixed batch: queries name their text; the service groups by id,
  //    pins each text's current generation, and shards the groups across
  //    the pool. Patterns here are fragments of each text, so most hit the
  //    precomputed top-K table.
  const WeightedString dna = MakeDnaLike(20'000, 1);
  const WeightedString iot = MakeIotLike(15'000, 2);
  const Text dna_pattern = dna.Fragment(100, 8);
  const Text iot_pattern = iot.Fragment(50, 6);
  const std::vector<MultiQuery> batch = {
      {"dna", dna_pattern},
      {"sensors", iot_pattern},
      {"dna", dna_pattern},  // Repeats amortize: batch-shared fingerprints.
  };
  MultiBatchResult result = service.QueryBatch(batch);
  std::printf("mixed batch status: %s\n", ServeStatusName(result.status));
  if (result.status != ServeStatus::kOk) return 1;  // results only valid on kOk
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::printf("  %-8s U(P_%zu) = %10.2f over %5u occurrence(s)%s\n",
                std::string(batch[i].text_id).c_str(), i,
                result.results[i].utility, result.results[i].occurrences,
                result.results[i].from_hash_table ? "  [precomputed]" : "");
  }

  // 3. Generational rebuild: replace the dna text's content. The build runs
  //    on the pool; batches issued meanwhile are answered from generation 1,
  //    and the swap to generation 2 is atomic per batch — a batch never
  //    mixes generations.
  service.UpdateText("dna", MakeDnaLike(25'000, /*seed=*/4));
  QueryResult during;  // Served from generation 1 while generation 2 builds.
  if (service.Query("dna", dna_pattern, during) == ServeStatus::kOk) {
    std::printf("\nduring rebuild: U = %.2f (old generation)\n",
                during.utility);
  }
  service.WaitForText("dna");
  auto stats = service.StatsFor("dna");
  std::printf("after rebuild:  generation %llu, %llu builds, %llu queries "
              "served, %llu hash hits\n",
              static_cast<unsigned long long>(stats->generation),
              static_cast<unsigned long long>(stats->builds_completed),
              static_cast<unsigned long long>(stats->queries),
              static_cast<unsigned long long>(stats->hash_hits));

  // 4. Unknown ids are rejected atomically — no query of the batch runs.
  QueryResult ignored;
  std::printf("unknown text -> %s\n",
              ServeStatusName(service.Query("nope", dna_pattern, ignored)));
  return 0;
}
