// Ad sequencing (the paper's Section II case study): an advertising company
// indexes its ad stream, where each position carries a click-through rate;
// marketers probe candidate ad sequences for effectiveness, and the company
// mines the most *useful* (not merely frequent) sequences.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "usi/core/usi_index.hpp"
#include "usi/text/dataset.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/timer.hpp"

int main() {
  using namespace usi;

  // The ADV stand-in: 14 ad categories (letters a..n), CTR utilities.
  const DatasetSpec& spec = DatasetSpecByName("ADV");
  const WeightedString ws = MakeDataset(spec);
  std::printf("ad stream: %u placements over %u categories\n", ws.size(),
              spec.sigma);

  UsiOptions options;
  options.k = spec.default_k;
  const UsiIndex index(ws, options);

  // (1) Marketers probe their own candidate sequences. The paper queries
  // every substring with length in [3, 200]; we sample campaign-sized probes.
  SubstringStats stats(ws.text());
  const TopKList probes = stats.TopK(20'000);
  Timer timer;
  std::size_t probed = 0;
  double best_utility = 0;
  std::string best;
  for (const TopKSubstring& item : probes.items) {
    if (item.length < 3 || item.length > 200) continue;
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    const double utility = index.Utility(pattern);
    ++probed;
    if (utility > best_utility) {
      best_utility = utility;
      best.clear();
      for (Symbol s : pattern) best.push_back(static_cast<char>('a' + s));
    }
  }
  std::printf("probed %zu candidate sequences in %.3f s (avg %.2f us/query)\n",
              probed, timer.ElapsedSeconds(),
              timer.ElapsedSeconds() * 1e6 / probed);
  std::printf("most effective sequence: \"%s\" with U = %.1f\n", best.c_str(),
              best_utility);

  // (2) Compare against the most frequent sequence: frequency is a poor
  // proxy for campaign value when CTR varies by category (Table I).
  for (const TopKSubstring& item : probes.items) {
    if (item.length < 3) continue;
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    std::string s;
    for (Symbol sym : pattern) s.push_back(static_cast<char>('a' + sym));
    std::printf("most frequent sequence:  \"%s\" occurs %u times but earns "
                "only U = %.1f\n",
                s.c_str(), item.frequency, index.Utility(pattern));
    break;
  }
  return 0;
}
