// DNA pattern quality evaluation (the paper's bioinformatics motivation):
// sequencing machines attach a confidence score to every base; the global
// utility of a k-mer aggregates the confidence of all its occurrences, so a
// researcher can tell well-supported k-mers from artifact-prone ones.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "usi/core/usi_index.hpp"
#include "usi/text/dataset.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/rng.hpp"
#include "usi/util/timer.hpp"

int main() {
  using namespace usi;
  static const char kBases[] = {'A', 'C', 'G', 'T'};

  const WeightedString ws = MakeDataset(DatasetSpecByName("HUM"), 500'000);
  std::printf("genome fragment: %u bases with Phred-style confidences\n",
              ws.size());

  // Average confidence per occurrence is the natural quality measure here:
  // use the avg global utility (class U supports it with the same index).
  UsiOptions options;
  options.k = ws.size() / 100;
  options.utility = GlobalUtilityKind::kAvg;
  const UsiIndex index(ws, options);

  // Evaluate 8-mers sampled from the frequent spectrum (KMC-style analysis,
  // as in Example 2 of the paper).
  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(ws.size() / 50);
  Rng rng(1234);
  std::vector<const TopKSubstring*> eight_mers;
  for (const TopKSubstring& item : pool.items) {
    if (item.length == 8) eight_mers.push_back(&item);
  }
  std::printf("%zu distinct frequent 8-mers found\n", eight_mers.size());

  Timer timer;
  double best_quality = 0;
  double worst_quality = 1e100;
  std::string best, worst;
  const std::size_t samples = std::min<std::size_t>(5000, eight_mers.size());
  for (std::size_t q = 0; q < samples; ++q) {
    const TopKSubstring& item = *eight_mers[rng.UniformBelow(eight_mers.size())];
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + 8);
    const QueryResult result = index.Query(pattern);
    std::string spelled;
    for (Symbol s : pattern) spelled.push_back(kBases[s]);
    // Avg local confidence sum over 8 bases: normalize to per-base quality.
    const double per_base = result.utility / 8.0;
    if (per_base > best_quality) {
      best_quality = per_base;
      best = spelled;
    }
    if (per_base < worst_quality) {
      worst_quality = per_base;
      worst = spelled;
    }
  }
  std::printf("evaluated %zu queries in %.3f s (avg %.2f us/query)\n", samples,
              timer.ElapsedSeconds(), timer.ElapsedSeconds() * 1e6 / samples);
  std::printf("best-supported 8-mer:   %s (avg confidence %.3f/base)\n",
              best.c_str(), best_quality);
  std::printf("most artifact-prone:    %s (avg confidence %.3f/base)\n",
              worst.c_str(), worst_quality);
  return 0;
}
