// Unit tests for src/usi/text: alphabet, weighted strings, generators,
// dataset registry.

#include <cmath>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/text/dataset.hpp"
#include "usi/text/generators.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {
namespace {

TEST(Alphabet, RoundTripEncoding) {
  const std::string raw = "the quick brown fox";
  const Alphabet alphabet = Alphabet::FromRaw(raw);
  const Text encoded = alphabet.EncodeString(raw);
  EXPECT_EQ(alphabet.DecodeText(encoded), raw);
  for (Symbol s : encoded) EXPECT_LT(s, alphabet.sigma());
}

TEST(Alphabet, SigmaCountsDistinctBytes) {
  const Alphabet alphabet = Alphabet::FromRaw("aabbbc");
  EXPECT_EQ(alphabet.sigma(), 3u);
  EXPECT_TRUE(alphabet.Contains('a'));
  EXPECT_FALSE(alphabet.Contains('z'));
}

TEST(Alphabet, EncodingIsOrderPreserving) {
  const Alphabet alphabet = Alphabet::FromRaw("dcba");
  // Compact symbols follow byte order: a < b < c < d.
  EXPECT_LT(alphabet.Encode('a'), alphabet.Encode('b'));
  EXPECT_LT(alphabet.Encode('b'), alphabet.Encode('c'));
  EXPECT_LT(alphabet.Encode('c'), alphabet.Encode('d'));
}

TEST(Alphabet, IdentityAlphabet) {
  const Alphabet alphabet = Alphabet::Identity(14);
  EXPECT_EQ(alphabet.sigma(), 14u);
  for (u32 b = 0; b < 14; ++b) {
    EXPECT_EQ(alphabet.Encode(static_cast<u8>(b)), b);
  }
}

TEST(WeightedString, BasicAccessors) {
  const WeightedString ws(testing::T("abcab"), {1, 2, 3, 4, 5});
  EXPECT_EQ(ws.size(), 5u);
  EXPECT_EQ(ws.letter(0), 'a');
  EXPECT_DOUBLE_EQ(ws.weight(4), 5);
  EXPECT_EQ(ws.Fragment(1, 3), testing::T("bca"));
}

TEST(WeightedString, PrefixSlicing) {
  const WeightedString ws(testing::T("hello"), {1, 2, 3, 4, 5});
  const WeightedString prefix = ws.Prefix(3);
  EXPECT_EQ(prefix.size(), 3u);
  EXPECT_EQ(prefix.text(), testing::T("hel"));
  EXPECT_DOUBLE_EQ(prefix.weight(2), 3);
}

TEST(WeightedString, UniformWeights) {
  const WeightedString ws =
      WeightedString::WithUniformWeights(testing::T("xyz"), 0.5);
  for (index_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ws.weight(i), 0.5);
}

struct GeneratorCase {
  const char* name;
  WeightedString (*make)(index_t, u64);
  u32 max_sigma;
};

class GeneratorTest : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorTest, ProducesRequestedLength) {
  const auto& param = GetParam();
  const WeightedString ws = param.make(5000, 1);
  EXPECT_EQ(ws.size(), 5000u);
}

TEST_P(GeneratorTest, AlphabetWithinBounds) {
  const auto& param = GetParam();
  const WeightedString ws = param.make(5000, 2);
  EXPECT_LE(EffectiveSigma(ws.text()), param.max_sigma);
  EXPECT_GE(EffectiveSigma(ws.text()), 2u);
}

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  const auto& param = GetParam();
  const WeightedString a = param.make(2000, 99);
  const WeightedString b = param.make(2000, 99);
  EXPECT_EQ(a.text(), b.text());
  EXPECT_EQ(a.weights(), b.weights());
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  const auto& param = GetParam();
  const WeightedString a = param.make(2000, 1);
  const WeightedString b = param.make(2000, 2);
  EXPECT_NE(a.text(), b.text());
}

TEST_P(GeneratorTest, WeightsAreFinite) {
  const auto& param = GetParam();
  const WeightedString ws = param.make(3000, 3);
  for (index_t i = 0; i < ws.size(); ++i) {
    EXPECT_TRUE(std::isfinite(ws.weight(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(GeneratorCase{"dna", MakeDnaLike, 4},
                      GeneratorCase{"ecoli", MakeEcoliLike, 4},
                      GeneratorCase{"iot", MakeIotLike, 63},
                      GeneratorCase{"xml", MakeXmlLike, 96},
                      GeneratorCase{"adv", MakeAdvLike, 14}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

TEST(Generators, PeriodicStructure) {
  const WeightedString ws = MakePeriodic(10, 2, 0);
  EXPECT_EQ(ws.text(), (Text{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(Generators, XmlWeightsFollowPaperGrid) {
  // Paper: XML utilities drawn from {0.7, 0.75, ..., 1.0}.
  const WeightedString ws = MakeXmlLike(4000, 5);
  for (index_t i = 0; i < ws.size(); ++i) {
    const double w = ws.weight(i);
    EXPECT_GE(w, 0.7 - 1e-9);
    EXPECT_LE(w, 1.0 + 1e-9);
    const double steps = (w - 0.7) / 0.05;
    EXPECT_NEAR(steps, std::round(steps), 1e-6);
  }
}

TEST(Generators, IotHasLongRepeats) {
  // The IOT stand-in must contain very long repeated substrings (the paper
  // reports frequent substrings of length ~10^4 in the real IOT data).
  const WeightedString ws = MakeIotLike(50'000, 7);
  const Text& text = ws.text();
  // Probe: some length-200 window repeats somewhere else.
  bool found_repeat = false;
  for (index_t i = 0; i < 2000 && !found_repeat; i += 50) {
    const Text window(text.begin() + i, text.begin() + i + 200);
    if (testing::BruteOccurrences(text, window).size() >= 2) {
      found_repeat = true;
    }
  }
  EXPECT_TRUE(found_repeat);
}

TEST(Dataset, RegistryHasAllFivePaperDatasets) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "ADV");
  EXPECT_EQ(specs[1].name, "IOT");
  EXPECT_EQ(specs[2].name, "XML");
  EXPECT_EQ(specs[3].name, "HUM");
  EXPECT_EQ(specs[4].name, "ECOLI");
}

TEST(Dataset, MakeDatasetHonorsLengthOverride) {
  const DatasetSpec& spec = DatasetSpecByName("HUM");
  const WeightedString ws = MakeDataset(spec, 1234);
  EXPECT_EQ(ws.size(), 1234u);
}

TEST(Dataset, SigmaMatchesSpec) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const WeightedString ws = MakeDataset(spec, 20'000);
    EXPECT_LE(EffectiveSigma(ws.text()), spec.sigma) << spec.name;
  }
}

TEST(Alphabet, FullByteRangeRoundTrips) {
  // All 256 byte values present: compact code 255 must stay distinguishable
  // from "not in the alphabet".
  std::string raw;
  for (int b = 0; b < 256; ++b) raw.push_back(static_cast<char>(b));
  const Alphabet alphabet = Alphabet::FromRaw(raw);
  EXPECT_EQ(alphabet.sigma(), 256u);
  for (int b = 0; b < 256; ++b) {
    ASSERT_TRUE(alphabet.Contains(static_cast<u8>(b))) << b;
    EXPECT_EQ(alphabet.Decode(alphabet.Encode(static_cast<u8>(b))),
              static_cast<u8>(b));
  }
}

TEST(Dataset, LoadTextFileExposesEncodingAlphabet) {
  const std::string path = ::testing::TempDir() + "usi_load_text_file.txt";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("abracadabra", file);
    std::fclose(file);
  }
  WeightedString ws;
  Alphabet alphabet;
  ASSERT_TRUE(LoadTextFile(path, /*seed=*/1, &ws, &alphabet));
  std::remove(path.c_str());
  ASSERT_EQ(ws.size(), 11u);
  // The text is stored compacted; raw bytes must round-trip through the
  // returned alphabet so pattern queries can be encoded the same way.
  EXPECT_EQ(alphabet.sigma(), 5u);  // a, b, c, d, r.
  const Text encoded = alphabet.EncodeString("abra");
  EXPECT_TRUE(std::equal(encoded.begin(), encoded.end(), ws.text().begin()));
  EXPECT_FALSE(alphabet.Contains('z'));
}

}  // namespace
}  // namespace usi
