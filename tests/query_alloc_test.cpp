// Pins the "allocation-free steady state" contract of the query hot path:
// once UsiService's per-worker scratch and the Karp-Rabin power table have
// warmed up to a workload's batch shape, repeated QueryBatchInto calls —
// hash hits AND SA + PSW fallback misses — perform zero heap allocations,
// and so does QueryAllWindows. The whole test binary counts operator new
// invocations; the suite asserts the count stays flat across steady-state
// batches.

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/degraded_tier.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

void* CountedAlloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
// The nothrow forms must be replaced too (libstdc++'s temporary buffers use
// them): every allocation has to route through malloc so the plain
// operator delete below frees consistently.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
// Aligned forms too: FingerprintTable's CacheAlignedAllocator allocates
// through them, and the table is exactly the structure whose steady state
// this suite pins.
namespace {
void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace usi {
namespace {

std::size_t AllocationsNow() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

TEST(QueryAlloc, CounterSeesVectorAllocations) {
  // Guard: if the replacement operator new ever stops being linked in,
  // every steady-state assertion below would pass vacuously.
  const std::size_t before = AllocationsNow();
  std::vector<int>* v = new std::vector<int>(100);
  const std::size_t after = AllocationsNow();
  delete v;
  EXPECT_GT(after, before);
}

TEST(QueryAlloc, SteadyStateQueryBatchIntoAllocatesNothing) {
  const WeightedString ws = testing::RandomWeighted(2'000, 4, 0xA110C);
  UsiOptions options;
  options.k = 100;
  UsiIndex index(ws, options);

  UsiServiceOptions service_options;
  service_options.threads = 1;
  UsiService service(index, service_options);

  // Mixed batch: frequent substrings (H hits), rare substrings (SA + PSW
  // fallback) and absent patterns (fallback, zero occurrences) — the miss
  // path must be as allocation-free as the hit path.
  Rng rng(0x5EED);
  std::vector<Text> patterns;
  for (int i = 0; i < 400; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(16, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  for (int i = 0; i < 100; ++i) {
    patterns.push_back(
        Text(static_cast<std::size_t>(rng.UniformInRange(1, 12)),
             static_cast<Symbol>(250)));  // Never occurs: always a miss.
  }
  std::vector<QueryResult> results(patterns.size());

  // Warm-up: grows the per-worker scratch, the result of PrepareBatch's
  // ReservePowers, and any lazy buffers.
  service.QueryBatchInto(patterns, results);
  service.QueryBatchInto(patterns, results);

  std::size_t miss_count = 0;
  for (const QueryResult& r : results) miss_count += r.from_hash_table ? 0 : 1;
  ASSERT_GT(miss_count, 100u) << "workload must exercise the fallback path";

  const std::size_t before = AllocationsNow();
  for (int round = 0; round < 5; ++round) {
    service.QueryBatchInto(patterns, results);
  }
  const std::size_t after = AllocationsNow();
  EXPECT_EQ(after, before)
      << "steady-state QueryBatchInto must not touch the heap";
}

TEST(QueryAlloc, DegradedTierRecordAndLookupAllocateNothing) {
  // RecordExact rides on every exactly-served query, so the tier shares the
  // hot path's contract: all structures are sized at construction, and
  // steady-state records AND degraded lookups never touch the heap.
  DegradedTier tier;
  Rng rng(0x7EE4);
  std::vector<PatternKey> keys;
  std::vector<QueryResult> answers;
  for (int i = 0; i < 2'000; ++i) {
    Text pattern;
    const std::size_t len = 2 + rng.UniformBelow(14);
    for (std::size_t j = 0; j < len; ++j) {
      pattern.push_back(static_cast<Symbol>(rng.UniformBelow(16)));
    }
    keys.push_back(DegradedTier::KeyFor(pattern));
    QueryResult answer;
    answer.utility = rng.UniformDouble() * 5.0;
    answer.occurrences = static_cast<index_t>(1 + rng.UniformBelow(9));
    answers.push_back(answer);
  }

  for (std::size_t i = 0; i < keys.size(); ++i) {  // Warm-up.
    tier.RecordExact(keys[i], answers[i]);
  }

  const std::size_t before = AllocationsNow();
  QueryResult out;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      tier.RecordExact(keys[i], answers[i]);
      tier.TryAnswer(keys[i], &out);
    }
  }
  const std::size_t after = AllocationsNow();
  EXPECT_EQ(after, before)
      << "steady-state tier traffic must not touch the heap";
}

TEST(QueryAlloc, SteadyStateServeWithDeltaAllocatesNothing) {
  // The update tier extends the contract: a batch served through a pinned
  // (generation, delta overlay) pair — base answers merged with crossing
  // probes — must also be heap-silent once the routing groups, the
  // UsiService scratch and the overlay's crossing buffers are warm.
  UsiMultiServiceOptions options;
  options.threads = 1;  // Inline serving: the measured path is this thread.
  options.delta_compact_threshold = 0;  // Keep the overlay live throughout.
  UsiMultiService service(options);
  const WeightedString ws = testing::RandomWeighted(2'000, 4, 0xDE17A);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  Rng rng(0xDE17B);
  const std::vector<double> one_weight = {1.0};
  Text one_symbol(1, Symbol{0});
  for (int i = 0; i < 200; ++i) {
    one_symbol[0] = static_cast<Symbol>(rng.UniformBelow(4));
    ASSERT_EQ(service.AppendText("t", one_symbol, one_weight),
              ServeStatus::kOk);
  }
  ASSERT_TRUE(service.StatsFor("t")->delta.has_value());

  // Mixed batch: base-only patterns, tail patterns whose occurrences cross
  // the boundary (the merge path), and absent patterns.
  std::vector<Text> patterns;
  for (int i = 0; i < 200; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(12, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  for (int i = 0; i < 100; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(1, 4)),
                            static_cast<Symbol>(rng.UniformBelow(4))));
  }
  for (int i = 0; i < 50; ++i) {
    patterns.push_back(
        Text(static_cast<std::size_t>(rng.UniformInRange(1, 12)),
             static_cast<Symbol>(250)));  // Never occurs.
  }
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});
  std::vector<QueryResult> results(queries.size());

  service.QueryBatchInto(queries, results);  // Warm-up.
  service.QueryBatchInto(queries, results);

  const std::size_t before = AllocationsNow();
  for (int round = 0; round < 5; ++round) {
    ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);
  }
  const std::size_t after = AllocationsNow();
  EXPECT_EQ(after, before)
      << "steady-state serve-with-delta must not touch the heap";
}

TEST(QueryAlloc, AppendPathAllocationsStayBounded) {
  // AppendText cannot be allocation-free (the overlay's suffix tree grows
  // nodes as structure demands), but after warm-up its footprint must stay
  // a small bounded number of allocations per appended symbol — no
  // per-append rebuild of anything O(window) or O(text).
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_compact_threshold = 0;  // No compactions mid-measurement.
  UsiMultiService service(options);
  service.SubmitText("t", testing::RandomWeighted(1'000, 3, 0xAB3D));
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  Rng rng(0xAB3E);
  const std::vector<double> one_weight = {1.0};
  Text one_symbol(1, Symbol{0});
  for (int i = 0; i < 256; ++i) {  // Warm-up: overlay exists and has grown.
    one_symbol[0] = static_cast<Symbol>(rng.UniformBelow(3));
    ASSERT_EQ(service.AppendText("t", one_symbol, one_weight),
              ServeStatus::kOk);
  }

  constexpr std::size_t kMeasured = 64;
  const std::size_t before = AllocationsNow();
  for (std::size_t i = 0; i < kMeasured; ++i) {
    one_symbol[0] = static_cast<Symbol>(rng.UniformBelow(3));
    ASSERT_EQ(service.AppendText("t", one_symbol, one_weight),
              ServeStatus::kOk);
  }
  const std::size_t after = AllocationsNow();
  EXPECT_LE(after - before, kMeasured * 16)
      << "append path regressed to > 16 allocations per symbol";
}

TEST(QueryAlloc, SteadyStateQueryAllWindowsAllocatesNothing) {
  const WeightedString ws = testing::RandomWeighted(1'500, 3, 0xD0C5);
  UsiOptions options;
  options.k = 80;
  UsiIndex index(ws, options);

  Text document(ws.text().begin(), ws.text().begin() + 800);
  for (int i = 0; i < 50; ++i) document.push_back(static_cast<Symbol>(240));
  const index_t window_len = 9;
  std::vector<QueryResult> results(document.size() - window_len + 1);

  index.QueryAllWindows(document, window_len, results);  // Warm-up.

  const std::size_t before = AllocationsNow();
  for (int round = 0; round < 5; ++round) {
    index.QueryAllWindows(document, window_len, results);
  }
  const std::size_t after = AllocationsNow();
  EXPECT_EQ(after, before)
      << "steady-state QueryAllWindows must not touch the heap";
}

}  // namespace
}  // namespace usi
