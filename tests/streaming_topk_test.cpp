// Tests for the Section VII streaming adaptations: SubstringHK (HeavyKeeper)
// and Top-K Trie — including the adversarial periodic input on which the
// paper proves both schemes fail.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/topk/exact_topk.hpp"
#include "usi/topk/heavy_keeper.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/topk_trie.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(SubstringHk, FindsDominantLetter) {
  // Text dominated by one letter: it must surface in the summary.
  Text text;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    text.push_back(rng.Bernoulli(0.8) ? 0 : static_cast<Symbol>(
                                                1 + rng.UniformBelow(9)));
  }
  const TopKList result = SubstringHeavyKeeper(text, 10);
  ASSERT_FALSE(result.items.empty());
  bool found = false;
  for (const TopKSubstring& item : result.items) {
    if (item.length == 1 && text[item.witness] == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SubstringHk, ReportsAtMostK) {
  const Text text = MakeAdvLike(5000, 9).text();
  for (u64 k : {1ULL, 10ULL, 100ULL}) {
    EXPECT_LE(SubstringHeavyKeeper(text, k).items.size(), k);
  }
}

TEST(SubstringHk, StatsTrackWork) {
  const Text text = MakeAdvLike(3000, 9).text();
  SubstringHkStats stats;
  SubstringHeavyKeeper(text, 50, {}, &stats);
  EXPECT_GE(stats.hashed_substrings, text.size());  // At least one per pos.
  EXPECT_GT(stats.space_bytes, 0u);
  EXPECT_FALSE(stats.timed_out);
}

TEST(SubstringHk, WorkBudgetTriggersTimeout) {
  const Text text = MakeIotLike(20'000, 9).text();
  SubstringHkOptions options;
  options.max_hashed_substrings = 1000;
  SubstringHkStats stats;
  SubstringHeavyKeeper(text, 50, options, &stats);
  EXPECT_TRUE(stats.timed_out);
}

TEST(SubstringHk, FailsOnPeriodicAdversary) {
  // Section VII: on (AB)^{n/2} with n/2 >= K > 4, SubstringHK misses half
  // the true top-K. Accuracy against the exact answer must be far below AT's.
  const Text text = MakePeriodic(4000, 2, 0).text();
  const u64 k = 64;
  const TopKList exact = ExactTopK(text, k);
  const TopKList hk = SubstringHeavyKeeper(text, k);
  EXPECT_LT(TopKAccuracyPercent(exact.items, hk.items), 60.0);
}

TEST(SubstringHk, StrictCoinLimitsCandidateLengths) {
  const Text text = MakeIotLike(5000, 3).text();
  SubstringHkOptions strict;
  strict.strict_extension_coin = true;
  const TopKList result = SubstringHeavyKeeper(text, 50, strict);
  // With the literal 1/c^l coin, deep extensions are (practically) never
  // taken: nothing beyond a few hundred letters can be reported.
  EXPECT_LT(LongestReportedLength(result.items), 500u);
}

TEST(TopKTrie, FindsDominantLetter) {
  Text text;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    text.push_back(rng.Bernoulli(0.7) ? 2 : static_cast<Symbol>(
                                                rng.UniformBelow(5)));
  }
  const TopKList result = TopKTrie(text, 10);
  ASSERT_FALSE(result.items.empty());
  EXPECT_EQ(text[result.items[0].witness + 0], 2);  // Top item is letter 2...
  EXPECT_EQ(result.items[0].length, 1u);            // ...as a single letter.
}

TEST(TopKTrie, CountsAreLowerBounds) {
  // Misra-Gries guarantee: reported (count - debt) never exceeds the truth.
  const Text text = MakeAdvLike(4000, 13).text();
  const TopKList result = TopKTrie(text, 30);
  ASSERT_FALSE(result.items.empty());
  for (const TopKSubstring& item : result.items) {
    const Text pattern(text.begin() + item.witness,
                       text.begin() + item.witness + item.length);
    EXPECT_LE(item.frequency, testing::BruteOccurrences(text, pattern).size());
  }
}

TEST(TopKTrie, DepthOneCountsExactWithoutEvictions) {
  // The trie admits one node per position, so a depth-d substring is only
  // counted once its whole path exists — counts are lower bounds even with
  // an unlimited budget. Depth-1 nodes, admitted at their first occurrence,
  // are exact when no evictions happen.
  const Text text = testing::T("abcabcabc");
  TopKTrieOptions options;
  options.node_budget = 1000;
  const TopKList result = TopKTrie(text, 50, options);
  bool saw_depth_one = false;
  for (const TopKSubstring& item : result.items) {
    const Text pattern(text.begin() + item.witness,
                       text.begin() + item.witness + item.length);
    const std::size_t truth = testing::BruteOccurrences(text, pattern).size();
    EXPECT_LE(item.frequency, truth);
    if (item.length == 1) {
      saw_depth_one = true;
      EXPECT_EQ(item.frequency, truth);
    }
  }
  EXPECT_TRUE(saw_depth_one);
}

TEST(TopKTrie, FailsOnPeriodicAdversary) {
  const Text text = MakePeriodic(4000, 2, 0).text();
  const u64 k = 64;
  const TopKList exact = ExactTopK(text, k);
  const TopKList tt = TopKTrie(text, k);
  EXPECT_LT(TopKAccuracyPercent(exact.items, tt.items), 60.0);
}

TEST(TopKTrie, MissesLongRepeatsUnderPressure) {
  // The IOT failure mode: with K large enough that the exact top-K contains
  // long repeated blocks, a K-bounded trie cannot retain deep paths — the
  // longest reported string is much shorter than the longest truly frequent
  // one (the paper: 546 vs 11,816 on IOT).
  const Text text = MakeIotLike(30'000, 4).text();
  const u64 k = 3000;
  const TopKList exact = ExactTopK(text, k);
  const TopKList tt = TopKTrie(text, k);
  ASSERT_GT(LongestReportedLength(exact.items), 20u);
  EXPECT_LT(LongestReportedLength(tt.items),
            LongestReportedLength(exact.items));
}

TEST(TopKTrie, StatsPopulated) {
  const Text text = MakeDnaLike(3000, 8).text();
  TopKTrieStats stats;
  TopKTrie(text, 20, {}, &stats);
  EXPECT_GT(stats.total_walk_steps, 0u);
  EXPECT_GT(stats.space_bytes, 0u);
}

TEST(StreamingTopK, DegenerateInputs) {
  EXPECT_TRUE(SubstringHeavyKeeper({}, 5).items.empty());
  EXPECT_TRUE(TopKTrie({}, 5).items.empty());
  EXPECT_TRUE(SubstringHeavyKeeper(testing::T("ab"), 0).items.empty());
  EXPECT_TRUE(TopKTrie(testing::T("ab"), 0).items.empty());
}

}  // namespace
}  // namespace usi
