// Tests for the Section V data structure: Exact-Top-K (task i) against brute
// force, and the K- and tau-tuning estimates (tasks ii, iii).

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/topk/exact_topk.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

/// Checks the three defining properties of an exact top-K report:
/// (1) reported frequency == true frequency of the reported substring;
/// (2) the multiset of reported frequencies equals the brute-force top-K;
/// (3) SA intervals (when present) have the right width.
void CheckExactTopK(const Text& text, const TopKList& result, u64 k) {
  const auto brute = testing::BruteSubstringFrequencies(text);
  ASSERT_LE(result.items.size(), k);
  const u64 expected_size = std::min<u64>(k, brute.size());
  ASSERT_EQ(result.items.size(), expected_size);

  std::set<std::string> seen;  // Report must not repeat substrings.
  for (const TopKSubstring& item : result.items) {
    const std::string s = testing::MaterializeString(text, item);
    EXPECT_TRUE(seen.insert(s).second) << "duplicate: " << s;
    auto it = brute.find(s);
    ASSERT_NE(it, brute.end());
    EXPECT_EQ(item.frequency, it->second) << s;
    if (item.HasInterval()) {
      EXPECT_EQ(item.rb - item.lb + 1, item.frequency);
    }
  }
  std::vector<index_t> got_freqs;
  for (const TopKSubstring& item : result.items) {
    got_freqs.push_back(item.frequency);
  }
  std::sort(got_freqs.rbegin(), got_freqs.rend());
  EXPECT_EQ(got_freqs, testing::BruteTopKFrequencies(text, k));
}

TEST(ExactTopK, SmallExamples) {
  CheckExactTopK(testing::T("banana"), ExactTopK(testing::T("banana"), 5), 5);
  CheckExactTopK(testing::T("abracadabra"),
                 ExactTopK(testing::T("abracadabra"), 10), 10);
  CheckExactTopK(testing::T("aaaa"), ExactTopK(testing::T("aaaa"), 4), 4);
}

TEST(ExactTopK, TopOneIsMostFrequentLetterOnRandomText) {
  const Text text = testing::RandomText(500, 3, 77);
  const TopKList top1 = ExactTopK(text, 1);
  ASSERT_EQ(top1.items.size(), 1u);
  EXPECT_EQ(top1.items[0].length, 1u);  // Ties break shorter-first.
  index_t best = 0;
  for (u32 c = 0; c < 3; ++c) {
    index_t count = 0;
    for (Symbol s : text) count += (s == c);
    best = std::max(best, count);
  }
  EXPECT_EQ(top1.items[0].frequency, best);
}

class ExactTopKSweep
    : public ::testing::TestWithParam<std::tuple<index_t, u32, u64>> {};

TEST_P(ExactTopKSweep, MatchesBruteForce) {
  const auto [n, sigma, k] = GetParam();
  const Text text = testing::RandomText(n, sigma, n + sigma + k);
  CheckExactTopK(text, ExactTopK(text, k), k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactTopKSweep,
    ::testing::Values(std::tuple<index_t, u32, u64>{30, 2, 5},
                      std::tuple<index_t, u32, u64>{60, 2, 20},
                      std::tuple<index_t, u32, u64>{60, 3, 50},
                      std::tuple<index_t, u32, u64>{100, 2, 100},
                      std::tuple<index_t, u32, u64>{100, 4, 10},
                      std::tuple<index_t, u32, u64>{150, 3, 300},
                      std::tuple<index_t, u32, u64>{80, 2, 1'000'000},
                      std::tuple<index_t, u32, u64>{120, 26, 40}));

TEST(ExactTopK, KLargerThanUniverseReturnsAllSubstrings) {
  const Text text = testing::T("abab");
  // Distinct substrings: a, b, ab, ba, aba, bab, abab = 7.
  const TopKList all = ExactTopK(text, 1000);
  EXPECT_EQ(all.items.size(), 7u);
}

TEST(SubstringStats, TotalDistinctSubstrings) {
  const Text text = testing::T("mississippi");
  SubstringStats stats(text);
  EXPECT_EQ(stats.TotalDistinctSubstrings(),
            testing::BruteSubstringFrequencies(text).size());
}

TEST(SubstringStats, EstimateForKMatchesTopKOutput) {
  const Text text = MakeAdvLike(2000, 4).text();
  SubstringStats stats(text);
  for (u64 k : {1ULL, 5ULL, 50ULL, 500ULL, 2000ULL}) {
    const auto tuning = stats.EstimateForK(k);
    const TopKList mined = stats.TopK(k);
    ASSERT_FALSE(mined.items.empty());
    index_t min_freq = kInvalidIndex;
    std::set<index_t> lengths;
    for (const TopKSubstring& item : mined.items) {
      min_freq = std::min(min_freq, item.frequency);
      lengths.insert(item.length);
    }
    EXPECT_EQ(tuning.tau, min_freq) << "k=" << k;
    // Emitted lengths are contiguous [1..Lmax] (ancestors precede their
    // descendants in T), and L_K bounds them from above: the last triplet may
    // be partially consumed, leaving some of its covered lengths unemitted.
    EXPECT_EQ(*lengths.rbegin(), lengths.size()) << "k=" << k;
    EXPECT_GE(tuning.num_lengths, lengths.size()) << "k=" << k;
  }
}

TEST(SubstringStats, EstimateForTauCountsTauFrequentSubstrings) {
  const Text text = testing::RandomText(300, 2, 5);
  SubstringStats stats(text);
  const auto brute = testing::BruteSubstringFrequencies(text);
  for (index_t tau : {1u, 2u, 3u, 5u, 10u, 50u}) {
    u64 expected = 0;
    std::set<std::size_t> expected_lengths;
    for (const auto& [s, f] : brute) {
      if (f >= tau) {
        ++expected;
        expected_lengths.insert(s.size());
      }
    }
    const auto tuning = stats.EstimateForTau(tau);
    EXPECT_EQ(tuning.num_substrings, expected) << "tau=" << tau;
    EXPECT_EQ(tuning.num_lengths, expected_lengths.size()) << "tau=" << tau;
  }
}

TEST(SubstringStats, EstimateForTauAboveMaxFrequency) {
  const Text text = testing::T("abc");
  SubstringStats stats(text);
  const auto tuning = stats.EstimateForTau(100);
  EXPECT_EQ(tuning.num_substrings, 0u);
}

TEST(SubstringStats, KAndTauEstimatesAreConsistent) {
  // Round-trip: for the tau reported at K, the number of tau-frequent
  // substrings must be at least K.
  const Text text = MakeDnaLike(3000, 21).text();
  SubstringStats stats(text);
  for (u64 k : {10ULL, 100ULL, 1000ULL}) {
    const auto k_tuning = stats.EstimateForK(k);
    const auto tau_tuning = stats.EstimateForTau(k_tuning.tau);
    EXPECT_GE(tau_tuning.num_substrings, k);
  }
}

TEST(SubstringStats, TopKOrderingIsByDecreasingFrequency) {
  // Frequencies are non-increasing; within a frequency tie the paper breaks
  // ties at the *node* level (shorter nodes first), so per-substring lengths
  // may interleave — only the frequency ordering is contractual.
  const Text text = MakeXmlLike(1500, 6).text();
  const TopKList mined = SubstringStats(text).TopK(200);
  ASSERT_FALSE(mined.items.empty());
  for (std::size_t i = 1; i < mined.items.size(); ++i) {
    EXPECT_GE(mined.items[i - 1].frequency, mined.items[i].frequency)
        << "at " << i;
  }
}

}  // namespace
}  // namespace usi
