// Tests for Approximate-Top-K (Section VI): exactness at s=1, one-sided
// frequency error, accuracy across backends and datasets.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/exact_topk.hpp"
#include "usi/topk/measures.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(ApproximateTopK, SingleRoundIsExact) {
  // With s = 1 every position is sampled, so frequencies are exact and the
  // result must match Exact-Top-K's frequency profile.
  for (u64 seed : {1ULL, 2ULL}) {
    const Text text = testing::RandomText(400, 3, seed);
    ApproximateTopKOptions options;
    options.rounds = 1;
    options.lce_backend = LceBackendKind::kRmq;
    const TopKList approx = ApproximateTopK(text, 30, options);
    const TopKList exact = ExactTopK(text, 30);
    EXPECT_DOUBLE_EQ(TopKAccuracyPercent(exact.items, approx.items), 100.0);
    // Reported frequencies must be the true ones.
    for (const TopKSubstring& item : approx.items) {
      const Text pattern(text.begin() + item.witness,
                         text.begin() + item.witness + item.length);
      EXPECT_EQ(item.frequency,
                testing::BruteOccurrences(text, pattern).size());
    }
  }
}

TEST(ApproximateTopK, FrequenciesNeverOverestimate) {
  // Section VI: the error is one-sided; reported frequencies lower-bound the
  // truth.
  for (u32 rounds : {2u, 4u, 8u}) {
    const Text text = MakeAdvLike(3000, rounds).text();
    ApproximateTopKOptions options;
    options.rounds = rounds;
    const TopKList approx = ApproximateTopK(text, 100, options);
    ASSERT_FALSE(approx.items.empty());
    for (const TopKSubstring& item : approx.items) {
      const Text pattern(text.begin() + item.witness,
                         text.begin() + item.witness + item.length);
      EXPECT_LE(item.frequency,
                testing::BruteOccurrences(text, pattern).size())
          << "rounds=" << rounds;
    }
  }
}

TEST(ApproximateTopK, NoDuplicateSubstringsInReport) {
  const Text text = MakeDnaLike(2000, 3).text();
  ApproximateTopKOptions options;
  options.rounds = 4;
  const TopKList approx = ApproximateTopK(text, 150, options);
  std::map<std::string, int> seen;
  for (const TopKSubstring& item : approx.items) {
    ++seen[testing::MaterializeString(text, item)];
  }
  for (const auto& [s, count] : seen) {
    EXPECT_EQ(count, 1) << s;
  }
}

struct BackendCase {
  const char* name;
  LceBackendKind backend;
};

class ApproxBackendTest : public ::testing::TestWithParam<BackendCase> {};

TEST_P(ApproxBackendTest, AccurateOnSmallRoundCounts) {
  const Text text = MakeXmlLike(4000, 11).text();
  ApproximateTopKOptions options;
  options.rounds = 4;
  options.lce_backend = GetParam().backend;
  const TopKList approx = ApproximateTopK(text, 200, options);
  const TopKList exact = ExactTopK(text, 200);
  // The paper reports >= 76.5% accuracy across all settings; with s = 4 on
  // this size the sampling estimate should be well above that.
  EXPECT_GE(TopKAccuracyPercent(exact.items, approx.items), 70.0);
  EXPECT_GE(TopKNdcg(exact.items, approx.items), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ApproxBackendTest,
    ::testing::Values(BackendCase{"sampled_kr", LceBackendKind::kSampledKr},
                      BackendCase{"full_kr", LceBackendKind::kFullKr},
                      BackendCase{"rmq", LceBackendKind::kRmq},
                      BackendCase{"naive", LceBackendKind::kNaive}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

class ApproxRoundsSweep : public ::testing::TestWithParam<u32> {};

TEST_P(ApproxRoundsSweep, AccuracyDegradesGracefullyWithS) {
  const u32 s = GetParam();
  const Text text = MakeEcoliLike(3000, 21).text();
  ApproximateTopKOptions options;
  options.rounds = s;
  const TopKList approx = ApproximateTopK(text, 100, options);
  const TopKList exact = ExactTopK(text, 100);
  const double accuracy = TopKAccuracyPercent(exact.items, approx.items);
  // Even at large s the estimate should keep a meaningful fraction; at small
  // s it should be near-exact (Fig. 3j / 4a-c trend).
  if (s <= 4) {
    EXPECT_GE(accuracy, 80.0) << "s=" << s;
  } else {
    EXPECT_GE(accuracy, 30.0) << "s=" << s;
  }
  EXPECT_EQ(approx.items.size(), exact.items.size());
}

INSTANTIATE_TEST_SUITE_P(Rounds, ApproxRoundsSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(ApproximateTopK, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(ApproximateTopK({}, 10).items.empty());
  EXPECT_TRUE(ApproximateTopK(testing::T("abc"), 0).items.empty());
  const TopKList tiny = ApproximateTopK(testing::T("a"), 5);
  ASSERT_EQ(tiny.items.size(), 1u);
  EXPECT_EQ(tiny.items[0].frequency, 1u);
}

TEST(ApproximateTopK, MoreRoundsThanTextLength) {
  const Text text = testing::T("abcab");
  ApproximateTopKOptions options;
  options.rounds = 100;  // Rounds beyond n are skipped.
  const TopKList approx = ApproximateTopK(text, 5, options);
  EXPECT_FALSE(approx.items.empty());
}

}  // namespace
}  // namespace usi
