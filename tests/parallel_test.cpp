// Concurrency suite: the thread pool substrate, the parallel build
// pipeline's determinism contract (a parallel build serializes
// byte-identical to a sequential one), and UsiService's batched serving.
// Registered with the "concurrency" CTest label so the TSan CI job can run
// exactly these under ThreadSanitizer.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <latch>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_builder.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/core/utility.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"

namespace usi {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  std::latch done(64);
  for (int i = 0; i < 64; ++i) {
    pool.Run([&] {
      counter.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPool, SubmitFutureCompletesAfterTheTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (std::future<void>& future : futures) future.wait();
  // Every awaited future's task has fully executed (the future becomes
  // ready only after the task body returned).
  EXPECT_EQ(counter.load(), 16);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    ParallelFor(&pool, kCount, [&](std::size_t i, unsigned worker) {
      EXPECT_LT(worker, threads);
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](std::size_t i, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, WorkerIdsAreDenseAndConfined) {
  ThreadPool pool(4);
  // One slot per worker id; concurrent bodies must never share an id.
  std::vector<std::atomic<int>> in_use(4);
  std::atomic<bool> collision{false};
  ParallelFor(&pool, 256, [&](std::size_t, unsigned worker) {
    if (in_use[worker].fetch_add(1) != 0) collision = true;
    in_use[worker].fetch_sub(1);
  });
  EXPECT_FALSE(collision.load());
}

TEST(ParallelLcp, MatchesSequentialScan) {
  ThreadPool pool(3);
  for (u64 seed : {1ull, 17ull, 99ull}) {
    // > 4096 positions so the chunked path actually engages.
    const Text text = testing::RandomText(6000, 4, seed);
    const std::vector<index_t> sa = BuildSuffixArray(text);
    const std::vector<index_t> sequential = BuildLcpArray(text, sa);
    const std::vector<index_t> parallel = BuildLcpArray(text, sa, &pool);
    EXPECT_EQ(sequential, parallel) << "seed " << seed;
  }
}

// The tentpole contract: the same weighted string built sequentially and at
// 2/4/8 threads serializes to byte-identical index files, for both miners.
TEST(ParallelBuild, SerializesByteIdenticalAcrossThreadCounts) {
  const WeightedString ws = testing::RandomWeighted(4000, 4, 0xC0FFEE);
  for (const UsiMiner miner : {UsiMiner::kExact, UsiMiner::kApproximate}) {
    UsiOptions options;
    options.k = 150;
    options.miner = miner;
    options.threads = 1;
    const UsiIndex sequential(ws, options);
    const std::string seq_path = TempPath("usi_parallel_seq.bin");
    ASSERT_TRUE(sequential.SaveToFile(seq_path));
    const std::string seq_bytes = ReadFileBytes(seq_path);
    ASSERT_FALSE(seq_bytes.empty());

    for (const unsigned threads : {2u, 4u, 8u}) {
      UsiOptions parallel_options = options;
      parallel_options.threads = threads;
      const UsiIndex parallel(ws, parallel_options);
      EXPECT_EQ(parallel.build_info().threads_used, threads);
      EXPECT_EQ(parallel.HashTableEntries(), sequential.HashTableEntries());
      const std::string par_path = TempPath("usi_parallel_par.bin");
      ASSERT_TRUE(parallel.SaveToFile(par_path));
      EXPECT_EQ(seq_bytes, ReadFileBytes(par_path))
          << "miner=" << static_cast<int>(miner) << " threads=" << threads;
    }
  }
}

// Differential check: sequential and parallel builds answer every probe the
// same way (hash-table hits included), across utility kinds.
TEST(ParallelBuild, QueriesAgreeWithSequentialBuild) {
  const WeightedString ws = testing::RandomWeighted(3000, 3, 0xBEEF);
  for (const GlobalUtilityKind kind :
       {GlobalUtilityKind::kSum, GlobalUtilityKind::kAvg,
        GlobalUtilityKind::kMax}) {
    UsiOptions options;
    options.k = 100;
    options.utility = kind;
    options.threads = 1;
    const UsiIndex sequential(ws, options);
    UsiOptions parallel_options = options;
    parallel_options.threads = 4;
    const UsiIndex parallel(ws, parallel_options);

    Rng rng(0x1234);
    for (int probe = 0; probe < 300; ++probe) {
      const index_t len =
          1 + static_cast<index_t>(rng.UniformBelow(12));
      const index_t start =
          static_cast<index_t>(rng.UniformBelow(ws.size() - len));
      const Text pattern = ws.Fragment(start, len);
      const QueryResult expected = sequential.Query(pattern);
      const QueryResult actual = parallel.Query(pattern);
      EXPECT_DOUBLE_EQ(expected.utility, actual.utility);
      EXPECT_EQ(expected.occurrences, actual.occurrences);
      EXPECT_EQ(expected.from_hash_table, actual.from_hash_table);
    }
  }
}

TEST(ParallelBuild, BuilderReportsStages) {
  const WeightedString ws = testing::RandomWeighted(1500, 3, 0x51);
  UsiOptions options;
  options.k = 64;
  options.threads = 2;
  UsiBuilder builder(ws, options);
  const std::unique_ptr<UsiIndex> index = builder.Build();
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(builder.stages().size(), 5u);
  EXPECT_STREQ(builder.stages()[0].name, "sa");
  EXPECT_STREQ(builder.stages()[1].name, "mine");
  EXPECT_STREQ(builder.stages()[2].name, "table");
  EXPECT_STREQ(builder.stages()[3].name, "learn");
  EXPECT_STREQ(builder.stages()[4].name, "finalize");
  EXPECT_EQ(index->build_info().threads_used, 2u);
  EXPECT_GT(index->build_info().total_seconds, 0.0);
  EXPECT_GT(index->HashTableEntries(), 0u);
}

TEST(UsiService, BatchMatchesPerQueryAnswers) {
  const WeightedString ws = testing::RandomWeighted(2500, 3, 0xAB);
  UsiOptions options;
  options.k = 80;
  UsiIndex index(ws, options);

  Rng rng(0x99);
  std::vector<Text> patterns;
  for (int i = 0; i < 500; ++i) {
    const index_t len = 1 + static_cast<index_t>(rng.UniformBelow(10));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    patterns.push_back(ws.Fragment(start, len));
  }

  UsiServiceOptions service_options;
  service_options.threads = 4;
  UsiService service(index, service_options);
  EXPECT_EQ(service.threads(), 4u);
  const std::vector<QueryResult> batch = service.QueryBatch(patterns);
  ASSERT_EQ(batch.size(), patterns.size());
  EXPECT_EQ(service.last_batch().patterns, patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const QueryResult expected = index.Query(patterns[i]);
    EXPECT_DOUBLE_EQ(batch[i].utility, expected.utility);
    EXPECT_EQ(batch[i].occurrences, expected.occurrences);
    EXPECT_EQ(batch[i].from_hash_table, expected.from_hash_table);
  }
}

TEST(UsiService, CachingEnginesServeSequentiallyInOrder) {
  const WeightedString ws = testing::RandomWeighted(2000, 3, 0xCD);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);
  BaselineContext context;
  context.ws = &ws;
  context.sa = &sa;
  context.psw = &psw;
  context.cache_capacity = 32;

  Rng rng(0x77);
  std::vector<Text> patterns;
  for (int i = 0; i < 200; ++i) {
    const index_t len = 1 + static_cast<index_t>(rng.UniformBelow(6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    patterns.push_back(ws.Fragment(start, len));
  }

  for (const BaselineKind kind :
       {BaselineKind::kBsl2, BaselineKind::kBsl3, BaselineKind::kBsl4}) {
    // Reference: a fresh engine queried one-by-one in order.
    const auto reference_engine = MakeBaseline(kind, context);
    std::vector<QueryResult> reference;
    for (const Text& p : patterns) reference.push_back(reference_engine->Query(p));

    // Service over another fresh engine must fall back to sequential
    // serving (SupportsConcurrentQuery() is false) and match exactly.
    const auto served_engine = MakeBaseline(kind, context);
    EXPECT_FALSE(served_engine->SupportsConcurrentQuery());
    UsiServiceOptions service_options;
    service_options.threads = 8;
    UsiService service(*served_engine, service_options);
    EXPECT_EQ(service.threads(), 1u);
    const std::vector<QueryResult> batch = service.QueryBatch(patterns);
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[i].utility, reference[i].utility);
      EXPECT_EQ(batch[i].from_hash_table, reference[i].from_hash_table);
    }
  }
}

TEST(UsiService, EmptyBatchIsEmpty) {
  const WeightedString ws = testing::RandomWeighted(500, 3, 0x11);
  UsiIndex index(ws, {});
  UsiService service(index);
  EXPECT_TRUE(service.QueryBatch({}).empty());
}

TEST(UsiService, SharesAnInjectedPool) {
  const WeightedString ws = testing::RandomWeighted(1200, 3, 0x42);
  UsiOptions options;
  options.k = 50;
  ThreadPool pool(3);
  const UsiIndex built_on_pool(ws, options, &pool);
  EXPECT_EQ(built_on_pool.build_info().threads_used, 3u);

  UsiIndex index(ws, options);
  UsiService service(index, &pool);
  EXPECT_EQ(service.threads(), 3u);
  std::vector<Text> patterns;
  for (index_t i = 0; i + 5 <= ws.size(); i += 7) {
    patterns.push_back(ws.Fragment(i, 5));
  }
  const std::vector<QueryResult> batch = service.QueryBatch(patterns);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i].utility, index.Query(patterns[i]).utility);
  }
}

TEST(QueryEngineInterface, EnginesReportNamesAndConcurrency) {
  const WeightedString ws = testing::RandomWeighted(800, 3, 0x21);
  UsiOptions options;
  options.k = 32;
  UsiIndex uet(ws, options);
  EXPECT_STREQ(uet.Name(), "UET");
  EXPECT_TRUE(uet.SupportsConcurrentQuery());

  UsiOptions approx = options;
  approx.miner = UsiMiner::kApproximate;
  UsiIndex uat(ws, approx);
  EXPECT_STREQ(uat.Name(), "UAT");

  // The miner survives a save/load round trip (serialized since format v2),
  // so a restored UAT index does not misreport itself as UET.
  const std::string path = TempPath("usi_uat_roundtrip.bin");
  ASSERT_TRUE(uat.SaveToFile(path));
  const std::unique_ptr<UsiIndex> restored = UsiIndex::LoadFromFile(ws, path);
  ASSERT_NE(restored, nullptr);
  EXPECT_STREQ(restored->Name(), "UAT");

  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);
  ExhaustiveQueryEngine exhaustive(ws.text(), sa, psw,
                                   GlobalUtilityKind::kSum);
  EXPECT_TRUE(exhaustive.SupportsConcurrentQuery());
  EXPECT_GT(exhaustive.SizeInBytes(), 0u);

  // The polymorphic path answers identically to the direct one.
  const Text pattern = ws.Fragment(0, 3);
  QueryEngine& as_engine = uet;
  EXPECT_DOUBLE_EQ(as_engine.Query(pattern).utility,
                   uet.Utility(pattern));
}

using QueryEngineDeathTest = ::testing::Test;

TEST(QueryEngineDeathTest, UnwiredExhaustiveEngineFailsLoudly) {
  // Earlier tests in this binary spawn pool threads; fork-based "fast"
  // death tests would warn, so re-exec instead.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Text pattern = testing::T("ab");
  ASSERT_DEATH(
      {
        ExhaustiveQueryEngine unwired;
        unwired.Compute(pattern);
      },
      "USI_CHECK");
}

}  // namespace
}  // namespace usi
