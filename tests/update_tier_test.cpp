// Update tier: AppendText must make appended content visible to queries
// immediately (exact merged base+delta answers, no rebuild), background
// compaction must fold the delta into a new generation without readers ever
// seeing a torn (base, delta) pair, and a failed compaction must quarantine
// per the reliability-layer semantics while the old base keeps serving and
// the delta keeps absorbing. The randomized-schedule test is the acceptance
// pin: merged answers equal a full rebuild after every append, at pool
// widths 1/2/4/8. Runs under ThreadSanitizer ("concurrency" label) and in
// the chaos job ("chaos" label; failpoint tests skip when compiled out).

#include <algorithm>
#include <atomic>
#include <latch>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/dynamic_usi.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/util/failpoint.hpp"

namespace usi {
namespace {

/// Random weighted string with INTEGER weights in [1, 5]: integer local
/// sums make kSum merges exactly associative in double (any grouping of the
/// base/delta split produces the bit-identical total), so the differential
/// tests can demand operator== instead of a tolerance.
WeightedString RandomIntegerWeighted(index_t n, u32 sigma, u64 seed) {
  Rng rng(seed);
  Text text(n);
  for (auto& c : text) c = static_cast<Symbol>(rng.UniformBelow(sigma));
  std::vector<double> weights(n);
  for (auto& w : weights) {
    w = static_cast<double>(rng.UniformInRange(1, 5));
  }
  return WeightedString(std::move(text), std::move(weights));
}

/// Every test disarms every failpoint on the way out.
class UpdateTierTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(UpdateTierTest, AppendIsVisibleImmediatelyAndExact) {
  const WeightedString seed = RandomIntegerWeighted(200, 3, 0x71);
  UsiMultiServiceOptions options;
  options.threads = 1;
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  // Mirror of the full text the service should now be equivalent to.
  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  Rng rng(0x72);
  for (int step = 0; step < 40; ++step) {
    const std::size_t len = rng.UniformInRange(1, 4);
    Text span(len);
    std::vector<double> w(len);
    for (std::size_t i = 0; i < len; ++i) {
      span[i] = static_cast<Symbol>(rng.UniformBelow(3));
      w[i] = static_cast<double>(rng.UniformInRange(1, 5));
    }
    ASSERT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);
    full.insert(full.end(), span.begin(), span.end());
    weights.insert(weights.end(), w.begin(), w.end());

    // No WaitForBuilds: visibility must not depend on any build landing.
    const WeightedString current(full, weights);
    for (int trial = 0; trial < 6; ++trial) {
      const index_t m = static_cast<index_t>(rng.UniformInRange(1, 6));
      // Bias half the probes to the tail so boundary-crossing occurrences
      // are exercised on every step.
      const index_t start =
          trial % 2 == 0
              ? static_cast<index_t>(rng.UniformBelow(current.size() - m))
              : current.size() - m -
                    static_cast<index_t>(
                        rng.UniformBelow(std::min<index_t>(8, current.size() - m) + 1));
      const Text pattern = current.Fragment(start, m);
      QueryResult got;
      ASSERT_EQ(service.Query("t", pattern, got), ServeStatus::kOk);
      const QueryResult want =
          testing::BruteUtility(current, pattern, GlobalUtilityKind::kSum);
      ASSERT_EQ(got.occurrences, want.occurrences)
          << "step " << step << " start " << start << " len " << m;
      ASSERT_EQ(got.utility, want.utility)
          << "step " << step << " start " << start << " len " << m;
    }
  }
  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appends, 40u);
  ASSERT_TRUE(stats->delta.has_value());
  EXPECT_GT(stats->delta->appended, 0u);
  EXPECT_EQ(stats->delta->boundary + stats->delta->appended,
            static_cast<index_t>(full.size()));
}

TEST_F(UpdateTierTest, AppendEdgeCases) {
  UsiMultiServiceOptions options;
  options.threads = 1;
  const Text span = testing::T("ab");
  const std::vector<double> w = {1.0, 1.0};
  {
    UsiMultiService service(options);
    EXPECT_EQ(service.AppendText("nope", span, w), ServeStatus::kUnknownText);
  }
  // Before the first generation publishes there is no base to append past:
  // park the only worker so the build cannot start.
  ThreadPool pool(1);
  std::latch started(1);
  std::latch release(1);
  pool.Run([&] {
    started.count_down();
    release.wait();
  });
  started.wait();
  UsiMultiService service(&pool);
  service.SubmitText("t", RandomIntegerWeighted(100, 2, 0x73));
  EXPECT_EQ(service.AppendText("t", span, w), ServeStatus::kNotReady);
  release.count_down();
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);
}

// The acceptance pin: a randomized append schedule of 10k symbols, verified
// after EVERY append against an exact oracle (DynamicUsi over the same
// content — itself differentially pinned to brute force and the static
// index in dynamic_usi_test), plus periodic full UsiIndex rebuilds compared
// with operator== — byte-equality, possible because integer kSum utilities
// are exact in double whatever the base/delta split. Repeated at pool
// widths 1, 2, 4 and 8; compactions run concurrently with the schedule
// (low threshold), so warm starts with appends-during-build happen
// organically.
TEST_F(UpdateTierTest, RandomizedScheduleMatchesFullRebuildAtEveryStep) {
  constexpr index_t kAppendTotal = 10000;
  constexpr index_t kCheckpointEvery = 2500;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const WeightedString seed = RandomIntegerWeighted(512, 3, 0x80 + threads);
    UsiOptions build;
    build.k = 64;
    UsiMultiServiceOptions options;
    options.threads = threads;
    options.delta_compact_threshold = 1500;
    options.default_build = build;
    UsiMultiService service(options);
    service.SubmitText("t", seed);
    ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

    DynamicUsiOptions oracle_options;
    oracle_options.k = 0;  // Pure tree + PSW: exact, no table to maintain.
    DynamicUsi oracle(seed, oracle_options);
    Text full = seed.text();
    std::vector<double> weights = seed.weights();

    Rng rng(0x90 + threads);
    index_t appended = 0;
    index_t next_checkpoint = kCheckpointEvery;
    while (appended < kAppendTotal) {
      const std::size_t len =
          std::min<std::size_t>(rng.UniformInRange(1, 8),
                                static_cast<std::size_t>(kAppendTotal - appended));
      Text span(len);
      std::vector<double> w(len);
      for (std::size_t i = 0; i < len; ++i) {
        span[i] = static_cast<Symbol>(rng.UniformBelow(3));
        w[i] = static_cast<double>(rng.UniformInRange(1, 5));
      }
      ASSERT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);
      for (std::size_t i = 0; i < len; ++i) oracle.Append(span[i], w[i]);
      full.insert(full.end(), span.begin(), span.end());
      weights.insert(weights.end(), w.begin(), w.end());
      appended += static_cast<index_t>(len);

      // Two probes per append: one anywhere, one pinned to the tail (the
      // crossing region a stale base would get wrong).
      const index_t total = static_cast<index_t>(full.size());
      Text patterns[2];
      {
        const index_t m = static_cast<index_t>(rng.UniformInRange(2, 10));
        const index_t start = static_cast<index_t>(rng.UniformBelow(total - m));
        patterns[0] = Text(full.begin() + start, full.begin() + start + m);
        const index_t m2 = static_cast<index_t>(rng.UniformInRange(2, 10));
        const index_t tail_start =
            total - m2 - static_cast<index_t>(rng.UniformBelow(6));
        patterns[1] = Text(full.begin() + tail_start,
                           full.begin() + tail_start + m2);
      }
      const MultiQuery queries[2] = {{"t", patterns[0]}, {"t", patterns[1]}};
      QueryResult got[2];
      ASSERT_EQ(service.QueryBatchInto(queries, got), ServeStatus::kOk);
      for (int p = 0; p < 2; ++p) {
        const QueryResult want = oracle.Query(patterns[p]);
        ASSERT_EQ(got[p].occurrences, want.occurrences)
            << "threads " << threads << " appended " << appended;
        ASSERT_EQ(got[p].utility, want.utility)
            << "threads " << threads << " appended " << appended;
      }

      if (appended >= next_checkpoint || appended == kAppendTotal) {
        next_checkpoint += kCheckpointEvery;
        // Full-rebuild checkpoint: the merged tier must be indistinguishable
        // from an index built over the complete current content.
        const WeightedString current(full, weights);
        const UsiIndex rebuilt(current, build);
        for (int trial = 0; trial < 30; ++trial) {
          const index_t m = static_cast<index_t>(rng.UniformInRange(1, 10));
          const index_t start =
              static_cast<index_t>(rng.UniformBelow(total - m));
          const Text pattern = current.Fragment(start, m);
          QueryResult via_service;
          ASSERT_EQ(service.Query("t", pattern, via_service),
                    ServeStatus::kOk);
          const QueryResult via_rebuild = rebuilt.Query(pattern);
          ASSERT_EQ(via_service.occurrences, via_rebuild.occurrences);
          ASSERT_EQ(via_service.utility, via_rebuild.utility)
              << "threads " << threads << " checkpoint at " << appended;
        }
      }
    }
    service.WaitForBuilds();
    const auto stats = service.StatsFor("t");
    ASSERT_TRUE(stats.has_value());
    EXPECT_GT(stats->compactions, 0u)
        << "the schedule must actually exercise compaction";
    EXPECT_EQ(service.stats().appends, stats->appends);
  }
}

TEST_F(UpdateTierTest, LongPatternsBeyondTheWindowUseTheScanPath) {
  // delta_context shorter than the probed patterns forces the
  // verify-and-sum fallback that reads base text below the window.
  const WeightedString seed = RandomIntegerWeighted(150, 2, 0xA1);
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_context = 4;
  options.delta_compact_threshold = 0;  // Never compact: keep the delta live.
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  Rng rng(0xA2);
  for (int step = 0; step < 30; ++step) {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(2));
    const double w = static_cast<double>(rng.UniformInRange(1, 5));
    ASSERT_EQ(service.AppendText("t", Text(1, c), std::vector<double>{w}),
              ServeStatus::kOk);
    full.push_back(c);
    weights.push_back(w);
    const WeightedString current(full, weights);
    for (index_t m = 6; m <= 12; ++m) {
      // Straddle the boundary: binary alphabet makes long repeats common
      // enough that these actually occur.
      const index_t start = current.size() - m - 2;
      const Text pattern = current.Fragment(start, m);
      QueryResult got;
      ASSERT_EQ(service.Query("t", pattern, got), ServeStatus::kOk);
      const QueryResult want =
          testing::BruteUtility(current, pattern, GlobalUtilityKind::kSum);
      ASSERT_EQ(got.occurrences, want.occurrences) << "step " << step;
      ASSERT_EQ(got.utility, want.utility) << "step " << step;
    }
  }
}

TEST_F(UpdateTierTest, CompactionFoldsTheDeltaAndStaysExact) {
  const WeightedString seed = RandomIntegerWeighted(256, 3, 0xB1);
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.delta_compact_threshold = 64;
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  Rng rng(0xB2);
  for (int step = 0; step < 200; ++step) {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(3));
    const double w = static_cast<double>(rng.UniformInRange(1, 5));
    ASSERT_EQ(service.AppendText("t", Text(1, c), std::vector<double>{w}),
              ServeStatus::kOk);
    full.push_back(c);
    weights.push_back(w);
  }
  service.WaitForBuilds();

  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->compactions, 2u);
  EXPECT_GT(stats->generation, 1u) << "compactions publish real generations";
  // Appends that raced the last compaction survive in the warm-started
  // successor overlay; whatever remains is sub-threshold and accounts for
  // exactly the unfolded tail (overlay gone entirely when nothing raced).
  if (stats->delta.has_value()) {
    EXPECT_LT(stats->delta->appended, options.delta_compact_threshold);
    EXPECT_EQ(stats->delta->boundary + stats->delta->appended,
              static_cast<index_t>(full.size()));
  }
  // Either way the tier matches a from-scratch index over the full content.
  const WeightedString current(full, weights);
  const UsiIndex rebuilt(current, UsiOptions{});
  for (int trial = 0; trial < 100; ++trial) {
    const index_t m = static_cast<index_t>(rng.UniformInRange(1, 8));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(current.size() - m));
    const Text pattern = current.Fragment(start, m);
    QueryResult got;
    ASSERT_EQ(service.Query("t", pattern, got), ServeStatus::kOk);
    const QueryResult want = rebuilt.Query(pattern);
    ASSERT_EQ(got.occurrences, want.occurrences);
    ASSERT_EQ(got.utility, want.utility);
  }
}

TEST_F(UpdateTierTest, CompactionUnderLoadNeverShowsATornView) {
  // Readers hammer a batch of {"ab", "ba", "aa"} while a writer appends
  // whole "ab" pairs and compactions cycle underneath (tiny threshold).
  // Invariants every admitted batch must satisfy on (ab)^p content:
  //   occ("ab") == occ("ba") + 1   (torn half-pair or mixed snapshot breaks
  //                                 this: text ending in a lone 'a' gives
  //                                 occ("ab") == occ("ba"))
  //   occ("aa") == 0
  //   utility("ab") == 2 * occ("ab")  (uniform weight 1, kSum)
  //   occ("ab") non-decreasing per reader (appends only grow the text;
  //                                 compaction must not lose or replay any)
  constexpr index_t kBasePairs = 64;
  constexpr int kWriterPairs = 400;
  Text base;
  for (index_t i = 0; i < kBasePairs; ++i) {
    base.push_back(static_cast<Symbol>('a'));
    base.push_back(static_cast<Symbol>('b'));
  }
  UsiMultiServiceOptions options;
  options.threads = 4;
  options.delta_compact_threshold = 64;
  UsiMultiService service(options);
  service.SubmitText("t", WeightedString::WithUniformWeights(base, 1.0));
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const Text pat_ab = testing::T("ab");
  const Text pat_ba = testing::T("ba");
  const Text pat_aa = testing::T("aa");
  std::atomic<u64> violations{0};
  std::atomic<u64> failed{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      index_t last_ab = 0;
      while (!writer_done.load(std::memory_order_acquire)) {
        const MultiQuery queries[3] = {
            {"t", pat_ab}, {"t", pat_ba}, {"t", pat_aa}};
        QueryResult got[3];
        if (service.QueryBatchInto(queries, got) != ServeStatus::kOk) {
          failed.fetch_add(1);
          continue;
        }
        const index_t ab = got[0].occurrences;
        if (got[1].occurrences + 1 != ab) violations.fetch_add(1);
        if (got[2].occurrences != 0) violations.fetch_add(1);
        if (got[0].utility != 2.0 * static_cast<double>(ab)) {
          violations.fetch_add(1);
        }
        if (ab < last_ab || ab < kBasePairs ||
            ab > kBasePairs + kWriterPairs) {
          violations.fetch_add(1);
        }
        last_ab = ab;
      }
    });
  }
  std::thread writer([&] {
    const Text pair = testing::T("ab");
    const std::vector<double> w = {1.0, 1.0};
    for (int i = 0; i < kWriterPairs; ++i) {
      if (service.AppendText("t", pair, w) != ServeStatus::kOk) {
        failed.fetch_add(1);
      }
    }
    writer_done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& reader : readers) reader.join();
  service.WaitForBuilds();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  QueryResult final_ab;
  ASSERT_EQ(service.Query("t", pat_ab, final_ab), ServeStatus::kOk);
  EXPECT_EQ(final_ab.occurrences, kBasePairs + kWriterPairs);
  const auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appends, static_cast<u64>(kWriterPairs));
  EXPECT_GE(stats->compactions, 1u);
}

TEST_F(UpdateTierTest, FullContentReplacementDropsTheDelta) {
  const WeightedString v1 = RandomIntegerWeighted(200, 3, 0xC1);
  const WeightedString v2 = RandomIntegerWeighted(180, 3, 0xC2);
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_compact_threshold = 0;
  UsiMultiService service(options);
  service.SubmitText("t", v1);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const Text span = testing::T("xyz");
  const std::vector<double> w = {2.0, 2.0, 2.0};
  ASSERT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);
  ASSERT_TRUE(service.StatsFor("t")->delta.has_value());

  service.UpdateText("t", v2);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_FALSE(service.StatsFor("t")->delta.has_value());
  // Answers describe v2 alone — the appended "xyz" is gone with v1.
  QueryResult got;
  ASSERT_EQ(service.Query("t", span, got), ServeStatus::kOk);
  EXPECT_EQ(got.occurrences, 0u);
  const Text probe = v2.Fragment(10, 4);
  ASSERT_EQ(service.Query("t", probe, got), ServeStatus::kOk);
  const QueryResult want =
      testing::BruteUtility(v2, probe, GlobalUtilityKind::kSum);
  EXPECT_EQ(got.occurrences, want.occurrences);
  EXPECT_EQ(got.utility, want.utility);
}

TEST_F(UpdateTierTest, PerTextBuildOptionsFollowAppendAndUpdate) {
  const WeightedString seed = RandomIntegerWeighted(400, 3, 0xD1);
  UsiOptions initial;
  initial.k = 64;
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_compact_threshold = 16;
  UsiMultiService service(options);
  service.SubmitText("t", seed, initial);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.StatsFor("t")->last_build.k, 64u);

  // AppendText's options overload re-options the text: the compaction this
  // append run triggers must build with the new K.
  UsiOptions appended_options;
  appended_options.k = 24;
  const Text one = testing::T("a");
  const std::vector<double> w = {1.0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(service.AppendText("t", one, w, appended_options),
              ServeStatus::kOk);
  }
  service.WaitForBuilds();
  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  ASSERT_GE(stats->compactions, 1u);
  EXPECT_EQ(stats->last_build.k, 24u);

  // SetBuildOptions alone re-options without scheduling; the next plain
  // UpdateText builds with it.
  UsiOptions set_options;
  set_options.k = 12;
  EXPECT_TRUE(service.SetBuildOptions("t", set_options));
  EXPECT_FALSE(service.SetBuildOptions("nope", set_options));
  service.UpdateText("t", RandomIntegerWeighted(300, 3, 0xD2));
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.StatsFor("t")->last_build.k, 12u);

  // UpdateText's options overload wins over the stored ones.
  UsiOptions update_options;
  update_options.k = 40;
  service.UpdateText("t", RandomIntegerWeighted(300, 3, 0xD3),
                     update_options);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.StatsFor("t")->last_build.k, 40u);
}

TEST_F(UpdateTierTest, MultiLaneExecutorBuildsManyTextsCorrectly) {
  constexpr int kTexts = 6;
  UsiOptions build;
  build.k = 32;
  UsiMultiServiceOptions options;
  options.threads = 4;
  options.build_lanes = 3;
  options.default_build = build;
  UsiMultiService service(options);

  std::vector<WeightedString> texts;
  for (int i = 0; i < kTexts; ++i) {
    texts.push_back(RandomIntegerWeighted(400 + 50 * i, 3, 0xE0 + i));
    service.SubmitText("t" + std::to_string(i), texts.back());
  }
  service.WaitForBuilds();
  EXPECT_EQ(service.stats().builds_completed, static_cast<u64>(kTexts));

  // Every text serves the answers its own direct index gives — lanes never
  // cross-publish.
  Rng rng(0xEE);
  for (int i = 0; i < kTexts; ++i) {
    const UsiIndex direct(texts[i], build);
    for (int trial = 0; trial < 30; ++trial) {
      const index_t m = static_cast<index_t>(rng.UniformInRange(1, 6));
      const index_t start =
          static_cast<index_t>(rng.UniformBelow(texts[i].size() - m));
      const Text pattern = texts[i].Fragment(start, m);
      QueryResult got;
      ASSERT_EQ(service.Query("t" + std::to_string(i), pattern, got),
                ServeStatus::kOk);
      const QueryResult want = direct.Query(pattern);
      ASSERT_EQ(got.occurrences, want.occurrences) << "text " << i;
      ASSERT_EQ(got.utility, want.utility) << "text " << i;
    }
  }

  // Update every text at once: the wide executor drains them all and each
  // text's generations stay sequential (monotonic generation per text).
  for (int i = 0; i < kTexts; ++i) {
    service.UpdateText("t" + std::to_string(i),
                       RandomIntegerWeighted(300, 3, 0xF0 + i));
  }
  service.WaitForBuilds();
  for (int i = 0; i < kTexts; ++i) {
    const auto stats = service.StatsFor("t" + std::to_string(i));
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->generation, 2u);
    EXPECT_EQ(stats->builds_completed, 2u);
  }
}

TEST_F(UpdateTierTest, ChaosAppendFailpointRejectsWithoutCorruption) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString seed = RandomIntegerWeighted(128, 2, 0x101);
  UsiMultiServiceOptions options;
  options.threads = 1;
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const Text span = testing::T("ab");
  const std::vector<double> w = {1.0, 1.0};
  ASSERT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);

  // The failpoint sits BEFORE any mutation: the rejected span must leave
  // the overlay exactly as it was.
  failpoint::Arm("delta.append", failpoint::Action::kThrow, /*fires=*/1);
  EXPECT_EQ(service.AppendText("t", span, w), ServeStatus::kIndexUnavailable);

  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  full.insert(full.end(), span.begin(), span.end());
  weights.insert(weights.end(), w.begin(), w.end());
  const WeightedString current(full, weights);
  QueryResult got;
  ASSERT_EQ(service.Query("t", span, got), ServeStatus::kOk);
  const QueryResult want =
      testing::BruteUtility(current, span, GlobalUtilityKind::kSum);
  EXPECT_EQ(got.occurrences, want.occurrences);
  EXPECT_EQ(got.utility, want.utility);

  // Disarmed (fires=1 exhausted): appends resume on the same overlay.
  EXPECT_EQ(service.AppendText("t", span, w), ServeStatus::kOk);
  const auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->appends, 2u) << "the rejected span must not count";
  ASSERT_TRUE(stats->delta.has_value());
  EXPECT_EQ(stats->delta->appended, 4u);
}

TEST_F(UpdateTierTest, ChaosFailedCompactionQuarantinesWhileDeltaServes) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString seed = RandomIntegerWeighted(128, 3, 0x111);
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_compact_threshold = 32;
  options.max_build_retries = 0;  // Straight to quarantine.
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  failpoint::Arm("compact.swap", failpoint::Action::kThrow);
  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  Rng rng(0x112);
  for (int i = 0; i < 32; ++i) {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(3));
    const double w = static_cast<double>(rng.UniformInRange(1, 5));
    ASSERT_EQ(service.AppendText("t", Text(1, c), std::vector<double>{w}),
              ServeStatus::kOk);
    full.push_back(c);
    weights.push_back(w);
  }
  // The scheduled compaction fails terminally; the entry is quarantined as
  // kFailed per the PR 8 semantics...
  EXPECT_EQ(service.WaitForText("t"), BuildState::kFailed);
  EXPECT_GE(service.StatsFor("t")->builds_failed, 1u);
  EXPECT_EQ(service.StatsFor("t")->compactions, 0u);

  // ...but the old base + delta keep serving exact answers, and further
  // appends keep landing.
  const Text extra = testing::T("zz");
  const std::vector<double> wz = {3.0, 3.0};
  ASSERT_EQ(service.AppendText("t", extra, wz), ServeStatus::kOk);
  full.insert(full.end(), extra.begin(), extra.end());
  weights.insert(weights.end(), wz.begin(), wz.end());
  service.WaitForBuilds();  // Drain the re-triggered (failing) compactions.
  const WeightedString current(full, weights);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t m = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(current.size() - m));
    const Text pattern = current.Fragment(start, m);
    QueryResult got;
    ASSERT_EQ(service.Query("t", pattern, got), ServeStatus::kOk);
    const QueryResult want =
        testing::BruteUtility(current, pattern, GlobalUtilityKind::kSum);
    ASSERT_EQ(got.occurrences, want.occurrences);
    ASSERT_EQ(got.utility, want.utility);
  }

  // Heal the lane: the next threshold-crossing append compacts for real.
  failpoint::DisarmAll();
  const Text heal = testing::T("q");
  const std::vector<double> wq = {1.0};
  ASSERT_EQ(service.AppendText("t", heal, wq), ServeStatus::kOk);
  service.WaitForBuilds();
  const auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->compactions, 1u);
  EXPECT_EQ(service.WaitForText("t"), BuildState::kReady);
}

TEST_F(UpdateTierTest, ChaosWarmstartFailureFallsBackToRebase) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString seed = RandomIntegerWeighted(128, 3, 0x121);
  const index_t n0 = seed.size();
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.delta_compact_threshold = 32;
  options.max_build_retries = 1;
  // Generous backoff: the window in which the appends below land "during
  // the build" (between the failed first attempt and the retry).
  options.build_retry_backoff_ms = 500;
  UsiMultiService service(options);
  service.SubmitText("t", seed);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  // First compaction attempt fails fast; while it backs off, more appends
  // land, so the eventual publish has pending appends to carry over — and
  // the armed warmstart failpoint forces the Rebase containment path.
  failpoint::Arm("compact.swap", failpoint::Action::kThrow, /*fires=*/1);
  failpoint::Arm("compact.warmstart", failpoint::Action::kError);
  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  Rng rng(0x122);
  const auto append_one = [&] {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(3));
    const double w = static_cast<double>(rng.UniformInRange(1, 5));
    ASSERT_EQ(service.AppendText("t", Text(1, c), std::vector<double>{w}),
              ServeStatus::kOk);
    full.push_back(c);
    weights.push_back(w);
  };
  for (int i = 0; i < 32; ++i) append_one();  // Triggers the compaction.
  for (int i = 0; i < 8; ++i) append_one();   // Lands during the backoff.
  service.WaitForBuilds();

  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->compactions, 1u);
  EXPECT_EQ(stats->build_retries, 1u);
  // Rebase kept the old overlay: the boundary moved to the fold point, the
  // 8 raced appends are still pending, and the window is the rebased one
  // (old window + folded span), not a reseeded delta_context.
  ASSERT_TRUE(stats->delta.has_value());
  EXPECT_EQ(stats->delta->boundary, n0 + 32);
  EXPECT_EQ(stats->delta->appended, 8u);

  // Still exact through the rebased overlay.
  const WeightedString current(full, weights);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t m = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(current.size() - m));
    const Text pattern = current.Fragment(start, m);
    QueryResult got;
    ASSERT_EQ(service.Query("t", pattern, got), ServeStatus::kOk);
    const QueryResult want =
        testing::BruteUtility(current, pattern, GlobalUtilityKind::kSum);
    ASSERT_EQ(got.occurrences, want.occurrences) << "trial " << trial;
    ASSERT_EQ(got.utility, want.utility) << "trial " << trial;
  }

  // With the failpoint gone the next compaction warm-starts normally and
  // clears the overlay (nothing raced it).
  failpoint::DisarmAll();
  for (int i = 0; i < 24; ++i) append_one();  // 8 pending + 24 = threshold.
  service.WaitForBuilds();
  stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->compactions, 2u);
  EXPECT_FALSE(stats->delta.has_value());
  QueryResult got;
  const Text probe = WeightedString(full, weights).Fragment(full.size() - 6, 5);
  ASSERT_EQ(service.Query("t", probe, got), ServeStatus::kOk);
  const QueryResult want = testing::BruteUtility(
      WeightedString(full, weights), probe, GlobalUtilityKind::kSum);
  EXPECT_EQ(got.occurrences, want.occurrences);
  EXPECT_EQ(got.utility, want.utility);
}

}  // namespace
}  // namespace usi
