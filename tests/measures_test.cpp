// Tests for the Section IX quality measures.

#include <gtest/gtest.h>

#include "usi/topk/measures.hpp"

namespace usi {
namespace {

TopKSubstring Item(index_t length, index_t frequency) {
  return TopKSubstring{length, frequency, 0, kInvalidIndex, kInvalidIndex};
}

TEST(Accuracy, PerfectMatch) {
  const std::vector<TopKSubstring> exact = {Item(1, 10), Item(2, 5), Item(3, 2)};
  EXPECT_DOUBLE_EQ(TopKAccuracyPercent(exact, exact), 100.0);
}

TEST(Accuracy, HalfMatch) {
  const std::vector<TopKSubstring> exact = {Item(1, 10), Item(2, 5)};
  const std::vector<TopKSubstring> est = {Item(1, 10), Item(2, 4)};
  EXPECT_DOUBLE_EQ(TopKAccuracyPercent(exact, est), 50.0);
}

TEST(Accuracy, MultisetSemantics) {
  // Two items share a frequency; the estimator reports it once: one credit.
  const std::vector<TopKSubstring> exact = {Item(1, 7), Item(2, 7), Item(3, 1)};
  const std::vector<TopKSubstring> est = {Item(1, 7), Item(9, 2), Item(3, 3)};
  EXPECT_NEAR(TopKAccuracyPercent(exact, est), 100.0 / 3.0, 1e-9);
}

TEST(Accuracy, EmptyExactIsPerfect) {
  EXPECT_DOUBLE_EQ(TopKAccuracyPercent({}, {}), 100.0);
}

TEST(Accuracy, EmptyEstimateIsZero) {
  const std::vector<TopKSubstring> exact = {Item(1, 10)};
  EXPECT_DOUBLE_EQ(TopKAccuracyPercent(exact, {}), 0.0);
}

TEST(RelativeError, ZeroWhenMassesMatch) {
  const std::vector<TopKSubstring> exact = {Item(1, 10), Item(2, 5)};
  const std::vector<TopKSubstring> est = {Item(5, 9), Item(6, 6)};
  EXPECT_DOUBLE_EQ(TopKRelativeError(exact, est), 0.0);
}

TEST(RelativeError, PositiveWhenUnderestimating) {
  const std::vector<TopKSubstring> exact = {Item(1, 10)};
  const std::vector<TopKSubstring> est = {Item(1, 6)};
  EXPECT_DOUBLE_EQ(TopKRelativeError(exact, est), 0.4);
}

TEST(Ndcg, PerfectRankingIsOne) {
  const std::vector<TopKSubstring> exact = {Item(1, 10), Item(2, 5), Item(3, 2)};
  EXPECT_DOUBLE_EQ(TopKNdcg(exact, exact), 1.0);
}

TEST(Ndcg, WorseRankingBelowOne) {
  const std::vector<TopKSubstring> exact = {Item(1, 10), Item(2, 5)};
  const std::vector<TopKSubstring> est = {Item(2, 5), Item(1, 2)};
  const double ndcg = TopKNdcg(exact, est);
  EXPECT_LT(ndcg, 1.0);
  EXPECT_GT(ndcg, 0.0);
}

TEST(Ndcg, EmptyEstimateIsZero) {
  const std::vector<TopKSubstring> exact = {Item(1, 10)};
  EXPECT_DOUBLE_EQ(TopKNdcg(exact, {}), 0.0);
}

TEST(LongestReported, PicksMaximum) {
  EXPECT_EQ(LongestReportedLength({Item(3, 1), Item(7, 1), Item(5, 1)}), 7u);
  EXPECT_EQ(LongestReportedLength({}), 0u);
}

}  // namespace
}  // namespace usi
