// Tests for RangeMin and the four LCE backends (parameterized cross-check
// against the naive oracle).

#include <memory>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/lce.hpp"
#include "usi/suffix/rmq.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(RangeMin, MatchesNaiveScan) {
  Rng rng(3);
  std::vector<index_t> values(777);
  for (auto& v : values) v = static_cast<index_t>(rng.UniformBelow(1000));
  const RangeMin rmq(values);
  for (int trial = 0; trial < 2000; ++trial) {
    std::size_t l = rng.UniformBelow(values.size());
    std::size_t r = rng.UniformBelow(values.size());
    if (l > r) std::swap(l, r);
    index_t expected = kInvalidIndex;
    for (std::size_t i = l; i <= r; ++i) expected = std::min(expected, values[i]);
    ASSERT_EQ(rmq.Min(l, r), expected) << "[" << l << "," << r << "]";
  }
}

TEST(RangeMin, SingleElementRanges) {
  std::vector<index_t> values = {5, 3, 8, 1};
  const RangeMin rmq(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(rmq.Min(i, i), values[i]);
  }
}

TEST(RangeMin, TinyInputs) {
  std::vector<index_t> one = {42};
  const RangeMin rmq(one);
  EXPECT_EQ(rmq.Min(0, 0), 42u);
}

enum class Backend { kNaive, kRmq, kKr, kSampledKr2, kSampledKr16 };

struct LceCase {
  const char* name;
  Backend backend;
};

class LceTest : public ::testing::TestWithParam<LceCase> {
 protected:
  std::unique_ptr<LceOracle> Make(const Text& text) {
    hasher_ = std::make_unique<KarpRabinHasher>(99);
    switch (GetParam().backend) {
      case Backend::kNaive:
        return std::make_unique<NaiveLce>(text);
      case Backend::kRmq:
        return std::make_unique<RmqLce>(text);
      case Backend::kKr:
        return std::make_unique<KrLce>(text, *hasher_);
      case Backend::kSampledKr2:
        return std::make_unique<SampledKrLce>(text, *hasher_, 2);
      case Backend::kSampledKr16:
        return std::make_unique<SampledKrLce>(text, *hasher_, 16);
    }
    return nullptr;
  }

  std::unique_ptr<KarpRabinHasher> hasher_;
};

TEST_P(LceTest, MatchesNaiveOnRandomText) {
  const Text text = testing::RandomText(600, 3, 5);
  const NaiveLce naive(text);
  const auto oracle = Make(text);
  Rng rng(6);
  for (int trial = 0; trial < 1500; ++trial) {
    const index_t i = static_cast<index_t>(rng.UniformBelow(text.size()));
    const index_t j = static_cast<index_t>(rng.UniformBelow(text.size()));
    ASSERT_EQ(oracle->Lce(i, j), naive.Lce(i, j)) << i << "," << j;
  }
}

TEST_P(LceTest, MatchesNaiveOnRepetitiveText) {
  const Text text = MakePeriodic(512, 3, 0).text();
  const NaiveLce naive(text);
  const auto oracle = Make(text);
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      ASSERT_EQ(oracle->Lce(i, j), naive.Lce(i, j)) << i << "," << j;
    }
  }
}

TEST_P(LceTest, SelfLceIsSuffixLength) {
  const Text text = testing::RandomText(100, 4, 8);
  const auto oracle = Make(text);
  for (index_t i = 0; i < text.size(); ++i) {
    EXPECT_EQ(oracle->Lce(i, i), text.size() - i);
  }
}

TEST_P(LceTest, CompareSuffixesTotalOrder) {
  const Text text = MakeDnaLike(300, 4).text();
  const auto oracle = Make(text);
  const NaiveLce naive(text);
  Rng rng(10);
  for (int trial = 0; trial < 500; ++trial) {
    const index_t i = static_cast<index_t>(rng.UniformBelow(text.size()));
    const index_t j = static_cast<index_t>(rng.UniformBelow(text.size()));
    const int got = oracle->CompareSuffixes(i, j);
    const int want = naive.CompareSuffixes(i, j);
    ASSERT_EQ(got < 0, want < 0);
    ASSERT_EQ(got == 0, want == 0);
  }
}

TEST_P(LceTest, CompareFragmentsHandlesPrefixRelations) {
  const Text text = testing::T("abcabcabd");
  const auto oracle = Make(text);
  // "abc" vs "abc" at different positions.
  EXPECT_EQ(oracle->CompareFragments(0, 3, 3, 3), 0);
  // "abc" < "abca".
  EXPECT_LT(oracle->CompareFragments(0, 3, 0, 4), 0);
  // "abca" > "abc".
  EXPECT_GT(oracle->CompareFragments(0, 4, 3, 3), 0);
  // "abd" > "abc".
  EXPECT_GT(oracle->CompareFragments(6, 3, 0, 3), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, LceTest,
    ::testing::Values(LceCase{"naive", Backend::kNaive},
                      LceCase{"rmq", Backend::kRmq},
                      LceCase{"kr", Backend::kKr},
                      LceCase{"sampled2", Backend::kSampledKr2},
                      LceCase{"sampled16", Backend::kSampledKr16}),
    [](const ::testing::TestParamInfo<LceCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace usi
