// Unit tests for src/usi/hash: Karp-Rabin fingerprints, fingerprint table,
// sketches, caches.

#include <unordered_set>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/hash/caches.hpp"
#include "usi/hash/count_min_sketch.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"

namespace usi {
namespace {

TEST(Mersenne61, AddSubInverse) {
  const u64 a = 123456789012345ULL;
  const u64 b = 987654321098765ULL;
  EXPECT_EQ(Mersenne61::Sub(Mersenne61::Add(a, b), b), a);
}

TEST(Mersenne61, MulMatchesSmallCases) {
  EXPECT_EQ(Mersenne61::Mul(3, 4), 12u);
  EXPECT_EQ(Mersenne61::Mul(Mersenne61::kPrime - 1, 1), Mersenne61::kPrime - 1);
  // (p-1)^2 mod p = 1.
  EXPECT_EQ(Mersenne61::Mul(Mersenne61::kPrime - 1, Mersenne61::kPrime - 1), 1u);
}

TEST(Mersenne61, PowMatchesRepeatedMul) {
  u64 x = 1;
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(Mersenne61::Pow(7, e), x);
    x = Mersenne61::Mul(x, 7);
  }
}

TEST(KarpRabin, EqualStringsEqualFingerprints) {
  KarpRabinHasher hasher(1);
  const Text a = testing::T("abracadabra");
  const Text b = testing::T("abracadabra");
  EXPECT_EQ(hasher.Hash(a), hasher.Hash(b));
}

TEST(KarpRabin, DistinctShortStringsDistinct) {
  KarpRabinHasher hasher(2);
  std::unordered_set<u64> fps;
  // All 3-letter strings over a 10-letter alphabet: no collisions expected.
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      for (int c = 0; c < 10; ++c) {
        Text t = {static_cast<Symbol>(a), static_cast<Symbol>(b),
                  static_cast<Symbol>(c)};
        fps.insert(hasher.Hash(t));
      }
    }
  }
  EXPECT_EQ(fps.size(), 1000u);
}

TEST(KarpRabin, PrefixFingerprintFragments) {
  KarpRabinHasher hasher(3);
  const Text text = testing::RandomText(500, 7, 42);
  PrefixFingerprints fps(text, hasher);
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t i = static_cast<index_t>(rng.UniformBelow(text.size()));
    const index_t len = static_cast<index_t>(
        rng.UniformInRange(1, text.size() - i));
    const Text fragment(text.begin() + i, text.begin() + i + len);
    EXPECT_EQ(fps.Fragment(i, len), hasher.Hash(fragment));
  }
}

TEST(KarpRabin, ConcatAndSuffixAlgebra) {
  KarpRabinHasher hasher(4);
  const Text left = testing::T("hello");
  const Text right = testing::T("world");
  Text both = left;
  both.insert(both.end(), right.begin(), right.end());
  const u64 fp_concat =
      hasher.Concat(hasher.Hash(left), hasher.Hash(right), right.size());
  EXPECT_EQ(fp_concat, hasher.Hash(both));
  EXPECT_EQ(hasher.SuffixOf(hasher.Hash(both), hasher.Hash(left), right.size()),
            hasher.Hash(right));
}

TEST(KarpRabin, RollingWindowMatchesDirectHash) {
  KarpRabinHasher hasher(5);
  const Text text = testing::RandomText(300, 4, 17);
  const index_t len = 7;
  RollingHasher window(hasher, len);
  for (index_t i = 0; i + 1 < len; ++i) window.Push(text[i]);
  for (index_t i = 0; i + len <= text.size(); ++i) {
    if (i == 0) {
      window.Push(text[len - 1]);
    } else {
      window.Roll(text[i - 1], text[i + len - 1]);
    }
    const Text fragment(text.begin() + i, text.begin() + i + len);
    ASSERT_EQ(window.Fingerprint(), hasher.Hash(fragment)) << "at " << i;
  }
}

TEST(KarpRabin, DifferentSeedsDifferentBases) {
  KarpRabinHasher a(1);
  KarpRabinHasher b(2);
  EXPECT_NE(a.base(), b.base());
}

TEST(FingerprintTable, InsertFindRoundTrip) {
  FingerprintTable<double> table;
  table.FindOrInsert(PatternKey{111, 5}, 1.5);
  table.FindOrInsert(PatternKey{222, 5}, 2.5);
  table.FindOrInsert(PatternKey{111, 6}, 3.5);  // Same fp, other length.
  ASSERT_NE(table.Find(PatternKey{111, 5}), nullptr);
  EXPECT_DOUBLE_EQ(*table.Find(PatternKey{111, 5}), 1.5);
  EXPECT_DOUBLE_EQ(*table.Find(PatternKey{222, 5}), 2.5);
  EXPECT_DOUBLE_EQ(*table.Find(PatternKey{111, 6}), 3.5);
  EXPECT_EQ(table.Find(PatternKey{333, 5}), nullptr);
  EXPECT_EQ(table.size(), 3u);
}

TEST(FingerprintTable, FindOrInsertReturnsExisting) {
  FingerprintTable<int> table;
  int* first = table.FindOrInsert(PatternKey{7, 1}, 10);
  int* second = table.FindOrInsert(PatternKey{7, 1}, 99);
  EXPECT_EQ(first, second);
  EXPECT_EQ(*second, 10);  // Original value kept.
}

TEST(FingerprintTable, SurvivesRehashing) {
  FingerprintTable<u64> table;
  Rng rng(13);
  std::vector<PatternKey> keys;
  for (u64 i = 0; i < 5000; ++i) {
    PatternKey key{rng.Next() % Mersenne61::kPrime,
                   static_cast<u32>(rng.UniformInRange(1, 100))};
    keys.push_back(key);
    table.FindOrInsert(key, i);
  }
  for (u64 i = 0; i < keys.size(); ++i) {
    auto* value = table.Find(keys[i]);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, i);
  }
}

TEST(FingerprintTable, ClearEmptiesButKeepsWorking) {
  FingerprintTable<int> table;
  table.FindOrInsert(PatternKey{1, 1}, 1);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(PatternKey{1, 1}), nullptr);
  table.FindOrInsert(PatternKey{2, 2}, 2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FingerprintTable, ForEachVisitsAll) {
  FingerprintTable<int> table;
  for (u64 i = 1; i <= 100; ++i) {
    table.FindOrInsert(PatternKey{i, static_cast<u32>(i)}, static_cast<int>(i));
  }
  int sum = 0;
  table.ForEach([&](const PatternKey&, int& v) { sum += v; });
  EXPECT_EQ(sum, 5050);
}

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch sketch(256, 4);
  Rng rng(21);
  std::vector<std::pair<u64, u32>> items;
  for (int i = 0; i < 100; ++i) {
    const u64 key = rng.Next();
    const u32 count = static_cast<u32>(rng.UniformInRange(1, 50));
    items.push_back({key, count});
    sketch.Add(key, count);
  }
  for (const auto& [key, count] : items) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(CountMinSketch, AccurateWhenSparse) {
  CountMinSketch sketch(4096, 4);
  sketch.Add(42, 7);
  EXPECT_EQ(sketch.Estimate(42), 7u);
  EXPECT_EQ(sketch.Estimate(43), 0u);
}

TEST(DecaySketch, TracksHeavyHitter) {
  DecaySketch sketch(64, 2);
  for (int i = 0; i < 1000; ++i) {
    sketch.Insert(7777);
    if (i % 10 == 0) sketch.Insert(1234);  // Light item.
  }
  EXPECT_GT(sketch.Estimate(7777), sketch.Estimate(1234));
  EXPECT_GT(sketch.Estimate(7777), 500u);
}

TEST(DecaySketch, ColdItemDoesNotEvictHot) {
  DecaySketch sketch(1, 1);  // Force every key into one bucket.
  for (int i = 0; i < 500; ++i) sketch.Insert(1);
  sketch.Insert(2);  // One cold insert: decay chance b^-500, ~impossible.
  EXPECT_GT(sketch.Estimate(1), 400u);
  EXPECT_EQ(sketch.Estimate(2), 0u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Put(PatternKey{1, 1}, 1.0);
  cache.Put(PatternKey{2, 1}, 2.0);
  double out = 0;
  EXPECT_TRUE(cache.Get(PatternKey{1, 1}, &out));  // 1 is now most recent.
  cache.Put(PatternKey{3, 1}, 3.0);                // Evicts 2.
  EXPECT_FALSE(cache.Get(PatternKey{2, 1}, &out));
  EXPECT_TRUE(cache.Get(PatternKey{1, 1}, &out));
  EXPECT_DOUBLE_EQ(out, 1.0);
  EXPECT_TRUE(cache.Get(PatternKey{3, 1}, &out));
}

TEST(LruCache, PutRefreshesValue) {
  LruCache cache(2);
  cache.Put(PatternKey{1, 1}, 1.0);
  cache.Put(PatternKey{1, 1}, 9.0);
  double out = 0;
  EXPECT_TRUE(cache.Get(PatternKey{1, 1}, &out));
  EXPECT_DOUBLE_EQ(out, 9.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, StressAgainstMap) {
  LruCache cache(64);
  Rng rng(77);
  for (int op = 0; op < 5000; ++op) {
    const PatternKey key{rng.UniformBelow(200), 1};
    double out;
    if (!cache.Get(key, &out)) {
      cache.Put(key, static_cast<double>(key.fp));
    } else {
      EXPECT_DOUBLE_EQ(out, static_cast<double>(key.fp));
    }
    EXPECT_LE(cache.size(), 64u);
  }
}

TEST(LfuCache, AdmitsOnlyPopularWhenFull) {
  LfuCache cache(2);
  cache.Offer(PatternKey{1, 1}, 5, 1.0);
  cache.Offer(PatternKey{2, 1}, 3, 2.0);
  // Count 2 does not beat the min (3): rejected.
  cache.Offer(PatternKey{3, 1}, 2, 3.0);
  double out;
  EXPECT_FALSE(cache.Get(PatternKey{3, 1}, &out));
  // Count 4 beats min 3: replaces key 2.
  cache.Offer(PatternKey{3, 1}, 4, 3.0);
  EXPECT_TRUE(cache.Get(PatternKey{3, 1}, &out));
  EXPECT_FALSE(cache.Get(PatternKey{2, 1}, &out));
  EXPECT_TRUE(cache.Get(PatternKey{1, 1}, &out));
}

TEST(LfuCache, CountUpdatesKeepHeapConsistent) {
  LfuCache cache(3);
  cache.Offer(PatternKey{1, 1}, 1, 1.0);
  cache.Offer(PatternKey{2, 1}, 2, 2.0);
  cache.Offer(PatternKey{3, 1}, 3, 3.0);
  // Raise key 1's count; now key 2 is the min and should be evicted next.
  cache.Offer(PatternKey{1, 1}, 10, 1.0);
  cache.Offer(PatternKey{4, 1}, 5, 4.0);
  double out;
  EXPECT_FALSE(cache.Get(PatternKey{2, 1}, &out));
  EXPECT_TRUE(cache.Get(PatternKey{1, 1}, &out));
  EXPECT_TRUE(cache.Get(PatternKey{3, 1}, &out));
  EXPECT_TRUE(cache.Get(PatternKey{4, 1}, &out));
}

}  // namespace
}  // namespace usi
