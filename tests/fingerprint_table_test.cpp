// Dedicated suite for the tagged SoA FingerprintTable (the index's hash
// table H): probe wraparound at the mask boundary, rehash exactly at the
// load-factor threshold (and NOT on re-insertion of a present key), Clear
// semantics, ForEach coverage, tag collisions, and a 10k-key differential
// against std::unordered_map as the reference semantics.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/utility.hpp"
#include "usi/hash/caches.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

/// First slot the key's probe sequence touches in a table of \p capacity.
std::size_t ProbeStartOf(const PatternKey& key, std::size_t capacity) {
  return static_cast<std::size_t>(FingerprintTable<int>::SlotHash(key)) &
         (capacity - 1);
}

/// 7-bit control tag of the key (the hash bits above the slot index).
u8 TagOf(const PatternKey& key) {
  return static_cast<u8>(FingerprintTable<int>::SlotHash(key) >> 57);
}

/// Mines fingerprints whose keys all land on probe start \p target_slot in a
/// table of \p capacity.
std::vector<PatternKey> KeysLandingOn(std::size_t target_slot,
                                      std::size_t capacity, std::size_t count) {
  std::vector<PatternKey> keys;
  for (u64 fp = 1; keys.size() < count; ++fp) {
    const PatternKey key{fp, 3};
    if (ProbeStartOf(key, capacity) == target_slot) keys.push_back(key);
  }
  return keys;
}

TEST(FingerprintTableSuite, ProbeWrapsAroundAtMaskBoundary) {
  FingerprintTable<u64> table;
  const std::size_t capacity = table.capacity();
  ASSERT_EQ(capacity, 16u);
  // Everything lands on the last slot: after one entry the rest spill past
  // the mask boundary, so lookups only succeed if group probes wrap.
  const std::vector<PatternKey> keys = KeysLandingOn(capacity - 1, capacity, 9);
  for (u64 i = 0; i < keys.size(); ++i) table.FindOrInsert(keys[i], i);
  ASSERT_EQ(table.capacity(), capacity) << "no rehash below the threshold";
  for (u64 i = 0; i < keys.size(); ++i) {
    auto* value = table.Find(keys[i]);
    ASSERT_NE(value, nullptr) << "key " << i << " lost across the wrap";
    EXPECT_EQ(*value, i);
  }
}

TEST(FingerprintTableSuite, RehashExactlyAtLoadFactorThreshold) {
  // Max load is 7/8: a capacity-16 table holds 14 entries; the 15th insert
  // crosses the threshold and must double the capacity.
  FingerprintTable<int> table;
  ASSERT_EQ(table.capacity(), 16u);
  for (u64 i = 0; i < 14; ++i) {
    table.FindOrInsert(PatternKey{i + 1, 7}, static_cast<int>(i));
    EXPECT_EQ(table.capacity(), 16u) << "premature rehash at size " << i + 1;
  }
  table.FindOrInsert(PatternKey{100, 7}, 100);
  EXPECT_EQ(table.capacity(), 32u);
  EXPECT_EQ(table.size(), 15u);
  for (u64 i = 0; i < 14; ++i) {
    ASSERT_NE(table.Find(PatternKey{i + 1, 7}), nullptr);
  }
}

TEST(FingerprintTableSuite, ReinsertingPresentKeyAtBoundaryDoesNotRehash) {
  // Regression for the pre-PR bug: FindOrInsert checked the load factor
  // before probing for the key, so re-inserting a present key at exactly
  // the boundary triggered a spurious full rehash.
  FingerprintTable<int> table;
  for (u64 i = 0; i < 14; ++i) {
    table.FindOrInsert(PatternKey{i + 1, 7}, static_cast<int>(i));
  }
  ASSERT_EQ(table.capacity(), 16u);
  for (u64 i = 0; i < 14; ++i) {
    int* value = table.FindOrInsert(PatternKey{i + 1, 7}, -1);
    EXPECT_EQ(*value, static_cast<int>(i)) << "original value kept";
  }
  EXPECT_EQ(table.capacity(), 16u)
      << "re-inserting present keys at the load boundary must not rehash";
  EXPECT_EQ(table.size(), 14u);
}

TEST(FingerprintTableSuite, ClearKeepsCapacityAndStaysUsable) {
  FingerprintTable<int> table;
  for (u64 i = 0; i < 1000; ++i) {
    table.FindOrInsert(PatternKey{i, 2}, static_cast<int>(i));
  }
  const std::size_t grown = table.capacity();
  ASSERT_GT(grown, 16u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), grown);
  for (u64 i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Find(PatternKey{i, 2}), nullptr);
  }
  table.FindOrInsert(PatternKey{5, 2}, 55);
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find(PatternKey{5, 2}), nullptr);
  EXPECT_EQ(*table.Find(PatternKey{5, 2}), 55);
}

TEST(FingerprintTableSuite, ForEachVisitsEveryEntryExactlyOnce) {
  FingerprintTable<u64> table;
  constexpr u64 kCount = 517;  // Not a power of two; spans several rehashes.
  for (u64 i = 1; i <= kCount; ++i) {
    table.FindOrInsert(PatternKey{i * 0x9E37u, static_cast<u32>(i % 31 + 1)},
                       i);
  }
  u64 visits = 0;
  u64 sum = 0;
  table.ForEach([&](const PatternKey&, u64& v) {
    ++visits;
    sum += v;
  });
  EXPECT_EQ(visits, kCount);
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);

  const auto& const_table = table;
  u64 const_visits = 0;
  const_table.ForEach([&](const PatternKey&, const u64&) { ++const_visits; });
  EXPECT_EQ(const_visits, kCount);
}

TEST(FingerprintTableSuite, TagCollisionWithEqualLowBitsDisambiguates) {
  FingerprintTable<int> table;
  const std::size_t capacity = table.capacity();
  // Mine two distinct keys agreeing on BOTH the probe start (low hash bits)
  // and the 7-bit control tag (top hash bits): the control word alone
  // cannot tell them apart, so the full key comparison must.
  PatternKey first{0, 0};
  PatternKey second{0, 0};
  bool found = false;
  for (u64 fp = 1; !found; ++fp) {
    const PatternKey candidate{fp, 9};
    if (first.len == 0) {
      first = candidate;
      continue;
    }
    if (candidate.fp != first.fp &&
        ProbeStartOf(candidate, capacity) == ProbeStartOf(first, capacity) &&
        TagOf(candidate) == TagOf(first)) {
      second = candidate;
      found = true;
    }
  }
  table.FindOrInsert(first, 1);
  table.FindOrInsert(second, 2);
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.Find(first), nullptr);
  ASSERT_NE(table.Find(second), nullptr);
  EXPECT_EQ(*table.Find(first), 1);
  EXPECT_EQ(*table.Find(second), 2);
}

TEST(FingerprintTableSuite, DifferentialAgainstUnorderedMap10kKeys) {
  FingerprintTable<u64> table;
  std::unordered_map<PatternKey, u64, PatternKeyHash> reference;
  Rng rng(0xD1FF);
  std::vector<PatternKey> inserted;
  for (u64 i = 0; i < 10'000; ++i) {
    // Narrow fp range so a good fraction of inserts repeat a present key
    // and must keep the first value, exactly like the map's emplace.
    const PatternKey key{rng.UniformBelow(6'000),
                         static_cast<u32>(rng.UniformInRange(1, 4))};
    inserted.push_back(key);
    table.FindOrInsert(key, i);
    reference.emplace(key, i);
  }
  ASSERT_EQ(table.size(), reference.size());
  for (const auto& [key, expected] : reference) {
    auto* value = table.Find(key);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, expected);
  }
  // Negative lookups: keys the reference never saw must miss.
  for (u64 trial = 0; trial < 10'000; ++trial) {
    const PatternKey key{rng.UniformBelow(6'000),
                         static_cast<u32>(rng.UniformInRange(5, 9))};
    EXPECT_EQ(table.Find(key), nullptr);
    EXPECT_FALSE(table.Contains(key));
  }
  // FindBatch answers exactly like scalar Find.
  std::vector<const u64*> batch(inserted.size());
  table.FindBatch(inserted, batch.data());
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    ASSERT_NE(batch[i], nullptr);
    EXPECT_EQ(*batch[i], reference.at(inserted[i]));
  }
}

TEST(FingerprintTableSuite, SoAFootprintBeatsPaddedAoS) {
  // The point of the layout change: ctrl/key/value arrays cost 33 bytes per
  // slot at 7/8 load vs. the old 40-byte padded slot at 3/5 load.
  struct AosSlot {
    PatternKey key;
    UtilityAccumulator value{};
    bool occupied = false;
  };
  constexpr std::size_t kEntries = 100'000;
  FingerprintTable<UtilityAccumulator> table(kEntries);
  std::size_t aos_capacity = 16;
  while (aos_capacity * 3 < kEntries * 5) aos_capacity <<= 1;
  const std::size_t aos_bytes = aos_capacity * sizeof(AosSlot);
  EXPECT_LT(table.SizeInBytes(), aos_bytes / 2)
      << "tagged SoA should be under half the padded AoS footprint";
}

}  // namespace
}  // namespace usi
