// Tests for BSL1-BSL4: answer correctness, cache semantics, and size
// ordering.

#include <memory>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/baselines.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

struct BaselineFixture {
  WeightedString ws;
  std::vector<index_t> sa;
  PrefixSumWeights psw;
  BaselineContext context;

  explicit BaselineFixture(index_t n = 300, u64 seed = 7)
      : ws(testing::RandomWeighted(n, 3, seed)),
        sa(BuildSuffixArray(ws.text())),
        psw(ws) {
    context.ws = &ws;
    context.sa = &sa;
    context.psw = &psw;
    context.cache_capacity = 16;
  }
};

class BaselineTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineTest, AnswersMatchBruteForce) {
  BaselineFixture fx;
  auto baseline = MakeBaseline(GetParam(), fx.context);
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(fx.ws.size() - len));
    const Text pattern = fx.ws.Fragment(start, len);
    const QueryResult got = baseline->Query(pattern);
    const QueryResult want =
        testing::BruteUtility(fx.ws, pattern, GlobalUtilityKind::kSum);
    ASSERT_NEAR(got.utility, want.utility, 1e-9) << baseline->Name();
  }
}

TEST_P(BaselineTest, RepeatedQueriesStayCorrect) {
  BaselineFixture fx;
  auto baseline = MakeBaseline(GetParam(), fx.context);
  const Text pattern = fx.ws.Fragment(5, 3);
  const double expected =
      testing::BruteUtility(fx.ws, pattern, GlobalUtilityKind::kSum).utility;
  for (int rep = 0; rep < 50; ++rep) {
    EXPECT_NEAR(baseline->Query(pattern).utility, expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(All, BaselineTest,
                         ::testing::Values(BaselineKind::kBsl1,
                                           BaselineKind::kBsl2,
                                           BaselineKind::kBsl3,
                                           BaselineKind::kBsl4),
                         [](const ::testing::TestParamInfo<BaselineKind>& info) {
                           switch (info.param) {
                             case BaselineKind::kBsl1: return "BSL1";
                             case BaselineKind::kBsl2: return "BSL2";
                             case BaselineKind::kBsl3: return "BSL3";
                             case BaselineKind::kBsl4: return "BSL4";
                           }
                           return "?";
                         });

TEST(Baselines, Bsl1NeverCaches) {
  BaselineFixture fx;
  auto baseline = MakeBaseline(BaselineKind::kBsl1, fx.context);
  const Text pattern = fx.ws.Fragment(0, 3);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_FALSE(baseline->Query(pattern).from_hash_table);
  }
}

TEST(Baselines, Bsl2CachesRecentQueries) {
  BaselineFixture fx;
  auto baseline = MakeBaseline(BaselineKind::kBsl2, fx.context);
  const Text pattern = fx.ws.Fragment(0, 3);
  EXPECT_FALSE(baseline->Query(pattern).from_hash_table);  // Miss, computed.
  EXPECT_TRUE(baseline->Query(pattern).from_hash_table);   // Now cached.
}

TEST(Baselines, Bsl2EvictsWhenCapacityExceeded) {
  BaselineFixture fx;
  fx.context.cache_capacity = 2;
  auto baseline = MakeBaseline(BaselineKind::kBsl2, fx.context);
  const Text a = fx.ws.Fragment(0, 4);
  const Text b = fx.ws.Fragment(10, 4);
  const Text c = fx.ws.Fragment(20, 4);
  baseline->Query(a);
  baseline->Query(b);
  baseline->Query(c);  // Evicts a (least recently used).
  EXPECT_FALSE(baseline->Query(a).from_hash_table);
}

TEST(Baselines, Bsl3CachesFrequentQueries) {
  BaselineFixture fx;
  fx.context.cache_capacity = 2;
  auto baseline = MakeBaseline(BaselineKind::kBsl3, fx.context);
  const Text hot = fx.ws.Fragment(0, 4);
  const Text cold1 = fx.ws.Fragment(10, 4);
  const Text cold2 = fx.ws.Fragment(20, 4);
  // Make `hot` popular.
  for (int rep = 0; rep < 5; ++rep) baseline->Query(hot);
  // A parade of one-off queries must not evict it.
  baseline->Query(cold1);
  baseline->Query(cold2);
  EXPECT_TRUE(baseline->Query(hot).from_hash_table);
}

TEST(Baselines, SizesAreOrderedSensibly) {
  BaselineFixture fx(2000, 9);
  fx.context.cache_capacity = 64;
  auto b1 = MakeBaseline(BaselineKind::kBsl1, fx.context);
  auto b2 = MakeBaseline(BaselineKind::kBsl2, fx.context);
  auto b3 = MakeBaseline(BaselineKind::kBsl3, fx.context);
  // BSL1 has no cache: smallest. Caching baselines add strictly more.
  EXPECT_LT(b1->SizeInBytes(), b2->SizeInBytes());
  EXPECT_LT(b1->SizeInBytes(), b3->SizeInBytes());
  // All are dominated by SA + PSW (within ~25% of each other), as in
  // Fig. 6k-m where the baselines' index sizes nearly coincide.
  EXPECT_LT(static_cast<double>(b3->SizeInBytes()),
            1.25 * static_cast<double>(b1->SizeInBytes()));
}

TEST(Baselines, AllFourAgreeOnAWorkload) {
  BaselineFixture fx(1000, 11);
  std::vector<std::unique_ptr<UsiBaseline>> engines;
  for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                    BaselineKind::kBsl3, BaselineKind::kBsl4}) {
    engines.push_back(MakeBaseline(kind, fx.context));
  }
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 5));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(fx.ws.size() - len));
    const Text pattern = fx.ws.Fragment(start, len);
    const double expected = engines[0]->Query(pattern).utility;
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_NEAR(engines[e]->Query(pattern).utility, expected, 1e-9)
          << engines[e]->Name();
    }
  }
}

}  // namespace
}  // namespace usi
