// Index format v3 (mmap-backed) behavioral equivalence: a v3 mapped index
// and a v2 heap-loaded index must be indistinguishable through the whole
// QueryEngine contract — same answers bit-for-bit, same hash-table hits —
// and the v3 image must be byte-deterministic. Also covers the non-owning
// view modes the mapped path is built on (FingerprintTable, RankBitVector)
// and the UsiMultiService instant-start registration.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/util/bit_vector.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

/// Fixture: one built index saved in both formats, loaded back both ways.
class MappedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = testing::RandomWeighted(1500, 4, 2024);
    UsiOptions options;
    options.k = 120;
    built_ = std::make_unique<UsiIndex>(ws_, options);
    v2_path_ = ::testing::TempDir() + "usi_mapped_test_v2.bin";
    v3_path_ = ::testing::TempDir() + "usi_mapped_test_v3.bin";
    ASSERT_TRUE(built_->SaveToFile(v2_path_, IndexFileFormat::kV2Heap));
    ASSERT_TRUE(built_->SaveToFile(v3_path_, IndexFileFormat::kV3Mapped));
    v2_ = UsiIndex::LoadFromFile(ws_, v2_path_);
    v3_ = UsiIndex::OpenMapped(ws_, v3_path_);
    ASSERT_NE(v2_, nullptr);
    ASSERT_NE(v3_, nullptr);
    ASSERT_FALSE(v2_->IsMapped());
    ASSERT_TRUE(v3_->IsMapped());
  }

  void TearDown() override {
    std::remove(v2_path_.c_str());
    std::remove(v3_path_.c_str());
  }

  /// Differential pattern set: every fragment start/length combination on a
  /// stride (hits and misses, short and long), plus patterns absent from
  /// the text.
  std::vector<Text> DifferentialPatterns() const {
    std::vector<Text> patterns;
    for (index_t i = 0; i + 12 <= ws_.size(); i += 31) {
      for (index_t len : {1, 2, 3, 5, 8, 12}) {
        patterns.push_back(ws_.Fragment(i, len));
      }
    }
    patterns.push_back(testing::T("zzzzz"));  // Symbols outside sigma.
    patterns.push_back(Text{});
    Text too_long(ws_.size() + 1, Symbol{1});
    patterns.push_back(std::move(too_long));
    return patterns;
  }

  static void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                              const char* what) {
    // Byte-identical, not approximately equal: both paths aggregate the
    // same PSW doubles in the same order, so even the floating-point
    // result must match exactly.
    EXPECT_EQ(a.utility, b.utility) << what;
    EXPECT_EQ(a.occurrences, b.occurrences) << what;
    EXPECT_EQ(a.from_hash_table, b.from_hash_table) << what;
  }

  WeightedString ws_;
  std::unique_ptr<UsiIndex> built_;
  std::unique_ptr<UsiIndex> v2_;
  std::unique_ptr<UsiIndex> v3_;
  std::string v2_path_;
  std::string v3_path_;
};

TEST_F(MappedIndexTest, QueryParityAcrossFormats) {
  for (const Text& pattern : DifferentialPatterns()) {
    const QueryResult from_built = built_->Query(pattern);
    const QueryResult from_v2 = v2_->Query(pattern);
    const QueryResult from_v3 = v3_->Query(pattern);
    ExpectIdentical(from_v2, from_v3, "v2 vs v3");
    ExpectIdentical(from_built, from_v3, "built vs v3");
  }
}

TEST_F(MappedIndexTest, QueryBatchParityAcrossFormats) {
  const std::vector<Text> patterns = DifferentialPatterns();
  std::vector<QueryResult> from_v2(patterns.size());
  std::vector<QueryResult> from_v3(patterns.size());
  v2_->PrepareBatch(patterns);
  v3_->PrepareBatch(patterns);
  v2_->QueryBatch(patterns, std::span<QueryResult>(from_v2), nullptr);
  v3_->QueryBatch(patterns, std::span<QueryResult>(from_v3), nullptr);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    ExpectIdentical(from_v2[i], from_v3[i], "batch v2 vs v3");
  }
}

TEST_F(MappedIndexTest, QueryAllWindowsParityAcrossFormats) {
  const Text document = ws_.Fragment(50, 200);
  constexpr index_t kWindow = 6;
  const std::size_t windows = document.size() - kWindow + 1;
  std::vector<QueryResult> from_v2(windows);
  std::vector<QueryResult> from_v3(windows);
  v2_->QueryAllWindows(document, kWindow, std::span<QueryResult>(from_v2));
  v3_->QueryAllWindows(document, kWindow, std::span<QueryResult>(from_v3));
  for (std::size_t i = 0; i < windows; ++i) {
    ExpectIdentical(from_v2[i], from_v3[i], "windows v2 vs v3");
  }
}

TEST_F(MappedIndexTest, MappedIndexMatchesBruteForce) {
  // Not just format parity: the mapped path must agree with first
  // principles, so a bug shared by both loaders cannot hide.
  for (index_t i = 0; i + 5 <= ws_.size(); i += 97) {
    const Text pattern = ws_.Fragment(i, 5);
    const QueryResult expected =
        testing::BruteUtility(ws_, pattern, GlobalUtilityKind::kSum);
    const QueryResult got = v3_->Query(pattern);
    EXPECT_EQ(got.occurrences, expected.occurrences);
    EXPECT_NEAR(got.utility, expected.utility, 1e-9);
  }
}

TEST_F(MappedIndexTest, StructuralAccessorsAgree) {
  ASSERT_EQ(v2_->sa().size(), v3_->sa().size());
  EXPECT_TRUE(std::equal(v2_->sa().begin(), v2_->sa().end(),
                         v3_->sa().begin()));
  EXPECT_EQ(v2_->HashTableEntries(), v3_->HashTableEntries());
  EXPECT_EQ(std::string(v2_->Name()), std::string(v3_->Name()));
  EXPECT_EQ(v2_->build_info().k, v3_->build_info().k);
  EXPECT_EQ(v2_->build_info().tau_k, v3_->build_info().tau_k);
  EXPECT_EQ(v2_->build_info().num_lengths, v3_->build_info().num_lengths);
}

TEST_F(MappedIndexTest, V3BytesAreDeterministic) {
  // The v3 image is a pure function of index content: saving again — from
  // the original, from a v2 reload, and from the mapped index itself —
  // must reproduce identical bytes.
  const std::vector<char> first = ReadAll(v3_path_);
  const std::string again = ::testing::TempDir() + "usi_mapped_test_v3b.bin";
  ASSERT_TRUE(built_->SaveToFile(again, IndexFileFormat::kV3Mapped));
  EXPECT_EQ(ReadAll(again), first) << "rewrite from built index";
  ASSERT_TRUE(v2_->SaveToFile(again, IndexFileFormat::kV3Mapped));
  EXPECT_EQ(ReadAll(again), first) << "rewrite from v2-loaded index";
  ASSERT_TRUE(v3_->SaveToFile(again, IndexFileFormat::kV3Mapped));
  EXPECT_EQ(ReadAll(again), first) << "rewrite from mapped index";
  std::remove(again.c_str());
}

TEST_F(MappedIndexTest, ConversionRoundTripsBothWays) {
  const std::string converted = ::testing::TempDir() + "usi_mapped_conv.bin";
  // v3 -> v2: a mapped index re-serializes through the portable format...
  ASSERT_TRUE(v3_->SaveToFile(converted, IndexFileFormat::kV2Heap));
  EXPECT_EQ(ReadAll(converted), ReadAll(v2_path_))
      << "v3->v2 must reproduce the original v2 bytes";
  // ...and v2 -> v3 lands back on the canonical mapped image.
  ASSERT_TRUE(v2_->SaveToFile(converted, IndexFileFormat::kV3Mapped));
  EXPECT_EQ(ReadAll(converted), ReadAll(v3_path_))
      << "v2->v3 must reproduce the original v3 bytes";
  std::remove(converted.c_str());
}

TEST(FingerprintTableViewTest, AdoptedViewAnswersLikeTheOwner) {
  using Table = FingerprintTable<UtilityAccumulator>;
  Rng rng(99);
  Table owner(500);
  std::vector<PatternKey> keys;
  for (int i = 0; i < 500; ++i) {
    PatternKey key{rng.Next(), static_cast<u32>(1 + rng.UniformBelow(64))};
    UtilityAccumulator value;
    value.value = static_cast<double>(i) * 0.25;
    value.count = static_cast<index_t>(i + 1);
    owner.FindOrInsert(key, value);
    keys.push_back(key);
  }

  Table adopted;
  adopted.AdoptView(owner.ctrl_bytes().data(), owner.slots().data(),
                    owner.capacity(), owner.size());
  const Table& view = adopted;  // Views expose only the const read surface.
  ASSERT_FALSE(view.OwnsStorage());
  EXPECT_EQ(view.size(), owner.size());
  EXPECT_EQ(view.capacity(), owner.capacity());

  // Every present key answers identically; absent keys miss in both.
  for (const PatternKey& key : keys) {
    const UtilityAccumulator* a = owner.Find(key);
    const UtilityAccumulator* b = view.Find(key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->value, b->value);
    EXPECT_EQ(a->count, b->count);
  }
  for (int i = 0; i < 200; ++i) {
    const PatternKey absent{rng.Next(), static_cast<u32>(1000 + i)};
    EXPECT_EQ(owner.Find(absent) == nullptr, view.Find(absent) == nullptr);
  }

  // The pipelined batch path reads through the same view pointers.
  std::vector<const UtilityAccumulator*> from_view(keys.size());
  view.VisitBatch(std::span<const PatternKey>(keys),
                  [&](std::size_t i, const UtilityAccumulator* v) {
                    from_view[i] = v;
                  });
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(from_view[i], nullptr);
    EXPECT_EQ(from_view[i]->count, owner.Find(keys[i])->count);
  }

  // Enumeration agrees on the full content.
  std::size_t visited = 0;
  view.ForEach([&](const PatternKey& key, const UtilityAccumulator& value) {
    const UtilityAccumulator* expected = owner.Find(key);
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(expected->value, value.value);
    ++visited;
  });
  EXPECT_EQ(visited, owner.size());
}

TEST(RankBitVectorViewTest, RawViewAnswersLikeTheOwner) {
  constexpr std::size_t kBits = 5000;
  Rng rng(123);
  BitVector bits(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    if (rng.UniformBelow(3) == 0) bits.Set(i);
  }
  const RankBitVector owner(bits, kBits);
  const RankBitVector view = RankBitVector::FromRaw(
      owner.words_data(), owner.block_rank_data(), kBits);
  ASSERT_FALSE(view.OwnsStorage());
  EXPECT_EQ(view.Ones(), owner.Ones());
  EXPECT_EQ(view.size(), owner.size());
  for (std::size_t i = 0; i <= kBits; ++i) {
    ASSERT_EQ(view.Rank1(i), owner.Rank1(i)) << "rank at " << i;
  }
  for (std::size_t i = 0; i < kBits; ++i) {
    ASSERT_EQ(view.Test(i), owner.Test(i)) << "bit " << i;
  }
}

TEST(MultiServiceInstantStartTest, RegisterTextFromFileServesImmediately) {
  const WeightedString original = testing::RandomWeighted(1200, 4, 555);
  UsiOptions options;
  options.k = 80;
  const UsiIndex index(original, options);
  const std::string path =
      ::testing::TempDir() + "usi_instant_start_v3.bin";
  ASSERT_TRUE(index.SaveToFile(path, IndexFileFormat::kV3Mapped));

  UsiMultiServiceOptions service_options;
  service_options.threads = 2;
  UsiMultiService service(service_options);

  // The mapped generation serves as soon as registration returns — no
  // WaitForText needed, that is the instant-start contract.
  WeightedString copy = original;
  EXPECT_EQ(service.RegisterTextFromFile("corpus", std::move(copy), path), 1u);
  EXPECT_TRUE(service.HasText("corpus"));
  for (index_t i = 0; i + 4 <= original.size(); i += 101) {
    const Text pattern = original.Fragment(i, 4);
    QueryResult got;
    ASSERT_EQ(service.Query("corpus", pattern, got), ServeStatus::kOk);
    const QueryResult expected = index.Query(pattern);
    EXPECT_EQ(got.utility, expected.utility);
    EXPECT_EQ(got.occurrences, expected.occurrences);
  }
  const auto stats = service.StatsFor("corpus");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_EQ(stats->builds_completed, 1u);

  // A later rebuild supersedes the mapped generation through the normal
  // generational path.
  WeightedString updated = testing::RandomWeighted(900, 4, 556);
  EXPECT_EQ(service.UpdateText("corpus", std::move(updated)), 2u);
  ASSERT_EQ(service.WaitForText("corpus"), BuildState::kReady);
  EXPECT_EQ(service.StatsFor("corpus")->generation, 2u);
  std::remove(path.c_str());
}

TEST(MultiServiceInstantStartTest, BadFileRegistersNothing) {
  UsiMultiService service(UsiMultiServiceOptions{});
  WeightedString ws = testing::RandomWeighted(100, 3, 9);
  EXPECT_EQ(service.RegisterTextFromFile(
                "ghost", std::move(ws),
                ::testing::TempDir() + "usi_no_such_v3_file.bin"),
            0u);
  EXPECT_FALSE(service.HasText("ghost"));

  // A v2 file is not OpenMapped-able either: instant start requires the
  // mapped format, and the failure must leave the registry untouched.
  const WeightedString original = testing::RandomWeighted(300, 3, 10);
  const UsiIndex index(original, UsiOptions{});
  const std::string v2_path = ::testing::TempDir() + "usi_instant_v2.bin";
  ASSERT_TRUE(index.SaveToFile(v2_path, IndexFileFormat::kV2Heap));
  WeightedString copy = original;
  EXPECT_EQ(service.RegisterTextFromFile("corpus", std::move(copy), v2_path),
            0u);
  EXPECT_FALSE(service.HasText("corpus"));
  std::remove(v2_path.c_str());
}

}  // namespace
}  // namespace usi
