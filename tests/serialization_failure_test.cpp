// Serialization failure modes, across both on-disk formats: the loaders
// must return nullptr — never crash, never return a half-initialized index —
// on truncated files, corrupted headers/directories, trailing bytes, and a
// weighted string whose length does not match the saved index. The
// crash-injection suite at the bottom SIGKILLs real saves mid-flight and
// requires the atomic publish protocol to keep the published path loadable.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "test_helpers.hpp"
#include "usi/core/index_format.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/util/binary_io.hpp"
#include "usi/util/mapped_file.hpp"

namespace usi {
namespace {

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fixture: one saved index plus its raw bytes, shared by every failure case.
class SerializationFailureTest : public ::testing::Test {
 protected:
  // Mirrors the SaveToFile fixed header: magic u32 + version u32 + n u32 +
  // kind u8 + miner u8 + hasher base u64 + k u64 + tau_k u32 +
  // num_lengths u32. The suffix-array vector (u64 length + payload) follows
  // immediately.
  static constexpr std::size_t kKindOffset = 4 + 4 + 4;
  static constexpr std::size_t kMinerOffset = kKindOffset + 1;
  static constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 1 + 1 + 8 + 8 + 4 + 4;
  static constexpr std::size_t kSaLengthOffset = kHeaderBytes;

  std::size_t EntriesLengthOffset() const {
    return kSaLengthOffset + 8 + ws_.size() * sizeof(index_t);
  }

  void SetUp() override {
    ws_ = testing::RandomWeighted(200, 3, 99);
    UsiOptions options;
    options.k = 25;
    index_ = std::make_unique<UsiIndex>(ws_, options);
    path_ = ::testing::TempDir() + "usi_serialization_good.bin";
    mutated_path_ = ::testing::TempDir() + "usi_serialization_bad.bin";
    ASSERT_TRUE(index_->SaveToFile(path_));
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 16u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path_.c_str());
  }

  WeightedString ws_;
  std::unique_ptr<UsiIndex> index_;
  std::string path_;
  std::string mutated_path_;
  std::vector<char> bytes_;
};

TEST_F(SerializationFailureTest, IntactFileRoundTrips) {
  const std::unique_ptr<UsiIndex> restored = UsiIndex::LoadFromFile(ws_, path_);
  ASSERT_NE(restored, nullptr);
  for (index_t i = 0; i + 4 <= ws_.size(); i += 7) {
    const Text pattern = ws_.Fragment(i, 4);
    EXPECT_EQ(restored->Query(pattern).occurrences,
              index_->Query(pattern).occurrences);
    EXPECT_NEAR(restored->Query(pattern).utility, index_->Query(pattern).utility,
                1e-12);
  }
}

TEST_F(SerializationFailureTest, MissingFileReturnsNull) {
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, ::testing::TempDir() +
                                            "usi_no_such_index.bin"),
            nullptr);
}

TEST_F(SerializationFailureTest, EveryTruncationReturnsNull) {
  // Every proper prefix of the file must be rejected: each cut lands inside a
  // different field (magic, header scalar, vector length, vector payload).
  for (std::size_t cut = 0; cut < bytes_.size(); ++cut) {
    WriteAll(mutated_path_,
             std::vector<char>(bytes_.begin(),
                               bytes_.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "truncation at byte " << cut << " of " << bytes_.size();
  }
}

TEST_F(SerializationFailureTest, CorruptedMagicReturnsNull) {
  for (std::size_t byte = 0; byte < 4; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x5A);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "magic byte " << byte;
  }
}

TEST_F(SerializationFailureTest, UnknownVersionReturnsNull) {
  // The version field is the u32 after the magic.
  for (std::size_t byte = 4; byte < 8; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0xFF);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "version byte " << byte;
  }
}

TEST_F(SerializationFailureTest, CorruptedTextLengthReturnsNull) {
  // The text-length field is the u32 after magic + version; any change makes
  // it disagree with the weighted string being loaded against.
  for (std::size_t byte = 8; byte < 12; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x01);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "length byte " << byte;
  }
}

TEST_F(SerializationFailureTest, InvalidUtilityKindReturnsNull) {
  // Out-of-range utility-kind values must be rejected at load, not carried
  // into query dispatch where they would silently answer U(P) = 0.
  for (const u8 bad_kind : {u8{4}, u8{0x7F}, u8{0xFF}}) {
    std::vector<char> mutated = bytes_;
    mutated[kKindOffset] = static_cast<char>(bad_kind);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "kind byte " << static_cast<int>(bad_kind);
  }
}

TEST_F(SerializationFailureTest, InvalidMinerReturnsNull) {
  // Out-of-range miner values (neither UET nor UAT) must be rejected so a
  // loaded index never misreports its Name().
  for (const u8 bad_miner : {u8{2}, u8{0x7F}, u8{0xFF}}) {
    std::vector<char> mutated = bytes_;
    mutated[kMinerOffset] = static_cast<char>(bad_miner);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "miner byte " << static_cast<int>(bad_miner);
  }
}

TEST_F(SerializationFailureTest, InvalidHasherBaseReturnsNull) {
  // The Karp-Rabin base (u64 after the kind + miner bytes) must be
  // range-checked at load; FromBase aborts on out-of-range values, so an
  // unvalidated field would crash instead of returning nullptr. Cover both
  // sides of the valid range: all-0xFF (>= the Mersenne prime) and all-zero
  // (< 257).
  const std::size_t base_offset = kMinerOffset + 1;
  for (const u8 fill : {u8{0xFF}, u8{0x00}}) {
    std::vector<char> mutated = bytes_;
    for (std::size_t i = 0; i < 8; ++i) {
      mutated[base_offset + i] = static_cast<char>(fill);
    }
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "base fill 0x" << std::hex << static_cast<int>(fill);
  }
}

TEST_F(SerializationFailureTest, MismatchedWeightedStringReturnsNull) {
  const WeightedString shorter = ws_.Prefix(ws_.size() - 1);
  EXPECT_EQ(UsiIndex::LoadFromFile(shorter, path_), nullptr);
  const WeightedString longer = testing::RandomWeighted(ws_.size() + 1, 3, 99);
  EXPECT_EQ(UsiIndex::LoadFromFile(longer, path_), nullptr);
  const WeightedString empty;
  EXPECT_EQ(UsiIndex::LoadFromFile(empty, path_), nullptr);
}

TEST_F(SerializationFailureTest, HugeVectorLengthReturnsNull) {
  // Overwrite the suffix-array length (the u64 straight after the fixed
  // header) with an absurd value: the reader's allocation guard must trip
  // instead of attempting a multi-terabyte resize.
  ASSERT_LT(kSaLengthOffset + 8, bytes_.size());
  std::vector<char> mutated = bytes_;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] = static_cast<char>(0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, OversizedVectorLengthBelowCapReturnsNull) {
  // A corrupted length below the reader's absolute element cap but far
  // beyond what the file holds (2^38 elements ~ 1 TB) must be rejected by
  // the remaining-bytes bound, not attempted as an allocation.
  std::vector<char> mutated = bytes_;
  const u64 huge = u64{1} << 38;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);

  // An off-by-one SA length (n + 1) is rejected too — by LoadFromFile's
  // sa_.size() == ws.size() consistency check, since the bytes of the
  // entries section that follows can still satisfy the read.
  mutated = bytes_;
  const u64 off_by_one = ws_.size() + 1;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] =
        static_cast<char>((off_by_one >> (8 * i)) & 0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, OutOfRangeSaElementReturnsNull) {
  // A corrupted SA payload value must be rejected at load; otherwise a query
  // would use it as a text position and read PSW out of bounds.
  for (const u32 bad_pos : {static_cast<u32>(ws_.size()), 0xFFFFFFF0u}) {
    std::vector<char> mutated = bytes_;
    const std::size_t first_element = kSaLengthOffset + 8;
    std::memcpy(mutated.data() + first_element, &bad_pos, sizeof(bad_pos));
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "sa[0] = " << bad_pos;
  }
}

TEST_F(SerializationFailureTest, EntriesLengthBeyondFileReturnsNull) {
  // The hash-table entries vector is the file's last section, so inflating
  // its length by one exercises exactly the remaining-bytes bound: nothing
  // after it can absorb the extra element.
  const std::size_t entries_length_offset = EntriesLengthOffset();
  ASSERT_LT(entries_length_offset + 8, bytes_.size());
  u64 entries = 0;
  std::memcpy(&entries, bytes_.data() + entries_length_offset, 8);
  ASSERT_GT(entries, 0u);
  std::vector<char> mutated = bytes_;
  const u64 inflated = entries + 1;
  std::memcpy(mutated.data() + entries_length_offset, &inflated, 8);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, TrailingGarbageReturnsNull) {
  // Bytes after the entry vector are not forward-compat slack — the vector
  // is the format's last payload, so anything following it means a
  // concatenated, extended, or doctored file. The exact-consumption check
  // must reject it rather than serve whatever prefix happened to parse.
  for (const std::size_t extra : {std::size_t{1}, std::size_t{64}}) {
    std::vector<char> mutated = bytes_;
    mutated.insert(mutated.end(), extra, static_cast<char>(0xAB));
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << extra << " trailing bytes";
  }
}

TEST_F(SerializationFailureTest, SaveToUnwritablePathReturnsFalse) {
  // The staging sibling cannot even be created; the failure must be
  // reported, and no destination file appear.
  const std::string bad = "/nonexistent-usi-dir/index.bin";
  EXPECT_FALSE(index_->SaveToFile(bad));
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, bad), nullptr);
}

TEST_F(SerializationFailureTest, SaveLeavesNoStagingSibling) {
  // A successful save must fully retire its `path.tmp.<pid>` staging file.
  ASSERT_TRUE(index_->SaveToFile(path_));
  EXPECT_EQ(RemoveStaleTemps(path_), 0);
  ASSERT_TRUE(index_->SaveToFile(path_, IndexFileFormat::kV3Mapped));
  EXPECT_EQ(RemoveStaleTemps(path_), 0);
  // Restore the v2 fixture bytes for other asserts in this process.
  WriteAll(path_, bytes_);
}

TEST_F(SerializationFailureTest, StaleTempRecoverySweep) {
  // A crashed writer leaves only `path.tmp.<pid>` siblings; the published
  // file still loads, and RemoveStaleTemps clears exactly the leftovers.
  const std::string stale1 = path_ + ".tmp.12345";
  const std::string stale2 = path_ + ".tmp.99999";
  WriteAll(stale1, std::vector<char>(100, static_cast<char>(0x00)));
  WriteAll(stale2, std::vector<char>(bytes_.begin(), bytes_.begin() + 20));
  EXPECT_NE(UsiIndex::LoadFromFile(ws_, path_), nullptr);
  EXPECT_EQ(RemoveStaleTemps(path_), 2);
  EXPECT_EQ(RemoveStaleTemps(path_), 0);
  std::ifstream gone1(stale1), gone2(stale2);
  EXPECT_FALSE(gone1.good());
  EXPECT_FALSE(gone2.good());
  // The published file itself is never touched by the sweep.
  EXPECT_NE(UsiIndex::LoadFromFile(ws_, path_), nullptr);
}

TEST_F(SerializationFailureTest, WriterCloseReportsEnospc) {
  // stdio buffers writes, so an out-of-space condition commonly surfaces
  // only at the final flush — exactly what Close() exists to observe.
  // /dev/full fails every flush with ENOSPC; skip where it is absent.
  if (!std::ofstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  BinaryWriter writer("/dev/full");
  ASSERT_TRUE(writer.ok());
  const std::vector<char> payload(256, 'x');
  writer.WriteRaw(payload.data(), payload.size());
  EXPECT_FALSE(writer.Close());
  EXPECT_FALSE(writer.ok());
}

/// v3 (mapped) failure modes: OpenMapped must return nullptr — never crash,
/// never serve a half-validated mapping — on truncated or extended files,
/// corrupted headers and section directories, and payload corruption under
/// deep verification.
class SerializationFailureV3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = testing::RandomWeighted(300, 4, 77);
    UsiOptions options;
    options.k = 30;
    index_ = std::make_unique<UsiIndex>(ws_, options);
    path_ = ::testing::TempDir() + "usi_serialization_v3_good.bin";
    mutated_path_ = ::testing::TempDir() + "usi_serialization_v3_bad.bin";
    ASSERT_TRUE(index_->SaveToFile(path_, IndexFileFormat::kV3Mapped));
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), sizeof(format_v3::FileHeader));
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path_.c_str());
  }

  /// Re-seals a mutated header so field-validation paths BEHIND the
  /// checksum can be exercised individually.
  static void ResealHeaderChecksum(std::vector<char>* bytes) {
    const std::size_t checksum_offset =
        offsetof(format_v3::FileHeader, header_checksum);
    const u64 checksum = Checksum64(bytes->data(), checksum_offset);
    std::memcpy(bytes->data() + checksum_offset, &checksum, sizeof(checksum));
  }

  WeightedString ws_;
  std::unique_ptr<UsiIndex> index_;
  std::string path_;
  std::string mutated_path_;
  std::vector<char> bytes_;
};

TEST_F(SerializationFailureV3Test, IntactFileOpensAndDispatches) {
  // Both the explicit opener and the magic-dispatching loader must serve
  // the mapped image, including under deep verification.
  std::unique_ptr<UsiIndex> opened = UsiIndex::OpenMapped(ws_, path_);
  ASSERT_NE(opened, nullptr);
  EXPECT_TRUE(opened->IsMapped());
  UsiIndex::OpenOptions deep;
  deep.deep_verify = true;
  EXPECT_NE(UsiIndex::OpenMapped(ws_, path_, deep), nullptr);
  std::unique_ptr<UsiIndex> dispatched = UsiIndex::LoadFromFile(ws_, path_);
  ASSERT_NE(dispatched, nullptr);
  EXPECT_TRUE(dispatched->IsMapped());
}

TEST_F(SerializationFailureV3Test, EveryTruncationReturnsNull) {
  // Every proper prefix must be rejected: cuts land inside the header, the
  // padding, and every section — including exactly on each section
  // boundary, where all earlier sections are complete.
  for (std::size_t cut = 0; cut < bytes_.size(); ++cut) {
    WriteAll(mutated_path_,
             std::vector<char>(bytes_.begin(),
                               bytes_.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr)
        << "truncation at byte " << cut << " of " << bytes_.size();
  }
}

TEST_F(SerializationFailureV3Test, ExtendedFileReturnsNull) {
  // file_bytes pins the exact size: a complete image with bytes appended is
  // not this index's file any more.
  for (const std::size_t extra : {std::size_t{1}, std::size_t{4096}}) {
    std::vector<char> mutated = bytes_;
    mutated.insert(mutated.end(), extra, static_cast<char>(0xCD));
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr)
        << extra << " trailing bytes";
  }
}

TEST_F(SerializationFailureV3Test, EveryHeaderByteFlipReturnsNull) {
  // The header checksum covers every byte before it — magic, scalars, and
  // the whole section directory (offsets, lengths, section checksums). A
  // flip anywhere must reject the file in O(1). Bytes that flip magic or
  // version fail those checks first; everything else falls to the checksum.
  const std::size_t checksum_offset =
      offsetof(format_v3::FileHeader, header_checksum);
  for (std::size_t byte = 0; byte < sizeof(format_v3::FileHeader); ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x40);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr)
        << "header byte " << byte
        << (byte >= checksum_offset ? " (checksum field)" : "");
  }
}

TEST_F(SerializationFailureV3Test, ResealedBadDirectoryReturnsNull) {
  // Field validation must hold even when an attacker (or a very unlucky
  // disk) produces a consistent checksum: corrupt one directory offset and
  // re-seal the header — the layout checks, not the checksum, reject it.
  format_v3::FileHeader header;
  std::memcpy(&header, bytes_.data(), sizeof(header));
  std::vector<char> mutated = bytes_;
  format_v3::FileHeader bad = header;
  bad.sections[1].offset += format_v3::kSectionAlign;
  std::memcpy(mutated.data(), &bad, sizeof(bad));
  ResealHeaderChecksum(&mutated);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr);

  // A capacity that is not a power of two, with lengths forged to match,
  // must also fail — the table invariants are load checks, not asserts.
  mutated = bytes_;
  bad = header;
  bad.table_capacity = header.table_capacity + 1;
  std::memcpy(mutated.data(), &bad, sizeof(bad));
  ResealHeaderChecksum(&mutated);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr);

  // A slot layout from a different build (slot_bytes mismatch) is a host
  // mismatch, not a checksum problem.
  mutated = bytes_;
  bad = header;
  bad.slot_bytes = header.slot_bytes + 8;
  std::memcpy(mutated.data(), &bad, sizeof(bad));
  ResealHeaderChecksum(&mutated);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureV3Test, MismatchedWeightedStringReturnsNull) {
  const WeightedString shorter = ws_.Prefix(ws_.size() - 1);
  EXPECT_EQ(UsiIndex::OpenMapped(shorter, path_), nullptr);
  const WeightedString longer = testing::RandomWeighted(ws_.size() + 1, 4, 7);
  EXPECT_EQ(UsiIndex::OpenMapped(longer, path_), nullptr);
}

TEST_F(SerializationFailureV3Test, PayloadCorruptionCaughtByDeepVerify) {
  format_v3::FileHeader header;
  std::memcpy(&header, bytes_.data(), sizeof(header));

  // Flip one byte in the middle of each section payload. The shallow open
  // accepts it (payloads are not read at open — that is the near-zero-open
  // contract; crash safety comes from atomic publish, not checksums), but
  // deep_verify must reject every one.
  UsiIndex::OpenOptions deep;
  deep.deep_verify = true;
  for (std::size_t s = 0; s < format_v3::kNumSections; ++s) {
    std::vector<char> mutated = bytes_;
    const std::size_t target =
        header.sections[s].offset + header.sections[s].length / 2;
    mutated[target] = static_cast<char>(mutated[target] ^ 0x10);
    WriteAll(mutated_path_, mutated);
    EXPECT_NE(UsiIndex::OpenMapped(ws_, mutated_path_), nullptr)
        << "shallow open, section " << s;
    EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_, deep), nullptr)
        << "deep verify, section " << s;
  }

  // An out-of-range SA position whose section checksum has been re-forged
  // is caught by deep_verify's range scan, the last line of defense before
  // queries would read PSW out of bounds.
  std::vector<char> mutated = bytes_;
  const u32 bad_pos = static_cast<u32>(ws_.size());
  std::memcpy(mutated.data() + header.sections[0].offset, &bad_pos,
              sizeof(bad_pos));
  format_v3::FileHeader bad = header;
  bad.sections[0].checksum = Checksum64(
      mutated.data() + header.sections[0].offset, header.sections[0].length);
  std::memcpy(mutated.data(), &bad, sizeof(bad));
  ResealHeaderChecksum(&mutated);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::OpenMapped(ws_, mutated_path_, deep), nullptr);
}

/// Crash injection: SIGKILL a child process mid-save, at shifting points of
/// the write/publish window, and require the published path to always hold
/// a loadable image — the atomic-publish invariant, end to end.
class CrashInjectionTest : public ::testing::TestWithParam<IndexFileFormat> {};

TEST_P(CrashInjectionTest, KilledSaveNeverCorruptsPublishedFile) {
  const IndexFileFormat format = GetParam();
  const WeightedString ws = testing::RandomWeighted(2000, 4, 13);
  UsiOptions options;
  options.k = 100;
  const UsiIndex index(ws, options);
  const std::string path =
      ::testing::TempDir() + "usi_crash_injection_" +
      (format == IndexFileFormat::kV3Mapped ? "v3" : "v2") + ".bin";
  std::remove(path.c_str());

  // Establish a good generation first: every post-crash check below then
  // asserts the strong form of the invariant (the path always loads, not
  // merely "absent or loads").
  ASSERT_TRUE(index.SaveToFile(path, format));
  ASSERT_NE(UsiIndex::LoadFromFile(ws, path), nullptr);

  // Kill points sweep the save duration: early kills land mid-staging,
  // late ones straddle fsync/rename. The child re-saves in a tight loop so
  // any sleep lands inside SOME save, whatever this machine's speed.
  for (int round = 0; round < 10; ++round) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      for (;;) {
        index.SaveToFile(path, format);  // Loops until killed.
      }
    }
    ::usleep(static_cast<useconds_t>(200 + round * 700));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    const std::unique_ptr<UsiIndex> survivor = UsiIndex::LoadFromFile(ws, path);
    ASSERT_NE(survivor, nullptr) << "corrupt image after kill round " << round;
    const Text pattern = ws.Fragment(7, 5);
    EXPECT_EQ(survivor->Query(pattern).occurrences,
              index.Query(pattern).occurrences);
    // A killed child may leave its own staging sibling; that is the
    // documented crash residue, swept at startup, never the published file.
    RemoveStaleTemps(path);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Formats, CrashInjectionTest,
                         ::testing::Values(IndexFileFormat::kV2Heap,
                                           IndexFileFormat::kV3Mapped));

}  // namespace
}  // namespace usi
