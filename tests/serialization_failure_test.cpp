// Serialization failure modes: UsiIndex::LoadFromFile must return nullptr —
// never crash, never return a half-initialized index — on truncated files,
// corrupted magic/version/length headers, and a weighted string whose length
// does not match the saved index.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"

namespace usi {
namespace {

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fixture: one saved index plus its raw bytes, shared by every failure case.
class SerializationFailureTest : public ::testing::Test {
 protected:
  // Mirrors the SaveToFile fixed header: magic u32 + version u32 + n u32 +
  // kind u8 + miner u8 + hasher base u64 + k u64 + tau_k u32 +
  // num_lengths u32. The suffix-array vector (u64 length + payload) follows
  // immediately.
  static constexpr std::size_t kKindOffset = 4 + 4 + 4;
  static constexpr std::size_t kMinerOffset = kKindOffset + 1;
  static constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 1 + 1 + 8 + 8 + 4 + 4;
  static constexpr std::size_t kSaLengthOffset = kHeaderBytes;

  std::size_t EntriesLengthOffset() const {
    return kSaLengthOffset + 8 + ws_.size() * sizeof(index_t);
  }

  void SetUp() override {
    ws_ = testing::RandomWeighted(200, 3, 99);
    UsiOptions options;
    options.k = 25;
    index_ = std::make_unique<UsiIndex>(ws_, options);
    path_ = ::testing::TempDir() + "usi_serialization_good.bin";
    mutated_path_ = ::testing::TempDir() + "usi_serialization_bad.bin";
    ASSERT_TRUE(index_->SaveToFile(path_));
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 16u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path_.c_str());
  }

  WeightedString ws_;
  std::unique_ptr<UsiIndex> index_;
  std::string path_;
  std::string mutated_path_;
  std::vector<char> bytes_;
};

TEST_F(SerializationFailureTest, IntactFileRoundTrips) {
  const std::unique_ptr<UsiIndex> restored = UsiIndex::LoadFromFile(ws_, path_);
  ASSERT_NE(restored, nullptr);
  for (index_t i = 0; i + 4 <= ws_.size(); i += 7) {
    const Text pattern = ws_.Fragment(i, 4);
    EXPECT_EQ(restored->Query(pattern).occurrences,
              index_->Query(pattern).occurrences);
    EXPECT_NEAR(restored->Query(pattern).utility, index_->Query(pattern).utility,
                1e-12);
  }
}

TEST_F(SerializationFailureTest, MissingFileReturnsNull) {
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, ::testing::TempDir() +
                                            "usi_no_such_index.bin"),
            nullptr);
}

TEST_F(SerializationFailureTest, EveryTruncationReturnsNull) {
  // Every proper prefix of the file must be rejected: each cut lands inside a
  // different field (magic, header scalar, vector length, vector payload).
  for (std::size_t cut = 0; cut < bytes_.size(); ++cut) {
    WriteAll(mutated_path_,
             std::vector<char>(bytes_.begin(),
                               bytes_.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "truncation at byte " << cut << " of " << bytes_.size();
  }
}

TEST_F(SerializationFailureTest, CorruptedMagicReturnsNull) {
  for (std::size_t byte = 0; byte < 4; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x5A);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "magic byte " << byte;
  }
}

TEST_F(SerializationFailureTest, UnknownVersionReturnsNull) {
  // The version field is the u32 after the magic.
  for (std::size_t byte = 4; byte < 8; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0xFF);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "version byte " << byte;
  }
}

TEST_F(SerializationFailureTest, CorruptedTextLengthReturnsNull) {
  // The text-length field is the u32 after magic + version; any change makes
  // it disagree with the weighted string being loaded against.
  for (std::size_t byte = 8; byte < 12; ++byte) {
    std::vector<char> mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x01);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "length byte " << byte;
  }
}

TEST_F(SerializationFailureTest, InvalidUtilityKindReturnsNull) {
  // Out-of-range utility-kind values must be rejected at load, not carried
  // into query dispatch where they would silently answer U(P) = 0.
  for (const u8 bad_kind : {u8{4}, u8{0x7F}, u8{0xFF}}) {
    std::vector<char> mutated = bytes_;
    mutated[kKindOffset] = static_cast<char>(bad_kind);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "kind byte " << static_cast<int>(bad_kind);
  }
}

TEST_F(SerializationFailureTest, InvalidMinerReturnsNull) {
  // Out-of-range miner values (neither UET nor UAT) must be rejected so a
  // loaded index never misreports its Name().
  for (const u8 bad_miner : {u8{2}, u8{0x7F}, u8{0xFF}}) {
    std::vector<char> mutated = bytes_;
    mutated[kMinerOffset] = static_cast<char>(bad_miner);
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "miner byte " << static_cast<int>(bad_miner);
  }
}

TEST_F(SerializationFailureTest, InvalidHasherBaseReturnsNull) {
  // The Karp-Rabin base (u64 after the kind + miner bytes) must be
  // range-checked at load; FromBase aborts on out-of-range values, so an
  // unvalidated field would crash instead of returning nullptr. Cover both
  // sides of the valid range: all-0xFF (>= the Mersenne prime) and all-zero
  // (< 257).
  const std::size_t base_offset = kMinerOffset + 1;
  for (const u8 fill : {u8{0xFF}, u8{0x00}}) {
    std::vector<char> mutated = bytes_;
    for (std::size_t i = 0; i < 8; ++i) {
      mutated[base_offset + i] = static_cast<char>(fill);
    }
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "base fill 0x" << std::hex << static_cast<int>(fill);
  }
}

TEST_F(SerializationFailureTest, MismatchedWeightedStringReturnsNull) {
  const WeightedString shorter = ws_.Prefix(ws_.size() - 1);
  EXPECT_EQ(UsiIndex::LoadFromFile(shorter, path_), nullptr);
  const WeightedString longer = testing::RandomWeighted(ws_.size() + 1, 3, 99);
  EXPECT_EQ(UsiIndex::LoadFromFile(longer, path_), nullptr);
  const WeightedString empty;
  EXPECT_EQ(UsiIndex::LoadFromFile(empty, path_), nullptr);
}

TEST_F(SerializationFailureTest, HugeVectorLengthReturnsNull) {
  // Overwrite the suffix-array length (the u64 straight after the fixed
  // header) with an absurd value: the reader's allocation guard must trip
  // instead of attempting a multi-terabyte resize.
  ASSERT_LT(kSaLengthOffset + 8, bytes_.size());
  std::vector<char> mutated = bytes_;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] = static_cast<char>(0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, OversizedVectorLengthBelowCapReturnsNull) {
  // A corrupted length below the reader's absolute element cap but far
  // beyond what the file holds (2^38 elements ~ 1 TB) must be rejected by
  // the remaining-bytes bound, not attempted as an allocation.
  std::vector<char> mutated = bytes_;
  const u64 huge = u64{1} << 38;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);

  // An off-by-one SA length (n + 1) is rejected too — by LoadFromFile's
  // sa_.size() == ws.size() consistency check, since the bytes of the
  // entries section that follows can still satisfy the read.
  mutated = bytes_;
  const u64 off_by_one = ws_.size() + 1;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[kSaLengthOffset + i] =
        static_cast<char>((off_by_one >> (8 * i)) & 0xFF);
  }
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, OutOfRangeSaElementReturnsNull) {
  // A corrupted SA payload value must be rejected at load; otherwise a query
  // would use it as a text position and read PSW out of bounds.
  for (const u32 bad_pos : {static_cast<u32>(ws_.size()), 0xFFFFFFF0u}) {
    std::vector<char> mutated = bytes_;
    const std::size_t first_element = kSaLengthOffset + 8;
    std::memcpy(mutated.data() + first_element, &bad_pos, sizeof(bad_pos));
    WriteAll(mutated_path_, mutated);
    EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr)
        << "sa[0] = " << bad_pos;
  }
}

TEST_F(SerializationFailureTest, EntriesLengthBeyondFileReturnsNull) {
  // The hash-table entries vector is the file's last section, so inflating
  // its length by one exercises exactly the remaining-bytes bound: nothing
  // after it can absorb the extra element.
  const std::size_t entries_length_offset = EntriesLengthOffset();
  ASSERT_LT(entries_length_offset + 8, bytes_.size());
  u64 entries = 0;
  std::memcpy(&entries, bytes_.data() + entries_length_offset, 8);
  ASSERT_GT(entries, 0u);
  std::vector<char> mutated = bytes_;
  const u64 inflated = entries + 1;
  std::memcpy(mutated.data() + entries_length_offset, &inflated, 8);
  WriteAll(mutated_path_, mutated);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws_, mutated_path_), nullptr);
}

TEST_F(SerializationFailureTest, TrailingGarbageStillLoads) {
  // Extra bytes after a complete image are ignored (forward-compat slack);
  // the index itself must still be intact.
  std::vector<char> mutated = bytes_;
  mutated.insert(mutated.end(), 64, static_cast<char>(0xAB));
  WriteAll(mutated_path_, mutated);
  const std::unique_ptr<UsiIndex> restored =
      UsiIndex::LoadFromFile(ws_, mutated_path_);
  ASSERT_NE(restored, nullptr);
  const Text pattern = ws_.Fragment(0, 3);
  EXPECT_EQ(restored->Query(pattern).occurrences,
            index_->Query(pattern).occurrences);
}

}  // namespace
}  // namespace usi
