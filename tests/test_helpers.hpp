#ifndef USI_TESTS_TEST_HELPERS_HPP_
#define USI_TESTS_TEST_HELPERS_HPP_

/// \file test_helpers.hpp
/// Brute-force oracles shared by the test suite. Everything here is the
/// obviously-correct O(n^2)-ish implementation the real structures are
/// checked against.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "usi/core/utility.hpp"
#include "usi/text/weighted_string.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"
#include "usi/util/rng.hpp"

namespace usi::testing {

/// All occurrence start positions of \p pattern in \p text, by direct scan.
inline std::vector<index_t> BruteOccurrences(const Text& text,
                                             const Text& pattern) {
  std::vector<index_t> occ;
  if (pattern.empty() || pattern.size() > text.size()) return occ;
  for (index_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + i)) {
      occ.push_back(i);
    }
  }
  return occ;
}

/// Frequency map of every distinct substring (as std::string over raw
/// symbol bytes). O(n^2) substrings; use on small texts only.
inline std::map<std::string, index_t> BruteSubstringFrequencies(
    const Text& text) {
  std::map<std::string, index_t> freq;
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string s;
    for (std::size_t j = i; j < text.size(); ++j) {
      s.push_back(static_cast<char>(text[j]));
      ++freq[s];
    }
  }
  return freq;
}

/// The exact multiset of top-k frequencies (descending), from brute force.
inline std::vector<index_t> BruteTopKFrequencies(const Text& text, u64 k) {
  std::vector<index_t> freqs;
  for (const auto& [s, f] : BruteSubstringFrequencies(text)) freqs.push_back(f);
  std::sort(freqs.rbegin(), freqs.rend());
  if (freqs.size() > k) freqs.resize(k);
  return freqs;
}

/// Brute-force global utility of \p pattern over (S, w).
inline QueryResult BruteUtility(const WeightedString& ws, const Text& pattern,
                                GlobalUtilityKind kind) {
  QueryResult result;
  const std::vector<index_t> occ = BruteOccurrences(ws.text(), pattern);
  if (occ.empty()) return result;
  UtilityAccumulator acc;
  for (index_t i : occ) {
    double local = 0;
    for (index_t k = 0; k < pattern.size(); ++k) local += ws.weight(i + k);
    acc.Add(local, kind);
  }
  result.utility = acc.Finalize(kind);
  result.occurrences = static_cast<index_t>(occ.size());
  return result;
}

/// Deterministic random text for property tests.
inline Text RandomText(index_t n, u32 sigma, u64 seed) {
  Rng rng(seed);
  Text text(n);
  for (auto& c : text) c = static_cast<Symbol>(rng.UniformBelow(sigma));
  return text;
}

/// Random weighted string with weights in [0, 1].
inline WeightedString RandomWeighted(index_t n, u32 sigma, u64 seed) {
  Rng rng(seed ^ 0x77);
  Text text(n);
  for (auto& c : text) c = static_cast<Symbol>(rng.UniformBelow(sigma));
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.UniformDouble();
  return WeightedString(std::move(text), std::move(weights));
}

/// Materializes a TopKSubstring as a std::string via its witness.
inline std::string MaterializeString(const Text& text,
                                     const TopKSubstring& item) {
  std::string s;
  for (index_t k = 0; k < item.length; ++k) {
    s.push_back(static_cast<char>(text[item.witness + k]));
  }
  return s;
}

/// Text literal helper: "abc" -> {symbols 'a','b','c'}.
inline Text T(const std::string& raw) {
  Text text;
  for (char c : raw) text.push_back(static_cast<Symbol>(c));
  return text;
}

}  // namespace usi::testing

#endif  // USI_TESTS_TEST_HELPERS_HPP_
