// Unit tests for src/usi/util: rng, bit vectors, radix sort, memory, tables.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "usi/util/bit_vector.hpp"
#include "usi/util/memory.hpp"
#include "usi/util/radix_sort.hpp"
#include "usi/util/rng.hpp"
#include "usi/util/table_printer.hpp"

namespace usi {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformBelow(bound), bound);
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(11);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[rng.UniformBelow(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.UniformInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, MixIsDeterministic) {
  EXPECT_EQ(Rng::Mix(123, 456), Rng::Mix(123, 456));
  EXPECT_NE(Rng::Mix(123, 456), Rng::Mix(123, 457));
}

TEST(BitVector, SetTestClear) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (std::size_t i = 0; i < 130; i += 3) bits.Set(i);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(bits.Test(i), i % 3 == 0);
  bits.Clear(0);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_TRUE(bits.Test(3));
}

TEST(BitVector, CountAndReset) {
  BitVector bits(1000);
  for (std::size_t i = 0; i < 1000; i += 7) bits.Set(i);
  EXPECT_EQ(bits.Count(), (1000 + 6) / 7);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVector, WordBoundaries) {
  BitVector bits(128);
  bits.Set(63);
  bits.Set(64);
  bits.Set(127);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(127));
  EXPECT_FALSE(bits.Test(62));
  EXPECT_FALSE(bits.Test(65));
}

TEST(BitVector, WordAccessFastPath) {
  BitVector bits(130);  // Two full words + a 2-bit tail word.
  ASSERT_EQ(bits.NumWords(), 3u);
  bits.SetWord(0, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(bits.GetWord(0), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(bits.Test(0), (0xDEADBEEFCAFEF00DULL & 1) != 0);
  // Bit-level and word-level views agree.
  bits.Set(64);
  EXPECT_EQ(bits.GetWord(1), u64{1});
  // SetWord masks bits past size(): the tail word keeps only 2 bits, so
  // Count() stays consistent with the addressable range.
  bits.SetWord(2, ~u64{0});
  EXPECT_EQ(bits.GetWord(2), u64{3});
  EXPECT_TRUE(bits.Test(128));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_EQ(bits.Count(),
            static_cast<std::size_t>(__builtin_popcountll(
                0xDEADBEEFCAFEF00DULL)) + 1 + 2);
}

TEST(RankBitVector, RankMatchesPrefixCounts) {
  Rng rng(5);
  const std::size_t n = 2000;
  BitVector bits(n);
  std::vector<bool> mirror(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      bits.Set(i);
      mirror[i] = true;
    }
  }
  RankBitVector rank(bits, n);
  std::size_t running = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    EXPECT_EQ(rank.Rank1(i), running);
    if (i < n && mirror[i]) ++running;
  }
  EXPECT_EQ(rank.Ones(), running);
}

TEST(RadixSort, MatchesStdSortOnRandomKeys) {
  Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    std::vector<u64> values(500);
    for (auto& v : values) v = rng.UniformBelow(1'000'000);
    std::vector<u64> expected = values;
    std::sort(expected.begin(), expected.end());
    RadixSortByKey(&values, 1'000'000, [](u64 v) { return v; });
    EXPECT_EQ(values, expected);
  }
}

TEST(RadixSort, DescendingOrder) {
  Rng rng(23);
  std::vector<u32> values(300);
  for (auto& v : values) v = static_cast<u32>(rng.UniformBelow(10'000));
  std::vector<u32> expected = values;
  std::sort(expected.rbegin(), expected.rend());
  RadixSortByKeyDescending(&values, 10'000, [](u32 v) { return u64{v}; });
  EXPECT_EQ(values, expected);
}

TEST(RadixSort, StableOnEqualKeys) {
  struct Item {
    u32 key;
    u32 tag;
  };
  std::vector<Item> items;
  for (u32 tag = 0; tag < 100; ++tag) items.push_back({tag % 5, tag});
  RadixSortByKey(&items, 5, [](const Item& i) { return u64{i.key}; });
  for (std::size_t i = 1; i < items.size(); ++i) {
    if (items[i - 1].key == items[i].key) {
      EXPECT_LT(items[i - 1].tag, items[i].tag);  // Stability preserved.
    }
  }
}

TEST(RadixSort, HandlesEmptyAndSingle) {
  std::vector<u64> empty;
  RadixSortByKey(&empty, 10, [](u64 v) { return v; });
  EXPECT_TRUE(empty.empty());
  std::vector<u64> one = {42};
  RadixSortByKey(&one, 100, [](u64 v) { return v; });
  EXPECT_EQ(one[0], 42u);
}

TEST(RadixSort, LargeKeyBound) {
  Rng rng(31);
  std::vector<u64> values(200);
  const u64 bound = u64{1} << 50;
  for (auto& v : values) v = rng.UniformBelow(bound);
  std::vector<u64> expected = values;
  std::sort(expected.begin(), expected.end());
  RadixSortByKey(&values, bound, [](u64 v) { return v; });
  EXPECT_EQ(values, expected);
}

TEST(Memory, PeakRssReadable) {
  EXPECT_GT(ReadPeakRssBytes(), 0u);
  EXPECT_GT(ReadCurrentRssBytes(), 0u);
}

TEST(Memory, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Int(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
  EXPECT_EQ(TablePrinter::Int(999), "999");
}

}  // namespace
}  // namespace usi
