// End-to-end integration tests: the full pipeline on each synthetic dataset
// (mine -> build UET/UAT -> run workloads -> cross-check engines), plus the
// case-study and Example-2 shapes the paper reports.

#include <memory>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/workload.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/dataset.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

class DatasetPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetPipeline, AllEnginesAgreeOnW1) {
  const DatasetSpec& spec = DatasetSpecByName(GetParam());
  const WeightedString ws = MakeDataset(spec, 20'000);
  const index_t n = ws.size();

  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(n / 50);

  WorkloadOptions wopts;
  wopts.num_queries = 300;
  wopts.random_max_len = 200;
  wopts.seed = spec.seed;
  const Workload workload = MakeWorkloadW1(ws.text(), pool.items, wopts);

  UsiOptions uet_options;
  uet_options.k = n / 100;
  const UsiIndex uet(ws, uet_options);

  UsiOptions uat_options = uet_options;
  uat_options.miner = UsiMiner::kApproximate;
  uat_options.approx.rounds = spec.default_s;
  const UsiIndex uat(ws, uat_options);

  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);
  BaselineContext context;
  context.ws = &ws;
  context.sa = &sa;
  context.psw = &psw;
  context.cache_capacity = n / 100;
  auto bsl1 = MakeBaseline(BaselineKind::kBsl1, context);
  auto bsl3 = MakeBaseline(BaselineKind::kBsl3, context);

  std::size_t uet_hits = 0;
  for (const Text& pattern : workload.patterns) {
    const QueryResult want = bsl1->Query(pattern);
    const QueryResult from_uet = uet.Query(pattern);
    const QueryResult from_uat = uat.Query(pattern);
    const QueryResult from_b3 = bsl3->Query(pattern);
    ASSERT_EQ(from_uet.occurrences, want.occurrences);
    ASSERT_NEAR(from_uet.utility, want.utility, 1e-6 * (1 + std::abs(want.utility)));
    ASSERT_NEAR(from_uat.utility, want.utility, 1e-6 * (1 + std::abs(want.utility)));
    ASSERT_NEAR(from_b3.utility, want.utility, 1e-6 * (1 + std::abs(want.utility)));
    uet_hits += from_uet.from_hash_table;
  }
  // The W1 pool is the top-(n/50) frequent substrings while UET stores the
  // top-(n/100): about half of the ~95% frequent queries land in H, as in
  // the paper's setup (Example 2 uses the same n/50-pool vs n/100-table mix).
  const double hit_fraction =
      static_cast<double>(uet_hits) / workload.patterns.size();
  EXPECT_GT(hit_fraction, 0.35) << spec.name;
  EXPECT_LT(hit_fraction, 0.70) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetPipeline,
                         ::testing::Values("ADV", "IOT", "XML", "HUM",
                                           "ECOLI"));

TEST(Integration, CaseStudyShape) {
  // Table I: the top-4 substrings by global utility differ from the top-4 by
  // frequency on CTR-weighted advertising data, because rare-but-valuable
  // category motifs out-earn frequent cheap ones.
  const DatasetSpec& spec = DatasetSpecByName("ADV");
  const WeightedString ws = MakeDataset(spec, 30'000);
  UsiOptions options;
  options.k = 3000;
  const UsiIndex index(ws, options);

  SubstringStats stats(ws.text());
  const TopKList frequent = stats.TopK(3000);

  // Rank all length >= 3 mined substrings by global utility.
  struct Ranked {
    double utility;
    index_t frequency;
  };
  std::vector<Ranked> by_utility;
  std::vector<index_t> top_frequent_freqs;
  for (const TopKSubstring& item : frequent.items) {
    if (item.length < 3) continue;
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    by_utility.push_back({index.Utility(pattern), item.frequency});
    if (top_frequent_freqs.size() < 4) {
      top_frequent_freqs.push_back(item.frequency);
    }
  }
  ASSERT_GE(by_utility.size(), 8u);
  std::sort(by_utility.begin(), by_utility.end(),
            [](const Ranked& a, const Ranked& b) { return a.utility > b.utility; });
  // The utility champion should NOT be the frequency champion (Table Ia/Ib).
  EXPECT_NE(by_utility[0].frequency, top_frequent_freqs[0]);
}

TEST(Integration, Example2SpeedupShape) {
  // Example 2: for frequent patterns, the hash-table path avoids touching
  // the occurrence lists entirely — verify the work reduction structurally
  // (occurrences aggregated vs. returned from H).
  const WeightedString ws = MakeDataset(DatasetSpecByName("HUM"), 100'000);
  UsiOptions options;
  options.k = ws.size() / 100;
  const UsiIndex index(ws, options);

  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(ws.size() / 50);
  // Length-8 patterns among the frequent pool (the paper queries 8-mers).
  int tested = 0;
  for (const TopKSubstring& item : pool.items) {
    if (item.length != 8 || tested >= 100) continue;
    ++tested;
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    const QueryResult result = index.Query(pattern);
    if (item.frequency >= index.build_info().tau_k) {
      // Frequent 8-mers answered in O(m) from H.
      EXPECT_TRUE(result.from_hash_table);
    }
    EXPECT_EQ(result.occurrences, item.frequency);
  }
  EXPECT_GT(tested, 10);
}

TEST(Integration, ApproximateMinerAccuracyOnDatasets) {
  // Fig. 3 headline: AT is accurate at the default s on every dataset.
  for (const char* name : {"ADV", "XML", "HUM"}) {
    const DatasetSpec& spec = DatasetSpecByName(name);
    const WeightedString ws = MakeDataset(spec, 15'000);
    const u64 k = ws.size() / 100;
    SubstringStats stats(ws.text());
    const TopKList exact = stats.TopK(k);
    ApproximateTopKOptions aopts;
    aopts.rounds = spec.default_s;
    const TopKList approx = ApproximateTopK(ws.text(), k, aopts);
    EXPECT_GE(TopKAccuracyPercent(exact.items, approx.items), 60.0) << name;
    EXPECT_GE(TopKNdcg(exact.items, approx.items), 0.9) << name;
  }
}

}  // namespace
}  // namespace usi
