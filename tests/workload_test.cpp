// Tests for the W1 / W2,p workload generators.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/workload.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

struct WorkloadFixture {
  Text text;
  TopKList pool_w1;
  TopKList pool_w2;

  WorkloadFixture() {
    text = MakeAdvLike(5000, 3).text();
    SubstringStats stats(text);
    pool_w1 = stats.TopK(text.size() / 50);
    pool_w2 = stats.TopK(text.size() / 100);
  }
};

TEST(Workload, W1HasRequestedSize) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 500;
  options.random_max_len = 50;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  EXPECT_EQ(w.patterns.size(), 500u);
  EXPECT_EQ(w.from_frequent + w.random_substrings, 500u);
}

TEST(Workload, W1IsDeterministic) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 200;
  options.random_max_len = 30;
  const Workload a = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  const Workload b = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  EXPECT_EQ(a.patterns, b.patterns);
}

TEST(Workload, W1FrequentFractionRoughlyHolds) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 2000;
  options.frequent_fraction = 0.9;
  options.random_max_len = 40;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  // 90% direct + ~half of the remaining 10%: ~95% total from the pool.
  const double fraction =
      static_cast<double>(w.from_frequent) / w.patterns.size();
  EXPECT_GT(fraction, 0.9);
  EXPECT_LT(fraction, 0.99);
}

TEST(Workload, AllPatternsOccurInText) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 300;
  options.random_max_len = 20;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  for (const Text& pattern : w.patterns) {
    ASSERT_FALSE(testing::BruteOccurrences(fx.text, pattern).empty());
  }
}

TEST(Workload, PatternLengthsWithinBounds) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 500;
  options.random_min_len = 2;
  options.random_max_len = 17;
  options.frequent_fraction = 0.0;  // All random.
  const Workload w = MakeWorkloadW1(fx.text, {}, options);
  for (const Text& pattern : w.patterns) {
    EXPECT_GE(pattern.size(), 2u);
    EXPECT_LE(pattern.size(), 17u);
  }
}

TEST(Workload, W2IncreasingPMeansMoreFrequentQueries) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 1500;
  options.random_max_len = 40;
  std::size_t last_frequent = 0;
  for (u32 p : {20u, 80u}) {
    const Workload w = MakeWorkloadW2(fx.text, fx.pool_w2.items,
                                      fx.pool_w1.items, p, options);
    EXPECT_EQ(w.patterns.size(), 1500u);
    EXPECT_GT(w.from_frequent, last_frequent);
    last_frequent = w.from_frequent;
  }
}

TEST(Workload, W2PatternsComeFromText) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 200;
  options.random_max_len = 25;
  const Workload w =
      MakeWorkloadW2(fx.text, fx.pool_w2.items, fx.pool_w1.items, 40, options);
  for (const Text& pattern : w.patterns) {
    ASSERT_FALSE(testing::BruteOccurrences(fx.text, pattern).empty());
  }
}

}  // namespace
}  // namespace usi
