// Tests for the W1 / W2,p / Zipf workload generators.

#include <map>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/workload.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

struct WorkloadFixture {
  Text text;
  TopKList pool_w1;
  TopKList pool_w2;

  WorkloadFixture() {
    text = MakeAdvLike(5000, 3).text();
    SubstringStats stats(text);
    pool_w1 = stats.TopK(text.size() / 50);
    pool_w2 = stats.TopK(text.size() / 100);
  }
};

TEST(Workload, W1HasRequestedSize) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 500;
  options.random_max_len = 50;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  EXPECT_EQ(w.patterns.size(), 500u);
  EXPECT_EQ(w.from_frequent + w.random_substrings, 500u);
}

TEST(Workload, W1IsDeterministic) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 200;
  options.random_max_len = 30;
  const Workload a = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  const Workload b = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  EXPECT_EQ(a.patterns, b.patterns);
}

TEST(Workload, W1FrequentFractionRoughlyHolds) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 2000;
  options.frequent_fraction = 0.9;
  options.random_max_len = 40;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  // 90% direct + ~half of the remaining 10%: ~95% total from the pool.
  const double fraction =
      static_cast<double>(w.from_frequent) / w.patterns.size();
  EXPECT_GT(fraction, 0.9);
  EXPECT_LT(fraction, 0.99);
}

TEST(Workload, AllPatternsOccurInText) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 300;
  options.random_max_len = 20;
  const Workload w = MakeWorkloadW1(fx.text, fx.pool_w1.items, options);
  for (const Text& pattern : w.patterns) {
    ASSERT_FALSE(testing::BruteOccurrences(fx.text, pattern).empty());
  }
}

TEST(Workload, PatternLengthsWithinBounds) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 500;
  options.random_min_len = 2;
  options.random_max_len = 17;
  options.frequent_fraction = 0.0;  // All random.
  const Workload w = MakeWorkloadW1(fx.text, {}, options);
  for (const Text& pattern : w.patterns) {
    EXPECT_GE(pattern.size(), 2u);
    EXPECT_LE(pattern.size(), 17u);
  }
}

TEST(Workload, W2IncreasingPMeansMoreFrequentQueries) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 1500;
  options.random_max_len = 40;
  std::size_t last_frequent = 0;
  for (u32 p : {20u, 80u}) {
    const Workload w = MakeWorkloadW2(fx.text, fx.pool_w2.items,
                                      fx.pool_w1.items, p, options);
    EXPECT_EQ(w.patterns.size(), 1500u);
    EXPECT_GT(w.from_frequent, last_frequent);
    last_frequent = w.from_frequent;
  }
}

TEST(Workload, W2PatternsComeFromText) {
  WorkloadFixture fx;
  WorkloadOptions options;
  options.num_queries = 200;
  options.random_max_len = 25;
  const Workload w =
      MakeWorkloadW2(fx.text, fx.pool_w2.items, fx.pool_w1.items, 40, options);
  for (const Text& pattern : w.patterns) {
    ASSERT_FALSE(testing::BruteOccurrences(fx.text, pattern).empty());
  }
}

// ---------------------------------------------------------------------------
// Zipf / skewed hot-pattern generator (satellite of the degradation PR: the
// traffic shape hot-pattern caches and tier admission are exercised with).

std::map<Text, std::size_t> PatternCounts(const Workload& w) {
  std::map<Text, std::size_t> counts;
  for (const Text& p : w.patterns) ++counts[p];
  return counts;
}

TEST(Workload, ZipfHasRequestedSizeAndIsDeterministic) {
  WorkloadFixture fx;
  ZipfWorkloadOptions options;
  options.num_queries = 800;
  const Workload a = MakeWorkloadZipf(fx.text, options);
  const Workload b = MakeWorkloadZipf(fx.text, options);
  EXPECT_EQ(a.patterns.size(), 800u);
  EXPECT_EQ(a.from_frequent + a.random_substrings, 800u);
  EXPECT_EQ(a.patterns, b.patterns);
}

TEST(Workload, ZipfPatternsOccurInTextWithinLengthBounds) {
  WorkloadFixture fx;
  ZipfWorkloadOptions options;
  options.num_queries = 300;
  options.min_len = 3;
  options.max_len = 24;
  const Workload w = MakeWorkloadZipf(fx.text, options);
  for (const Text& pattern : w.patterns) {
    EXPECT_GE(pattern.size(), 3u);
    EXPECT_LE(pattern.size(), 24u);
    ASSERT_FALSE(testing::BruteOccurrences(fx.text, pattern).empty());
  }
}

TEST(Workload, ZipfHotFractionRoughlyHolds) {
  WorkloadFixture fx;
  ZipfWorkloadOptions options;
  options.num_queries = 4000;
  options.hot_fraction = 0.9;
  const Workload w = MakeWorkloadZipf(fx.text, options);
  const double fraction =
      static_cast<double>(w.from_frequent) / w.patterns.size();
  EXPECT_GT(fraction, 0.85);
  EXPECT_LT(fraction, 0.95);
}

TEST(Workload, ZipfSkewConcentratesTrafficOnTopRanks) {
  WorkloadFixture fx;
  ZipfWorkloadOptions options;
  options.num_queries = 6000;
  options.pool_size = 256;
  options.hot_fraction = 1.0;  // Pure pool traffic isolates the skew.

  // Higher exponents concentrate more of the traffic on the hottest
  // pattern; s = 0 degenerates to uniform over the pool.
  std::size_t last_top = 0;
  for (const double s : {0.0, 1.0, 1.5}) {
    options.s = s;
    const Workload w = MakeWorkloadZipf(fx.text, options);
    std::size_t top = 0;
    for (const auto& [pattern, count] : PatternCounts(w)) {
      top = std::max(top, count);
    }
    EXPECT_GT(top, last_top) << "s=" << s;
    last_top = top;
  }
  // At s = 1.5 the head dominates: the hottest pattern alone draws a large
  // multiple of the uniform share (6000 / 256 ~ 23).
  EXPECT_GT(last_top, 1000u);
}

}  // namespace
}  // namespace usi
