// Tests for the learned last-mile fallback (LearnedSa): differential parity
// against plain binary search and brute force on adversarial text shapes,
// batch == per-query parity (including through UsiService at several thread
// counts), serialization, and the v3 learned-section round-trip.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/suffix/learned_sa.hpp"
#include "usi/suffix/sa_search.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

/// The text shapes the ε contract calls out: uniform random (model-friendly),
/// periodic and all-equal (equal-key runs of unbounded length — the model's
/// predictions are unboundedly wrong and the gallop must correct), and a
/// full-256-alphabet text (keys spread over the whole u64 axis).
std::vector<std::pair<std::string, Text>> AdversarialTexts() {
  std::vector<std::pair<std::string, Text>> texts;
  texts.emplace_back("random", testing::RandomText(2000, 4, 0xA1));
  Text periodic;
  for (int i = 0; i < 1800; ++i) {
    periodic.push_back(static_cast<Symbol>("abc"[i % 3]));
  }
  texts.emplace_back("periodic", periodic);
  texts.emplace_back("all-equal", Text(1500, static_cast<Symbol>('a')));
  Rng rng(0xB2);
  Text full;
  for (int i = 0; i < 2000; ++i) {
    full.push_back(static_cast<Symbol>(rng.UniformBelow(256)));
  }
  texts.emplace_back("full-alphabet", full);
  return texts;
}

/// Query mix for one text: existing fragments both shorter and longer than
/// the packed-key prefix, mutated (mostly absent, often outside the compact
/// alphabet) patterns, the empty pattern, and a pattern longer than the
/// text.
std::vector<Text> PatternMix(const Text& text, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  patterns.push_back({});  // Empty.
  patterns.push_back(Text(text.size() + 3, static_cast<Symbol>('a')));
  for (int q = 0; q < 160; ++q) {
    // Lengths straddle the packed-key prefix of byte-like texts (8 chars):
    // short patterns resolve inside the key, longer ones force last-mile
    // compares past it. (Low-σ texts pack deeper and keep them all inside.)
    const index_t len = 1 + static_cast<index_t>(rng.UniformBelow(14));
    Text pattern(len);
    if (len <= text.size() && q % 3 != 2) {
      const index_t start =
          static_cast<index_t>(rng.UniformBelow(text.size() - len + 1));
      std::copy(text.begin() + start, text.begin() + start + len,
                pattern.begin());
      if (q % 3 == 1) {
        // Mutate one byte: usually absent, lands between stored keys.
        pattern[rng.UniformBelow(len)] =
            static_cast<Symbol>(rng.UniformBelow(256));
      }
    } else {
      for (auto& c : pattern) c = static_cast<Symbol>(rng.UniformBelow(256));
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

TEST(LearnedSa, PackSuffixKeyIsMonotoneInSaOrder) {
  for (const auto& [name, text] : AdversarialTexts()) {
    const std::vector<index_t> sa = BuildSuffixArray(text);
    // Both the alphabet-fitted packing (what Build uses) and plain byte
    // packing must order keys like the SA orders suffixes.
    for (const KeyPacking kp : {KeyPacking::ForText(text), KeyPacking{}}) {
      for (std::size_t k = 1; k < sa.size(); ++k) {
        ASSERT_LE(PackSuffixKey(text, sa[k - 1], kp),
                  PackSuffixKey(text, sa[k], kp))
            << name << " at rank " << k << " bits " << kp.bits;
      }
    }
  }
}

TEST(LearnedSa, IntervalParityOnAdversarialTexts) {
  for (const auto& [name, text] : AdversarialTexts()) {
    const std::vector<index_t> sa = BuildSuffixArray(text);
    for (const u32 epsilon : {4u, 32u, 256u}) {
      LearnedSa model;
      model.Build(text, sa, {epsilon});
      ASSERT_FALSE(model.empty()) << name;
      EXPECT_GE(model.epsilon(), epsilon);
      u64 seed = 0xC0FFEE ^ epsilon;
      for (const Text& pattern : PatternMix(text, seed)) {
        const SaInterval plain = FindSaInterval(text, sa, pattern);
        const SaInterval learned = model.FindInterval(text, sa, pattern);
        // Byte-identical intervals, not just equal counts.
        ASSERT_EQ(plain.lb, learned.lb) << name << " eps=" << epsilon;
        ASSERT_EQ(plain.rb, learned.rb) << name << " eps=" << epsilon;
        const std::vector<index_t> brute =
            testing::BruteOccurrences(text, pattern);
        if (!pattern.empty()) {
          ASSERT_EQ(learned.Count(), brute.size()) << name;
        }
      }
    }
  }
}

TEST(LearnedSa, BatchMatchesPerQuery) {
  for (const auto& [name, text] : AdversarialTexts()) {
    const std::vector<index_t> sa = BuildSuffixArray(text);
    LearnedSa model;
    model.Build(text, sa);
    ASSERT_FALSE(model.empty()) << name;
    const std::vector<Text> patterns = PatternMix(text, 0xBEEF);
    std::vector<PatternSpan> spans;
    for (const Text& p : patterns) spans.emplace_back(p.data(), p.size());
    // Every batch size exercises a different AMAC group fill (1 = degenerate,
    // 16 = exactly one group, 173 = ragged tail).
    for (const std::size_t take : {std::size_t{1}, std::size_t{16},
                                   spans.size()}) {
      std::vector<SaInterval> batch(take);
      model.FindIntervalBatch(
          text, sa, std::span<const PatternSpan>(spans.data(), take),
          std::span<SaInterval>(batch.data(), take));
      for (std::size_t i = 0; i < take; ++i) {
        const SaInterval one = model.FindInterval(text, sa, spans[i]);
        ASSERT_EQ(one.lb, batch[i].lb) << name << " i=" << i;
        ASSERT_EQ(one.rb, batch[i].rb) << name << " i=" << i;
      }
    }
  }
}

TEST(LearnedSa, DisabledAndDegenerateInputs) {
  const Text text = testing::T("abracadabra");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  LearnedSa disabled;
  disabled.Build(text, sa, {0});  // ε = 0 disables the model.
  EXPECT_TRUE(disabled.empty());
  LearnedSa empty_sa;
  empty_sa.Build({}, {});
  EXPECT_TRUE(empty_sa.empty());
  // FindInterval on an empty model still answers (plain search fallback).
  const SaInterval got = disabled.FindInterval(text, sa, testing::T("abra"));
  const SaInterval want = FindSaInterval(text, sa, testing::T("abra"));
  EXPECT_EQ(got.lb, want.lb);
  EXPECT_EQ(got.rb, want.rb);
}

TEST(LearnedSa, SerializeAdoptRoundTrip) {
  const Text text = testing::RandomText(3000, 5, 0xD4);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  LearnedSa model;
  model.Build(text, sa);
  ASSERT_FALSE(model.empty());
  const std::vector<u8> payload = model.Serialize();
  EXPECT_EQ(payload.size(), model.SizeInBytes());

  LearnedSa adopted;
  ASSERT_TRUE(adopted.AdoptView(payload.data(), payload.size()));
  EXPECT_EQ(adopted.epsilon(), model.epsilon());
  EXPECT_EQ(adopted.num_segments(), model.num_segments());
  EXPECT_EQ(adopted.fit_n(), model.fit_n());
  for (const Text& pattern : PatternMix(text, 0xE5)) {
    const SaInterval a = model.FindInterval(text, sa, pattern);
    const SaInterval b = adopted.FindInterval(text, sa, pattern);
    ASSERT_EQ(a.lb, b.lb);
    ASSERT_EQ(a.rb, b.rb);
  }
  // An adopted model re-serializes to the same bytes.
  EXPECT_EQ(adopted.Serialize(), payload);

  // Malformed payloads are rejected, never adopted: truncation, a flipped
  // magic, and a geometry lie.
  LearnedSa bad;
  EXPECT_FALSE(bad.AdoptView(payload.data(), payload.size() - 1));
  EXPECT_TRUE(bad.empty());
  std::vector<u8> flipped = payload;
  flipped[0] ^= 0xFF;
  EXPECT_FALSE(bad.AdoptView(flipped.data(), flipped.size()));
  std::vector<u8> lying = payload;
  lying[24] ^= 0x01;  // num_segments: length no longer matches geometry.
  EXPECT_FALSE(bad.AdoptView(lying.data(), lying.size()));
}

TEST(LearnedSa, IndexMissPathParityThroughServiceThreads) {
  // End-to-end: a small hash table forces most queries onto the fallback,
  // and the service fans batches across 1/2/4/8 threads. Batched answers
  // must equal per-pattern Query at every width — the concurrency contract
  // the TSan job runs under.
  const WeightedString ws = testing::RandomWeighted(6000, 4, 0xF7);
  UsiOptions options;
  options.k = 32;  // Tiny table: the miss path dominates.
  UsiIndex index(ws, options);
  ASSERT_FALSE(index.learned_sa().empty());

  Rng rng(0x11);
  std::vector<Text> patterns;
  for (int i = 0; i < 700; ++i) {
    const index_t len = 1 + static_cast<index_t>(rng.UniformBelow(12));
    Text p(len);
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    std::copy(ws.text().begin() + start, ws.text().begin() + start + len,
              p.begin());
    if (i % 4 == 3) p[len / 2] = static_cast<Symbol>(rng.UniformBelow(256));
    patterns.push_back(std::move(p));
  }
  std::vector<QueryResult> expected(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    expected[i] = static_cast<const UsiIndex&>(index).Query(patterns[i]);
  }

  std::vector<PatternSpan> spans;
  for (const Text& p : patterns) spans.emplace_back(p.data(), p.size());
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    UsiServiceOptions service_options;
    service_options.threads = threads;
    service_options.min_shard_size = 16;
    UsiService service(index, service_options);
    // Both batch surfaces: owned Texts and borrowed spans.
    const std::vector<QueryResult> via_texts = service.QueryBatch(patterns);
    std::vector<QueryResult> via_spans(patterns.size());
    service.QueryBatchInto(std::span<const PatternSpan>(spans),
                           std::span<QueryResult>(via_spans));
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      ASSERT_DOUBLE_EQ(expected[i].utility, via_texts[i].utility)
          << "threads=" << threads;
      ASSERT_EQ(expected[i].occurrences, via_texts[i].occurrences);
      ASSERT_EQ(expected[i].from_hash_table, via_texts[i].from_hash_table);
      ASSERT_DOUBLE_EQ(expected[i].utility, via_spans[i].utility)
          << "threads=" << threads;
      ASSERT_EQ(expected[i].occurrences, via_spans[i].occurrences);
      ASSERT_EQ(expected[i].from_hash_table, via_spans[i].from_hash_table);
    }
  }
}

TEST(LearnedSa, V3RoundTripWithAndWithoutLearnedSection) {
  const std::string dir = P_tmpdir;
  const std::string with_path = dir + "/learned_sa_test_with.bin";
  const std::string without_path = dir + "/learned_sa_test_without.bin";
  const WeightedString ws = testing::RandomWeighted(4000, 4, 0x2A);
  UsiOptions options;
  options.k = 64;
  UsiIndex index(ws, options);
  ASSERT_FALSE(index.learned_sa().empty());

  ASSERT_TRUE(index.SaveToFile(with_path, IndexFileFormat::kV3Mapped));
  UsiIndex::SaveOptions no_learned;
  no_learned.learned_section = false;
  ASSERT_TRUE(index.SaveToFile(without_path, IndexFileFormat::kV3Mapped,
                               no_learned));

  const std::unique_ptr<UsiIndex> with = UsiIndex::OpenMapped(ws, with_path);
  ASSERT_NE(with, nullptr);
  EXPECT_FALSE(with->learned_sa().empty());
  EXPECT_EQ(with->learned_sa().epsilon(), index.learned_sa().epsilon());
  EXPECT_EQ(with->learned_sa().num_segments(),
            index.learned_sa().num_segments());

  // A v3 image without the learned section — the exact shape of every
  // pre-extension file — opens and serves identically.
  const std::unique_ptr<UsiIndex> without =
      UsiIndex::OpenMapped(ws, without_path);
  ASSERT_NE(without, nullptr);
  EXPECT_TRUE(without->learned_sa().empty());

  // And v2 load refits: same answers again.
  const std::string v2_path = dir + "/learned_sa_test_v2.bin";
  ASSERT_TRUE(index.SaveToFile(v2_path, IndexFileFormat::kV2Heap));
  const std::unique_ptr<UsiIndex> v2 = UsiIndex::LoadFromFile(ws, v2_path);
  ASSERT_NE(v2, nullptr);
  EXPECT_FALSE(v2->learned_sa().empty());

  Rng rng(0x3B);
  for (int q = 0; q < 400; ++q) {
    const index_t len = 1 + static_cast<index_t>(rng.UniformBelow(12));
    Text p(len);
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    std::copy(ws.text().begin() + start, ws.text().begin() + start + len,
              p.begin());
    if (q % 5 == 4) p[0] = static_cast<Symbol>(rng.UniformBelow(256));
    const QueryResult a = index.Query(p);
    const QueryResult b = with->Query(p);
    const QueryResult c = without->Query(p);
    const QueryResult d = v2->Query(p);
    ASSERT_DOUBLE_EQ(a.utility, b.utility);
    ASSERT_EQ(a.occurrences, b.occurrences);
    ASSERT_DOUBLE_EQ(a.utility, c.utility);
    ASSERT_EQ(a.occurrences, c.occurrences);
    ASSERT_DOUBLE_EQ(a.utility, d.utility);
    ASSERT_EQ(a.occurrences, d.occurrences);
  }
  std::remove(with_path.c_str());
  std::remove(without_path.c_str());
  std::remove(v2_path.c_str());
}

}  // namespace
}  // namespace usi
