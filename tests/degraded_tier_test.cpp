// Unit tests for the per-text degradation tier (core/degraded_tier.hpp):
// the cache rung replays exact answers with bound 0, the sketch rung
// answers within its advertised epsilon * mass bound and never
// under-estimates, unknown patterns stay unanswered (kNone at the serving
// layer), Clear forgets learned state, and the telemetry snapshot reports
// the geometry usi_inspect prints.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/degraded_tier.hpp"

namespace usi {
namespace {

using testing::T;

QueryResult Exact(double utility, index_t occurrences) {
  QueryResult result;
  result.utility = utility;
  result.occurrences = occurrences;
  return result;
}

TEST(DegradedTier, KeyForIsDeterministicAndLengthAware) {
  const Text a = T("banana");
  const Text b = T("banana");
  const Text c = T("banan");
  EXPECT_TRUE(DegradedTier::KeyFor(a) == DegradedTier::KeyFor(b));
  EXPECT_FALSE(DegradedTier::KeyFor(a) == DegradedTier::KeyFor(c));
  EXPECT_EQ(DegradedTier::KeyFor(c).len, 5u);
}

TEST(DegradedTier, CacheHitReplaysExactAnswerWithZeroBound) {
  DegradedTier tier;
  const PatternKey key = DegradedTier::KeyFor(T("needle"));
  tier.RecordExact(key, Exact(12.5, 3));

  QueryResult got;
  ASSERT_TRUE(tier.TryAnswer(key, &got));
  EXPECT_EQ(got.provenance, AnswerProvenance::kCached);
  EXPECT_EQ(got.error_bound, 0.0);
  EXPECT_EQ(got.utility, 12.5);
  EXPECT_EQ(got.occurrences, 3u);
  EXPECT_FALSE(got.from_hash_table);

  const DegradedTierStats stats = tier.stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.lookups, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 1.0);
}

TEST(DegradedTier, SketchRungNeverUnderEstimatesAndHonorsBound) {
  // Cache rung disabled: every answer must come from the count-min sketch.
  DegradedTierOptions options;
  options.cache_capacity = 0;
  options.sketch_width = 256;
  options.sketch_depth = 4;
  DegradedTier tier(options);

  Rng rng(0x5EED);
  std::vector<PatternKey> keys;
  std::vector<QueryResult> exact;
  for (int i = 0; i < 2000; ++i) {
    // Unique by construction (the index is encoded in the prefix), so each
    // key has exactly one exact answer to compare against.
    Text pattern = {static_cast<Symbol>(i & 0xFF),
                    static_cast<Symbol>((i >> 8) & 0xFF)};
    const std::size_t len = 1 + rng.UniformBelow(12);
    for (std::size_t j = 0; j < len; ++j) {
      pattern.push_back(static_cast<Symbol>(rng.UniformBelow(8)));
    }
    const PatternKey key = DegradedTier::KeyFor(pattern);
    const QueryResult answer =
        Exact(rng.UniformDouble() * 10.0,
              static_cast<index_t>(1 + rng.UniformBelow(20)));
    tier.RecordExact(key, answer);
    keys.push_back(key);
    exact.push_back(answer);
  }

  const DegradedTierStats stats = tier.stats();
  ASSERT_GT(stats.sketched_keys, 0u);
  ASSERT_GT(stats.sketch_mass, 0.0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    QueryResult got;
    if (!tier.TryAnswer(keys[i], &got)) continue;  // Duplicate key dropped.
    EXPECT_EQ(got.provenance, AnswerProvenance::kApproximate);
    EXPECT_DOUBLE_EQ(got.error_bound, stats.epsilon * stats.sketch_mass);
    // One-sided CMS guarantee: never below the recorded exact answer. The
    // per-answer over-estimate can exceed the advertised bound only with
    // probability e^-depth; the aggregate check lives in sketch_bounds_test.
    EXPECT_GE(got.utility, exact[i].utility - 1e-9) << i;
    EXPECT_GE(got.occurrences, exact[i].occurrences) << i;
  }
}

TEST(DegradedTier, DuplicateRecordsEnterTheSketchOnce) {
  DegradedTierOptions options;
  options.cache_capacity = 0;
  DegradedTier tier(options);
  const PatternKey key = DegradedTier::KeyFor(T("hot"));
  for (int i = 0; i < 50; ++i) tier.RecordExact(key, Exact(4.0, 2));

  // Single insertion: the mass (and hence the estimate) must not scale
  // with how often the same pattern was served.
  const DegradedTierStats stats = tier.stats();
  EXPECT_EQ(stats.sketched_keys, 1u);
  EXPECT_DOUBLE_EQ(stats.sketch_mass, 4.0);
  QueryResult got;
  ASSERT_TRUE(tier.TryAnswer(key, &got));
  EXPECT_DOUBLE_EQ(got.utility, 4.0);
  EXPECT_EQ(got.occurrences, 2u);
}

TEST(DegradedTier, UnknownPatternStaysUnanswered) {
  DegradedTier tier;
  tier.RecordExact(DegradedTier::KeyFor(T("known")), Exact(1.0, 1));
  QueryResult got;
  got.utility = -7;  // Sentinel: a failed lookup must leave *out untouched.
  EXPECT_FALSE(tier.TryAnswer(DegradedTier::KeyFor(T("stranger")), &got));
  EXPECT_EQ(got.utility, -7.0);
  EXPECT_EQ(tier.stats().unanswered, 1u);
}

TEST(DegradedTier, ClearForgetsAnswersButKeepsCounters) {
  DegradedTier tier;
  const PatternKey key = DegradedTier::KeyFor(T("gone"));
  tier.RecordExact(key, Exact(2.0, 1));
  QueryResult got;
  ASSERT_TRUE(tier.TryAnswer(key, &got));

  tier.Clear();
  EXPECT_FALSE(tier.TryAnswer(key, &got))
      << "content changed: stale answers must not survive Clear";
  const DegradedTierStats stats = tier.stats();
  EXPECT_EQ(stats.cache_size, 0u);
  EXPECT_EQ(stats.sketched_keys, 0u);
  EXPECT_DOUBLE_EQ(stats.sketch_mass, 0.0);
  // Telemetry is cumulative across content versions.
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.lookups, 2u);
}

TEST(DegradedTier, PopularPatternsDisplaceColdOnesInTheCache) {
  // A cache far smaller than the key population forces displacement; the
  // BSL3/BSL4 admission rule must keep a heavily-queried pattern resident.
  DegradedTierOptions options;
  options.cache_capacity = 16;
  options.sketch_width = 0;  // Cache rung only.
  DegradedTier tier(options);

  const Text hot_pattern = T("hothothot");
  const PatternKey hot = DegradedTier::KeyFor(hot_pattern);
  Rng rng(0xCAFE);
  for (int round = 0; round < 400; ++round) {
    tier.RecordExact(hot, Exact(9.0, 9));  // Popularity accrues per record.
    Text cold;
    for (int j = 0; j < 6; ++j) {
      cold.push_back(static_cast<Symbol>(rng.UniformBelow(200)));
    }
    tier.RecordExact(DegradedTier::KeyFor(cold),
                     Exact(rng.UniformDouble(), 1));
  }
  QueryResult got;
  EXPECT_TRUE(tier.TryAnswer(hot, &got))
      << "the hot pattern must survive 400 cold insertions";
  EXPECT_EQ(got.provenance, AnswerProvenance::kCached);
  EXPECT_DOUBLE_EQ(got.utility, 9.0);
}

TEST(DegradedTier, StatsReportGeometryAndFootprint) {
  DegradedTierOptions options;
  options.cache_capacity = 100;   // Rounds up to 128.
  options.sketch_width = 1000;    // Rounds up to 1024.
  options.sketch_depth = 5;
  DegradedTier tier(options);
  const DegradedTierStats stats = tier.stats();
  EXPECT_EQ(stats.cache_capacity, 128u);
  EXPECT_EQ(stats.sketch_width, 1024u);
  EXPECT_EQ(stats.sketch_depth, 5u);
  EXPECT_DOUBLE_EQ(stats.epsilon, 2.718281828459045 / 1024.0);
  EXPECT_EQ(stats.cache_size, 0u);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.0);
  EXPECT_GT(tier.SizeInBytes(),
            1024u * 5u * (sizeof(double) + sizeof(u32)));
}

}  // namespace
}  // namespace usi
