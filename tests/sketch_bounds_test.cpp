// Satellite: deterministic-seed verification that the probabilistic
// counting structures honor their advertised (epsilon, delta) guarantees.
//
// CountMinSketch with width w and depth d promises, per query Q over a
// stream of total mass M:
//   * one-sided: Estimate(Q) >= true_count(Q), always;
//   * additive:  Estimate(Q) <= true_count(Q) + epsilon * M with
//     probability >= 1 - delta, where epsilon = e / w and delta = e^-d.
// The suite replays adversarial (uniform flood, far more keys than
// buckets) and Zipf-skewed streams with fixed seeds and checks both
// clauses: the one-sided clause on every key, the additive clause as an
// empirical violation fraction <= delta. Seeds are fixed, so the checks
// are exact replay, not flaky sampling.
//
// DecaySketch (HeavyKeeper) promises no hard bound — it is an admission
// signal — so its check is behavioral: hot items keep estimates near their
// true counts and order above cold items.

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/hash/count_min_sketch.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

constexpr double kEuler = 2.718281828459045;

struct Stream {
  std::map<u64, u32> exact;
  u64 mass = 0;
};

Stream AdversarialStream(std::size_t distinct_keys, u64 seed) {
  // Uniform flood: every key occurs a handful of times, and there are far
  // more keys than sketch buckets — the worst shape for bucket sharing
  // (no heavy hitter absorbs the collisions).
  Stream stream;
  Rng rng(seed);
  for (std::size_t i = 0; i < distinct_keys; ++i) {
    const u64 key = rng.Next();
    const u32 count = static_cast<u32>(1 + rng.UniformBelow(4));
    stream.exact[key] += count;
    stream.mass += count;
  }
  return stream;
}

Stream ZipfStream(std::size_t distinct_keys, std::size_t draws, double s,
                  u64 seed) {
  Stream stream;
  Rng rng(seed);
  std::vector<u64> keys(distinct_keys);
  for (u64& key : keys) key = rng.Next();
  std::vector<double> cdf(distinct_keys);
  double total = 0;
  for (std::size_t r = 0; r < distinct_keys; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = total;
  }
  for (std::size_t q = 0; q < draws; ++q) {
    const double draw = rng.UniformDouble() * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
    const u64 key = keys[std::min(rank, distinct_keys - 1)];
    stream.exact[key] += 1;
    stream.mass += 1;
  }
  return stream;
}

/// Feeds \p stream into a (width, depth) sketch and checks both clauses of
/// the CMS guarantee over every distinct key.
void CheckCmsBounds(const Stream& stream, std::size_t width,
                    std::size_t depth, u64 seed) {
  CountMinSketch sketch(width, depth, seed);
  for (const auto& [key, count] : stream.exact) sketch.Add(key, count);

  const double epsilon = kEuler / static_cast<double>(width);
  const double delta = std::exp(-static_cast<double>(depth));
  const double slack = epsilon * static_cast<double>(stream.mass);
  std::size_t violations = 0;
  for (const auto& [key, count] : stream.exact) {
    const u32 estimate = sketch.Estimate(key);
    ASSERT_GE(estimate, count) << "CMS must never under-estimate";
    if (static_cast<double>(estimate) >
        static_cast<double>(count) + slack) {
      ++violations;
    }
  }
  const double violation_fraction =
      static_cast<double>(violations) /
      static_cast<double>(stream.exact.size());
  EXPECT_LE(violation_fraction, delta)
      << "width=" << width << " depth=" << depth
      << " mass=" << stream.mass << " keys=" << stream.exact.size();
}

TEST(SketchBounds, CountMinHoldsOnAdversarialFlood) {
  // 20k distinct keys over 256 buckets/row: ~80 keys share every bucket.
  CheckCmsBounds(AdversarialStream(20'000, 0xAD5E), /*width=*/256,
                 /*depth=*/4, /*seed=*/0xC3C3);
}

TEST(SketchBounds, CountMinHoldsOnZipfTraffic) {
  CheckCmsBounds(ZipfStream(5'000, 200'000, /*s=*/1.1, 0x21BF),
                 /*width=*/512, /*depth=*/4, /*seed=*/0xC3C3);
}

TEST(SketchBounds, CountMinHoldsAtShallowDepth) {
  // depth 2 => delta ~= 13.5%: the loosest geometry the tier would ship;
  // the empirical violation rate must still sit under it.
  CheckCmsBounds(AdversarialStream(10'000, 0xF00D), /*width=*/128,
                 /*depth=*/2, /*seed=*/0xBEEF);
}

TEST(SketchBounds, CountMinDeterministicForFixedSeed) {
  const Stream stream = ZipfStream(1'000, 20'000, 1.0, 0x7777);
  CountMinSketch a(256, 4, 0x1234);
  CountMinSketch b(256, 4, 0x1234);
  for (const auto& [key, count] : stream.exact) {
    a.Add(key, count);
    b.Add(key, count);
  }
  for (const auto& [key, count] : stream.exact) {
    EXPECT_EQ(a.Estimate(key), b.Estimate(key));
  }
}

TEST(SketchBounds, HeavyKeeperTracksHotItemsUnderZipf) {
  // A Zipf stream through the decay sketch: the hottest ranks must retain
  // estimates close to their true counts (decay only evicts cold items),
  // and dominate any cold item's estimate — that ordering is exactly what
  // cache admission consumes.
  const std::size_t distinct = 2'000;
  Stream stream = ZipfStream(distinct, 100'000, 1.2, 0x1EAF);
  DecaySketch sketch(1'024, 4, 1.08, 0xDECA1);
  Rng rng(0x1EAF);
  std::vector<u64> keys(distinct);
  for (u64& key : keys) key = rng.Next();  // Same chain as ZipfStream.
  for (const auto& [key, count] : stream.exact) {
    for (u32 i = 0; i < count; ++i) sketch.Insert(key);
  }

  // keys[0] is rank 0 — the hottest item by construction.
  const u32 hot_true = stream.exact.at(keys[0]);
  const u32 hot_estimate = sketch.Estimate(keys[0]);
  ASSERT_GT(hot_true, 10'000u);
  EXPECT_GE(hot_estimate, hot_true / 2)
      << "decay must not wipe out the hottest item";
  EXPECT_LE(hot_estimate, hot_true)
      << "HeavyKeeper counts only fingerprint-matched inserts";

  u32 max_cold = 0;
  for (std::size_t rank = distinct / 2; rank < distinct; ++rank) {
    max_cold = std::max(max_cold, sketch.Estimate(keys[rank]));
  }
  EXPECT_GT(hot_estimate, 4 * max_cold)
      << "hot/cold ordering must be unambiguous for admission";
}

}  // namespace
}  // namespace usi
