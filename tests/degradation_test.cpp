// Degradation ladder (exact -> hot-pattern cache -> sketch estimate ->
// none) at the serving tier, plus UnregisterText lifecycle. The chaos cases
// drive the ladder with armed failpoints (quarantined build lanes, mapped
// faults, overload) and check *differentially* against a direct exact
// index: every degraded answer must carry honest provenance and an error
// bound the measured error respects. Runs under both the "concurrency" and
// "chaos" CI labels; failpoint-dependent cases skip when USI_FAILPOINTS is
// off.

#include <atomic>
#include <chrono>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/util/failpoint.hpp"

namespace usi {
namespace {

using testing::RandomWeighted;

std::vector<Text> PatternsFor(const WeightedString& ws, u64 seed,
                              int present = 48, int absent = 12) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int i = 0; i < present; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(8, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  for (int i = 0; i < absent; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(1, 6)),
                            static_cast<Symbol>(200 + i)));
  }
  return patterns;
}

std::vector<QueryResult> DirectAnswers(const UsiIndex& index,
                                       const std::vector<Text>& patterns) {
  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = index.Query(patterns[i]);
  }
  return want;
}

std::vector<MultiQuery> QueriesFor(std::string_view id,
                                   const std::vector<Text>& patterns) {
  std::vector<MultiQuery> queries;
  queries.reserve(patterns.size());
  for (const Text& p : patterns) queries.push_back({id, p});
  return queries;
}

/// The ladder's correctness contract, slot by slot, against the exact
/// oracle: kExact/kCached answers match exactly (bound 0), kApproximate
/// answers never under-shoot and over-shoot by at most their advertised
/// bound, kNone slots are zeroed fillers.
void ExpectWithinBounds(const std::vector<QueryResult>& got,
                        const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    switch (got[i].provenance) {
      case AnswerProvenance::kExact:
      case AnswerProvenance::kCached:
        EXPECT_EQ(got[i].utility, want[i].utility) << "slot " << i;
        EXPECT_EQ(got[i].occurrences, want[i].occurrences) << "slot " << i;
        EXPECT_EQ(got[i].error_bound, 0.0) << "slot " << i;
        break;
      case AnswerProvenance::kApproximate:
        EXPECT_GE(got[i].utility, want[i].utility - 1e-9) << "slot " << i;
        EXPECT_LE(got[i].utility, want[i].utility + got[i].error_bound + 1e-9)
            << "slot " << i << ": measured error exceeds advertised bound";
        EXPECT_GE(got[i].occurrences, want[i].occurrences) << "slot " << i;
        break;
      case AnswerProvenance::kNone:
        EXPECT_EQ(got[i].utility, 0.0) << "slot " << i;
        EXPECT_EQ(got[i].occurrences, 0u) << "slot " << i;
        break;
    }
  }
}

class DegradationTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(DegradationTest, ProvenanceNamesAreDistinct) {
  const AnswerProvenance all[] = {
      AnswerProvenance::kExact, AnswerProvenance::kCached,
      AnswerProvenance::kApproximate, AnswerProvenance::kNone};
  std::vector<std::string> names;
  for (AnswerProvenance p : all) {
    const std::string name = AnswerProvenanceName(p);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST_F(DegradationTest, ExactPathTagsEveryAnswerExact) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2500, 8, 201);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws, 202);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  std::vector<QueryResult> results(queries.size());
  ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].provenance, AnswerProvenance::kExact) << i;
    EXPECT_EQ(results[i].error_bound, 0.0) << i;
  }
}

TEST_F(DegradationTest, QuarantinedTextAnswersDegradedInsteadOfNotReady) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_build_retries = 0;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2000, 8, 211);

  failpoint::Arm("multi.build", failpoint::Action::kThrow);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kFailed);

  const std::vector<Text> patterns = PatternsFor(ws, 212);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  std::vector<QueryResult> results(queries.size(), QueryResult{-1, 777});

  // Without the opt-in: the PR 8 contract, fail-clean with kNotReady.
  EXPECT_EQ(service.QueryBatchInto(queries, results),
            ServeStatus::kNotReady);
  EXPECT_EQ(results[0].occurrences, 777u) << "rejection must not touch slots";

  // With the opt-in: the batch is answered. Nothing was ever served
  // exactly, so every slot is an honest kNone filler — but the status is
  // kDegraded, not a rejection.
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDegraded);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.provenance, AnswerProvenance::kNone);
    EXPECT_EQ(r.occurrences, 0u);
  }
  EXPECT_EQ(service.stats().degraded_batches, 1u);
}

// The acceptance scenario: a mapped text is warmed, then its backing
// mapping faults persistently AND the build lane is poisoned, so recovery
// quarantines. With allow_degraded every batch still answers — kDegraded,
// never kIndexUnavailable / kNotReady — with per-slot provenance and
// bounds the measured error respects.
TEST_F(DegradationTest, MappedFaultPlusQuarantineServesWithinBounds) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString ws = RandomWeighted(3000, 8, 221);
  UsiOptions build;
  build.k = 150;
  build.threads = 1;
  const UsiIndex direct(ws, build);
  const std::string path = ::testing::TempDir() + "degr_mapped.bin";
  ASSERT_TRUE(direct.SaveToFile(path, IndexFileFormat::kV3Mapped));

  UsiMultiServiceOptions options;
  options.threads = 2;
  options.default_build = build;
  options.max_build_retries = 0;
  UsiMultiService service(options);
  ASSERT_GT(service.RegisterTextFromFile("m", ws, path), 0u);

  const std::vector<Text> patterns = PatternsFor(ws, 222);
  const std::vector<MultiQuery> queries = QueriesFor("m", patterns);
  const std::vector<QueryResult> want = DirectAnswers(direct, patterns);
  std::vector<QueryResult> results(queries.size());

  // Warm phase: exact serving records every (pattern, answer) pair.
  ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);
  ExpectWithinBounds(results, want);

  // Chaos phase: every engine touch faults, and the recovery rebuild the
  // demotion schedules dies in the poisoned build lane (quarantine).
  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError);
  failpoint::Arm("multi.build", failpoint::Action::kThrow);

  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  for (int round = 0; round < 5; ++round) {
    const ServeStatus status =
        service.QueryBatchInto(queries, results, batch_options);
    EXPECT_EQ(status, ServeStatus::kDegraded) << "round " << round;
    ExpectWithinBounds(results, want);
    // The warm phase served every pattern exactly, so the tier answers all
    // of them (cache or sketch) — no slot falls through to kNone.
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_NE(results[i].provenance, AnswerProvenance::kNone)
          << "round " << round << " slot " << i;
    }
  }
  const UsiMultiStats stats = service.stats();
  EXPECT_EQ(stats.degraded_batches, 5u);
  EXPECT_EQ(stats.degraded_answers, 5u * queries.size());
  EXPECT_EQ(stats.index_unavailable, 0u)
      << "opted-in batches must degrade, not fail";

  // Tier telemetry is visible per text.
  const std::optional<UsiTextStats> text_stats = service.StatsFor("m");
  ASSERT_TRUE(text_stats.has_value());
  ASSERT_TRUE(text_stats->degraded.has_value());
  EXPECT_GE(text_stats->degraded->records, queries.size());
  EXPECT_GT(text_stats->degraded->cache_hits, 0u);
  EXPECT_GT(text_stats->degraded->CacheHitRate(), 0.0);
  std::remove(path.c_str());
}

TEST_F(DegradationTest, FaultedBuiltGenerationFallsBackToTier) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2500, 8, 231);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws, 232);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  std::vector<QueryResult> results(queries.size());
  ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);
  UsiOptions direct_options;
  direct_options.threads = 1;
  const UsiIndex direct(ws, direct_options);
  const std::vector<QueryResult> want = DirectAnswers(direct, patterns);

  // Same batch, faulting engine: without the opt-in this is
  // kIndexUnavailable (PR 8); with it, tier answers within bounds.
  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError,
                 /*fires=*/1);
  EXPECT_EQ(service.QueryBatchInto(queries, results),
            ServeStatus::kIndexUnavailable);

  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError,
                 /*fires=*/1);
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDegraded);
  ExpectWithinBounds(results, want);
  for (const QueryResult& r : results) {
    EXPECT_NE(r.provenance, AnswerProvenance::kNone);
  }
}

TEST_F(DegradationTest, DeadlineExpiryFillsUnreachedSlotsFromTier) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2500, 8, 241);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws, 242);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  std::vector<QueryResult> results(queries.size());
  ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);
  UsiOptions direct_options;
  direct_options.threads = 1;
  const UsiIndex direct(ws, direct_options);
  const std::vector<QueryResult> want = DirectAnswers(direct, patterns);

  // Expired deadline, no opt-in: unreached slots are kNone fillers.
  MultiBatchOptions batch_options;
  batch_options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDeadlineExceeded);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.provenance, AnswerProvenance::kNone);
  }

  // Expired deadline with the opt-in: the status still reports the missed
  // deadline, but the unreached slots carry tier answers within bounds.
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDeadlineExceeded);
  ExpectWithinBounds(results, want);
  for (const QueryResult& r : results) {
    EXPECT_NE(r.provenance, AnswerProvenance::kNone)
        << "warm tier must fill every unreached slot";
  }
}

TEST_F(DegradationTest, OverloadShedsToTierNotRejection) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_inflight_cost_ms = 1e-6;  // Any concurrent pair overflows.
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(4000, 8, 251);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  std::vector<Text> patterns = PatternsFor(ws, 252);
  std::vector<MultiQuery> queries;
  for (int rep = 0; rep < 40; ++rep) {
    for (const Text& p : patterns) queries.push_back({"t", p});
  }
  std::vector<QueryResult> warm(queries.size());
  ASSERT_EQ(service.QueryBatchInto(queries, warm), ServeStatus::kOk);
  UsiOptions direct_options;
  direct_options.threads = 1;
  const UsiIndex direct(ws, direct_options);
  std::vector<QueryResult> want;
  for (const MultiQuery& q : queries) {
    want.push_back(direct.Query(q.pattern));
  }

  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  std::atomic<u64> ok{0}, degraded{0}, other{0};
  for (int round = 0; round < 25 && degraded.load() == 0; ++round) {
    constexpr int kThreads = 4;
    std::latch start(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        std::vector<QueryResult> results(queries.size());
        start.arrive_and_wait();
        const ServeStatus status =
            service.QueryBatchInto(queries, results, batch_options);
        if (status == ServeStatus::kOk) {
          ok.fetch_add(1);
        } else if (status == ServeStatus::kDegraded) {
          degraded.fetch_add(1);
          ExpectWithinBounds(results, want);
        } else {
          other.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_GT(ok.load(), 0u) << "someone must always be admitted";
  EXPECT_GT(degraded.load(), 0u) << "sheds must degrade, not reject";
  EXPECT_EQ(other.load(), 0u)
      << "with allow_degraded no batch is rejected outright";
  EXPECT_EQ(service.stats().overload_rejected, 0u);
  EXPECT_GE(service.stats().degraded_batches, degraded.load());
}

TEST_F(DegradationTest, UnknownTextStaysAllOrNothingWhenDegraded) {
  UsiMultiServiceOptions options;
  options.threads = 1;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(1500, 8, 261);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const Text pattern = ws.Fragment(0, 4);
  const std::vector<MultiQuery> queries = {{"t", pattern}, {"ghost", pattern}};
  std::vector<QueryResult> results(queries.size(), QueryResult{-1, 777});
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kUnknownText);
  EXPECT_EQ(results[0].occurrences, 777u)
      << "kUnknownText must not touch result slots, degraded or not";
}

TEST_F(DegradationTest, DisabledTierKeepsFailCleanBehavior) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 1;
  options.max_build_retries = 0;
  options.enable_degraded_tier = false;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(1500, 8, 271);

  failpoint::Arm("multi.build", failpoint::Action::kThrow);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kFailed);

  const std::vector<MultiQuery> queries = {{"t", ws.Fragment(0, 4)}};
  std::vector<QueryResult> results(1);
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kNotReady)
      << "allow_degraded is a no-op when the tier is disabled";

  failpoint::DisarmAll();
  service.UpdateText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->degraded.has_value());
}

TEST_F(DegradationTest, ContentUpdateForgetsStaleTierAnswers) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_build_retries = 0;
  UsiMultiService service(options);
  const WeightedString ws1 = RandomWeighted(2000, 8, 281);
  const WeightedString ws2 = RandomWeighted(2100, 8, 282);
  service.SubmitText("t", ws1);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws1, 283);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  std::vector<QueryResult> results(queries.size());
  ASSERT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk);

  // New content whose build dies: the tier was reset by UpdateText, so the
  // answers learned over ws1 must NOT resurface as "cached, bound 0" —
  // they describe the wrong text. Honest kNone is the only valid answer.
  failpoint::Arm("multi.build", failpoint::Action::kThrow);
  service.UpdateText("t", ws2);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kFailed);
  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError);
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = true;
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDegraded);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.provenance, AnswerProvenance::kNone)
        << "stale answers across a content change would be silent lies";
  }
}

// ---------------------------------------------------------------------------
// UnregisterText (satellite): RCU removal, queue purge, no hangs.

TEST_F(DegradationTest, UnregisterMakesTextUnknown) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(1500, 8, 301);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  EXPECT_TRUE(service.UnregisterText("t"));
  EXPECT_FALSE(service.HasText("t"));
  EXPECT_EQ(service.TextState("t"), BuildState::kUnknown);
  EXPECT_EQ(service.stats().texts, 0u);
  QueryResult result;
  EXPECT_EQ(service.Query("t", ws.Fragment(0, 4), result),
            ServeStatus::kUnknownText);
  EXPECT_FALSE(service.UnregisterText("t")) << "second removal reports false";
  EXPECT_FALSE(service.RemoveText("t")) << "alias shares the semantics";

  // The id is immediately reusable with fresh content.
  const WeightedString ws2 = RandomWeighted(1600, 8, 302);
  service.SubmitText("t", ws2);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.Query("t", ws2.Fragment(0, 4), result), ServeStatus::kOk);
}

TEST_F(DegradationTest, UnregisterPurgesQueuedBuildsWithoutHanging) {
  UsiMultiServiceOptions options;
  options.threads = 1;  // One worker: the build lane serializes everything.
  UsiMultiService service(options);
  // A large build hogs the lane while the victim's builds sit queued.
  const WeightedString hog = RandomWeighted(60'000, 8, 311);
  const WeightedString ws = RandomWeighted(1500, 8, 312);
  service.SubmitText("hog", hog);
  service.SubmitText("t", ws);
  service.UpdateText("t", ws);  // A second queued job for the same text.

  EXPECT_TRUE(service.UnregisterText("t"));
  // The dropped jobs are accounted as completed: this must return, not hang.
  service.WaitForBuilds();
  EXPECT_FALSE(service.HasText("t"));
  EXPECT_EQ(service.WaitForText("t"), BuildState::kUnknown);
  EXPECT_EQ(service.WaitForText("hog"), BuildState::kReady);
  const UsiMultiStats stats = service.stats();
  EXPECT_EQ(stats.builds_completed, stats.builds_scheduled)
      << "purged jobs must still balance the build ledger";
}

TEST_F(DegradationTest, InFlightBatchesSurviveConcurrentUnregister) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(3000, 8, 321);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws, 322);
  const std::vector<MultiQuery> queries = QueriesFor("t", patterns);
  UsiOptions direct_options;
  direct_options.threads = 1;
  const UsiIndex direct(ws, direct_options);
  const std::vector<QueryResult> want = DirectAnswers(direct, patterns);

  // Readers hammer while the main thread unregisters mid-stream: every
  // batch must be either fully exact (pinned generation, RCU) or a clean
  // kUnknownText rejection — never a crash or a half answer.
  constexpr int kThreads = 4;
  std::latch start(kThreads + 1);
  std::atomic<u64> served{0}, unknown{0}, anomalies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<QueryResult> results(queries.size());
      start.arrive_and_wait();
      for (int round = 0; round < 50; ++round) {
        const ServeStatus status = service.QueryBatchInto(queries, results);
        if (status == ServeStatus::kOk) {
          served.fetch_add(1);
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].utility != want[i].utility ||
                results[i].occurrences != want[i].occurrences) {
              anomalies.fetch_add(1);
            }
          }
        } else if (status == ServeStatus::kUnknownText) {
          unknown.fetch_add(1);
        } else {
          anomalies.fetch_add(1);
        }
      }
    });
  }
  start.arrive_and_wait();
  EXPECT_TRUE(service.UnregisterText("t"));
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(unknown.load(), 0u) << "post-removal batches must reject";
}

}  // namespace
}  // namespace usi
