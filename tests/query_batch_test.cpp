// The batch-aware query hot path: UsiIndex::QueryBatch (shared Karp-Rabin
// powers, sorted prefix-hash reuse, prefetch probing) and QueryAllWindows
// (rolling-hash sliding windows) must answer exactly like per-pattern
// Query, for both miners, with and without scratch reuse; UsiService's
// QueryBatchInto must agree at every thread count.

#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"

namespace usi {
namespace {

/// Mixed workload: substrings of the text (frequent ones hit H, rare ones
/// fall back to SA + PSW), patterns absent from the text, empty and
/// oversized patterns — every answer path in one batch.
std::vector<Text> MixedPatterns(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int i = 0; i < 300; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(12, ws.size() - start);
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, max_len));
    patterns.push_back(ws.Fragment(start, len));
  }
  for (int i = 0; i < 60; ++i) {
    // Symbols beyond the generator's sigma never occur in the text.
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(1, 8)),
                            static_cast<Symbol>(200 + i % 50)));
  }
  patterns.push_back(Text{});                      // Empty pattern.
  patterns.push_back(Text(ws.size() + 5, 1));      // Longer than the text.
  return patterns;
}

void ExpectSameResults(const std::vector<QueryResult>& got,
                       const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].utility, want[i].utility) << "pattern " << i;
    EXPECT_EQ(got[i].occurrences, want[i].occurrences) << "pattern " << i;
    EXPECT_EQ(got[i].from_hash_table, want[i].from_hash_table)
        << "pattern " << i;
  }
}

class QueryBatchMinerTest : public ::testing::TestWithParam<UsiMiner> {};

TEST_P(QueryBatchMinerTest, BatchMatchesPerQueryOnAllAnswerPaths) {
  const WeightedString ws = testing::RandomWeighted(600, 4, 0xAB);
  UsiOptions options;
  options.k = 80;
  options.miner = GetParam();
  UsiIndex index(ws, options);
  const std::vector<Text> patterns = MixedPatterns(ws, 0x1234);

  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = static_cast<const UsiIndex&>(index).Query(patterns[i]);
  }

  // Null scratch (call-local buffers).
  std::vector<QueryResult> got(patterns.size());
  index.QueryBatch(patterns, got, nullptr);
  ExpectSameResults(got, want);

  // Reused scratch across several batches (the steady-state serving shape).
  QueryScratch scratch;
  for (int round = 0; round < 3; ++round) {
    std::fill(got.begin(), got.end(), QueryResult{});
    index.QueryBatch(patterns, got, &scratch);
    ExpectSameResults(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(BothMiners, QueryBatchMinerTest,
                         ::testing::Values(UsiMiner::kExact,
                                           UsiMiner::kApproximate));

TEST(QueryBatch, RepeatHeavyLongPatternBatchMatchesPerQuery) {
  // Long patterns with massive duplication trigger the clustered (sorted,
  // LCP-shared) fingerprint stage; the answers must be indistinguishable
  // from the direct-hash path and from per-pattern Query.
  const WeightedString ws = testing::RandomWeighted(1'000, 4, 0x7A57);
  UsiOptions options;
  options.k = 120;
  UsiIndex index(ws, options);

  Rng rng(0xC1);
  std::vector<Text> distinct;
  for (int i = 0; i < 12; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size() - 80));
    distinct.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(24, 64))));
  }
  std::vector<Text> patterns;
  for (int i = 0; i < 400; ++i) {
    patterns.push_back(distinct[rng.UniformBelow(distinct.size())]);
  }

  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = static_cast<const UsiIndex&>(index).Query(patterns[i]);
  }
  QueryScratch scratch;
  std::vector<QueryResult> got(patterns.size());
  index.QueryBatch(patterns, got, &scratch);
  ExpectSameResults(got, want);
}

TEST(QueryBatch, HitsComeFromTheHashTable) {
  const WeightedString ws = testing::RandomWeighted(500, 3, 0xCD);
  UsiOptions options;
  options.k = 60;
  UsiIndex index(ws, options);
  // Batch of patterns drawn from the text; at least the most frequent ones
  // must be answered from H, and the batch path must agree with Query on
  // exactly which.
  const std::vector<Text> patterns = MixedPatterns(ws, 0x77);
  std::vector<QueryResult> results(patterns.size());
  index.QueryBatch(patterns, results, nullptr);
  std::size_t hits = 0;
  for (const QueryResult& r : results) hits += r.from_hash_table ? 1 : 0;
  EXPECT_GT(hits, 0u) << "a frequent-substring workload must hit H";
}

TEST(QueryAllWindows, MatchesPerWindowQuery) {
  const WeightedString ws = testing::RandomWeighted(400, 3, 0xEF);
  UsiOptions options;
  options.k = 50;
  UsiIndex index(ws, options);

  // A document that shares structure with the text (its own prefix) plus a
  // tail that does not occur, so windows exercise hits, fallbacks and
  // zero-occurrence answers.
  Text document(ws.text().begin(), ws.text().begin() + 200);
  for (int i = 0; i < 40; ++i) document.push_back(static_cast<Symbol>(220));

  for (const index_t window_len : {1u, 3u, 7u, 16u}) {
    const std::size_t windows = document.size() - window_len + 1;
    std::vector<QueryResult> got(windows);
    index.QueryAllWindows(document, window_len, got);
    for (std::size_t i = 0; i < windows; ++i) {
      const QueryResult want = static_cast<const UsiIndex&>(index).Query(
          std::span<const Symbol>(document.data() + i, window_len));
      ASSERT_DOUBLE_EQ(got[i].utility, want.utility)
          << "len=" << window_len << " window " << i;
      ASSERT_EQ(got[i].occurrences, want.occurrences);
      ASSERT_EQ(got[i].from_hash_table, want.from_hash_table);
    }
  }
}

TEST(QueryAllWindows, DegenerateShapesAreNoOps) {
  const WeightedString ws = testing::RandomWeighted(100, 3, 0x11);
  UsiOptions options;
  options.k = 10;
  UsiIndex index(ws, options);
  const Text document = ws.Fragment(0, 10);
  std::vector<QueryResult> results(1);
  index.QueryAllWindows(document, 0, results);   // Zero-length window.
  index.QueryAllWindows(document, 11, results);  // Window beyond document.
  index.QueryAllWindows(Text{}, 4, results);     // Empty document.
}

TEST(UsiServiceBatch, IntoMatchesReturningFormAtEveryThreadCount) {
  const WeightedString ws = testing::RandomWeighted(800, 4, 0x5E);
  UsiOptions options;
  options.k = 100;
  UsiIndex index(ws, options);
  const std::vector<Text> patterns = MixedPatterns(ws, 0x99);

  UsiServiceOptions sequential;
  sequential.threads = 1;
  UsiService reference(index, sequential);
  const std::vector<QueryResult> want = reference.QueryBatch(patterns);

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    UsiServiceOptions service_options;
    service_options.threads = threads;
    service_options.min_shard_size = 16;
    UsiService service(index, service_options);
    std::vector<QueryResult> got(patterns.size());
    // Twice: the second run reuses warmed per-worker scratch.
    service.QueryBatchInto(patterns, got);
    service.QueryBatchInto(patterns, got);
    ExpectSameResults(got, want);
    EXPECT_EQ(service.last_batch().patterns, patterns.size());
    std::size_t hits = 0;
    for (const QueryResult& r : want) hits += r.from_hash_table ? 1 : 0;
    EXPECT_EQ(service.last_batch().hash_hits, hits);
  }
}

TEST(UsiServiceBatch, CumulativeTotalsAndPerBatchStatsAccumulate) {
  const WeightedString ws = testing::RandomWeighted(600, 4, 0x77);
  UsiOptions options;
  options.k = 80;
  UsiIndex index(ws, options);
  const std::vector<Text> patterns = MixedPatterns(ws, 0x88);

  UsiServiceOptions sequential;
  sequential.threads = 1;
  UsiService service(index, sequential);
  std::size_t hits_per_batch = 0;

  const int rounds = 4;
  std::vector<QueryResult> got(patterns.size());
  for (int round = 0; round < rounds; ++round) {
    // The UsiBatchStats out-parameter is the concurrent-safe per-batch
    // telemetry channel; it must agree with last_batch() when batches are
    // sequential.
    UsiBatchStats batch;
    service.QueryBatchInto(patterns, got, &batch);
    EXPECT_EQ(batch.patterns, patterns.size());
    EXPECT_EQ(batch.hash_hits, service.last_batch().hash_hits);
    hits_per_batch = batch.hash_hits;
  }
  EXPECT_GT(hits_per_batch, 0u);

  // Unlike last_batch() (overwritten per batch), totals() accumulate for
  // the service's lifetime — the counters a supervising tier reports.
  const UsiServiceTotals totals = service.totals();
  EXPECT_EQ(totals.batches, static_cast<u64>(rounds));
  EXPECT_EQ(totals.queries, static_cast<u64>(rounds) * patterns.size());
  EXPECT_EQ(totals.hash_hits, static_cast<u64>(rounds) * hits_per_batch);
}

TEST(UsiServiceBatch, CachingBaselineStillServedInOrder) {
  const WeightedString ws = testing::RandomWeighted(400, 3, 0x21);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);
  BaselineContext context;
  context.ws = &ws;
  context.sa = &sa;
  context.psw = &psw;
  context.cache_capacity = 8;

  const std::vector<Text> patterns = MixedPatterns(ws, 0x42);
  // Two BSL2 instances: one queried directly in order, one through the
  // batch path. LRU answers depend on order, so equality proves the
  // service kept sequential in-order serving for caching engines.
  auto direct = MakeBaseline(BaselineKind::kBsl2, context);
  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = direct->Query(patterns[i]);
  }

  auto served = MakeBaseline(BaselineKind::kBsl2, context);
  UsiServiceOptions service_options;
  service_options.threads = 4;  // Must be ignored: engine is not concurrent.
  UsiService service(*served, service_options);
  std::vector<QueryResult> got(patterns.size());
  service.QueryBatchInto(patterns, got);
  ExpectSameResults(got, want);
  EXPECT_EQ(service.last_batch().threads_used, 1u);
}

}  // namespace
}  // namespace usi
