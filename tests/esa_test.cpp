// Tests for the ESA lcp-interval enumeration: node frequencies, q(v) sums,
// interval consistency — all against brute-force substring statistics.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/suffix/esa.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

struct EsaView {
  std::vector<index_t> sa;
  std::vector<index_t> lcp;
  std::vector<SuffixTreeNode> nodes;
};

EsaView BuildView(const Text& text) {
  EsaView view;
  view.sa = BuildSuffixArray(text);
  view.lcp = BuildLcpArray(text, view.sa);
  view.nodes = CollectSuffixTreeNodes(
      view.lcp, DenseSuffixLengths(view.sa, static_cast<index_t>(text.size())));
  return view;
}

TEST(Esa, BananaNodeInventory) {
  const Text text = testing::T("banana");
  const EsaView view = BuildView(text);
  // Every distinct substring must be covered by exactly one node's edge range.
  u64 total_distinct = 0;
  for (const SuffixTreeNode& node : view.nodes) {
    total_distinct += node.edge_length();
  }
  EXPECT_EQ(total_distinct, testing::BruteSubstringFrequencies(text).size());
}

TEST(Esa, NodeFrequenciesMatchBruteForce) {
  const Text text = testing::T("abracadabra");
  const EsaView view = BuildView(text);
  const auto brute = testing::BruteSubstringFrequencies(text);
  for (const SuffixTreeNode& node : view.nodes) {
    // Every substring represented by this node (each length on its edge)
    // occurs exactly node.frequency() times.
    for (index_t len = node.parent_depth + 1; len <= node.depth; ++len) {
      std::string s;
      for (index_t k = 0; k < len; ++k) {
        s.push_back(static_cast<char>(text[view.sa[node.lb] + k]));
      }
      auto it = brute.find(s);
      ASSERT_NE(it, brute.end()) << s;
      EXPECT_EQ(node.frequency(), it->second) << s;
    }
  }
}

TEST(Esa, IntervalsContainExactlyTheOccurrences) {
  const Text text = MakeDnaLike(400, 12).text();
  const EsaView view = BuildView(text);
  int checked = 0;
  for (const SuffixTreeNode& node : view.nodes) {
    if (node.depth > 12 || checked > 200) continue;
    ++checked;
    const Text pattern(text.begin() + view.sa[node.lb],
                       text.begin() + view.sa[node.lb] + node.depth);
    const auto brute = testing::BruteOccurrences(text, pattern);
    ASSERT_EQ(brute.size(), node.frequency());
    // SA[lb..rb] is exactly the occurrence set.
    std::vector<index_t> from_interval;
    for (index_t k = node.lb; k <= node.rb; ++k) {
      from_interval.push_back(view.sa[k]);
    }
    std::sort(from_interval.begin(), from_interval.end());
    EXPECT_EQ(from_interval, brute);
  }
  EXPECT_GT(checked, 10);
}

class EsaSweep : public ::testing::TestWithParam<std::pair<index_t, u32>> {};

TEST_P(EsaSweep, DistinctSubstringCountMatchesBruteForce) {
  const auto [n, sigma] = GetParam();
  const Text text = testing::RandomText(n, sigma, n * 31 + sigma);
  const EsaView view = BuildView(text);
  u64 total = 0;
  for (const SuffixTreeNode& node : view.nodes) total += node.edge_length();
  EXPECT_EQ(total, testing::BruteSubstringFrequencies(text).size());
}

TEST_P(EsaSweep, StructuralInvariants) {
  const auto [n, sigma] = GetParam();
  const Text text = testing::RandomText(n, sigma, n * 17 + sigma);
  const EsaView view = BuildView(text);
  for (const SuffixTreeNode& node : view.nodes) {
    EXPECT_LT(node.parent_depth, node.depth);
    EXPECT_LE(node.lb, node.rb);
    EXPECT_LT(node.rb, text.size());
    EXPECT_GE(node.frequency(), 1u);
    // String depth cannot exceed the shortest suffix in the interval.
    EXPECT_LE(node.depth, text.size() - view.sa[node.lb]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EsaSweep,
                         ::testing::Values(std::pair<index_t, u32>{1, 2},
                                           std::pair<index_t, u32>{2, 2},
                                           std::pair<index_t, u32>{3, 2},
                                           std::pair<index_t, u32>{20, 2},
                                           std::pair<index_t, u32>{50, 3},
                                           std::pair<index_t, u32>{100, 4},
                                           std::pair<index_t, u32>{200, 2},
                                           std::pair<index_t, u32>{150, 26}));

TEST(Esa, UnaryString) {
  const Text text(8, 1);  // "aaaaaaaa": substrings a^1..a^8, freq 8..1.
  const EsaView view = BuildView(text);
  std::map<index_t, index_t> freq_by_len;
  for (const SuffixTreeNode& node : view.nodes) {
    for (index_t len = node.parent_depth + 1; len <= node.depth; ++len) {
      freq_by_len[len] = node.frequency();
    }
  }
  ASSERT_EQ(freq_by_len.size(), 8u);
  for (index_t len = 1; len <= 8; ++len) {
    EXPECT_EQ(freq_by_len[len], 9 - len);
  }
}

TEST(Esa, SparseEnumerationOnSubset) {
  // The same traversal must work for a sparse suffix set: take every other
  // suffix of "banana" by hand.
  const Text text = testing::T("banana");
  // Suffixes at positions 0,2,4: "banana", "nana", "na".
  // Sorted: banana(0), na(4), nana(2); lcp: 0, 0, 2.
  const std::vector<index_t> lcp = {0, 0, 2};
  const std::vector<index_t> suffix_len = {6, 2, 4};
  const auto nodes = CollectSuffixTreeNodes(lcp, suffix_len);
  // Expected: leaf "banana" {6,0}, leaf "na" -> depth 2 == parent 2 skipped,
  // leaf "nana" {4,2}, internal "na" {2,0} covering [1,2].
  bool found_na_internal = false;
  for (const SuffixTreeNode& node : nodes) {
    if (node.depth == 2 && node.lb == 1 && node.rb == 2) {
      found_na_internal = true;
      EXPECT_EQ(node.frequency(), 2u);
      EXPECT_EQ(node.parent_depth, 0u);
    }
  }
  EXPECT_TRUE(found_na_internal);
  u64 total = 0;
  for (const SuffixTreeNode& node : nodes) total += node.edge_length();
  // Distinct strings among {banana..., nana..., na...} prefixes:
  // banana:6 + nana:4 + na:2 - shared: "n","na" counted once => 6+4+2-2 = 10.
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace usi
