// Tests for USI_TOP-K (UET and UAT): exactness against brute force for all
// utility kinds, hash-table hit behavior, tuning telemetry, edge cases.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(UsiIndex, PaperExampleOne) {
  const Text s = testing::T("ATACCCCGATAATACCCCAG");
  const std::vector<double> w = {0.9, 1, 3,   2, 0.7, 1, 1, 0.6, 0.5, 0.5,
                                 0.5, 0.8, 1, 1, 1,   0.9, 1, 1, 0.8, 1};
  const WeightedString ws(s, w);
  UsiOptions options;
  options.k = 10;
  const UsiIndex index(ws, options);
  EXPECT_NEAR(index.Utility(testing::T("TACCCC")), 14.6, 1e-9);
}

TEST(UsiIndex, AllSubstringQueriesMatchBruteForce) {
  const WeightedString ws = testing::RandomWeighted(120, 3, 7);
  UsiOptions options;
  options.k = 40;
  const UsiIndex index(ws, options);
  // Query *every* substring of the text (both table hits and fallbacks).
  for (index_t i = 0; i < ws.size(); ++i) {
    for (index_t len = 1; len <= 10 && i + len <= ws.size(); ++len) {
      const Text pattern = ws.Fragment(i, len);
      const QueryResult got = index.Query(pattern);
      const QueryResult want =
          testing::BruteUtility(ws, pattern, GlobalUtilityKind::kSum);
      ASSERT_EQ(got.occurrences, want.occurrences);
      ASSERT_NEAR(got.utility, want.utility, 1e-9)
          << "i=" << i << " len=" << len;
    }
  }
}

class UsiKindTest : public ::testing::TestWithParam<GlobalUtilityKind> {};

TEST_P(UsiKindTest, QueriesMatchBruteForce) {
  const WeightedString ws = testing::RandomWeighted(200, 4, 13);
  UsiOptions options;
  options.k = 60;
  options.utility = GetParam();
  const UsiIndex index(ws, options);
  Rng rng(14);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 8));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult got = index.Query(pattern);
    const QueryResult want = testing::BruteUtility(ws, pattern, GetParam());
    ASSERT_EQ(got.occurrences, want.occurrences);
    ASSERT_NEAR(got.utility, want.utility, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, UsiKindTest,
    ::testing::Values(GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
                      GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg),
    [](const ::testing::TestParamInfo<GlobalUtilityKind>& info) {
      return GlobalUtilityKindName(info.param);
    });

TEST(UsiIndex, TopKQueriesHitTheHashTable) {
  const WeightedString ws = testing::RandomWeighted(500, 2, 3);
  UsiOptions options;
  options.k = 50;
  const UsiIndex index(ws, options);
  // The top-K frequent substrings must be answered from H.
  SubstringStats stats(ws.text());
  const TopKList mined = stats.TopK(50);
  std::size_t hits = 0;
  for (const TopKSubstring& item : mined.items) {
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    const QueryResult result = index.Query(pattern);
    hits += result.from_hash_table;
    EXPECT_EQ(result.occurrences, item.frequency);
  }
  EXPECT_EQ(hits, mined.items.size());
}

TEST(UsiIndex, InfrequentQueriesUseFallback) {
  const WeightedString ws = testing::RandomWeighted(800, 4, 31);
  UsiOptions options;
  options.k = 10;  // Tiny table: most patterns fall through.
  const UsiIndex index(ws, options);
  const index_t tau = index.build_info().tau_k;
  // A pattern rarer than tau_K cannot be in H.
  Rng rng(32);
  int fallbacks = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size() - 8));
    const Text pattern = ws.Fragment(start, 8);
    const QueryResult result = index.Query(pattern);
    if (!result.from_hash_table) {
      ++fallbacks;
      EXPECT_LE(result.occurrences, tau)
          << "fallback pattern more frequent than tau_K";
    }
  }
  EXPECT_GT(fallbacks, 0);
}

TEST(UsiIndex, BuildInfoIsConsistent) {
  const WeightedString ws = testing::RandomWeighted(1000, 3, 17);
  UsiOptions options;
  options.k = 100;
  const UsiIndex index(ws, options);
  const UsiBuildInfo& info = index.build_info();
  EXPECT_EQ(info.k, 100u);
  EXPECT_GE(info.tau_k, 1u);
  EXPECT_GE(info.num_lengths, 1u);
  EXPECT_GT(info.total_seconds, 0.0);
  // H has at most K entries (substrings sharing frequency keep it <= K).
  EXPECT_LE(index.HashTableEntries(), 100u);
  EXPECT_GT(index.HashTableEntries(), 0u);
}

TEST(UsiIndex, UatMatchesBruteForceToo) {
  const WeightedString ws = testing::RandomWeighted(400, 3, 23);
  UsiOptions options;
  options.k = 50;
  options.miner = UsiMiner::kApproximate;
  options.approx.rounds = 3;
  const UsiIndex index(ws, options);
  Rng rng(24);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult got = index.Query(pattern);
    const QueryResult want =
        testing::BruteUtility(ws, pattern, GlobalUtilityKind::kSum);
    // UAT table entries hold exact utilities (the window pass aggregates all
    // true occurrences); fallback queries are exact as well.
    ASSERT_EQ(got.occurrences, want.occurrences);
    ASSERT_NEAR(got.utility, want.utility, 1e-9);
  }
}

TEST(UsiIndex, EdgeCases) {
  const WeightedString ws = testing::RandomWeighted(50, 2, 5);
  const UsiIndex index(ws, {});
  EXPECT_DOUBLE_EQ(index.Query({}).utility, 0.0);
  const Text too_long(100, 0);
  EXPECT_DOUBLE_EQ(index.Query(too_long).utility, 0.0);
  const Text absent = {5};
  EXPECT_EQ(index.Query(absent).occurrences, 0u);
}

TEST(UsiIndex, KEqualsOneStillWorks) {
  const WeightedString ws = testing::RandomWeighted(200, 2, 41);
  UsiOptions options;
  options.k = 1;
  const UsiIndex index(ws, options);
  EXPECT_EQ(index.HashTableEntries(), 1u);
  const QueryResult result = index.Query(ws.Fragment(0, 2));
  EXPECT_EQ(result.occurrences,
            testing::BruteUtility(ws, ws.Fragment(0, 2), GlobalUtilityKind::kSum)
                .occurrences);
}

TEST(UsiIndex, HugeKCoversEverySubstringLength) {
  const WeightedString ws = testing::RandomWeighted(60, 2, 43);
  UsiOptions options;
  options.k = 100000;  // More than all distinct substrings.
  const UsiIndex index(ws, options);
  // Now every substring query must hit the table.
  for (index_t i = 0; i < ws.size(); i += 3) {
    for (index_t len = 1; len <= 5 && i + len <= ws.size(); ++len) {
      EXPECT_TRUE(index.Query(ws.Fragment(i, len)).from_hash_table);
    }
  }
}

TEST(UsiIndex, SizeAccountingIsPositive) {
  const WeightedString ws = testing::RandomWeighted(500, 4, 47);
  const UsiIndex index(ws, {});
  EXPECT_GT(index.SizeInBytes(),
            ws.size() * (sizeof(index_t) + sizeof(double)));
}

}  // namespace
}  // namespace usi
