// Tests for suffix-array pattern search and the sparse suffix index.

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/suffix/sa_search.hpp"
#include "usi/suffix/sparse_suffix_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(SaSearch, FindsAllOccurrences) {
  const Text text = testing::T("abracadabra");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const Text pattern = testing::T("abra");
  std::vector<index_t> occ = CollectOccurrences(text, sa, pattern);
  std::sort(occ.begin(), occ.end());
  EXPECT_EQ(occ, (std::vector<index_t>{0, 7}));
}

TEST(SaSearch, MissingPatternGivesEmptyInterval) {
  const Text text = testing::T("abracadabra");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  EXPECT_TRUE(FindSaInterval(text, sa, testing::T("zzz")).IsEmpty());
  EXPECT_TRUE(FindSaInterval(text, sa, testing::T("abrax")).IsEmpty());
  // Longer than the text.
  EXPECT_TRUE(
      FindSaInterval(text, sa, testing::T("abracadabraabracadabra")).IsEmpty());
}

TEST(SaSearch, EmptyPatternMatchesEverywhere) {
  const Text text = testing::T("abc");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const SaInterval interval = FindSaInterval(text, sa, {});
  EXPECT_EQ(interval.Count(), 3u);
}

TEST(SaInterval, CanonicalEmptyRepresentation) {
  // The default state IS the canonical empty interval: {lb = 1, rb = 0},
  // empty, count 0.
  const SaInterval empty;
  EXPECT_EQ(empty.lb, 1u);
  EXPECT_EQ(empty.rb, 0u);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.Count(), 0u);
  // Non-empty intervals: lb <= rb, inclusive count.
  const SaInterval one{5, 5};
  EXPECT_FALSE(one.IsEmpty());
  EXPECT_EQ(one.Count(), 1u);
  const SaInterval many{2, 7};
  EXPECT_FALSE(many.IsEmpty());
  EXPECT_EQ(many.Count(), 6u);
}

TEST(SaInterval, SearchesProduceTheCanonicalEmpty) {
  const Text text = testing::T("abracadabra");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  // Every empty search result is the canonical {1, 0} — not merely "some
  // empty-looking" interval (callers may memcmp or switch on the fields).
  const SaInterval missing = FindSaInterval(text, sa, testing::T("zzz"));
  EXPECT_EQ(missing.lb, 1u);
  EXPECT_EQ(missing.rb, 0u);
  const SaInterval too_long =
      FindSaInterval(text, sa, testing::T("abracadabraabracadabra"));
  EXPECT_EQ(too_long.lb, 1u);
  EXPECT_EQ(too_long.rb, 0u);
  // Empty SA: canonical empty for every pattern, INCLUDING the empty
  // pattern (there are no suffixes for it to match).
  const Text no_text;
  const std::vector<index_t> no_sa;
  const SaInterval empty_sa = FindSaInterval(no_text, no_sa, testing::T("a"));
  EXPECT_EQ(empty_sa.lb, 1u);
  EXPECT_EQ(empty_sa.rb, 0u);
  const SaInterval empty_both = FindSaInterval(no_text, no_sa, {});
  EXPECT_EQ(empty_both.lb, 1u);
  EXPECT_EQ(empty_both.rb, 0u);
  EXPECT_EQ(empty_both.Count(), 0u);
}

TEST(SaSearch, VisitSaIntervalWalksInSaOrder) {
  const Text text = testing::T("abracadabra");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const SaInterval interval = FindSaInterval(text, sa, testing::T("a"));
  ASSERT_FALSE(interval.IsEmpty());
  std::vector<index_t> visited;
  VisitSaInterval(sa, interval, nullptr,
                  [&](index_t pos) { visited.push_back(pos); });
  ASSERT_EQ(visited.size(), interval.Count());
  for (index_t k = 0; k < visited.size(); ++k) {
    EXPECT_EQ(visited[k], sa[interval.lb + k]);
  }
  // An empty interval visits nothing.
  VisitSaInterval(sa, SaInterval{}, nullptr,
                  [&](index_t) { FAIL() << "visited an empty interval"; });
}

TEST(SaSearch, RandomizedAgainstBruteForce) {
  Rng rng(44);
  for (int round = 0; round < 20; ++round) {
    const Text text = testing::RandomText(300, 3, round);
    const std::vector<index_t> sa = BuildSuffixArray(text);
    for (int q = 0; q < 50; ++q) {
      const index_t len = static_cast<index_t>(rng.UniformInRange(1, 8));
      Text pattern(len);
      // Half existing substrings, half random (possibly absent).
      if (q % 2 == 0) {
        const index_t start =
            static_cast<index_t>(rng.UniformBelow(text.size() - len));
        std::copy(text.begin() + start, text.begin() + start + len,
                  pattern.begin());
      } else {
        for (auto& c : pattern) c = static_cast<Symbol>(rng.UniformBelow(3));
      }
      std::vector<index_t> got = CollectOccurrences(text, sa, pattern);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, testing::BruteOccurrences(text, pattern));
    }
  }
}

TEST(SparseSuffixIndex, OrderAgreesWithFullSuffixArray) {
  const Text text = MakeDnaLike(1000, 3).text();
  const NaiveLce lce(text);
  // Sample every 4th position starting at 1.
  std::vector<index_t> positions;
  for (index_t p = 1; p < text.size(); p += 4) positions.push_back(p);
  const SparseSuffixIndex sparse = BuildSparseSuffixIndex(positions, lce);
  // The sparse order must equal the full SA restricted to the sample.
  const std::vector<index_t> sa = BuildSuffixArray(text);
  std::vector<index_t> expected;
  for (index_t pos : sa) {
    if (pos >= 1 && (pos - 1) % 4 == 0) expected.push_back(pos);
  }
  EXPECT_EQ(sparse.positions, expected);
}

TEST(SparseSuffixIndex, LcpEntriesAreCorrect) {
  const Text text = MakeEcoliLike(600, 9).text();
  const NaiveLce lce(text);
  std::vector<index_t> positions;
  for (index_t p = 0; p < text.size(); p += 3) positions.push_back(p);
  const SparseSuffixIndex sparse = BuildSparseSuffixIndex(positions, lce);
  ASSERT_EQ(sparse.lcp.size(), sparse.positions.size());
  EXPECT_EQ(sparse.lcp[0], 0u);
  for (std::size_t k = 1; k < sparse.positions.size(); ++k) {
    index_t direct = 0;
    const index_t a = sparse.positions[k - 1];
    const index_t b = sparse.positions[k];
    while (a + direct < text.size() && b + direct < text.size() &&
           text[a + direct] == text[b + direct]) {
      ++direct;
    }
    ASSERT_EQ(sparse.lcp[k], direct);
  }
}

TEST(SparseSuffixIndex, SingletonAndEmpty) {
  const Text text = testing::T("abc");
  const NaiveLce lce(text);
  EXPECT_TRUE(BuildSparseSuffixIndex({}, lce).positions.empty());
  const SparseSuffixIndex one = BuildSparseSuffixIndex({1}, lce);
  EXPECT_EQ(one.positions, (std::vector<index_t>{1}));
  EXPECT_EQ(one.lcp, (std::vector<index_t>{0}));
}

}  // namespace
}  // namespace usi
