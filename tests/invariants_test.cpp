// Cross-cutting property tests: algebraic relations between utility kinds,
// determinism guarantees, and degenerate-input behavior across the stack.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/workload.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(UtilityAlgebra, MinLeqAvgLeqMaxAndSumEqualsAvgTimesCount) {
  const WeightedString ws = testing::RandomWeighted(400, 3, 3);
  UsiOptions options;
  options.k = 100;
  options.utility = GlobalUtilityKind::kMin;
  const UsiIndex min_index(ws, options);
  options.utility = GlobalUtilityKind::kMax;
  const UsiIndex max_index(ws, options);
  options.utility = GlobalUtilityKind::kAvg;
  const UsiIndex avg_index(ws, options);
  options.utility = GlobalUtilityKind::kSum;
  const UsiIndex sum_index(ws, options);

  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult min_r = min_index.Query(pattern);
    const QueryResult max_r = max_index.Query(pattern);
    const QueryResult avg_r = avg_index.Query(pattern);
    const QueryResult sum_r = sum_index.Query(pattern);
    ASSERT_EQ(min_r.occurrences, sum_r.occurrences);
    if (sum_r.occurrences == 0) continue;
    ASSERT_LE(min_r.utility, avg_r.utility + 1e-9);
    ASSERT_LE(avg_r.utility, max_r.utility + 1e-9);
    ASSERT_NEAR(sum_r.utility,
                avg_r.utility * static_cast<double>(sum_r.occurrences), 1e-6);
  }
}

TEST(Determinism, ApproximateTopKIsSeedDeterministic) {
  const Text text = MakeXmlLike(5000, 9).text();
  ApproximateTopKOptions options;
  options.rounds = 4;
  options.seed = 123;
  const TopKList a = ApproximateTopK(text, 100, options);
  const TopKList b = ApproximateTopK(text, 100, options);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].frequency, b.items[i].frequency);
    EXPECT_EQ(a.items[i].length, b.items[i].length);
    EXPECT_EQ(testing::MaterializeString(text, a.items[i]),
              testing::MaterializeString(text, b.items[i]));
  }
}

TEST(Determinism, HasherFromBaseReconstructsFingerprints) {
  const KarpRabinHasher original(777);
  const KarpRabinHasher restored = KarpRabinHasher::FromBase(original.base());
  const Text text = testing::RandomText(200, 5, 6);
  EXPECT_EQ(original.Hash(text), restored.Hash(text));
  EXPECT_EQ(original.PowerOfBase(150), restored.PowerOfBase(150));
}

TEST(DegenerateTexts, AllDistinctLetters) {
  // Every substring occurs exactly once: top-K is length-ordered ties.
  Text text;
  for (int c = 0; c < 50; ++c) text.push_back(static_cast<Symbol>(c));
  SubstringStats stats(text);
  EXPECT_EQ(stats.TotalDistinctSubstrings(), 50u * 51 / 2);
  const TopKList top = stats.TopK(10);
  for (const TopKSubstring& item : top.items) {
    EXPECT_EQ(item.frequency, 1u);
  }
  const auto tuning = stats.EstimateForK(10);
  EXPECT_EQ(tuning.tau, 1u);
}

TEST(DegenerateTexts, SingleLetterIndex) {
  const WeightedString ws(Text{3}, {2.5});
  const UsiIndex index(ws, {});
  const Text pattern = {3};
  const QueryResult result = index.Query(pattern);
  EXPECT_EQ(result.occurrences, 1u);
  EXPECT_DOUBLE_EQ(result.utility, 2.5);
}

TEST(DegenerateTexts, UnaryTextTopKAndQueries) {
  const WeightedString ws = WeightedString::WithUniformWeights(Text(64, 0), 1.0);
  UsiOptions options;
  options.k = 20;
  const UsiIndex index(ws, options);
  for (index_t len = 1; len <= 64; ++len) {
    const QueryResult result = index.Query(Text(len, 0));
    ASSERT_EQ(result.occurrences, 64 - len + 1);
    ASSERT_DOUBLE_EQ(result.utility,
                     static_cast<double>(len) * (64 - len + 1));
  }
}

TEST(Workloads, ZeroAndFullPBehaveLikeBounds) {
  const Text text = MakeAdvLike(4000, 5).text();
  SubstringStats stats(text);
  const TopKList pool_w1 = stats.TopK(text.size() / 50);
  const TopKList pool_w2 = stats.TopK(text.size() / 100);
  WorkloadOptions options;
  options.num_queries = 400;
  options.random_max_len = 30;
  const Workload p0 =
      MakeWorkloadW2(text, pool_w2.items, pool_w1.items, 0, options);
  const Workload p100 =
      MakeWorkloadW2(text, pool_w2.items, pool_w1.items, 100, options);
  EXPECT_EQ(p0.patterns.size(), 400u);
  // p=100: every query is a frequent-pool pattern.
  EXPECT_EQ(p100.from_frequent, 400u);
}

TEST(NegativeWeights, SupportedThroughout) {
  // Risk scores can be negative; PSW and all aggregators must cope.
  Rng rng(8);
  Text text(300);
  std::vector<double> weights(300);
  for (auto& c : text) c = static_cast<Symbol>(rng.UniformBelow(3));
  for (auto& w : weights) w = rng.UniformDouble() * 2.0 - 1.0;
  const WeightedString ws(text, weights);
  UsiOptions options;
  options.k = 50;
  const UsiIndex index(ws, options);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 5));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult got = index.Query(pattern);
    const QueryResult want =
        testing::BruteUtility(ws, pattern, GlobalUtilityKind::kSum);
    ASSERT_NEAR(got.utility, want.utility, 1e-9);
  }
}

}  // namespace
}  // namespace usi
