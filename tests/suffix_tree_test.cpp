// Tests for the online Ukkonen suffix tree: occurrence counting/collection
// at every streaming step, and node-summary agreement with the ESA view on
// sentinel-terminated texts.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/suffix/esa.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/suffix/suffix_tree.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(SuffixTree, CountsWhileStreaming) {
  const Text text = testing::T("abcabxabcd");
  SuffixTree tree;
  for (std::size_t end = 0; end < text.size(); ++end) {
    tree.Extend(text[end]);
    const Text prefix(text.begin(), text.begin() + end + 1);
    // Check every substring of the current prefix up to length 4.
    for (index_t i = 0; i <= end; ++i) {
      for (index_t len = 1; len <= 4 && i + len <= prefix.size(); ++len) {
        const Text pattern(prefix.begin() + i, prefix.begin() + i + len);
        ASSERT_EQ(tree.CountOccurrences(pattern),
                  testing::BruteOccurrences(prefix, pattern).size())
            << "prefix len " << end + 1;
      }
    }
  }
}

TEST(SuffixTree, CountsOnPeriodicText) {
  const Text text = MakePeriodic(64, 2, 0).text();
  const SuffixTree tree(text);
  const Text absent = {5};  // Symbol 5 never occurs in (01)^32.
  EXPECT_EQ(tree.CountOccurrences(absent), 0u);
  const Text ab = {0, 1};
  EXPECT_EQ(tree.CountOccurrences(ab), 32u);
  const Text aba = {0, 1, 0};
  EXPECT_EQ(tree.CountOccurrences(aba), 31u);
  Text half;  // (ab)^16: occurs 17 times... compute via brute force instead.
  for (int i = 0; i < 32; ++i) half.push_back(static_cast<Symbol>(i % 2));
  EXPECT_EQ(tree.CountOccurrences(half),
            testing::BruteOccurrences(text, half).size());
}

TEST(SuffixTree, CollectOccurrencesMatchesBruteForce) {
  Rng rng(12);
  for (int round = 0; round < 10; ++round) {
    const Text text = testing::RandomText(200, 3, round + 100);
    const SuffixTree tree(text);
    for (int q = 0; q < 40; ++q) {
      const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
      const index_t start =
          static_cast<index_t>(rng.UniformBelow(text.size() - len));
      const Text pattern(text.begin() + start, text.begin() + start + len);
      std::vector<index_t> got = tree.CollectOccurrences(pattern);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, testing::BruteOccurrences(text, pattern));
    }
  }
}

TEST(SuffixTree, AbsentPatterns) {
  const SuffixTree tree(testing::T("mississippi"));
  EXPECT_EQ(tree.CountOccurrences(testing::T("x")), 0u);
  EXPECT_EQ(tree.CountOccurrences(testing::T("ssissix")), 0u);
  EXPECT_TRUE(tree.CollectOccurrences(testing::T("zz")).empty());
  EXPECT_FALSE(tree.Contains(testing::T("ippis")));
  EXPECT_TRUE(tree.Contains(testing::T("issi")));
}

TEST(SuffixTree, NodeSummariesMatchEsaOnSentinelTexts) {
  // With a unique final letter every suffix is an explicit leaf, so the
  // Ukkonen tree and the ESA enumeration describe the same tree.
  for (u64 seed : {1ULL, 2ULL, 3ULL}) {
    Text text = testing::RandomText(150, 3, seed);
    text.push_back(200);  // Unique sentinel symbol.
    const SuffixTree tree(text);
    auto tree_nodes = tree.CollectNodeSummaries();

    const std::vector<index_t> sa = BuildSuffixArray(text);
    const std::vector<index_t> lcp = BuildLcpArray(text, sa);
    const auto esa_nodes = CollectSuffixTreeNodes(
        lcp, DenseSuffixLengths(sa, static_cast<index_t>(text.size())));
    std::vector<SuffixTree::NodeSummary> esa_summaries;
    for (const SuffixTreeNode& node : esa_nodes) {
      esa_summaries.push_back(
          {node.depth, node.parent_depth, node.frequency()});
    }
    std::sort(tree_nodes.begin(), tree_nodes.end());
    std::sort(esa_summaries.begin(), esa_summaries.end());
    ASSERT_EQ(tree_nodes, esa_summaries) << "seed " << seed;
  }
}

TEST(SuffixTree, PendingSuffixAccounting) {
  // "aaaa" keeps all short suffixes implicit; counts must still be exact.
  SuffixTree tree;
  for (int i = 0; i < 6; ++i) {
    tree.Extend(0);
    const Text prefix(i + 1, 0);
    for (index_t len = 1; len <= prefix.size(); ++len) {
      const Text pattern(len, 0);
      ASSERT_EQ(tree.CountOccurrences(pattern), prefix.size() - len + 1);
    }
  }
  EXPECT_GT(tree.PendingSuffixCount(), 0u);
}

TEST(SuffixTree, SizeGrowsLinearly) {
  const Text text = MakeDnaLike(2000, 5).text();
  const SuffixTree tree(text);
  // A suffix tree has at most 2n nodes (plus root).
  EXPECT_LE(tree.NodeCount(), 2 * text.size() + 1);
  EXPECT_GT(tree.SizeInBytes(), 0u);
}

TEST(SuffixTree, EmptyPatternCountsPositions) {
  const SuffixTree tree(testing::T("abcd"));
  EXPECT_EQ(tree.CountOccurrences({}), 4u);
}

}  // namespace
}  // namespace usi
