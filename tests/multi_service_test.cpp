// Multi-text serving tier: UsiMultiService must route mixed-text batches to
// the right index with answers identical to querying each text's UsiIndex
// directly, publish asynchronous generational rebuilds without ever showing
// a batch a half-applied swap, shed load over the in-flight cap with kBusy,
// and aggregate per-text lifetime telemetry. The generation-swap test
// hammers QueryBatch from several threads while rebuilds cycle; it runs
// under ThreadSanitizer in CI via the "concurrency" label.

#include <atomic>
#include <latch>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"

namespace usi {
namespace {

/// Substrings of \p ws (frequent and rare) plus patterns absent from it.
std::vector<Text> PatternsFor(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int i = 0; i < 60; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(10, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  for (int i = 0; i < 12; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(1, 6)),
                            static_cast<Symbol>(210 + i)));
  }
  return patterns;
}

/// Per-pattern answers from a directly-constructed UsiIndex (the oracle the
/// routed service must match exactly).
std::vector<QueryResult> DirectAnswers(const WeightedString& ws,
                                       const UsiOptions& options,
                                       const std::vector<Text>& patterns) {
  UsiIndex index(ws, options);
  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = static_cast<const UsiIndex&>(index).Query(patterns[i]);
  }
  return want;
}

bool SameResult(const QueryResult& a, const QueryResult& b) {
  return a.utility == b.utility && a.occurrences == b.occurrences &&
         a.from_hash_table == b.from_hash_table;
}

void ExpectSameResults(const std::vector<QueryResult>& got,
                       const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].utility, want[i].utility) << "query " << i;
    EXPECT_EQ(got[i].occurrences, want[i].occurrences) << "query " << i;
    EXPECT_EQ(got[i].from_hash_table, want[i].from_hash_table) << "query " << i;
  }
}

TEST(MultiService, MixedBatchMatchesDirectIndexes) {
  const WeightedString ws_a = testing::RandomWeighted(700, 4, 0xA);
  const WeightedString ws_b = testing::RandomWeighted(500, 3, 0xB);
  const WeightedString ws_c = testing::RandomWeighted(300, 5, 0xC);
  UsiOptions options;
  options.k = 64;

  UsiMultiServiceOptions service_options;
  service_options.threads = 2;
  UsiMultiService service(service_options);
  EXPECT_EQ(service.SubmitText("alpha", ws_a, options), 1u);
  EXPECT_EQ(service.SubmitText("beta", ws_b, options), 1u);
  EXPECT_EQ(service.SubmitText("gamma", ws_c, options), 1u);
  service.WaitForBuilds();
  EXPECT_EQ(service.TextIds(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));

  const std::vector<Text> pat_a = PatternsFor(ws_a, 0x1A);
  const std::vector<Text> pat_b = PatternsFor(ws_b, 0x1B);
  const std::vector<Text> pat_c = PatternsFor(ws_c, 0x1C);
  const std::vector<QueryResult> want_a = DirectAnswers(ws_a, options, pat_a);
  const std::vector<QueryResult> want_b = DirectAnswers(ws_b, options, pat_b);
  const std::vector<QueryResult> want_c = DirectAnswers(ws_c, options, pat_c);

  // Interleave the three texts' queries so routing, grouping and the
  // scatter back to original slots are all exercised.
  std::vector<MultiQuery> queries;
  std::vector<const QueryResult*> want;
  const std::size_t max_n =
      std::max({pat_a.size(), pat_b.size(), pat_c.size()});
  for (std::size_t i = 0; i < max_n; ++i) {
    if (i < pat_a.size()) {
      queries.push_back({"alpha", pat_a[i]});
      want.push_back(&want_a[i]);
    }
    if (i < pat_b.size()) {
      queries.push_back({"beta", pat_b[i]});
      want.push_back(&want_b[i]);
    }
    if (i < pat_c.size()) {
      queries.push_back({"gamma", pat_c[i]});
      want.push_back(&want_c[i]);
    }
  }

  MultiBatchResult got = service.QueryBatch(queries);
  ASSERT_EQ(got.status, ServeStatus::kOk);
  ASSERT_EQ(got.results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameResult(got.results[i], *want[i]))
        << "query " << i << " for " << queries[i].text_id;
  }

  // Single-query convenience agrees too.
  QueryResult single;
  ASSERT_EQ(service.Query("beta", pat_b[0], single), ServeStatus::kOk);
  EXPECT_TRUE(SameResult(single, want_b[0]));
}

TEST(MultiService, UnknownTextRejectsTheWholeBatch) {
  const WeightedString ws = testing::RandomWeighted(300, 4, 0xD);
  UsiMultiService service;
  service.SubmitText("known", ws);
  service.WaitForBuilds();

  const Text pattern = ws.Fragment(0, 3);
  std::vector<MultiQuery> queries = {{"known", pattern}, {"nope", pattern}};
  std::vector<QueryResult> results(queries.size());
  results[0].utility = -1;  // Sentinels: a rejected batch must not write.
  results[1].utility = -1;
  EXPECT_EQ(service.QueryBatchInto(queries, results),
            ServeStatus::kUnknownText);
  EXPECT_EQ(results[0].utility, -1.0);
  EXPECT_EQ(results[1].utility, -1.0);

  EXPECT_FALSE(service.HasText("nope"));
  EXPECT_EQ(service.WaitForText("nope"), BuildState::kUnknown);
  EXPECT_FALSE(service.RemoveText("nope"));
  QueryResult single;
  EXPECT_EQ(service.Query("nope", pattern, single), ServeStatus::kUnknownText);
}

TEST(MultiService, AsyncBuildServesNotReadyUntilFirstGenerationLands) {
  // Deterministic async ordering: a 1-wide injected pool whose only worker
  // is parked on a latch. The scheduled build cannot start, so the text
  // must serve kNotReady; releasing the latch lets the build lane run and
  // the text becomes servable. Queries never touch the pool at width 1
  // (inline serving), so they drain while the worker is busy — the
  // "queries drain during rebuild" contract in miniature.
  ThreadPool pool(1);
  std::latch started(1);
  std::latch release(1);
  pool.Run([&] {
    started.count_down();
    release.wait();
  });
  started.wait();

  const WeightedString ws = testing::RandomWeighted(400, 4, 0xE);
  UsiOptions options;
  options.k = 32;
  UsiMultiService service(&pool);
  EXPECT_EQ(service.SubmitText("t", ws, options), 1u);

  const Text pattern = ws.Fragment(5, 4);
  QueryResult result;
  EXPECT_EQ(service.Query("t", pattern, result), ServeStatus::kNotReady);
  EXPECT_TRUE(service.HasText("t"));
  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->generation, 0u);
  EXPECT_EQ(stats->builds_scheduled, 1u);
  EXPECT_EQ(stats->builds_completed, 0u);

  release.count_down();
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  ASSERT_EQ(service.Query("t", pattern, result), ServeStatus::kOk);
  const std::vector<QueryResult> want =
      DirectAnswers(ws, options, {pattern});
  EXPECT_TRUE(SameResult(result, want[0]));
  stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_EQ(stats->builds_completed, 1u);
}

TEST(MultiService, UpdateTextPublishesNewGenerationsMonotonically) {
  Text text = testing::RandomText(600, 4, 0xF00);
  const WeightedString ws_v1 = WeightedString::WithUniformWeights(text, 1.0);
  const WeightedString ws_v2 = WeightedString::WithUniformWeights(text, 3.0);
  UsiOptions options;
  options.k = 48;
  UsiMultiServiceOptions service_options;
  service_options.default_build = options;
  UsiMultiService service(service_options);

  EXPECT_EQ(service.UpdateText("t", ws_v1), 0u)  // Not registered yet.
      << "UpdateText must not create texts";
  EXPECT_EQ(service.SubmitText("t", ws_v1), 1u);
  EXPECT_EQ(service.UpdateText("t", ws_v2), 2u);
  service.WaitForBuilds();

  const std::vector<Text> patterns = PatternsFor(ws_v2, 0x2F);
  const std::vector<QueryResult> want = DirectAnswers(ws_v2, options, patterns);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});
  MultiBatchResult got = service.QueryBatch(queries);
  ASSERT_EQ(got.status, ServeStatus::kOk);
  ExpectSameResults(got.results, want);

  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->generation, 2u);
  EXPECT_EQ(stats->builds_scheduled, 2u);
  EXPECT_EQ(stats->builds_completed, 2u);

  EXPECT_TRUE(service.RemoveText("t"));
  QueryResult single;
  EXPECT_EQ(service.Query("t", patterns[0], single),
            ServeStatus::kUnknownText);
}

TEST(MultiService, PerTextTotalsAccumulateAcrossBatches) {
  const WeightedString ws_a = testing::RandomWeighted(400, 4, 0x21);
  const WeightedString ws_b = testing::RandomWeighted(350, 3, 0x22);
  UsiMultiService service;
  service.SubmitText("a", ws_a);
  service.SubmitText("b", ws_b);
  service.WaitForBuilds();

  const std::vector<Text> pat_a = PatternsFor(ws_a, 0x31);
  const std::vector<Text> pat_b = PatternsFor(ws_b, 0x32);
  std::vector<MultiQuery> queries;
  for (const Text& p : pat_a) queries.push_back({"a", p});
  for (const Text& p : pat_b) queries.push_back({"b", p});

  u64 hits_a = 0;
  u64 hits_b = 0;
  const int rounds = 3;
  for (int round = 0; round < rounds; ++round) {
    MultiBatchResult got = service.QueryBatch(queries);
    ASSERT_EQ(got.status, ServeStatus::kOk);
    for (std::size_t i = 0; i < got.results.size(); ++i) {
      if (!got.results[i].from_hash_table) continue;
      (i < pat_a.size() ? hits_a : hits_b) += 1;
    }
  }

  auto stats_a = service.StatsFor("a");
  auto stats_b = service.StatsFor("b");
  ASSERT_TRUE(stats_a.has_value());
  ASSERT_TRUE(stats_b.has_value());
  EXPECT_EQ(stats_a->batches, static_cast<u64>(rounds));
  EXPECT_EQ(stats_b->batches, static_cast<u64>(rounds));
  EXPECT_EQ(stats_a->queries, static_cast<u64>(rounds) * pat_a.size());
  EXPECT_EQ(stats_b->queries, static_cast<u64>(rounds) * pat_b.size());
  EXPECT_EQ(stats_a->hash_hits, hits_a);
  EXPECT_EQ(stats_b->hash_hits, hits_b);
  EXPECT_GT(hits_a, 0u) << "workload must exercise the hash-hit path";

  const UsiMultiStats totals = service.stats();
  EXPECT_EQ(totals.batches, static_cast<u64>(rounds));
  EXPECT_EQ(totals.queries,
            static_cast<u64>(rounds) * (pat_a.size() + pat_b.size()));
  EXPECT_EQ(totals.texts, 2u);
  EXPECT_EQ(totals.builds_scheduled, 2u);
  EXPECT_EQ(totals.builds_completed, 2u);
  EXPECT_EQ(totals.busy_rejected, 0u);
}

TEST(MultiService, AdmissionControlShedsOverCapBatches) {
  const WeightedString ws = testing::RandomWeighted(500, 4, 0x41);
  UsiOptions options;
  options.k = 48;
  UsiMultiServiceOptions service_options;
  service_options.max_inflight_batches = 1;
  service_options.default_build = options;
  UsiMultiService service(service_options);
  service.SubmitText("t", ws);
  service.WaitForBuilds();

  const std::vector<Text> patterns = PatternsFor(ws, 0x42);
  const std::vector<QueryResult> want = DirectAnswers(ws, options, patterns);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});

  // A single caller can never trip a cap of 1.
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(service.QueryBatch(queries).status, ServeStatus::kOk);
  }
  EXPECT_EQ(service.stats().busy_rejected, 0u);

  // Concurrent callers: every batch either serves completely and correctly
  // or is shed with kBusy — nothing queues, nothing half-executes.
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 25;
  std::atomic<u64> ok{0};
  std::atomic<u64> busy{0};
  std::atomic<u64> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<QueryResult> results(queries.size());
      for (int round = 0; round < kBatchesPerThread; ++round) {
        const ServeStatus status = service.QueryBatchInto(queries, results);
        if (status == ServeStatus::kBusy) {
          busy.fetch_add(1);
          continue;
        }
        if (status != ServeStatus::kOk) {
          wrong.fetch_add(1);
          continue;
        }
        ok.fetch_add(1);
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (!SameResult(results[i], want[i])) wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(ok.load() + busy.load(),
            static_cast<u64>(kThreads) * kBatchesPerThread);
  EXPECT_GE(ok.load(), 1u);
  EXPECT_EQ(service.stats().busy_rejected, busy.load());
}

TEST(MultiService, GenerationSwapUnderLoadNeverMixesGenerations) {
  // The acceptance scenario: reader threads hammer QueryBatch while a
  // writer cycles rebuilds between two versions of the text (same symbols,
  // different utilities). Every admitted batch must be answered entirely
  // from one pinned generation — its result vector equals the v1 oracle or
  // the v2 oracle, never a mix — and readers never block on the rebuilds.
  Text text = testing::RandomText(500, 4, 0x51);
  const WeightedString ws_v1 = WeightedString::WithUniformWeights(text, 1.0);
  const WeightedString ws_v2 = WeightedString::WithUniformWeights(text, 3.0);
  UsiOptions options;
  options.k = 32;

  std::vector<Text> patterns = PatternsFor(ws_v1, 0x52);
  const std::vector<QueryResult> want_v1 =
      DirectAnswers(ws_v1, options, patterns);
  const std::vector<QueryResult> want_v2 =
      DirectAnswers(ws_v2, options, patterns);
  // The two generations must be distinguishable, or the assertion is
  // vacuous.
  bool differs = false;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!SameResult(want_v1[i], want_v2[i])) differs = true;
  }
  ASSERT_TRUE(differs);

  UsiMultiServiceOptions service_options;
  service_options.threads = 2;
  service_options.default_build = options;
  UsiMultiService service(service_options);
  service.SubmitText("t", ws_v1);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});

  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 40;
  constexpr int kRebuilds = 6;
  std::atomic<u64> mixed_batches{0};
  std::atomic<u64> failed_batches{0};
  std::atomic<bool> stop_writer{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::vector<QueryResult> results(queries.size());
      for (int round = 0; round < kBatchesPerReader; ++round) {
        if (service.QueryBatchInto(queries, results) != ServeStatus::kOk) {
          failed_batches.fetch_add(1);
          continue;
        }
        bool all_v1 = true;
        bool all_v2 = true;
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (!SameResult(results[i], want_v1[i])) all_v1 = false;
          if (!SameResult(results[i], want_v2[i])) all_v2 = false;
        }
        if (!all_v1 && !all_v2) mixed_batches.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    for (int cycle = 0; cycle < kRebuilds && !stop_writer.load(); ++cycle) {
      service.UpdateText("t", cycle % 2 == 0 ? ws_v2 : ws_v1);
      service.WaitForText("t");  // Pace rebuilds to publish, not just queue.
    }
  });

  for (std::thread& reader : readers) reader.join();
  stop_writer.store(true);
  writer.join();
  service.WaitForBuilds();

  EXPECT_EQ(mixed_batches.load(), 0u)
      << "a batch observed two generations at once";
  EXPECT_EQ(failed_batches.load(), 0u)
      << "readers must never be rejected or blocked by rebuilds";

  auto stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->builds_completed, stats->builds_scheduled);
  EXPECT_EQ(stats->batches,
            static_cast<u64>(kReaders) * kBatchesPerReader);
  const UsiMultiStats totals = service.stats();
  EXPECT_EQ(totals.builds_completed, totals.builds_scheduled);
}

}  // namespace
}  // namespace usi
