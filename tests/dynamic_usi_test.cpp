// Tests for the append-only DynamicUsi (Section X): equivalence with a
// from-scratch rebuild at every checkpoint, tracked-set maintenance across
// appends, staleness accounting.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/dynamic_usi.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

TEST(DynamicUsi, MatchesStaticIndexAfterSeedBuild) {
  const WeightedString ws = testing::RandomWeighted(300, 3, 5);
  DynamicUsiOptions options;
  options.k = 50;
  const DynamicUsi dynamic(ws, options);
  UsiOptions static_options;
  static_options.k = 50;
  const UsiIndex static_index(ws, static_options);
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult d = dynamic.Query(pattern);
    const QueryResult s = static_index.Query(pattern);
    ASSERT_EQ(d.occurrences, s.occurrences);
    ASSERT_NEAR(d.utility, s.utility, 1e-9);
  }
}

TEST(DynamicUsi, StaysExactAcrossAppendsWithoutRefresh) {
  // After appends the tracked set is stale in membership but its cached
  // utilities must stay exact; fallback queries are exact by construction.
  const WeightedString seed = testing::RandomWeighted(150, 2, 7);
  DynamicUsiOptions options;
  options.k = 30;
  DynamicUsi dynamic(seed, options);

  Rng rng(8);
  Text full = seed.text();
  std::vector<double> weights = seed.weights();
  for (int step = 0; step < 100; ++step) {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(2));
    const double w = rng.UniformDouble();
    dynamic.Append(c, w);
    full.push_back(c);
    weights.push_back(w);
  }
  EXPECT_EQ(dynamic.StalenessBound(), 100u);

  const WeightedString current(full, weights);
  for (int trial = 0; trial < 300; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 5));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(current.size() - len));
    const Text pattern = current.Fragment(start, len);
    const QueryResult got = dynamic.Query(pattern);
    const QueryResult want =
        testing::BruteUtility(current, pattern, GlobalUtilityKind::kSum);
    ASSERT_EQ(got.occurrences, want.occurrences)
        << "pattern at " << start << " len " << len;
    ASSERT_NEAR(got.utility, want.utility, 1e-9);
  }
}

TEST(DynamicUsi, RefreshRestoresTopKMembership) {
  const WeightedString seed = testing::RandomWeighted(100, 2, 9);
  DynamicUsiOptions options;
  options.k = 20;
  DynamicUsi dynamic(seed, options);
  Rng rng(10);
  for (int step = 0; step < 50; ++step) {
    dynamic.Append(static_cast<Symbol>(rng.UniformBelow(2)),
                   rng.UniformDouble());
  }
  dynamic.RefreshTopK();
  EXPECT_EQ(dynamic.StalenessBound(), 0u);
  EXPECT_GT(dynamic.TrackedEntries(), 0u);
  EXPECT_LE(dynamic.TrackedEntries(), 20u);
  // After a refresh, the most frequent substring must hit the table.
  const Text top1(1, [&] {
    index_t count0 = 0;
    for (Symbol s : dynamic.text()) count0 += (s == 0);
    return count0 * 2 >= dynamic.text().size() ? Symbol{0} : Symbol{1};
  }());
  EXPECT_TRUE(dynamic.Query(top1).from_hash_table);
}

TEST(DynamicUsi, BuildFromEmptyByAppends) {
  DynamicUsiOptions options;
  options.k = 10;
  DynamicUsi dynamic(options);
  const WeightedString ws = testing::RandomWeighted(80, 3, 11);
  for (index_t i = 0; i < ws.size(); ++i) {
    dynamic.Append(ws.letter(i), ws.weight(i));
    // Spot-check exactness mid-stream every 16 appends.
    if (i % 16 == 15) {
      const WeightedString prefix = ws.Prefix(i + 1);
      const Text pattern = prefix.Fragment(i / 2, std::min<index_t>(3, i / 2 + 1));
      const QueryResult got = dynamic.Query(pattern);
      const QueryResult want =
          testing::BruteUtility(prefix, pattern, GlobalUtilityKind::kSum);
      ASSERT_EQ(got.occurrences, want.occurrences) << "prefix " << i + 1;
      ASSERT_NEAR(got.utility, want.utility, 1e-9);
    }
  }
  EXPECT_EQ(dynamic.size(), ws.size());
}

TEST(DynamicUsi, MinUtilityKindAlsoExact) {
  const WeightedString seed = testing::RandomWeighted(120, 2, 13);
  DynamicUsiOptions options;
  options.k = 25;
  options.utility = GlobalUtilityKind::kMin;
  DynamicUsi dynamic(seed, options);
  Rng rng(14);
  std::vector<double> appended_weights;
  for (int step = 0; step < 40; ++step) {
    const Symbol c = static_cast<Symbol>(rng.UniformBelow(2));
    const double w = rng.UniformDouble();
    dynamic.Append(c, w);
    appended_weights.push_back(w);
  }
  const Text full = dynamic.text();
  std::vector<double> weights = seed.weights();
  weights.insert(weights.end(), appended_weights.begin(),
                 appended_weights.end());
  const WeightedString current(full, weights);
  for (int trial = 0; trial < 100; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 4));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(current.size() - len));
    const Text pattern = current.Fragment(start, len);
    const QueryResult got = dynamic.Query(pattern);
    const QueryResult want =
        testing::BruteUtility(current, pattern, GlobalUtilityKind::kMin);
    ASSERT_NEAR(got.utility, want.utility, 1e-9);
  }
}

TEST(DynamicUsi, AppendHeavyDifferentialAllUtilityKinds) {
  // Append-heavy schedule pinned three ways for every aggregation kind:
  // against brute force and against a freshly built static UsiIndex over
  // the same content, at periodic checkpoints.
  for (const GlobalUtilityKind kind :
       {GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
        GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg}) {
    const WeightedString seed = testing::RandomWeighted(120, 3, 21);
    DynamicUsiOptions options;
    options.k = 25;
    options.utility = kind;
    DynamicUsi dynamic(seed, options);
    Rng rng(22 + static_cast<u64>(kind));
    Text full = seed.text();
    std::vector<double> weights = seed.weights();
    for (int step = 0; step < 150; ++step) {
      const Symbol c = static_cast<Symbol>(rng.UniformBelow(3));
      const double w = rng.UniformDouble();
      dynamic.Append(c, w);
      full.push_back(c);
      weights.push_back(w);
      if (step % 25 != 24) continue;
      const WeightedString current(full, weights);
      UsiOptions static_options;
      static_options.k = 25;
      static_options.utility = kind;
      const UsiIndex rebuilt(current, static_options);
      for (int trial = 0; trial < 40; ++trial) {
        const index_t len = static_cast<index_t>(rng.UniformInRange(1, 5));
        const index_t start =
            static_cast<index_t>(rng.UniformBelow(current.size() - len));
        const Text pattern = current.Fragment(start, len);
        const QueryResult got = dynamic.Query(pattern);
        const QueryResult brute = testing::BruteUtility(current, pattern, kind);
        const QueryResult fresh = rebuilt.Query(pattern);
        ASSERT_EQ(got.occurrences, brute.occurrences)
            << GlobalUtilityKindName(kind) << " step " << step;
        ASSERT_NEAR(got.utility, brute.utility, 1e-9)
            << GlobalUtilityKindName(kind) << " step " << step;
        ASSERT_EQ(got.occurrences, fresh.occurrences);
        ASSERT_NEAR(got.utility, fresh.utility, 1e-9);
      }
    }
  }
}

TEST(DynamicUsi, MaxStalenessAutoRefreshHoldsTheBound) {
  DynamicUsiOptions options;
  options.k = 20;
  options.max_staleness = 16;
  const WeightedString seed = testing::RandomWeighted(100, 2, 31);
  DynamicUsi dynamic(seed, options);
  Rng rng(32);
  index_t max_seen = 0;
  for (int step = 0; step < 200; ++step) {
    dynamic.Append(static_cast<Symbol>(rng.UniformBelow(2)),
                   rng.UniformDouble());
    // The automatic refresh fires inside Append, so the observable bound
    // never exceeds the configured limit.
    ASSERT_LE(dynamic.StalenessBound(), 16u) << "step " << step;
    max_seen = std::max(max_seen, dynamic.StalenessBound());
  }
  EXPECT_GT(max_seen, 0u) << "appends between refreshes must accumulate";
  // Refreshes actually ran: 200 appends with no refresh would read 200.
  EXPECT_LT(dynamic.StalenessBound(), 200u);
  EXPECT_GT(dynamic.TrackedEntries(), 0u);
  // And the most recent refresh re-anchored the table: the single most
  // frequent letter answers from it even though appends followed.
  dynamic.RefreshTopK();
  EXPECT_EQ(dynamic.StalenessBound(), 0u);
}

TEST(DynamicUsi, ReserveDoesNotChangeAnswers) {
  // Reserve only pre-grows the append-path arrays; the two builds must be
  // observationally identical.
  const WeightedString ws = testing::RandomWeighted(400, 3, 41);
  DynamicUsiOptions options;
  options.k = 30;
  DynamicUsi plain(options);
  DynamicUsi reserved(options);
  reserved.Reserve(ws.size());
  for (index_t i = 0; i < ws.size(); ++i) {
    plain.Append(ws.letter(i), ws.weight(i));
    reserved.Append(ws.letter(i), ws.weight(i));
  }
  EXPECT_EQ(plain.size(), reserved.size());
  EXPECT_EQ(plain.StalenessBound(), reserved.StalenessBound());
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult a = plain.Query(pattern);
    const QueryResult b = reserved.Query(pattern);
    // Same appends in the same order: answers are bit-identical, not just
    // close.
    ASSERT_EQ(a.occurrences, b.occurrences);
    ASSERT_EQ(a.utility, b.utility);
    ASSERT_EQ(a.from_hash_table, b.from_hash_table);
  }
}

TEST(DynamicUsi, SizeGrows) {
  DynamicUsi dynamic;
  const std::size_t empty_size = dynamic.SizeInBytes();
  for (int i = 0; i < 1000; ++i) dynamic.Append(static_cast<Symbol>(i % 3), 1.0);
  EXPECT_GT(dynamic.SizeInBytes(), empty_size);
}

}  // namespace
}  // namespace usi
