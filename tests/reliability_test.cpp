// Reliability layer: deterministic fault injection (failpoints), typed load
// errors, deadlines + cost-aware admission, build-lane failure containment,
// and graceful degradation when an index backing fails mid-serve. The chaos
// tests drive every containment path through armed failpoints — no real
// fault is needed, so the whole suite is ThreadSanitizer-clean and runs in
// CI under both the "concurrency" and "chaos" labels. Tests that need armed
// sites skip themselves when the build has USI_FAILPOINTS off; the registry
// API itself (Arm/Evaluate/ParseSpec) always links and is tested either way.

#include <atomic>
#include <chrono>
#include <fstream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/mapped_file.hpp"

namespace usi {
namespace {

using testing::RandomWeighted;

/// Substrings of \p ws plus patterns absent from it (the absent ones reach
/// the engine's miss/fallback stage, where the query-path failpoint and the
/// deadline poll live).
std::vector<Text> PatternsFor(const WeightedString& ws, u64 seed,
                              int present = 48, int absent = 12) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int i = 0; i < present; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(8, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  for (int i = 0; i < absent; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(1, 6)),
                            static_cast<Symbol>(200 + i)));
  }
  return patterns;
}

std::vector<QueryResult> DirectAnswers(const UsiIndex& index,
                                       const std::vector<Text>& patterns) {
  std::vector<QueryResult> want(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    want[i] = index.Query(patterns[i]);
  }
  return want;
}

bool SameResult(const QueryResult& a, const QueryResult& b) {
  return a.utility == b.utility && a.occurrences == b.occurrences;
}

void ExpectSameResults(const std::vector<QueryResult>& got,
                       const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameResult(got[i], want[i])) << "pattern " << i;
  }
}

/// Every test disarms every site on the way out, so an armed failpoint can
/// never leak into a later test (or a later suite in the same process).
class ReliabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Status / state / error-code names (satellite: ServeStatusName coverage).

TEST_F(ReliabilityTest, ServeStatusNamesAreDistinct) {
  const ServeStatus all[] = {
      ServeStatus::kOk,         ServeStatus::kBusy,
      ServeStatus::kUnknownText, ServeStatus::kNotReady,
      ServeStatus::kOverloaded, ServeStatus::kDeadlineExceeded,
      ServeStatus::kIndexUnavailable, ServeStatus::kDegraded,
  };
  std::vector<std::string> names;
  for (ServeStatus status : all) {
    const std::string name = ServeStatusName(status);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST_F(ReliabilityTest, BuildStateNamesAreDistinct) {
  const BuildState all[] = {BuildState::kUnknown, BuildState::kPending,
                            BuildState::kBuilding, BuildState::kReady,
                            BuildState::kFailed};
  std::vector<std::string> names;
  for (BuildState state : all) {
    const std::string name = BuildStateName(state);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST_F(ReliabilityTest, LoadErrorCodeNamesAreDistinct) {
  const LoadErrorCode all[] = {
      LoadErrorCode::kOk,        LoadErrorCode::kNotFound,
      LoadErrorCode::kIo,        LoadErrorCode::kBadFormat,
      LoadErrorCode::kCorrupt,   LoadErrorCode::kTextMismatch,
      LoadErrorCode::kHostMismatch,
  };
  std::vector<std::string> names;
  for (LoadErrorCode code : all) {
    const std::string name = LoadErrorCodeName(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// ---------------------------------------------------------------------------
// Failpoint registry semantics (ParseSpec / arming / deterministic firing).
// These drive Site::Evaluate directly, so they run in every build; only the
// *macro sites inside library code* need USI_FAILPOINTS.

TEST_F(ReliabilityTest, ParseSpecAcceptsEveryForm) {
  using failpoint::Action;
  using failpoint::ParseSpec;
  using failpoint::Spec;
  Spec spec;
  ASSERT_TRUE(ParseSpec("throw", &spec));
  EXPECT_EQ(spec.action, Action::kThrow);
  EXPECT_EQ(spec.skip, 0u);
  EXPECT_EQ(spec.fires, 0u);
  EXPECT_EQ(spec.percent, 100u);

  ASSERT_TRUE(ParseSpec("error*2", &spec));
  EXPECT_EQ(spec.action, Action::kError);
  EXPECT_EQ(spec.fires, 2u);

  ASSERT_TRUE(ParseSpec("badalloc@1", &spec));
  EXPECT_EQ(spec.action, Action::kBadAlloc);
  EXPECT_EQ(spec.skip, 1u);

  ASSERT_TRUE(ParseSpec("error%25", &spec));
  EXPECT_EQ(spec.percent, 25u);

  ASSERT_TRUE(ParseSpec("throw@2*3%50", &spec));
  EXPECT_EQ(spec.action, Action::kThrow);
  EXPECT_EQ(spec.skip, 2u);
  EXPECT_EQ(spec.fires, 3u);
  EXPECT_EQ(spec.percent, 50u);

  ASSERT_TRUE(ParseSpec("off", &spec));
  EXPECT_EQ(spec.action, Action::kOff);
}

TEST_F(ReliabilityTest, ParseSpecRejectsMalformedInput) {
  using failpoint::ParseSpec;
  using failpoint::Spec;
  Spec spec;
  spec.skip = 7;  // Sentinel: a failed parse must leave the spec untouched.
  EXPECT_FALSE(ParseSpec("", &spec));
  EXPECT_FALSE(ParseSpec("bogus", &spec));
  EXPECT_FALSE(ParseSpec("error%", &spec));
  EXPECT_FALSE(ParseSpec("error%999", &spec));
  EXPECT_FALSE(ParseSpec("throw@", &spec));
  EXPECT_FALSE(ParseSpec("throw*x", &spec));
  EXPECT_EQ(spec.skip, 7u);
}

TEST_F(ReliabilityTest, ArmFromStringArmsWellFormedClausesOnly) {
  const int armed = failpoint::ArmFromString(
      "reliab.a=throw;reliab.b=error*1;junkclause;reliab.c=nonsense");
  EXPECT_EQ(armed, 2);
  const std::vector<std::string> names = failpoint::SiteNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "reliab.a"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "reliab.b"), names.end());
}

TEST_F(ReliabilityTest, SkipAndFiresControlWhenASiteFires) {
  using failpoint::Action;
  failpoint::Site& site = failpoint::Site::Get("reliab.counted");
  failpoint::Arm("reliab.counted", Action::kError, /*fires=*/1, /*skip=*/1);
  EXPECT_FALSE(site.Evaluate());  // Skipped.
  EXPECT_TRUE(site.Evaluate());   // Fires.
  EXPECT_FALSE(site.Evaluate());  // Fire budget exhausted.
  EXPECT_EQ(failpoint::HitCount("reliab.counted"), 3u);
  EXPECT_EQ(failpoint::FireCount("reliab.counted"), 1u);
  failpoint::Disarm("reliab.counted");
  EXPECT_FALSE(site.Evaluate());
  EXPECT_EQ(failpoint::HitCount("reliab.counted"), 0u);
}

TEST_F(ReliabilityTest, ThrowAndBadAllocActionsThrow) {
  using failpoint::Action;
  failpoint::Site& site = failpoint::Site::Get("reliab.thrower");
  failpoint::Arm("reliab.thrower", Action::kThrow);
  EXPECT_THROW(site.Evaluate(), failpoint::FailpointError);
  failpoint::Arm("reliab.thrower", Action::kBadAlloc);
  EXPECT_THROW(site.Evaluate(), std::bad_alloc);
}

TEST_F(ReliabilityTest, PercentDrawsReplayDeterministically) {
  using failpoint::Action;
  using failpoint::Spec;
  failpoint::Site& site = failpoint::Site::Get("reliab.percent");
  Spec spec;
  spec.action = Action::kError;
  spec.percent = 40;
  spec.seed = 1234;
  const auto draw_pattern = [&] {
    failpoint::Arm("reliab.percent", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(site.Evaluate());
    return pattern;
  };
  const std::vector<bool> first = draw_pattern();
  const std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second);  // Same seed -> identical firing sequence.
  const std::size_t fired =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());
}

// ---------------------------------------------------------------------------
// Typed load errors (satellite: LoadError out-param from LoadFromFile /
// OpenMapped).

TEST_F(ReliabilityTest, LoadErrorsAreTyped) {
  const WeightedString ws = RandomWeighted(2000, 8, 11);
  UsiOptions options;
  options.k = 100;
  options.threads = 1;
  const UsiIndex index(ws, options);
  const std::string dir = ::testing::TempDir();
  const std::string v3 = dir + "reliab_load_v3.bin";
  const std::string v2 = dir + "reliab_load_v2.bin";
  const std::string junk = dir + "reliab_load_junk.bin";
  ASSERT_TRUE(index.SaveToFile(v3, IndexFileFormat::kV3Mapped));
  ASSERT_TRUE(index.SaveToFile(v2, IndexFileFormat::kV2Heap));

  LoadError error;
  // Success leaves the error at kOk with no message.
  EXPECT_NE(UsiIndex::LoadFromFile(ws, v3, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kOk);
  EXPECT_TRUE(error.message.empty());
  EXPECT_NE(UsiIndex::LoadFromFile(ws, v2, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kOk);

  // Missing file.
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, dir + "reliab_nope.bin", &error),
            nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kNotFound);
  EXPECT_FALSE(error.message.empty());

  // Unrecognized magic.
  {
    std::ofstream out(junk, std::ios::binary);
    out << "this is not an index file at all, not even close............";
  }
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, junk, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kBadFormat);

  // Truncated v3 image: the header pins the exact file size.
  {
    std::ifstream in(v3, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 64);
    std::ofstream out(junk, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(UsiIndex::OpenMapped(ws, junk, {}, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kCorrupt);

  // Built over a different text.
  const WeightedString other = RandomWeighted(2100, 8, 12);
  EXPECT_EQ(UsiIndex::OpenMapped(other, v3, {}, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kTextMismatch);
  EXPECT_EQ(UsiIndex::LoadFromFile(other, v2, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kTextMismatch);

  std::remove(v3.c_str());
  std::remove(v2.c_str());
  std::remove(junk.c_str());
}

TEST_F(ReliabilityTest, LoadFailpointsInjectIoErrors) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString ws = RandomWeighted(1500, 8, 13);
  UsiOptions options;
  options.k = 80;
  options.threads = 1;
  const UsiIndex index(ws, options);
  const std::string dir = ::testing::TempDir();
  const std::string v3 = dir + "reliab_fp_v3.bin";
  const std::string v2 = dir + "reliab_fp_v2.bin";
  ASSERT_TRUE(index.SaveToFile(v3, IndexFileFormat::kV3Mapped));
  ASSERT_TRUE(index.SaveToFile(v2, IndexFileFormat::kV2Heap));

  LoadError error;
  failpoint::Arm("open.mapped", failpoint::Action::kError, /*fires=*/1);
  EXPECT_EQ(UsiIndex::OpenMapped(ws, v3, {}, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kIo);
  EXPECT_NE(UsiIndex::OpenMapped(ws, v3, {}, &error), nullptr)
      << "fire budget exhausted: the next open must succeed";

  failpoint::Arm("load.v2", failpoint::Action::kError, /*fires=*/1);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, v2, &error), nullptr);
  EXPECT_EQ(error.code, LoadErrorCode::kIo);
  EXPECT_NE(UsiIndex::LoadFromFile(ws, v2, &error), nullptr);

  std::remove(v3.c_str());
  std::remove(v2.c_str());
}

TEST_F(ReliabilityTest, SaveFailpointsLeaveNoPartialFile) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString ws = RandomWeighted(1500, 8, 14);
  UsiOptions options;
  options.k = 80;
  options.threads = 1;
  const UsiIndex index(ws, options);
  const std::string path = ::testing::TempDir() + "reliab_save.bin";
  std::remove(path.c_str());

  // A failed body write must not publish the target (staging discipline).
  failpoint::Arm("save.body", failpoint::Action::kError, /*fires=*/1);
  EXPECT_FALSE(index.SaveToFile(path, IndexFileFormat::kV3Mapped));
  EXPECT_FALSE(std::ifstream(path).good());

  // A failed publish (rename) must clean up the staged temp too.
  failpoint::Arm("save.publish", failpoint::Action::kError, /*fires=*/1);
  EXPECT_FALSE(index.SaveToFile(path, IndexFileFormat::kV3Mapped));
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_EQ(RemoveStaleTemps(path), 0) << "staged temp leaked";

  EXPECT_TRUE(index.SaveToFile(path, IndexFileFormat::kV3Mapped));
  EXPECT_TRUE(std::ifstream(path).good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ThreadPool Submit exception audit (satellite: no swallowed task faults).

TEST_F(ReliabilityTest, SubmitTracksUnconsumedExceptions) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  ok.get();
  EXPECT_EQ(pool.PendingTaskExceptions(), 0u);

  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task fault"); });
  // The task has finished (exception captured) once the audit sees it;
  // poll briefly instead of racing the worker.
  for (int i = 0; i < 1000 && pool.PendingTaskExceptions() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.PendingTaskExceptions(), 1u);
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(pool.PendingTaskExceptions(), 0u)
      << "get() consumed the exception; the audit must clear";
}

TEST_F(ReliabilityTest, PoolTaskFailpointPropagatesThroughFuture) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  ThreadPool pool(2);
  failpoint::Arm("pool.task", failpoint::Action::kThrow, /*fires=*/1);
  std::future<void> poisoned = pool.Submit([] {});
  EXPECT_THROW(poisoned.get(), failpoint::FailpointError);
  EXPECT_EQ(pool.PendingTaskExceptions(), 0u);
  std::future<void> clean = pool.Submit([] {});
  clean.get();  // Fire budget exhausted; the pool keeps working.
}

// ---------------------------------------------------------------------------
// Deadlines: partial results, bounded overshoot, clean totals.

TEST_F(ReliabilityTest, ServiceDeadlineExpiredReturnsPartialResults) {
  const WeightedString ws = RandomWeighted(3000, 8, 21);
  UsiOptions options;
  options.k = 150;
  options.threads = 1;
  UsiIndex index(ws, options);
  UsiServiceOptions service_options;
  service_options.threads = 1;
  UsiService service(index, service_options);
  const std::vector<Text> patterns = PatternsFor(ws, 22);
  const std::vector<QueryResult> want = DirectAnswers(index, patterns);

  // Already-expired deadline: every slot written (defaults), zero answered.
  std::vector<QueryResult> results(patterns.size(),
                                   QueryResult{/*utility=*/-1, 777});
  UsiBatchStats stats;
  UsiBatchOptions batch_options;
  batch_options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(service.QueryBatchInto(std::span<const Text>(patterns),
                                   std::span<QueryResult>(results), &stats,
                                   batch_options),
            ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_EQ(stats.answered, 0u);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.occurrences, 0u) << "expired slots must be defaulted";
  }

  // Far-future deadline: the batch serves completely and correctly.
  batch_options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(service.QueryBatchInto(std::span<const Text>(patterns),
                                   std::span<QueryResult>(results), &stats,
                                   batch_options),
            ServeStatus::kOk);
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_EQ(stats.answered, patterns.size());
  ExpectSameResults(results, want);

  // Totals: the expired batch contributed no served queries, exactly one
  // deadline_expired tick, and no rejected/serve_failure counts.
  const UsiServiceTotals totals = service.totals();
  EXPECT_EQ(totals.batches, 2u);
  EXPECT_EQ(totals.queries, patterns.size());
  EXPECT_EQ(totals.deadline_expired, 1u);
  EXPECT_EQ(totals.rejected, 0u);
  EXPECT_EQ(totals.serve_failures, 0u);
}

TEST_F(ReliabilityTest, MultiServiceDeadlinePartialAndRecovery) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  UsiMultiService service(options);
  const WeightedString ws_a = RandomWeighted(2500, 8, 31);
  const WeightedString ws_b = RandomWeighted(2500, 8, 32);
  service.SubmitText("a", ws_a);
  service.SubmitText("b", ws_b);
  ASSERT_EQ(service.WaitForText("a"), BuildState::kReady);
  ASSERT_EQ(service.WaitForText("b"), BuildState::kReady);

  const std::vector<Text> pa = PatternsFor(ws_a, 33);
  const std::vector<Text> pb = PatternsFor(ws_b, 34);
  std::vector<MultiQuery> queries;
  for (const Text& p : pa) queries.push_back({"a", p});
  for (const Text& p : pb) queries.push_back({"b", p});

  std::vector<QueryResult> results(queries.size(), QueryResult{-1, 777});
  MultiBatchOptions batch_options;
  batch_options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kDeadlineExceeded);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.occurrences, 0u) << "expired slots must be defaulted";
  }
  EXPECT_EQ(service.stats().deadline_expired, 1u);

  // The same batch with room to breathe serves fully and correctly.
  batch_options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(service.QueryBatchInto(queries, results, batch_options),
            ServeStatus::kOk);
  UsiOptions direct;
  direct.threads = 1;
  const UsiIndex oracle_a(ws_a, direct);
  const UsiIndex oracle_b(ws_b, direct);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(SameResult(results[i], oracle_a.Query(pa[i]))) << i;
  }
  for (std::size_t i = 0; i < pb.size(); ++i) {
    EXPECT_TRUE(SameResult(results[pa.size() + i], oracle_b.Query(pb[i])))
        << i;
  }
}

// ---------------------------------------------------------------------------
// Cost-aware admission.

TEST_F(ReliabilityTest, CostModelCalibratesAndLoneBatchAlwaysAdmits) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  // A cap this small rejects any batch — except a lone one: with nothing in
  // flight the batch must be admitted no matter its estimated cost.
  options.max_inflight_cost_ms = 1e-6;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2500, 8, 41);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws, 42);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});
  std::vector<QueryResult> results(queries.size());
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(service.QueryBatchInto(queries, results), ServeStatus::kOk)
        << "lone batches must never be rejected by the cost cap";
  }
  EXPECT_EQ(service.stats().overload_rejected, 0u);

  // Enough bytes have been served to calibrate the per-byte cost.
  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->cost_ns_per_byte, 0.0);
}

TEST_F(ReliabilityTest, ConcurrentBatchesOverCostCapShedWithOverloaded) {
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_inflight_cost_ms = 1e-6;  // Any concurrent pair overflows.
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(4000, 8, 51);
  service.SubmitText("t", ws);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  // Large batches stretch the in-flight window so simultaneous starts
  // overlap; retry rounds bound the (tiny) chance of a flake without ever
  // sleeping on the happy path.
  std::vector<Text> patterns = PatternsFor(ws, 52);
  std::vector<MultiQuery> queries;
  for (int rep = 0; rep < 40; ++rep) {
    for (const Text& p : patterns) queries.push_back({"t", p});
  }
  std::atomic<u64> ok{0}, overloaded{0}, attempts{0};
  for (int round = 0; round < 25 && overloaded.load() == 0; ++round) {
    constexpr int kThreads = 4;
    std::latch start(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        std::vector<QueryResult> results(queries.size());
        start.arrive_and_wait();
        attempts.fetch_add(1);
        const ServeStatus status = service.QueryBatchInto(queries, results);
        if (status == ServeStatus::kOk) ok.fetch_add(1);
        if (status == ServeStatus::kOverloaded) overloaded.fetch_add(1);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_GT(ok.load(), 0u) << "someone must always be admitted";
  EXPECT_GT(overloaded.load(), 0u);
  const UsiMultiStats stats = service.stats();
  EXPECT_EQ(stats.overload_rejected, overloaded.load());
  // Shed batches must not corrupt the admitted totals.
  EXPECT_EQ(stats.batches, ok.load());
  EXPECT_EQ(stats.queries, ok.load() * queries.size());
}

// ---------------------------------------------------------------------------
// Build-lane failure containment (quarantine, retries, WaitForText).

TEST_F(ReliabilityTest, BuildFailureQuarantinesTextAsFailed) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_build_retries = 1;
  options.build_retry_backoff_ms = 1;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2000, 8, 61);

  failpoint::Arm("multi.build", failpoint::Action::kThrow);
  service.SubmitText("t", ws);
  // WaitForText must terminate with the quarantine state, not hang.
  EXPECT_EQ(service.WaitForText("t"), BuildState::kFailed);
  EXPECT_EQ(service.TextState("t"), BuildState::kFailed);

  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->builds_failed, 1u);
  EXPECT_EQ(stats->build_retries, 1u);  // One retry before quarantine.
  EXPECT_EQ(stats->generation, 0u);     // Nothing ever published.
  EXPECT_NE(stats->last_build_error.find("multi.build"), std::string::npos)
      << "cause: " << stats->last_build_error;
  EXPECT_EQ(service.stats().builds_failed, 1u);

  // No generation to serve: queries report kNotReady, not a hang or crash.
  const Text pattern = ws.Fragment(0, 4);
  QueryResult result;
  EXPECT_EQ(service.Query("t", pattern, result), ServeStatus::kNotReady);

  // The quarantine lifts on the next successful build.
  failpoint::DisarmAll();
  service.UpdateText("t", ws);
  EXPECT_EQ(service.WaitForText("t"), BuildState::kReady);
  EXPECT_EQ(service.Query("t", pattern, result), ServeStatus::kOk);
}

TEST_F(ReliabilityTest, FailedRebuildKeepsServingPreviousGeneration) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_build_retries = 0;
  UsiMultiService service(options);
  const WeightedString ws1 = RandomWeighted(2500, 8, 71);
  const WeightedString ws2 = RandomWeighted(2600, 8, 72);
  service.SubmitText("t", ws1);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);

  const std::vector<Text> patterns = PatternsFor(ws1, 73);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});
  UsiOptions direct;
  direct.threads = 1;
  const UsiIndex oracle1(ws1, direct);
  const std::vector<QueryResult> want1 = DirectAnswers(oracle1, patterns);

  failpoint::Arm("multi.build", failpoint::Action::kThrow);
  service.UpdateText("t", ws2);
  EXPECT_EQ(service.WaitForText("t"), BuildState::kFailed);

  // Differential check: the quarantined text still answers from the intact
  // previous generation, byte-for-byte the direct-index answers.
  MultiBatchResult batch = service.QueryBatch(queries);
  EXPECT_EQ(batch.status, ServeStatus::kOk);
  ExpectSameResults(batch.results, want1);
  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->generation, 1u) << "generation 1 must keep serving";

  // Once builds work again the replacement lands normally.
  failpoint::DisarmAll();
  service.UpdateText("t", ws2);
  ASSERT_EQ(service.WaitForText("t"), BuildState::kReady);
  const UsiIndex oracle2(ws2, direct);
  const std::vector<Text> patterns2 = PatternsFor(ws2, 74);
  std::vector<MultiQuery> queries2;
  for (const Text& p : patterns2) queries2.push_back({"t", p});
  batch = service.QueryBatch(queries2);
  EXPECT_EQ(batch.status, ServeStatus::kOk);
  ExpectSameResults(batch.results, DirectAnswers(oracle2, patterns2));
}

TEST_F(ReliabilityTest, TransientBuildFailureIsRetriedToSuccess) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.threads = 2;
  options.max_build_retries = 2;
  options.build_retry_backoff_ms = 1;
  UsiMultiService service(options);
  const WeightedString ws = RandomWeighted(2000, 8, 81);

  failpoint::Arm("multi.build", failpoint::Action::kThrow, /*fires=*/1);
  service.SubmitText("t", ws);
  EXPECT_EQ(service.WaitForText("t"), BuildState::kReady);
  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->build_retries, 1u);
  EXPECT_EQ(stats->builds_failed, 0u);
  EXPECT_EQ(stats->builds_completed, 1u);
  EXPECT_EQ(stats->build_state, BuildState::kReady);
}

TEST_F(ReliabilityTest, BuilderStageFailpointsAreContained) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  // No pool: builds run synchronously inside SubmitText, including the
  // terminal-failure path, so each stage's containment is step-debuggable.
  for (const char* stage : {"build.sa", "build.mine", "build.table",
                            "build.learn"}) {
    UsiMultiServiceOptions options;
    options.max_build_retries = 0;
    UsiMultiService service(nullptr, options);
    const WeightedString ws = RandomWeighted(1500, 8, 91);
    failpoint::Arm(stage, failpoint::Action::kThrow, /*fires=*/1);
    service.SubmitText("t", ws);
    EXPECT_EQ(service.TextState("t"), BuildState::kFailed) << stage;
    const std::optional<UsiTextStats> stats = service.StatsFor("t");
    ASSERT_TRUE(stats.has_value());
    EXPECT_NE(stats->last_build_error.find(stage), std::string::npos)
        << "cause: " << stats->last_build_error;
    // The next build of the same service succeeds (fire budget spent).
    service.UpdateText("t", ws);
    EXPECT_EQ(service.WaitForText("t"), BuildState::kReady) << stage;
    failpoint::DisarmAll();
  }
}

TEST_F(ReliabilityTest, SimulatedBadAllocQuarantinesWithCause) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  UsiMultiServiceOptions options;
  options.max_build_retries = 0;
  UsiMultiService service(nullptr, options);
  const WeightedString ws = RandomWeighted(1500, 8, 95);
  failpoint::Arm("multi.build", failpoint::Action::kBadAlloc, /*fires=*/1);
  service.SubmitText("t", ws);
  EXPECT_EQ(service.TextState("t"), BuildState::kFailed);
  const std::optional<UsiTextStats> stats = service.StatsFor("t");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->last_build_error.find("memory"), std::string::npos)
      << "cause: " << stats->last_build_error;
}

// ---------------------------------------------------------------------------
// Mapped-index degradation: a faulted mmap-backed generation fails the
// batch with kIndexUnavailable (partial results), is demoted, and the text
// recovers by rebuild — the process never crashes and answers stay correct.

TEST_F(ReliabilityTest, MappedFaultFailsBatchThenRecovers) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString ws = RandomWeighted(3000, 8, 101);
  UsiOptions build;
  build.k = 150;
  build.threads = 1;
  const UsiIndex direct(ws, build);
  const std::string path = ::testing::TempDir() + "reliab_mapped.bin";
  ASSERT_TRUE(direct.SaveToFile(path, IndexFileFormat::kV3Mapped));

  UsiMultiServiceOptions options;
  options.threads = 2;
  options.default_build = build;
  UsiMultiService service(options);
  ASSERT_GT(service.RegisterTextFromFile("m", ws, path), 0u);

  const std::vector<Text> patterns = PatternsFor(ws, 102);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"m", p});
  const std::vector<QueryResult> want = DirectAnswers(direct, patterns);

  // Healthy mapped serving first (differential against the direct index).
  MultiBatchResult batch = service.QueryBatch(queries);
  ASSERT_EQ(batch.status, ServeStatus::kOk);
  ExpectSameResults(batch.results, want);

  // One simulated mmap fault: the batch reports kIndexUnavailable with
  // every slot written, and the faulted generation is demoted.
  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError,
                 /*fires=*/1);
  batch = service.QueryBatch(queries);
  EXPECT_EQ(batch.status, ServeStatus::kIndexUnavailable);
  EXPECT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(service.stats().index_unavailable, 1u);

  // Recovery: the demoted text rebuilds from its retained weighted string
  // and serves correct answers again — same differential oracle.
  EXPECT_EQ(service.WaitForText("m"), BuildState::kReady);
  batch = service.QueryBatch(queries);
  EXPECT_EQ(batch.status, ServeStatus::kOk);
  ExpectSameResults(batch.results, want);
  std::remove(path.c_str());
}

TEST_F(ReliabilityTest, ServiceContainsEngineExceptions) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "built without USI_FAILPOINTS";
  const WeightedString ws = RandomWeighted(2000, 8, 111);
  UsiOptions options;
  options.k = 100;
  options.threads = 1;
  UsiIndex index(ws, options);
  UsiServiceOptions service_options;
  service_options.threads = 1;
  UsiService service(index, service_options);
  const std::vector<Text> patterns = PatternsFor(ws, 112);
  std::vector<QueryResult> results(patterns.size());

  // An exception out of the engine's miss/fallback stage must not escape:
  // the batch fails soft with kIndexUnavailable and defaulted slots.
  failpoint::Arm("query.fallback", failpoint::Action::kThrow, /*fires=*/1);
  UsiBatchStats stats;
  EXPECT_EQ(service.QueryBatchInto(std::span<const Text>(patterns),
                                   std::span<QueryResult>(results), &stats),
            ServeStatus::kIndexUnavailable);
  EXPECT_EQ(service.totals().serve_failures, 1u);

  // The service (and its leased scratch) survives: the next batch is clean.
  EXPECT_EQ(service.QueryBatchInto(std::span<const Text>(patterns),
                                   std::span<QueryResult>(results), &stats),
            ServeStatus::kOk);
  ExpectSameResults(results, DirectAnswers(index, patterns));
}

// ---------------------------------------------------------------------------
// Registration hygiene (satellite: stale staging temps are swept).

TEST_F(ReliabilityTest, RegistrationSweepsStaleStagingTemps) {
  const WeightedString ws = RandomWeighted(2000, 8, 121);
  UsiOptions build;
  build.k = 100;
  build.threads = 1;
  const UsiIndex index(ws, build);
  const std::string path = ::testing::TempDir() + "reliab_sweep.bin";
  ASSERT_TRUE(index.SaveToFile(path, IndexFileFormat::kV3Mapped));
  // A crashed writer's leftover: same staging prefix, dead pid.
  const std::string stale = path + ".tmp.999999";
  { std::ofstream(stale, std::ios::binary) << "half-written index"; }
  ASSERT_TRUE(std::ifstream(stale).good());

  UsiMultiServiceOptions options;
  options.threads = 1;
  UsiMultiService service(options);
  ASSERT_GT(service.RegisterTextFromFile("s", ws, path), 0u);
  EXPECT_FALSE(std::ifstream(stale).good())
      << "registration must sweep stale staging temps next to the file";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usi
