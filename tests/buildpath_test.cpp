// Construction hot-path suite: the rewritten cache-conscious SA-IS (level-0
// byte specialization, word-packed type bits, slab-arena recursion,
// pool-parallel level-0 passes), the chunked LCP-interval (ESA) traversal
// behind pool-parallel exact mining, and the memory-lean staged builder's
// RSS telemetry. Carries the "concurrency" CTest label so the TSan CI job
// covers the parallel-mining paths.
//
// SA differential contract: BuildSuffixArray == a naive std::sort comparator
// SA == BuildSuffixArrayReference (the seed's textbook SA-IS) on random,
// periodic, all-equal, and full 256-symbol-alphabet texts — including the
// 0xFF boundary, the symbol value the old Alphabet sentinel once clashed
// with.

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/esa.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/memory.hpp"

namespace usi {
namespace {

std::vector<index_t> NaiveSuffixArray(const Text& text) {
  std::vector<index_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](index_t a, index_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void ExpectAllThreeAgree(const Text& text, const std::string& label) {
  const std::vector<index_t> naive = NaiveSuffixArray(text);
  EXPECT_EQ(BuildSuffixArray(text), naive) << label;
  EXPECT_EQ(BuildSuffixArrayReference(text), naive) << label;
}

TEST(SaDifferential, RandomTexts) {
  struct Case {
    index_t n;
    u32 sigma;
    u64 seed;
  };
  for (const Case& c : {Case{64, 2, 11}, Case{500, 3, 12}, Case{1000, 16, 13},
                        Case{2000, 95, 14}, Case{3000, 256, 15}}) {
    ExpectAllThreeAgree(testing::RandomText(c.n, c.sigma, c.seed),
                        "n=" + std::to_string(c.n) +
                            " sigma=" + std::to_string(c.sigma));
  }
}

TEST(SaDifferential, PeriodicTexts) {
  for (const index_t period : {1u, 2u, 3u, 7u, 64u}) {
    ExpectAllThreeAgree(MakePeriodic(600, period, 0).text(),
                        "period=" + std::to_string(period));
  }
}

TEST(SaDifferential, AllEqualIncludingMaxSymbol) {
  ExpectAllThreeAgree(Text(300, 0), "all-0x00");
  ExpectAllThreeAgree(Text(300, 0xFF), "all-0xFF");
}

TEST(SaDifferential, Full256SymbolAlphabet) {
  // Every byte value present, several times, in random order.
  Text text;
  for (int rep = 0; rep < 4; ++rep) {
    for (int c = 0; c < 256; ++c) text.push_back(static_cast<Symbol>(c));
  }
  Rng rng(0xA1FA);
  for (std::size_t i = text.size(); i-- > 1;) {
    std::swap(text[i], text[rng.UniformBelow(static_cast<u32>(i + 1))]);
  }
  ExpectAllThreeAgree(text, "shuffled 4x256");
  EXPECT_EQ(EffectiveSigma(text), 256u);
}

TEST(SaDifferential, MaxSymbolBoundaries) {
  // 0xFF at the text boundaries and in runs: the positions where a
  // wrapped/widened symbol or a mis-sized bucket array would show first.
  Text trailing = testing::T("ab");
  trailing.push_back(0xFF);
  ExpectAllThreeAgree(trailing, "ends with 0xFF");
  Text leading{0xFF, 0xFF, 0xFF};
  const Text tail = testing::T("ab");
  leading.insert(leading.end(), tail.begin(), tail.end());
  ExpectAllThreeAgree(leading, "starts with 0xFF run");
  Text mixed;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    mixed.push_back(rng.UniformBelow(4) == 0 ? Symbol{0xFF}
                                             : static_cast<Symbol>(
                                                   rng.UniformBelow(3)));
  }
  mixed.push_back(0xFF);
  ExpectAllThreeAgree(mixed, "0xFF-heavy, 0xFF-terminated");
}

TEST(SaDifferential, DeepRecursionFibonacciWord) {
  // Fibonacci words force many SA-IS recursion levels; exercises the slab
  // arena's rewind/reuse discipline.
  Text a = {0};
  Text b = {0, 1};
  while (b.size() < 5000) {
    Text next = b;
    next.insert(next.end(), a.begin(), a.end());
    a = std::move(b);
    b = std::move(next);
  }
  EXPECT_EQ(BuildSuffixArray(b), BuildSuffixArrayReference(b));
}

TEST(SaParallel, PoolMatchesSequentialAcrossWidths) {
  // Large enough to cross the level-0 parallel threshold (2^14).
  for (const auto& text :
       {testing::RandomText(50'000, 4, 99), MakePeriodic(40'000, 5, 1).text(),
        MakeXmlLike(60'000, 2).text()}) {
    const std::vector<index_t> sequential = BuildSuffixArray(text);
    for (const unsigned threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(BuildSuffixArray(text, &pool), sequential)
          << "threads=" << threads;
    }
  }
}

TEST(SaParallel, SmallTextIgnoresPool) {
  ThreadPool pool(4);
  const Text text = testing::RandomText(500, 4, 5);
  EXPECT_EQ(BuildSuffixArray(text, &pool), NaiveSuffixArray(text));
}

TEST(EsaChunked, BoundaryStacksMatchDirectReplay) {
  const Text text = testing::RandomText(3000, 3, 21);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const std::vector<index_t> lcp = BuildLcpArray(text, sa);
  const std::vector<index_t> suffix_len =
      DenseSuffixLengths(sa, static_cast<index_t>(text.size()));

  // Snapshots via the pre-pass must equal the stack a full enumeration has
  // entering the same step.
  const std::vector<index_t> boundaries = {1, 2, 700, 1500, 2999};
  const auto snapshots = LcpIntervalStacksAt(lcp, boundaries);
  ASSERT_EQ(snapshots.size(), boundaries.size());
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    std::vector<LcpStackEntry> stack = {{0, 0}};
    EnumerateSuffixTreeNodeRange(lcp, suffix_len, 1, boundaries[b], stack,
                                 [](const SuffixTreeNode&) {});
    EXPECT_EQ(snapshots[b], stack) << "boundary " << boundaries[b];
  }
}

TEST(EsaChunked, ChunkedEnumerationEqualsSequentialExactly) {
  const Text text = MakeIotLike(4000, 9).text();
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const std::vector<index_t> lcp = BuildLcpArray(text, sa);
  const index_t m = static_cast<index_t>(text.size());
  const std::vector<index_t> suffix_len = DenseSuffixLengths(sa, m);

  const std::vector<SuffixTreeNode> sequential =
      CollectSuffixTreeNodes(lcp, suffix_len);

  for (const index_t chunks : {2u, 3u, 7u, 16u}) {
    const index_t span = (m + chunks - 1) / chunks;
    std::vector<index_t> boundaries;
    for (index_t c = 1; c < chunks && 1 + c * span <= m; ++c) {
      boundaries.push_back(1 + c * span);
    }
    const auto snapshots = LcpIntervalStacksAt(lcp, boundaries);
    std::vector<SuffixTreeNode> chunked;
    for (std::size_t c = 0; c <= boundaries.size(); ++c) {
      const index_t begin = c == 0 ? 1 : boundaries[c - 1];
      const index_t end =
          c == boundaries.size() ? m + 1 : boundaries[c];
      std::vector<LcpStackEntry> stack =
          c == 0 ? std::vector<LcpStackEntry>{{0, 0}} : snapshots[c - 1];
      EnumerateSuffixTreeNodeRange(lcp, suffix_len, begin, end, stack,
                                   [&](const SuffixTreeNode& node) {
                                     chunked.push_back(node);
                                   });
    }
    // Not just the same set: the exact sequential emission order, which is
    // what keeps the radix-sorted T — and the serialized index — identical
    // across thread counts.
    EXPECT_EQ(chunked, sequential) << "chunks=" << chunks;
  }
}

TEST(ParallelMining, StatsTopKMatchesSequentialAboveThreshold) {
  // Above the chunked-traversal threshold (2^14 nodes) so the parallel path
  // actually engages.
  const Text text = MakeXmlLike(40'000, 3).text();
  const std::vector<index_t> sa = BuildSuffixArray(text);
  std::vector<index_t> sa_seq = sa;
  const SubstringStats sequential(text, std::move(sa_seq));
  const TopKList expected = sequential.TopK(500);

  for (const unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<index_t> sa_par = sa;
    const SubstringStats parallel(text, std::move(sa_par), &pool);
    EXPECT_EQ(parallel.NodeCount(), sequential.NodeCount());
    const TopKList actual = parallel.TopK(500);
    ASSERT_EQ(actual.items.size(), expected.items.size());
    for (std::size_t i = 0; i < expected.items.size(); ++i) {
      EXPECT_EQ(actual.items[i].length, expected.items[i].length) << i;
      EXPECT_EQ(actual.items[i].frequency, expected.items[i].frequency) << i;
      EXPECT_EQ(actual.items[i].lb, expected.items[i].lb) << i;
      EXPECT_EQ(actual.items[i].rb, expected.items[i].rb) << i;
      EXPECT_EQ(actual.items[i].witness, expected.items[i].witness) << i;
    }
  }
}

TEST(ParallelMining, SaveToFileByteIdenticalAcrossThreadCounts) {
  // The full-pipeline determinism contract at a size where *every* parallel
  // build stage engages: parallel SA-IS level-0 passes, chunked LCP,
  // chunked node enumeration, and parallel table population.
  const WeightedString ws = testing::RandomWeighted(40'000, 4, 0x5EED);
  UsiOptions options;
  options.k = 400;
  options.threads = 1;
  const UsiIndex sequential(ws, options);
  const std::string seq_path = TempPath("usi_buildpath_seq.bin");
  ASSERT_TRUE(sequential.SaveToFile(seq_path));
  const std::string seq_bytes = ReadFileBytes(seq_path);
  ASSERT_FALSE(seq_bytes.empty());

  for (const unsigned threads : {2u, 4u, 8u}) {
    UsiOptions parallel_options = options;
    parallel_options.threads = threads;
    const UsiIndex parallel(ws, parallel_options);
    const std::string par_path = TempPath("usi_buildpath_par.bin");
    ASSERT_TRUE(parallel.SaveToFile(par_path));
    EXPECT_EQ(seq_bytes, ReadFileBytes(par_path)) << "threads=" << threads;
  }
}

TEST(LeanBuild, ReleaseLcpKeepsQueriesWorking) {
  const Text text = testing::RandomText(2000, 4, 77);
  std::vector<index_t> sa = BuildSuffixArray(text);
  SubstringStats stats(text, std::move(sa));
  const TopKList before = stats.TopK(50);
  const auto tuning_before = stats.EstimateForK(50);
  stats.ReleaseLcp();
  EXPECT_TRUE(stats.lcp().empty());
  const TopKList after = stats.TopK(50);
  ASSERT_EQ(after.items.size(), before.items.size());
  for (std::size_t i = 0; i < before.items.size(); ++i) {
    EXPECT_EQ(after.items[i].lb, before.items[i].lb) << i;
    EXPECT_EQ(after.items[i].length, before.items[i].length) << i;
  }
  EXPECT_EQ(stats.EstimateForK(50).tau, tuning_before.tau);
}

TEST(LeanBuild, RssTelemetryIsPopulated) {
  const WeightedString ws = testing::RandomWeighted(20'000, 4, 0xACE);
  UsiOptions options;
  options.k = 200;
  const UsiIndex index(ws, options);
  const UsiBuildInfo& info = index.build_info();
  if (ReadPeakRssBytes() == 0) GTEST_SKIP() << "/proc unavailable";
  EXPECT_GT(info.peak_rss_bytes, 0u);
  // The peak covers at least the index's own resident footprint.
  EXPECT_GE(info.peak_rss_bytes, index.SizeInBytes() / 2);
  // Stage deltas never exceed the final peak.
  EXPECT_LE(info.sa_rss_delta_bytes, info.peak_rss_bytes);
  EXPECT_LE(info.mining_rss_delta_bytes, info.peak_rss_bytes);
  EXPECT_LE(info.table_rss_delta_bytes, info.peak_rss_bytes);
}

}  // namespace
}  // namespace usi
