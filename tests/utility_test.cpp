// Tests for the utility framework: PSW, accumulators, the exhaustive query
// engine — including the paper's worked Example 1.

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/utility.hpp"
#include "usi/suffix/suffix_array.hpp"

namespace usi {
namespace {

TEST(PrefixSumWeights, LocalUtilityMatchesDirectSum) {
  const WeightedString ws = testing::RandomWeighted(300, 4, 9);
  const PrefixSumWeights psw(ws);
  Rng rng(10);
  for (int trial = 0; trial < 500; ++trial) {
    const index_t i = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t len =
        static_cast<index_t>(rng.UniformInRange(1, ws.size() - i));
    double direct = 0;
    for (index_t k = 0; k < len; ++k) direct += ws.weight(i + k);
    EXPECT_NEAR(psw.LocalUtility(i, len), direct, 1e-9);
  }
}

TEST(PrefixSumWeights, AppendExtends) {
  PrefixSumWeights psw;
  psw.Append(1.0);
  psw.Append(2.0);
  psw.Append(0.5);
  EXPECT_DOUBLE_EQ(psw.LocalUtility(0, 3), 3.5);
  EXPECT_DOUBLE_EQ(psw.LocalUtility(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(psw.LocalUtility(2, 1), 0.5);
}

TEST(UtilityAccumulator, SumMinMaxAvg) {
  const double locals[] = {3.0, 1.0, 2.0};
  for (auto kind : {GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
                    GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg}) {
    UtilityAccumulator acc;
    for (double v : locals) acc.Add(v, kind);
    switch (kind) {
      case GlobalUtilityKind::kSum:
        EXPECT_DOUBLE_EQ(acc.Finalize(kind), 6.0);
        break;
      case GlobalUtilityKind::kMin:
        EXPECT_DOUBLE_EQ(acc.Finalize(kind), 1.0);
        break;
      case GlobalUtilityKind::kMax:
        EXPECT_DOUBLE_EQ(acc.Finalize(kind), 3.0);
        break;
      case GlobalUtilityKind::kAvg:
        EXPECT_DOUBLE_EQ(acc.Finalize(kind), 2.0);
        break;
    }
  }
}

TEST(UtilityAccumulator, EmptyFinalizesToZero) {
  const UtilityAccumulator acc;
  for (auto kind : {GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
                    GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg}) {
    EXPECT_DOUBLE_EQ(acc.Finalize(kind), 0.0);
  }
}

TEST(UtilityAccumulator, MinHandlesNegativeFirst) {
  UtilityAccumulator acc;
  acc.Add(-5.0, GlobalUtilityKind::kMin);
  acc.Add(3.0, GlobalUtilityKind::kMin);
  EXPECT_DOUBLE_EQ(acc.Finalize(GlobalUtilityKind::kMin), -5.0);
}

TEST(ExhaustiveEngine, PaperExampleOne) {
  // Section I, Example 1: S, w, P = TACCCC, U(P) = 14.6.
  const Text s = testing::T("ATACCCCGATAATACCCCAG");
  const std::vector<double> w = {0.9, 1, 3,   2, 0.7, 1, 1, 0.6, 0.5, 0.5,
                                 0.5, 0.8, 1, 1, 1,   0.9, 1, 1, 0.8, 1};
  const WeightedString ws(s, w);
  const PrefixSumWeights psw(ws);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const ExhaustiveQueryEngine engine(ws.text(), sa, psw,
                                     GlobalUtilityKind::kSum);
  const QueryResult result = engine.Compute(testing::T("TACCCC"));
  EXPECT_EQ(result.occurrences, 2u);
  EXPECT_NEAR(result.utility, 14.6, 1e-9);
}

TEST(ExhaustiveEngine, MatchesBruteForceAllKinds) {
  const WeightedString ws = testing::RandomWeighted(250, 3, 21);
  const PrefixSumWeights psw(ws);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  Rng rng(22);
  for (auto kind : {GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
                    GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg}) {
    const ExhaustiveQueryEngine engine(ws.text(), sa, psw, kind);
    for (int trial = 0; trial < 100; ++trial) {
      const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
      const index_t start =
          static_cast<index_t>(rng.UniformBelow(ws.size() - len));
      const Text pattern = ws.Fragment(start, len);
      const QueryResult got = engine.Compute(pattern);
      const QueryResult want = testing::BruteUtility(ws, pattern, kind);
      ASSERT_EQ(got.occurrences, want.occurrences);
      ASSERT_NEAR(got.utility, want.utility, 1e-9);
    }
  }
}

TEST(ExhaustiveEngine, AbsentPatternIsZero) {
  const WeightedString ws = testing::RandomWeighted(100, 2, 5);
  const PrefixSumWeights psw(ws);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const ExhaustiveQueryEngine engine(ws.text(), sa, psw,
                                     GlobalUtilityKind::kSum);
  const Text absent(5, 200);  // Symbol 200 never occurs.
  const QueryResult result = engine.Compute(absent);
  EXPECT_EQ(result.occurrences, 0u);
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
}

TEST(GlobalUtilityKindName, AllNamed) {
  EXPECT_STREQ(GlobalUtilityKindName(GlobalUtilityKind::kSum), "sum");
  EXPECT_STREQ(GlobalUtilityKindName(GlobalUtilityKind::kMin), "min");
  EXPECT_STREQ(GlobalUtilityKindName(GlobalUtilityKind::kMax), "max");
  EXPECT_STREQ(GlobalUtilityKindName(GlobalUtilityKind::kAvg), "avg");
}

}  // namespace
}  // namespace usi
