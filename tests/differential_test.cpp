// Differential harness: UsiIndex (both miners, all four global utility
// kinds) cross-checked against an independently-built ExhaustiveQueryEngine
// and the brute-force oracles of test_helpers.hpp over generated texts. One
// sweep exercises the hash-hit path, the SA+PSW fallback path, and the
// save/load round-trip, so any divergence between the fast and slow paths —
// or between a fresh and a restored index — fails here first.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/utility.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

constexpr GlobalUtilityKind kAllKinds[] = {
    GlobalUtilityKind::kSum, GlobalUtilityKind::kMin, GlobalUtilityKind::kMax,
    GlobalUtilityKind::kAvg};

/// One generated input for the sweep.
struct TextCase {
  const char* name;
  WeightedString ws;
};

std::vector<TextCase> SweepTexts() {
  std::vector<TextCase> cases;
  cases.push_back({"dna", MakeDnaLike(500, 101)});
  cases.push_back({"xml", MakeXmlLike(600, 102)});
  cases.push_back({"periodic", MakePeriodic(400, 7, 103)});
  cases.push_back({"random", testing::RandomWeighted(450, 3, 104)});
  return cases;
}

/// Mixed pattern workload: short fragments (frequent, likely table hits),
/// long fragments (rare, fallback), and random symbol strings (often absent).
std::vector<Text> SweepPatterns(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int trial = 0; trial < 60; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 6));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    patterns.push_back(ws.Fragment(start, len));
  }
  for (int trial = 0; trial < 30; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(9, 24));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    patterns.push_back(ws.Fragment(start, len));
  }
  for (int trial = 0; trial < 30; ++trial) {
    Text random(rng.UniformInRange(1, 5));
    for (auto& c : random) c = static_cast<Symbol>(rng.UniformBelow(8));
    patterns.push_back(std::move(random));
  }
  return patterns;
}

/// Runs one (text, miner, kind) configuration through every pattern, checking
/// the index against the reference engine and the brute-force oracle, then
/// repeats the workload on a save/load round-trip of the index.
void RunConfiguration(const TextCase& text_case, UsiMiner miner,
                      GlobalUtilityKind kind) {
  const WeightedString& ws = text_case.ws;
  UsiOptions options;
  options.k = 50;
  options.miner = miner;
  options.utility = kind;
  options.approx.rounds = 3;
  const UsiIndex index(ws, options);

  // Independent reference: own suffix array, own PSW.
  const std::vector<index_t> reference_sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights reference_psw(ws);
  const ExhaustiveQueryEngine reference(ws.text(), reference_sa, reference_psw,
                                        kind);

  const std::string path = ::testing::TempDir() + "usi_differential.bin";
  ASSERT_TRUE(index.SaveToFile(path));
  const std::unique_ptr<UsiIndex> restored = UsiIndex::LoadFromFile(ws, path);
  ASSERT_NE(restored, nullptr);

  int table_hits = 0;
  int fallbacks = 0;
  const std::vector<Text> patterns =
      SweepPatterns(ws, /*seed=*/0xD1FF ^ static_cast<u64>(kind));
  for (const Text& pattern : patterns) {
    const QueryResult got = index.Query(pattern);
    const QueryResult engine = reference.Compute(pattern);
    const QueryResult brute = testing::BruteUtility(ws, pattern, kind);
    (got.from_hash_table ? table_hits : fallbacks) += 1;

    ASSERT_EQ(got.occurrences, engine.occurrences);
    ASSERT_NEAR(got.utility, engine.utility, 1e-9)
        << "index vs engine, pattern length " << pattern.size();
    ASSERT_EQ(engine.occurrences, brute.occurrences);
    ASSERT_NEAR(engine.utility, brute.utility, 1e-9)
        << "engine vs brute force, pattern length " << pattern.size();

    const QueryResult reloaded = restored->Query(pattern);
    ASSERT_EQ(reloaded.occurrences, got.occurrences);
    ASSERT_NEAR(reloaded.utility, got.utility, 1e-9)
        << "restored index diverged, pattern length " << pattern.size();
    ASSERT_EQ(reloaded.from_hash_table, got.from_hash_table)
        << "restored index answered from a different path";
  }
  std::remove(path.c_str());

  // The workload must exercise both answer paths, or the sweep proves less
  // than it claims.
  EXPECT_GT(table_hits, 0) << text_case.name << ": no hash-table hits";
  EXPECT_GT(fallbacks, 0) << text_case.name << ": no SA+PSW fallbacks";
}

TEST(Differential, ExactMinerAllKindsAllTexts) {
  for (const TextCase& text_case : SweepTexts()) {
    for (GlobalUtilityKind kind : kAllKinds) {
      SCOPED_TRACE(std::string(text_case.name) + "/" +
                   GlobalUtilityKindName(kind));
      RunConfiguration(text_case, UsiMiner::kExact, kind);
    }
  }
}

TEST(Differential, ApproximateMinerAllKindsAllTexts) {
  for (const TextCase& text_case : SweepTexts()) {
    for (GlobalUtilityKind kind : kAllKinds) {
      SCOPED_TRACE(std::string(text_case.name) + "/" +
                   GlobalUtilityKindName(kind));
      RunConfiguration(text_case, UsiMiner::kApproximate, kind);
    }
  }
}

// Every substring of a small text, both miners: exhaustive rather than
// sampled, so off-by-one interval bugs in SA search cannot hide.
TEST(Differential, EverySubstringSmallText) {
  const WeightedString ws = testing::RandomWeighted(90, 2, 777);
  for (UsiMiner miner : {UsiMiner::kExact, UsiMiner::kApproximate}) {
    UsiOptions options;
    options.k = 30;
    options.miner = miner;
    const UsiIndex index(ws, options);
    for (index_t i = 0; i < ws.size(); ++i) {
      for (index_t len = 1; i + len <= ws.size(); ++len) {
        const Text pattern = ws.Fragment(i, len);
        const QueryResult got = index.Query(pattern);
        const QueryResult want =
            testing::BruteUtility(ws, pattern, GlobalUtilityKind::kSum);
        ASSERT_EQ(got.occurrences, want.occurrences)
            << "i=" << i << " len=" << len;
        ASSERT_NEAR(got.utility, want.utility, 1e-9)
            << "i=" << i << " len=" << len;
      }
    }
  }
}

}  // namespace
}  // namespace usi
