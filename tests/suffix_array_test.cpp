// Tests for SA-IS, prefix doubling, and the LCP array: cross-validation
// against each other and against a naive sort, over random and adversarial
// inputs (TEST_P sweeps).

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"

namespace usi {
namespace {

std::vector<index_t> NaiveSuffixArray(const Text& text) {
  std::vector<index_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](index_t a, index_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

index_t NaiveLcpOf(const Text& text, index_t a, index_t b) {
  index_t k = 0;
  while (a + k < text.size() && b + k < text.size() &&
         text[a + k] == text[b + k]) {
    ++k;
  }
  return k;
}

void CheckSuffixArrayIsSorted(const Text& text, const std::vector<index_t>& sa) {
  ASSERT_EQ(sa.size(), text.size());
  std::vector<bool> seen(text.size(), false);
  for (index_t pos : sa) {
    ASSERT_LT(pos, text.size());
    ASSERT_FALSE(seen[pos]) << "duplicate SA entry";
    seen[pos] = true;
  }
  for (std::size_t i = 1; i < sa.size(); ++i) {
    EXPECT_TRUE(std::lexicographical_compare(
        text.begin() + sa[i - 1], text.end(), text.begin() + sa[i], text.end()))
        << "SA not sorted at rank " << i;
  }
}

TEST(SuffixArray, EmptyAndSingle) {
  EXPECT_TRUE(BuildSuffixArray({}).empty());
  const std::vector<index_t> sa = BuildSuffixArray({5});
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0u);
}

TEST(SuffixArray, ClassicExamples) {
  // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0), na(4), nana(2).
  const std::vector<index_t> sa = BuildSuffixArray(testing::T("banana"));
  EXPECT_EQ(sa, (std::vector<index_t>{5, 3, 1, 0, 4, 2}));
  const std::vector<index_t> lcp =
      BuildLcpArray(testing::T("banana"), sa);
  EXPECT_EQ(lcp, (std::vector<index_t>{0, 1, 3, 0, 0, 2}));
}

TEST(SuffixArray, MississippiExample) {
  const Text text = testing::T("mississippi");
  const std::vector<index_t> sa = BuildSuffixArray(text);
  EXPECT_EQ(sa, NaiveSuffixArray(text));
}

struct SweepCase {
  index_t n;
  u32 sigma;
  u64 seed;
};

class SuffixArraySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SuffixArraySweep, SaIsMatchesNaive) {
  const auto& param = GetParam();
  const Text text = testing::RandomText(param.n, param.sigma, param.seed);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  CheckSuffixArrayIsSorted(text, sa);
  EXPECT_EQ(sa, NaiveSuffixArray(text));
}

TEST_P(SuffixArraySweep, SaIsMatchesDoubling) {
  const auto& param = GetParam();
  const Text text = testing::RandomText(param.n, param.sigma, param.seed ^ 1);
  EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayDoubling(text));
}

TEST_P(SuffixArraySweep, LcpMatchesNaive) {
  const auto& param = GetParam();
  const Text text = testing::RandomText(param.n, param.sigma, param.seed ^ 2);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const std::vector<index_t> lcp = BuildLcpArray(text, sa);
  ASSERT_EQ(lcp.size(), sa.size());
  if (!lcp.empty()) {
    EXPECT_EQ(lcp[0], 0u);
  }
  for (std::size_t i = 1; i < sa.size(); ++i) {
    EXPECT_EQ(lcp[i], NaiveLcpOf(text, sa[i - 1], sa[i])) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTexts, SuffixArraySweep,
    ::testing::Values(SweepCase{1, 2, 1}, SweepCase{2, 2, 2},
                      SweepCase{10, 2, 3}, SweepCase{50, 2, 4},
                      SweepCase{100, 2, 5}, SweepCase{200, 3, 6},
                      SweepCase{500, 4, 7}, SweepCase{500, 16, 8},
                      SweepCase{1000, 2, 9}, SweepCase{1000, 95, 10},
                      SweepCase{2000, 4, 11}, SweepCase{257, 250, 12},
                      // Full byte alphabet, 0xFF included (the compact-code
                      // boundary the SA-IS level-0 buckets must cover).
                      SweepCase{512, 256, 13}, SweepCase{2000, 256, 14}));

TEST(SuffixArray, AdversarialAllEqual) {
  const Text text(200, 1);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  // Suffixes of a unary string sort by decreasing start position... i.e.
  // shortest suffix first: sa[i] = n-1-i.
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], text.size() - 1 - i);
  }
}

TEST(SuffixArray, AdversarialPeriodic) {
  const Text text = MakePeriodic(300, 2, 0).text();
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
  const Text text3 = MakePeriodic(300, 3, 0).text();
  EXPECT_EQ(BuildSuffixArray(text3), NaiveSuffixArray(text3));
}

TEST(SuffixArray, AdversarialFibonacciWord) {
  Text a = {0};
  Text b = {0, 1};
  while (b.size() < 800) {
    Text next = b;
    next.insert(next.end(), a.begin(), a.end());
    a = std::move(b);
    b = std::move(next);
  }
  EXPECT_EQ(BuildSuffixArray(b), NaiveSuffixArray(b));
}

TEST(SuffixArray, RealisticGenerators) {
  for (const auto& text :
       {MakeDnaLike(3000, 1).text(), MakeIotLike(3000, 2).text(),
        MakeXmlLike(3000, 3).text(), MakeAdvLike(3000, 4).text()}) {
    EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayDoubling(text));
  }
}

TEST(SuffixArray, InverseIsPermutationInverse) {
  const Text text = testing::RandomText(500, 5, 33);
  const std::vector<index_t> sa = BuildSuffixArray(text);
  const std::vector<index_t> inverse = InverseSuffixArray(sa);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(inverse[sa[i]], i);
    EXPECT_EQ(sa[inverse[i]], i);
  }
}

}  // namespace
}  // namespace usi
