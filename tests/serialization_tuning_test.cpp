// Tests for the two extension features: the (tau, K, L) trade-off curve
// (Section X future-work direction 2) and index (de)serialization.

#include <unistd.h>

#include <cstdio>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/text/generators.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/binary_io.hpp"

namespace usi {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryIo, RoundTripScalarsAndVectors) {
  const std::string path = TempPath("binary_io_roundtrip.bin");
  {
    BinaryWriter writer(path);
    writer.Write<u32>(0xDEADBEEF);
    writer.Write<double>(3.25);
    writer.WriteVector(std::vector<index_t>{1, 2, 3});
    writer.WriteVector(std::vector<u64>{});
    ASSERT_TRUE(writer.ok());
  }
  BinaryReader reader(path);
  u32 magic = 0;
  double value = 0;
  std::vector<index_t> ints;
  std::vector<u64> empty;
  ASSERT_TRUE(reader.Read(&magic));
  ASSERT_TRUE(reader.Read(&value));
  ASSERT_TRUE(reader.ReadVector(&ints));
  ASSERT_TRUE(reader.ReadVector(&empty));
  EXPECT_EQ(magic, 0xDEADBEEF);
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_EQ(ints, (std::vector<index_t>{1, 2, 3}));
  EXPECT_TRUE(empty.empty());
}

TEST(BinaryIo, RejectsOversizedVector) {
  const std::string path = TempPath("binary_io_oversized.bin");
  {
    BinaryWriter writer(path);
    writer.Write<u64>(u64{1} << 50);  // Bogus huge length.
  }
  BinaryReader reader(path);
  std::vector<u64> values;
  EXPECT_FALSE(reader.ReadVector(&values, /*max_elements=*/1000));
}

TEST(BinaryIo, MissingFileFails) {
  BinaryReader reader("/nonexistent/usi.bin");
  u32 x;
  EXPECT_FALSE(reader.Read(&x));
}

TEST(TradeOffCurve, MonotoneAndConsistentWithTau) {
  const Text text = MakeAdvLike(5000, 3).text();
  SubstringStats stats(text);
  const auto curve = stats.TradeOffCurve();
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    // Each point must agree with the tau-tuning query (task iii).
    const auto tuning = stats.EstimateForTau(curve[i].tau);
    EXPECT_EQ(tuning.num_substrings, curve[i].k);
    EXPECT_EQ(tuning.num_lengths, curve[i].num_lengths);
    if (i > 0) {
      EXPECT_LT(curve[i].tau, curve[i - 1].tau);  // tau strictly decreasing.
      EXPECT_GT(curve[i].k, curve[i - 1].k);      // K strictly increasing.
      EXPECT_GE(curve[i].num_lengths, curve[i - 1].num_lengths);
    }
  }
  // The last point covers the entire substring universe.
  EXPECT_EQ(curve.back().k, stats.TotalDistinctSubstrings());
  EXPECT_EQ(curve.back().tau, 1u);
}

TEST(TradeOffCurve, RecommendForBudget) {
  const Text text = testing::RandomText(2000, 3, 9);
  SubstringStats stats(text);
  const auto curve = stats.TradeOffCurve();
  // A budget exactly at a curve point returns that point.
  const auto mid = curve[curve.size() / 2];
  const auto exact_fit = stats.RecommendForBudget(mid.k);
  EXPECT_EQ(exact_fit.k, mid.k);
  EXPECT_EQ(exact_fit.tau, mid.tau);
  // A budget between points returns the smaller one.
  if (curve.size() >= 2) {
    const auto between = stats.RecommendForBudget(curve[1].k - 1);
    EXPECT_EQ(between.k, curve[0].k);
  }
  // A budget below the smallest K returns the zero point.
  const auto too_small = stats.RecommendForBudget(curve[0].k - 1);
  EXPECT_EQ(too_small.k, 0u);
  // An unlimited budget returns the full universe.
  const auto unlimited = stats.RecommendForBudget(~u64{0});
  EXPECT_EQ(unlimited.k, stats.TotalDistinctSubstrings());
}

TEST(TradeOffCurve, DrivesUsableUsiOptions) {
  // End-to-end: pick an operating point under a budget, build the index,
  // verify the advertised tau matches the build telemetry.
  const WeightedString ws = testing::RandomWeighted(3000, 4, 21);
  SubstringStats stats(ws.text());
  const auto point = stats.RecommendForBudget(500);
  ASSERT_GT(point.k, 0u);
  UsiOptions options;
  options.k = point.k;
  const UsiIndex index(ws, options);
  EXPECT_EQ(index.build_info().tau_k, point.tau);
}

TEST(Serialization, SaveLoadRoundTripPreservesAnswers) {
  const WeightedString ws = testing::RandomWeighted(1500, 3, 5);
  UsiOptions options;
  options.k = 200;
  options.utility = GlobalUtilityKind::kAvg;
  const UsiIndex original(ws, options);
  const std::string path = TempPath("usi_index_roundtrip.bin");
  ASSERT_TRUE(original.SaveToFile(path));

  const auto loaded = UsiIndex::LoadFromFile(ws, path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->HashTableEntries(), original.HashTableEntries());
  EXPECT_EQ(loaded->build_info().tau_k, original.build_info().tau_k);

  Rng rng(6);
  for (int trial = 0; trial < 400; ++trial) {
    const index_t len = static_cast<index_t>(rng.UniformInRange(1, 7));
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(ws.size() - len));
    const Text pattern = ws.Fragment(start, len);
    const QueryResult a = original.Query(pattern);
    const QueryResult b = loaded->Query(pattern);
    ASSERT_EQ(a.occurrences, b.occurrences);
    ASSERT_DOUBLE_EQ(a.utility, b.utility);
    ASSERT_EQ(a.from_hash_table, b.from_hash_table);
  }
}

TEST(Serialization, RejectsWrongText) {
  const WeightedString ws = testing::RandomWeighted(800, 3, 7);
  const UsiIndex original(ws, {});
  const std::string path = TempPath("usi_index_wrong_text.bin");
  ASSERT_TRUE(original.SaveToFile(path));
  const WeightedString other = testing::RandomWeighted(900, 3, 8);
  EXPECT_EQ(UsiIndex::LoadFromFile(other, path), nullptr);
}

TEST(Serialization, RejectsCorruptedFile) {
  const WeightedString ws = testing::RandomWeighted(500, 2, 9);
  const UsiIndex original(ws, {});
  const std::string path = TempPath("usi_index_corrupt.bin");
  ASSERT_TRUE(original.SaveToFile(path));
  // Truncate the file body.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(0, std::fflush(f));
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size / 2));
  }
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, path), nullptr);
  // Garbage magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    const u32 garbage = 0x1234;
    std::fwrite(&garbage, sizeof(garbage), 1, f);
    std::fclose(f);
  }
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, path), nullptr);
}

TEST(Serialization, MissingFileReturnsNull) {
  const WeightedString ws = testing::RandomWeighted(100, 2, 1);
  EXPECT_EQ(UsiIndex::LoadFromFile(ws, "/nonexistent/usi.bin"), nullptr);
}

}  // namespace
}  // namespace usi
