// Degradation ladder, quantified: (a) answered-query goodput at saturation
// with degradation ON vs the PR 8 reject-only baseline — sheds that answer
// from the tier must lift goodput strictly above sheds that answer nothing;
// (b) the sketch rung's bound honesty — the measured bound-violation rate
// over distinct patterns vs the advertised (epsilon, delta) guarantee; and
// (c, failpoint builds only) quarantine serving: answered fraction when the
// index is gone and every answer comes from the tier. --json PATH emits
// BENCH_degraded.json for the CI perf artifact.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/degraded_tier.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/workload.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/rng.hpp"
#include "usi/util/table_printer.hpp"

namespace usi {
namespace {

/// Zipf hot-pattern traffic (core/workload.hpp): the shape the tier's cache
/// admission is built for — most queries hit a small hot pool.
std::vector<Text> MakePatterns(const Text& text) {
  ZipfWorkloadOptions options;
  options.num_queries = 400;
  options.pool_size = 48;
  options.s = 1.1;
  options.hot_fraction = 0.9;
  options.min_len = 2;
  options.max_len = 12;
  options.seed = 0xBEEF;
  return MakeWorkloadZipf(text, options).patterns;
}

struct SaturationResult {
  u64 served_batches = 0;
  u64 shed_batches = 0;
  u64 answered_queries = 0;  ///< Exact + tier answers (kNone slots excluded).
  double goodput_qps = 0;
};

/// Hammers the service with \p threads concurrent clients for ~\p seconds.
/// Answered queries = exact batches * batch size + tier-rung answers (the
/// service counts those in stats().degraded_answers).
SaturationResult Saturate(UsiMultiService& service,
                          const std::vector<MultiQuery>& queries, int threads,
                          double seconds, bool allow_degraded) {
  const UsiMultiStats before = service.stats();
  std::atomic<bool> stop{false};
  std::atomic<u64> ok{0};
  std::atomic<u64> shed{0};
  MultiBatchOptions batch_options;
  batch_options.allow_degraded = allow_degraded;
  std::vector<std::thread> hammers;
  for (int t = 0; t < threads; ++t) {
    hammers.emplace_back([&] {
      std::vector<QueryResult> results(queries.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const ServeStatus status =
            service.QueryBatchInto(queries, results, batch_options);
        (status == ServeStatus::kOk ? ok : shed).fetch_add(1);
      }
    });
  }
  Timer timer;
  while (timer.ElapsedSeconds() < seconds) std::this_thread::yield();
  stop.store(true);
  for (std::thread& hammer : hammers) hammer.join();

  SaturationResult result;
  result.served_batches = ok.load();
  result.shed_batches = shed.load();
  result.answered_queries =
      ok.load() * queries.size() +
      (service.stats().degraded_answers - before.degraded_answers);
  result.goodput_qps =
      static_cast<double>(result.answered_queries) / timer.ElapsedSeconds();
  return result;
}

/// (a) Saturation goodput: same cost cap, same hammer, reject-only vs
/// degradation on. The degraded run answers its sheds from the tier, so its
/// answered-query goodput must come out strictly ahead.
void RunSaturationComparison(const WeightedString& ws,
                             const std::vector<MultiQuery>& queries,
                             bench::BenchJson& json) {
  constexpr int kHammerThreads = 4;
  constexpr double kWindow = 0.25;

  double batch_ms;
  {
    UsiMultiServiceOptions options;
    UsiMultiService service(options);
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    std::vector<QueryResult> results(queries.size());
    service.QueryBatchInto(queries, results);  // Warm-up.
    Timer timer;
    for (int i = 0; i < 8; ++i) service.QueryBatchInto(queries, results);
    batch_ms = timer.ElapsedSeconds() / 8 * 1e3;
  }

  const auto run = [&](bool allow_degraded) {
    UsiMultiServiceOptions options;
    options.max_inflight_cost_ms = 2 * batch_ms;
    UsiMultiService service(options);
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    // Warm the exact path AND the tier (lone batches always admit).
    std::vector<QueryResult> results(queries.size());
    service.QueryBatchInto(queries, results);
    return Saturate(service, queries, kHammerThreads, kWindow,
                    allow_degraded);
  };
  const SaturationResult reject_only = run(false);
  const SaturationResult degraded = run(true);

  TablePrinter table("Saturation goodput — " +
                     std::to_string(kHammerThreads) +
                     " hammer threads, batch=" +
                     TablePrinter::Int(queries.size()) +
                     ", cost cap = 2 avg batches");
  table.SetHeader({"mode", "goodput qps", "served", "shed", "answered"});
  const auto row = [&](const char* name, const SaturationResult& r) {
    table.AddRow({name,
                  TablePrinter::Int(static_cast<long long>(r.goodput_qps)),
                  TablePrinter::Int(static_cast<long long>(r.served_batches)),
                  TablePrinter::Int(static_cast<long long>(r.shed_batches)),
                  TablePrinter::Int(
                      static_cast<long long>(r.answered_queries))});
  };
  row("reject-only (PR 8)", reject_only);
  row("degraded ladder", degraded);
  table.Print();
  std::printf("  goodput ratio (degraded / reject-only): %.2f\n\n",
              reject_only.goodput_qps == 0
                  ? 0
                  : degraded.goodput_qps / reject_only.goodput_qps);

  json.Add("saturation", "goodput_reject_only", reject_only.goodput_qps,
           "qps");
  json.Add("saturation", "goodput_degraded", degraded.goodput_qps, "qps");
  json.Add("saturation", "shed_reject_only",
           static_cast<double>(reject_only.shed_batches), "count");
  json.Add("saturation", "shed_degraded",
           static_cast<double>(degraded.shed_batches), "count");
}

/// (b) Bound honesty of the sketch rung: record distinct patterns' exact
/// answers into a deliberately narrow sketch (cache rung off so every
/// lookup is an estimate), then measure how often the estimate exceeds the
/// advertised bound. The CMS guarantee says at most delta = e^-depth.
void RunBoundViolationRate(const WeightedString& ws,
                           bench::BenchJson& json) {
  UsiOptions build;
  build.threads = 1;
  const UsiIndex index(ws, build);

  DegradedTierOptions options;
  options.cache_capacity = 0;
  options.sketch_width = 256;  // Narrow on purpose: force collisions.
  options.sketch_depth = 4;
  DegradedTier tier(options);

  // Distinct patterns only (the filter would drop duplicates anyway).
  Rng rng(0xB0B0);
  std::set<Text> distinct;
  for (int i = 0; i < 4'000; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(10, ws.size() - start);
    distinct.insert(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(1, max_len))));
  }
  const std::vector<Text> patterns(distinct.begin(), distinct.end());

  std::vector<QueryResult> exact;
  for (const Text& p : patterns) exact.push_back(index.Query(p));
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    tier.RecordExact(DegradedTier::KeyFor(patterns[i]), exact[i]);
  }

  std::size_t answered = 0, violations = 0;
  double total_error = 0, bound = 0;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    QueryResult got;
    if (!tier.TryAnswer(DegradedTier::KeyFor(patterns[i]), &got)) continue;
    ++answered;
    bound = got.error_bound;
    const double error = got.utility - exact[i].utility;
    total_error += error;
    if (error > got.error_bound + 1e-9) ++violations;
  }
  const DegradedTierStats stats = tier.stats();
  const double violation_rate =
      answered == 0 ? 0
                    : static_cast<double>(violations) /
                          static_cast<double>(answered);
  const double delta = std::exp(-static_cast<double>(stats.sketch_depth));

  TablePrinter table("Sketch bound honesty — width=" +
                     TablePrinter::Int(stats.sketch_width) + ", depth=" +
                     TablePrinter::Int(stats.sketch_depth) + ", " +
                     TablePrinter::Int(answered) + " distinct patterns");
  table.SetHeader({"metric", "value"});
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.4f", violation_rate);
  table.AddRow({"bound violation rate", buffer});
  std::snprintf(buffer, sizeof buffer, "%.4f", delta);
  table.AddRow({"advertised delta (e^-depth)", buffer});
  std::snprintf(buffer, sizeof buffer, "%.4f", bound);
  table.AddRow({"advertised bound (eps * mass)", buffer});
  std::snprintf(buffer, sizeof buffer, "%.4f",
                answered == 0 ? 0 : total_error / answered);
  table.AddRow({"mean over-estimate", buffer});
  table.Print();
  std::printf("\n");

  json.Add("bounds", "violation_rate", violation_rate, "fraction");
  json.Add("bounds", "advertised_delta", delta, "fraction");
  json.Add("bounds", "mean_overestimate",
           answered == 0 ? 0 : total_error / answered, "utility");
}

/// (c) Quarantine serving (failpoint builds): the index is gone — build
/// lane poisoned, mapped serving faulted — and the warmed tier answers
/// alone. Reports the answered fraction degraded vs reject-only (which
/// answers nothing by construction).
void RunQuarantineServing(const WeightedString& ws,
                          const std::vector<MultiQuery>& queries,
                          bench::BenchJson& json) {
  if (!failpoint::kEnabled) {
    std::printf(
        "Quarantine serving: skipped (built without USI_FAILPOINTS)\n\n");
    return;
  }
  UsiMultiServiceOptions options;
  options.max_build_retries = 0;
  UsiMultiService service(options);
  service.SubmitText("t", ws);
  service.WaitForBuilds();
  std::vector<QueryResult> results(queries.size());
  service.QueryBatchInto(queries, results);  // Warm the tier.

  failpoint::Arm("serve.mapped_fault", failpoint::Action::kError);
  failpoint::Arm("multi.build", failpoint::Action::kThrow);

  constexpr int kRounds = 50;
  u64 reject_answered = 0, degraded_answered = 0, degraded_batches = 0;
  for (int round = 0; round < kRounds; ++round) {
    MultiBatchOptions batch_options;
    if (service.QueryBatchInto(queries, results, batch_options) ==
        ServeStatus::kOk) {
      reject_answered += queries.size();
    }
    batch_options.allow_degraded = true;
    if (service.QueryBatchInto(queries, results, batch_options) ==
        ServeStatus::kDegraded) {
      ++degraded_batches;
      for (const QueryResult& r : results) {
        degraded_answered += r.provenance != AnswerProvenance::kNone ? 1 : 0;
      }
    }
  }
  failpoint::DisarmAll();

  const double total = static_cast<double>(kRounds * queries.size());
  TablePrinter table("Quarantine serving — index faulted, " +
                     std::to_string(kRounds) + " rounds per mode");
  table.SetHeader({"mode", "answered", "fraction"});
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f",
                static_cast<double>(reject_answered) / total);
  table.AddRow(
      {"reject-only (PR 8)", TablePrinter::Int(reject_answered), buffer});
  std::snprintf(buffer, sizeof buffer, "%.3f",
                static_cast<double>(degraded_answered) / total);
  table.AddRow(
      {"degraded ladder", TablePrinter::Int(degraded_answered), buffer});
  table.Print();
  std::printf("\n");

  json.Add("quarantine", "answered_fraction_reject",
           static_cast<double>(reject_answered) / total, "fraction");
  json.Add("quarantine", "answered_fraction_degraded",
           static_cast<double>(degraded_answered) / total, "fraction");
  json.Add("quarantine", "degraded_batches",
           static_cast<double>(degraded_batches), "count");
}

int Main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("bench_degraded",
                     "degradation ladder: goodput + bound honesty");

  const DatasetSpec* xml = nullptr;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == "XML") xml = &spec;
  }
  if (xml == nullptr) {
    std::fprintf(stderr, "XML dataset spec missing\n");
    return 1;
  }
  const WeightedString ws = MakeDataset(
      *xml, std::min<index_t>(bench::ScaledLength(*xml), 60'000));
  const std::vector<Text> patterns = MakePatterns(ws.text());
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});

  bench::BenchJson json;
  RunSaturationComparison(ws, queries, json);
  RunBoundViolationRate(ws, json);
  RunQuarantineServing(ws, queries, json);

  if (!args.json_path.empty() && !json.WriteTo(args.json_path, "degraded")) {
    std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) { return usi::Main(argc, argv); }
