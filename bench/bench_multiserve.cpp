// Multi-text serving tier: UsiMultiService throughput under the scenarios
// the tier exists for. Three texts with different structure (HUM-, XML- and
// ADV-like) are fronted by one service; the bench measures (a) mixed-text
// routed batches vs per-text serving at 1 and N threads, (b) sustained
// serving throughput while the build lane cycles generational rebuilds
// underneath — the "queries drain during rebuild" contract, quantified —
// and (c) admission control shedding over-cap concurrent batches with
// kBusy instead of queueing. --json PATH emits BENCH_multiserve.json for
// the CI perf-trajectory artifact.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

struct ServedText {
  std::string id;
  WeightedString ws;
  std::vector<Text> patterns;  ///< Stable storage the queries reference.
};

/// Frequent-leaning fragments (repeats drive hash hits) plus a few misses.
std::vector<Text> MakePatterns(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> distinct;
  for (int i = 0; i < 40; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(12, ws.size() - start);
    distinct.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(2, max_len))));
  }
  std::vector<Text> patterns;
  for (int i = 0; i < 140; ++i) {
    patterns.push_back(distinct[rng.UniformBelow(distinct.size())]);
  }
  for (int i = 0; i < 10; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(2, 8)),
                            static_cast<Symbol>(200 + i)));
  }
  return patterns;
}

/// Round-robin interleaving of every text's patterns: worst-case routing
/// (maximal id switching), the shape the grouping stage has to undo.
std::vector<MultiQuery> MixedBatch(const std::vector<ServedText>& texts) {
  std::vector<MultiQuery> queries;
  std::size_t max_n = 0;
  for (const ServedText& text : texts) {
    max_n = std::max(max_n, text.patterns.size());
  }
  for (std::size_t i = 0; i < max_n; ++i) {
    for (const ServedText& text : texts) {
      if (i < text.patterns.size()) {
        queries.push_back({text.id, text.patterns[i]});
      }
    }
  }
  return queries;
}

/// Sustained QueryBatchInto throughput over a ~0.25 s window.
double QueriesPerSecond(UsiMultiService& service,
                        const std::vector<MultiQuery>& queries) {
  std::vector<QueryResult> results(queries.size());
  USI_CHECK(service.QueryBatchInto(queries, results) == ServeStatus::kOk);
  std::size_t served = 0;
  Timer timer;
  do {
    USI_CHECK(service.QueryBatchInto(queries, results) == ServeStatus::kOk);
    served += queries.size();
  } while (timer.ElapsedSeconds() < 0.25 && served < 4'000'000);
  return static_cast<double>(served) / timer.ElapsedSeconds();
}

std::vector<ServedText> MakeTexts() {
  std::vector<ServedText> texts;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name != "HUM" && spec.name != "XML" && spec.name != "ADV") {
      continue;
    }
    ServedText text;
    text.id = spec.name;
    text.ws = MakeDataset(spec, std::min<index_t>(bench::ScaledLength(spec),
                                                  60'000));
    text.patterns = MakePatterns(text.ws, spec.seed ^ 0x5E7);
    texts.push_back(std::move(text));
  }
  return texts;
}

void RunMixedServing(const std::vector<ServedText>& texts,
                     const std::vector<unsigned>& widths,
                     bench::BenchJson& json) {
  const std::vector<MultiQuery> mixed = MixedBatch(texts);
  TablePrinter table("Mixed-text routed serving — one batch interleaving " +
                     std::to_string(texts.size()) +
                     " texts (batch=" + TablePrinter::Int(mixed.size()) + ")");
  table.SetHeader({"threads", "mixed qps", "per-text qps (worst)"});
  for (unsigned width : widths) {
    UsiMultiServiceOptions options;
    options.threads = width;
    UsiMultiService service(options);
    for (const ServedText& text : texts) service.SubmitText(text.id, text.ws);
    service.WaitForBuilds();

    const double mixed_qps = QueriesPerSecond(service, mixed);
    // Per-text floor: the slowest text served alone, same total volume.
    double worst_single = 0;
    for (const ServedText& text : texts) {
      std::vector<MultiQuery> single;
      for (const Text& p : text.patterns) single.push_back({text.id, p});
      const double qps = QueriesPerSecond(service, single);
      worst_single = worst_single == 0 ? qps : std::min(worst_single, qps);
    }
    table.AddRow({TablePrinter::Int(width == 0
                                        ? ThreadPool::HardwareConcurrency()
                                        : width),
                  TablePrinter::Int(static_cast<long long>(mixed_qps)),
                  TablePrinter::Int(static_cast<long long>(worst_single))});
    const std::string label =
        width == 0 ? "hw" : std::to_string(width) + "t";
    json.Add("mixed", "qps_" + label, mixed_qps, "qps");
  }
  table.Print();
}

void RunRebuildChurn(const std::vector<ServedText>& texts,
                     bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  UsiMultiService service(options);
  for (const ServedText& text : texts) service.SubmitText(text.id, text.ws);
  service.WaitForBuilds();
  const std::vector<MultiQuery> mixed = MixedBatch(texts);

  const double quiescent_qps = QueriesPerSecond(service, mixed);

  // Serve the same workload while the build lane continuously rebuilds the
  // first text; readers keep draining against the previous generation.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.UpdateText(texts[0].id, texts[0].ws);
      service.WaitForText(texts[0].id);  // Publish before queueing the next.
    }
  });
  const u64 builds_before = service.stats().builds_completed;
  const double churn_qps = QueriesPerSecond(service, mixed);
  const u64 builds_during = service.stats().builds_completed - builds_before;
  stop.store(true);
  churn.join();
  service.WaitForBuilds();

  TablePrinter table("Serving while the build lane rebuilds " + texts[0].id +
                     " (generational swaps, hw threads)");
  table.SetHeader({"mode", "qps", "rebuilds in window"});
  table.AddRow({"quiescent", TablePrinter::Int(static_cast<long long>(
                                 quiescent_qps)),
                "0"});
  table.AddRow({"rebuild churn",
                TablePrinter::Int(static_cast<long long>(churn_qps)),
                TablePrinter::Int(static_cast<long long>(builds_during))});
  table.Print();
  json.Add("rebuild", "qps_quiescent", quiescent_qps, "qps");
  json.Add("rebuild", "qps_during_churn", churn_qps, "qps");
  json.Add("rebuild", "builds_in_window",
           static_cast<double>(builds_during), "count");
}

void RunAdmissionControl(const std::vector<ServedText>& texts,
                         bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  options.max_inflight_batches = 2;
  UsiMultiService service(options);
  for (const ServedText& text : texts) service.SubmitText(text.id, text.ws);
  service.WaitForBuilds();
  const std::vector<MultiQuery> mixed = MixedBatch(texts);

  constexpr int kHammerThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<u64> ok{0};
  std::atomic<u64> busy{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < kHammerThreads; ++t) {
    hammers.emplace_back([&] {
      std::vector<QueryResult> results(mixed.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const ServeStatus status = service.QueryBatchInto(mixed, results);
        (status == ServeStatus::kOk ? ok : busy).fetch_add(1);
      }
    });
  }
  Timer timer;
  while (timer.ElapsedSeconds() < 0.25) std::this_thread::yield();
  stop.store(true);
  for (std::thread& hammer : hammers) hammer.join();
  const double seconds = timer.ElapsedSeconds();

  TablePrinter table("Admission control — " +
                     std::to_string(kHammerThreads) +
                     " hammer threads vs max_inflight_batches=2");
  table.SetHeader({"outcome", "batches", "per sec"});
  table.AddRow({"served (kOk)", TablePrinter::Int(static_cast<long long>(
                                    ok.load())),
                TablePrinter::Int(static_cast<long long>(ok.load() / seconds))});
  table.AddRow({"shed (kBusy)", TablePrinter::Int(static_cast<long long>(
                                    busy.load())),
                TablePrinter::Int(
                    static_cast<long long>(busy.load() / seconds))});
  table.Print();
  json.Add("admission", "ok_batches_per_sec", ok.load() / seconds, "1/s");
  json.Add("admission", "busy_batches_per_sec", busy.load() / seconds, "1/s");
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("bench_multiserve",
                          "multi-text serving tier (UsiMultiService)");
  std::printf("hardware concurrency: %u; --threads flag: %u (0 = hw)\n\n",
              usi::ThreadPool::HardwareConcurrency(), args.threads);

  const std::vector<usi::ServedText> texts = usi::MakeTexts();
  usi::bench::BenchJson json;

  std::vector<unsigned> widths = {1, 0};
  if (args.threads != 0) widths.push_back(args.threads);
  usi::RunMixedServing(texts, widths, json);
  usi::RunRebuildChurn(texts, json);
  usi::RunAdmissionControl(texts, json);

  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path, "bench_multiserve")) return 1;
    std::printf("\nwrote machine-readable results to %s\n",
                args.json_path.c_str());
  }
  std::printf(
      "\nShape check: mixed-text qps should track the worst single text "
      "(routing adds only gather/scatter), rebuild churn should cost little "
      "qps on multi-core hosts (one worker builds, the rest serve), and the "
      "hammer should see both served and shed batches, never queueing.\n");
  return 0;
}
