// Regenerates Example 2 (Section I): on genomic data, querying frequent
// 8-mers through USI_TOP-K (K = n/100) versus the classic suffix-array +
// prefix-sums index. The paper reports ~3 orders of magnitude speedup at
// nearly identical index size (85.31 GB vs 86.38 GB at their scale).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/memory.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

void Run() {
  const DatasetSpec& spec = DatasetSpecByName("HUM");
  const index_t n = bench::ScaledLength(spec);
  const WeightedString ws = MakeDataset(spec, n);

  // 5,000 8-mer patterns sampled from the top-(n/50) frequent substrings.
  // At the paper's 2.9G-letter scale *every* frequent 8-mer occurs >10^5
  // times; at laptop scale occurrence counts shrink with n, so we sample the
  // heaviest quartile of frequent 8-mers to keep the experiment's defining
  // property — queries with many occurrences — and report the counts.
  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(n / 50);
  std::vector<Text> queries;
  Rng rng(spec.seed);
  std::vector<const TopKSubstring*> eight_mers;
  for (const TopKSubstring& item : pool.items) {
    if (item.length == 8) eight_mers.push_back(&item);
  }
  std::sort(eight_mers.begin(), eight_mers.end(),
            [](const TopKSubstring* a, const TopKSubstring* b) {
              return a->frequency > b->frequency;
            });
  if (eight_mers.size() > 4) eight_mers.resize(eight_mers.size() / 4);
  index_t least_frequent = kInvalidIndex;
  u64 total_occurrences = 0;
  for (int q = 0; q < 5000 && !eight_mers.empty(); ++q) {
    const TopKSubstring& item =
        *eight_mers[rng.UniformBelow(eight_mers.size())];
    least_frequent = std::min(least_frequent, item.frequency);
    total_occurrences += item.frequency;
    queries.push_back(Text(ws.text().begin() + item.witness,
                           ws.text().begin() + item.witness + 8));
  }
  std::printf("n = %u; %zu queries (heavy 8-mers from top-(n/50)); least "
              "frequent occurs %u times, avg %.0f occurrences/query\n",
              n, queries.size(), least_frequent,
              static_cast<double>(total_occurrences) / queries.size());

  // Classic index: suffix array + PSW (BSL1).
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);
  BaselineContext context;
  context.ws = &ws;
  context.sa = &sa;
  context.psw = &psw;
  auto classic = MakeBaseline(BaselineKind::kBsl1, context);

  // Our index with K = n/100.
  UsiOptions options;
  options.k = n / 100;
  const UsiIndex usi(ws, options);

  double classic_checksum = 0;
  const double classic_seconds = bench::TimeOnce([&] {
    for (const Text& q : queries) classic_checksum += classic->Query(q).utility;
  });
  double usi_checksum = 0;
  const double usi_seconds = bench::TimeOnce([&] {
    for (const Text& q : queries) usi_checksum += usi.Query(q).utility;
  });
  USI_CHECK(std::abs(classic_checksum - usi_checksum) <
            1e-6 * (1 + std::abs(classic_checksum)));

  TablePrinter table("Example 2 — avg query time and index size");
  table.SetHeader({"Index", "Avg query time (us)", "Index size", "Speedup"});
  const double classic_us = classic_seconds / queries.size() * 1e6;
  const double usi_us = usi_seconds / queries.size() * 1e6;
  table.AddRow({"Suffix array + PSW (classic)", TablePrinter::Num(classic_us, 3),
                FormatBytes(classic->SizeInBytes()), "1.0x"});
  table.AddRow({"USI_TOP-K (K = n/100)", TablePrinter::Num(usi_us, 3),
                FormatBytes(usi.SizeInBytes()),
                TablePrinter::Num(classic_us / usi_us, 1) + "x"});
  table.Print();
  // The speedup is Theta(avg occurrences per query): the classic index pays
  // O(occ) per query, USI O(m). The paper's 3-orders-of-magnitude factor
  // needs their billion-letter occurrence counts; the shape (large speedup,
  // ~1% size overhead) is what scales down.
  std::printf("\nShape check (paper: USI >> classic at ~1%% size overhead): "
              "%s (%.1fx faster, %.1f%% larger)\n",
              classic_us / usi_us > 3 ? "REPRODUCED" : "NOT reproduced",
              classic_us / usi_us,
              100.0 * (static_cast<double>(usi.SizeInBytes()) /
                           static_cast<double>(classic->SizeInBytes()) -
                       1.0));
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("example2_speedup", "Example 2 (Section I)");
  usi::Run();
  return 0;
}
