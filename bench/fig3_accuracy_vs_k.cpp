// Regenerates Fig. 3a-e: Accuracy of AT, TT and SH versus K on all five
// datasets (ET is exact by definition), plus the Section VII adversarial
// periodic string. SH rows that exhaust their work budget print "DNF", the
// bench analogue of the paper's "did not terminate within 5 days".

#include <cstdio>

#include "bench_common.hpp"
#include "usi/text/generators.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

using bench::Miner;

void RunDataset(const DatasetSpec& spec) {
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 120'000);
  const WeightedString ws = MakeDataset(spec, n);
  SubstringStats stats(ws.text());

  TablePrinter table("Fig. 3 — Accuracy (%) vs K on " + spec.name +
                     " (n=" + TablePrinter::Int(n) + ", s=" +
                     TablePrinter::Int(spec.default_s) + ")");
  table.SetHeader({"K", "AT", "TT", "SH", "SH longest", "exact longest"});
  for (index_t k_spec : spec.k_sweep) {
    // Keep the paper's K : n ratio under scaling.
    const u64 k = std::max<u64>(
        10, static_cast<u64>(k_spec) * n / spec.default_n);
    const TopKList exact = stats.TopK(k);
    const bench::MinerRun at = bench::RunMiner(Miner::kAt, ws.text(), k,
                                               spec.default_s);
    const bench::MinerRun tt = bench::RunMiner(Miner::kTt, ws.text(), k, 0);
    const bench::MinerRun sh = bench::RunMiner(Miner::kSh, ws.text(), k, 0);
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(k)),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, at.list.items), 1),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, tt.list.items), 1),
         sh.timed_out
             ? "DNF"
             : TablePrinter::Num(
                   TopKAccuracyPercent(exact.items, sh.list.items), 1),
         TablePrinter::Int(LongestReportedLength(sh.list.items)),
         TablePrinter::Int(LongestReportedLength(exact.items))});
  }
  table.Print();
}

void RunAdversarial() {
  // Section VII: (AB)^{n/2}; SubstringHK and Top-K Trie miss half the output.
  const index_t n = 100'000;
  const Text text = MakePeriodic(n, 2, 0).text();
  SubstringStats stats(text);
  TablePrinter table("Section VII — Accuracy (%) on the (AB)^{n/2} adversary");
  table.SetHeader({"K", "AT", "TT", "SH"});
  for (u64 k : {64ULL, 256ULL, 1024ULL}) {
    const TopKList exact = stats.TopK(k);
    const bench::MinerRun at = bench::RunMiner(Miner::kAt, text, k, 4);
    const bench::MinerRun tt = bench::RunMiner(Miner::kTt, text, k, 0);
    const bench::MinerRun sh = bench::RunMiner(Miner::kSh, text, k, 0);
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(k)),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, at.list.items), 1),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, tt.list.items), 1),
         sh.timed_out
             ? "DNF"
             : TablePrinter::Num(
                   TopKAccuracyPercent(exact.items, sh.list.items), 1)});
  }
  table.Print();
  std::printf("\nShape check (paper: AT accurate everywhere; TT and SH fail, "
              "especially on long-repeat data and the periodic adversary).\n");
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig3_accuracy_vs_k", "Fig. 3a-e + Section VII");
  for (const usi::DatasetSpec& spec : usi::AllDatasetSpecs()) {
    usi::RunDataset(spec);
  }
  usi::RunAdversarial();
  return 0;
}
