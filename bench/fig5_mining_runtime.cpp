// Regenerates Fig. 5e-j: runtime of the four top-K miners versus K, n, and s
// (XML- and HUM-like datasets, as in the paper).

#include "bench_common.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/util/timer.hpp"

namespace usi {
namespace {

using bench::Miner;

std::string Cell(const bench::MinerRun& run) {
  if (run.timed_out) return "DNF";
  return TablePrinter::Num(run.seconds, 3);
}

void RuntimeVsK(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  TablePrinter table(std::string("Fig. 5e-f — miner runtime (s) vs K on ") +
                     name + " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"K", "ET", "AT", "TT", "SH"});
  for (index_t k_spec : spec.k_sweep) {
    const u64 k =
        std::max<u64>(10, static_cast<u64>(k_spec) * n / spec.default_n);
    table.AddRow({TablePrinter::Int(static_cast<long long>(k)),
                  Cell(bench::RunMiner(Miner::kEt, ws.text(), k, 0)),
                  Cell(bench::RunMiner(Miner::kAt, ws.text(), k, spec.default_s)),
                  Cell(bench::RunMiner(Miner::kTt, ws.text(), k, 0)),
                  Cell(bench::RunMiner(Miner::kSh, ws.text(), k, 0))});
  }
  table.Print();
}

void RuntimeVsN(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t full_n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString full = MakeDataset(spec, full_n);
  TablePrinter table(std::string("Fig. 5g-h — miner runtime (s) vs n on ") +
                     name);
  table.SetHeader({"n", "ET", "AT", "TT", "SH"});
  for (int step = 1; step <= 4; ++step) {
    const index_t n = full_n / 4 * step;
    const Text text(full.text().begin(), full.text().begin() + n);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    table.AddRow({TablePrinter::Int(n),
                  Cell(bench::RunMiner(Miner::kEt, text, k, 0)),
                  Cell(bench::RunMiner(Miner::kAt, text, k, spec.default_s)),
                  Cell(bench::RunMiner(Miner::kTt, text, k, 0)),
                  Cell(bench::RunMiner(Miner::kSh, text, k, 0))});
  }
  table.Print();
}

void RuntimeVsS(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  // Two LCE backends: the paper-faithful small-space sampled-KR pays O(s)
  // per LCE query, which inverts the paper's decreasing-time-vs-s trend; the
  // full-KR table (s-independent queries, like Prezza's structure the paper
  // uses) recovers it. See EXPERIMENTS.md.
  TablePrinter table(std::string("Fig. 5i-j — AT runtime (s) vs s on ") + name);
  table.SetHeader({"s", "AT (sampled-KR LCE)", "AT (full-KR LCE)"});
  for (u32 s : spec.s_sweep) {
    const auto sampled = bench::RunMiner(Miner::kAt, ws.text(), k, s);
    ApproximateTopKOptions full_options;
    full_options.rounds = s;
    full_options.lce_backend = LceBackendKind::kFullKr;
    Timer timer;
    const TopKList full = ApproximateTopK(ws.text(), k, full_options);
    (void)full;
    table.AddRow({TablePrinter::Int(s), Cell(sampled),
                  TablePrinter::Num(timer.ElapsedSeconds(), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig5_mining_runtime", "Fig. 5e-j");
  usi::RuntimeVsK("XML");
  usi::RuntimeVsK("HUM");
  usi::RuntimeVsN("XML");
  usi::RuntimeVsN("HUM");
  usi::RuntimeVsS("XML");
  usi::RuntimeVsS("HUM");
  return 0;
}
