// Regenerates Fig. 3j + 4a-c (Accuracy of AT vs the number of sampling
// rounds s) and Fig. 4d-e (NDCG for all datasets and NDCG vs s).

#include "bench_common.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

using bench::Miner;

void AccuracyVsS(const DatasetSpec& spec) {
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 100'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  SubstringStats stats(ws.text());
  const TopKList exact = stats.TopK(k);

  TablePrinter table("Fig. 3j/4a-c — AT Accuracy (%) and NDCG vs s on " +
                     spec.name + " (n=" + TablePrinter::Int(n) +
                     ", K=" + TablePrinter::Int(static_cast<long long>(k)) + ")");
  table.SetHeader({"s", "Accuracy", "NDCG", "AT seconds"});
  for (u32 s : spec.s_sweep) {
    const bench::MinerRun at = bench::RunMiner(Miner::kAt, ws.text(), k, s);
    table.AddRow(
        {TablePrinter::Int(s),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, at.list.items), 1),
         TablePrinter::Num(TopKNdcg(exact.items, at.list.items), 4),
         TablePrinter::Num(at.seconds, 2)});
  }
  table.Print();
}

void NdcgAllDatasets() {
  TablePrinter table("Fig. 4d — NDCG of AT / TT / SH at default parameters");
  table.SetHeader({"Dataset", "AT", "TT", "SH"});
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const index_t n = std::min<index_t>(bench::ScaledLength(spec), 120'000);
    const WeightedString ws = MakeDataset(spec, n);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    SubstringStats stats(ws.text());
    const TopKList exact = stats.TopK(k);
    const bench::MinerRun at =
        bench::RunMiner(Miner::kAt, ws.text(), k, spec.default_s);
    const bench::MinerRun tt = bench::RunMiner(Miner::kTt, ws.text(), k, 0);
    const bench::MinerRun sh = bench::RunMiner(Miner::kSh, ws.text(), k, 0);
    table.AddRow({spec.name,
                  TablePrinter::Num(TopKNdcg(exact.items, at.list.items), 4),
                  TablePrinter::Num(TopKNdcg(exact.items, tt.list.items), 4),
                  sh.timed_out
                      ? "DNF"
                      : TablePrinter::Num(
                            TopKNdcg(exact.items, sh.list.items), 4)});
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig4_sensitivity_s", "Fig. 3j, 4a-e");
  // The paper's s-sensitivity panels cover IOT (3j), XML (4a), HUM (4b) and
  // ECOLI (4c); ADV is not part of this figure.
  for (const usi::DatasetSpec& spec : usi::AllDatasetSpecs()) {
    if (spec.name != "ADV") usi::AccuracyVsS(spec);
  }
  usi::NdcgAllDatasets();
  return 0;
}
