// Query hot-path microbench: the serving-side numbers behind the tagged SoA
// fingerprint table and the batch-aware query path.
//
// Three sections:
//  * table    — raw hash-hit/miss lookups/sec on a large (default 1M-entry)
//               table: the pre-PR padded AoS layout (reproduced below,
//               verbatim) vs. the tagged SoA layout, single probes and
//               prefetch-pipelined batched probes, plus byte footprints.
//               The PR's acceptance bar: tagged batched hits >= 2x AoS hits.
//  * batch    — end-to-end UsiIndex serving on a W1 workload: per-query
//               Query loop vs. the batch-aware QueryBatch (shared Karp-Rabin
//               powers, sorted prefix-hash reuse, prefetch), sequential and
//               at hardware concurrency through UsiService.
//  * windows  — sliding-window workloads: per-window Query (O(len) rehash
//               per window) vs. QueryAllWindows (O(1) rolling step).
//
// --json PATH writes every number as machine-readable metrics (the CI perf
// trajectory consumes these as BENCH_*.json artifacts).

#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/core/utility.hpp"
#include "usi/core/workload.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

/// The fingerprint table exactly as it shipped before this PR: one padded
/// array-of-structs slot per entry (key + value + occupied flag), linear
/// probing, 3/5 max load. Kept here as the measurement baseline so the
/// speedup the tagged SoA layout claims is re-measured on every run instead
/// of quoted from a commit message.
template <typename V>
class AosFingerprintTable {
 public:
  AosFingerprintTable() { Rehash(kMinCapacity); }

  explicit AosFingerprintTable(std::size_t expected) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity <<= 1;
    Rehash(capacity);
  }

  V* FindOrInsert(const PatternKey& key, const V& value) {
    if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      Rehash(capacity() * 2);
    }
    std::size_t slot = SlotFor(key);
    while (slots_[slot].occupied) {
      if (slots_[slot].key == key) return &slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    slots_[slot].occupied = true;
    slots_[slot].key = key;
    slots_[slot].value = value;
    ++size_;
    return &slots_[slot].value;
  }

  V* Find(const PatternKey& key) {
    std::size_t slot = SlotFor(key);
    while (slots_[slot].occupied) {
      if (slots_[slot].key == key) return &slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }

  std::size_t SizeInBytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    PatternKey key;
    V value{};
    bool occupied = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 3;
  static constexpr std::size_t kMaxLoadDen = 5;

  std::size_t capacity() const { return slots_.size(); }

  std::size_t SlotFor(const PatternKey& key) const {
    return static_cast<std::size_t>(HashPatternKey(key)) & mask_;
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (auto& slot : old) {
      if (slot.occupied) FindOrInsert(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Runs \p fn (which processes \p items_per_call items) in three ~0.2s
/// timed windows and returns the best items/second. Best-of-N, not the
/// mean: the windows are long enough to be representative, and the maximum
/// sheds hypervisor/scheduler interference that would otherwise swing
/// single-window numbers by ±25% on shared hosts.
template <typename Fn>
double MeasureRate(std::size_t items_per_call, Fn fn) {
  fn();  // Warm-up: page in the tables.
  double best = 0;
  for (int window = 0; window < 3; ++window) {
    std::size_t items = 0;
    Timer timer;
    do {
      fn();
      items += items_per_call;
    } while (timer.ElapsedSeconds() < 0.2);
    best = std::max(best, static_cast<double>(items) / timer.ElapsedSeconds());
  }
  return best;
}

void RunTableSection(bench::BenchJson& json) {
  using Value = UtilityAccumulator;
  const std::size_t entries =
      std::max<std::size_t>(4096, 1'000'000 / bench::ScaleDivisor());

  Rng rng(0xC0FFEE);
  std::vector<PatternKey> keys(entries);
  for (PatternKey& key : keys) {
    key = PatternKey{rng.Next() % Mersenne61::kPrime,
                     static_cast<u32>(rng.UniformInRange(1, 64))};
  }

  AosFingerprintTable<Value> aos(entries);
  FingerprintTable<Value> tagged(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    Value value;
    value.value = static_cast<double>(i);
    value.count = 1;
    aos.FindOrInsert(keys[i], value);
    tagged.FindOrInsert(keys[i], value);
  }

  // Probe in shuffled order so every lookup is a fresh cache line, and cap
  // the probe list so the probe working set itself stays reasonable.
  std::vector<PatternKey> probes = keys;
  for (std::size_t i = probes.size(); i > 1; --i) {
    std::swap(probes[i - 1], probes[rng.UniformBelow(i)]);
  }
  std::vector<PatternKey> misses(probes.size());
  for (std::size_t i = 0; i < misses.size(); ++i) {
    // len 65..128 never collides with the inserted 1..64 lengths.
    misses[i] = PatternKey{rng.Next() % Mersenne61::kPrime,
                           static_cast<u32>(rng.UniformInRange(65, 128))};
  }
  double sink = 0;
  const double aos_hits = MeasureRate(probes.size(), [&] {
    for (const PatternKey& key : probes) sink += aos.Find(key)->value;
  });
  const double tagged_hits = MeasureRate(probes.size(), [&] {
    for (const PatternKey& key : probes) sink += tagged.Find(key)->value;
  });
  const double tagged_batch_hits = MeasureRate(probes.size(), [&] {
    tagged.VisitBatch(std::span<const PatternKey>(probes),
                      [&](std::size_t, const Value* v) { sink += v->value; });
  });
  const double aos_misses = MeasureRate(misses.size(), [&] {
    for (const PatternKey& key : misses) sink += aos.Find(key) != nullptr;
  });
  const double tagged_misses = MeasureRate(misses.size(), [&] {
    for (const PatternKey& key : misses) sink += tagged.Find(key) != nullptr;
  });

  TablePrinter table("Hash-table lookups/sec, " +
                     TablePrinter::Int(static_cast<long long>(entries)) +
                     " entries (AoS = pre-PR layout)");
  table.SetHeader({"layout", "hit/s", "hit speedup", "miss/s", "bytes"});
  const auto row = [&](const char* name, double hits, double misses_rate,
                       std::size_t bytes) {
    table.AddRow({name, TablePrinter::Num(hits, 0),
                  TablePrinter::Num(hits / aos_hits, 2),
                  TablePrinter::Num(misses_rate, 0),
                  TablePrinter::Int(static_cast<long long>(bytes))});
  };
  row("AoS linear", aos_hits, aos_misses, aos.SizeInBytes());
  row("tagged scalar", tagged_hits, tagged_misses, tagged.SizeInBytes());
  row("tagged VisitBatch", tagged_batch_hits, tagged_misses,
      tagged.SizeInBytes());
  table.Print();
  std::printf("(checksum %.1f)\n", sink);

  json.Add("table", "entries", static_cast<double>(entries), "count");
  json.Add("table", "aos_hit_lookups_per_sec", aos_hits, "1/s");
  json.Add("table", "tagged_hit_lookups_per_sec", tagged_hits, "1/s");
  json.Add("table", "tagged_batched_hit_lookups_per_sec", tagged_batch_hits,
           "1/s");
  json.Add("table", "aos_miss_lookups_per_sec", aos_misses, "1/s");
  json.Add("table", "tagged_miss_lookups_per_sec", tagged_misses, "1/s");
  json.Add("table", "aos_bytes", static_cast<double>(aos.SizeInBytes()),
           "bytes");
  json.Add("table", "tagged_bytes", static_cast<double>(tagged.SizeInBytes()),
           "bytes");
  json.Add("table", "batched_hit_speedup_vs_aos", tagged_batch_hits / aos_hits,
           "x");
}

void RunBatchSection(const bench::BenchArgs& args, bench::BenchJson& json) {
  const DatasetSpec spec = AllDatasetSpecs().front();
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);

  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(n / 50);

  WorkloadOptions wopts;
  wopts.num_queries = 4000;
  wopts.seed = spec.seed ^ 0xBEEF;
  const Workload w1 = MakeWorkloadW1(ws.text(), pool.items, wopts);
  // The hot workload: every pattern comes from the frequent pool, i.e. the
  // serving regime the paper's hash table exists for. The mixed W1 batch
  // (10% random substrings) is dominated by SA-fallback misses, so it
  // bounds how much any hash-path work can show end to end.
  WorkloadOptions hot_opts = wopts;
  hot_opts.frequent_fraction = 1.0;
  hot_opts.seed = spec.seed ^ 0xF00D;
  const Workload hot = MakeWorkloadW1(ws.text(), pool.items, hot_opts);
  // Repeat-heavy traffic: 4000 draws from the 64 longest frequent
  // substrings. Massive duplication + long patterns is the regime the
  // clustered (sorted, LCP-shared) fingerprint stage exists for.
  Workload repeat_heavy;
  {
    std::vector<const TopKSubstring*> by_len;
    for (const TopKSubstring& item : pool.items) by_len.push_back(&item);
    std::sort(by_len.begin(), by_len.end(),
              [](const TopKSubstring* a, const TopKSubstring* b) {
                return a->length > b->length;
              });
    std::vector<Text> distinct;
    for (std::size_t i = 0; i < std::min<std::size_t>(64, by_len.size());
         ++i) {
      const TopKSubstring& item = *by_len[i];
      distinct.emplace_back(ws.text().begin() + item.witness,
                            ws.text().begin() + item.witness + item.length);
    }
    Rng rng(spec.seed ^ 0xD0);
    for (std::size_t i = 0; i < wopts.num_queries; ++i) {
      repeat_heavy.patterns.push_back(
          distinct[rng.UniformBelow(distinct.size())]);
    }
  }

  UsiOptions options;
  options.k = std::max<u64>(10, n / 100);
  UsiIndex index(ws, options);

  UsiServiceOptions seq_options;
  seq_options.threads = 1;
  UsiService sequential(index, seq_options);
  UsiServiceOptions par_options;
  par_options.threads = args.threads;  // 0 = hardware concurrency.
  UsiService parallel(index, par_options);

  TablePrinter table("UsiIndex serving on " + spec.name + " (n=" +
                     TablePrinter::Int(n) + ", batches of " +
                     TablePrinter::Int(static_cast<long long>(
                         w1.patterns.size())) +
                     ")");
  table.SetHeader({"workload", "path", "queries/s", "speedup"});
  for (const auto& [label, workload] :
       {std::pair<const char*, const Workload*>{"hot", &hot},
        std::pair<const char*, const Workload*>{"mixed W1", &w1},
        std::pair<const char*, const Workload*>{"repeat-heavy",
                                                &repeat_heavy}}) {
    const std::vector<Text>& patterns = workload->patterns;
    std::vector<QueryResult> results(patterns.size());
    const double per_query = MeasureRate(patterns.size(), [&] {
      for (const Text& pattern : patterns) {
        (void)static_cast<const UsiIndex&>(index).Query(pattern);
      }
    });
    const double batch_seq = MeasureRate(patterns.size(), [&] {
      sequential.QueryBatchInto(patterns, results);
    });
    const double batch_par = MeasureRate(patterns.size(), [&] {
      parallel.QueryBatchInto(patterns, results);
    });
    table.AddRow({label, "per-query Query loop", TablePrinter::Num(per_query, 0),
                  TablePrinter::Num(1.0, 2)});
    table.AddRow({label, "QueryBatch, 1 thread",
                  TablePrinter::Num(batch_seq, 0),
                  TablePrinter::Num(batch_seq / per_query, 2)});
    table.AddRow({label,
                  "QueryBatch, " + TablePrinter::Int(parallel.threads()) +
                      " threads",
                  TablePrinter::Num(batch_par, 0),
                  TablePrinter::Num(batch_par / per_query, 2)});
    const std::string prefix = std::string(label) == "hot"
                                   ? "hot"
                                   : (std::string(label) == "mixed W1"
                                          ? "w1"
                                          : "repeat");
    json.Add("batch", prefix + "_per_query_qps", per_query, "qps");
    json.Add("batch", prefix + "_batch_seq_qps", batch_seq, "qps");
    json.Add("batch", prefix + "_batch_parallel_qps", batch_par, "qps");
    json.Add("batch", prefix + "_hash_hit_fraction",
             static_cast<double>(sequential.last_batch().hash_hits) /
                 static_cast<double>(patterns.size()),
             "ratio");
  }
  table.Print();
  json.Add("batch", "batch_parallel_threads",
           static_cast<double>(parallel.threads()), "count");

  // --- windows: sliding-window serving over a document. The rolling path
  // replaces the O(len) per-window rehash with an O(1) roll, so its edge
  // grows with the window length. ---
  const index_t doc_len = std::min<index_t>(n, 20'000);
  const std::span<const Symbol> document(ws.text().data(), doc_len);
  TablePrinter wtable("Sliding windows over " + TablePrinter::Int(doc_len) +
                      " positions of " + spec.name);
  wtable.SetHeader({"len", "path", "windows/s", "speedup"});
  for (const index_t window_len : {index_t{8}, index_t{64}}) {
    const std::size_t windows = doc_len - window_len + 1;
    std::vector<QueryResult> window_results(windows);
    const double naive_windows = MeasureRate(windows, [&] {
      for (std::size_t i = 0; i < windows; ++i) {
        window_results[i] = static_cast<const UsiIndex&>(index).Query(
            document.subspan(i, window_len));
      }
    });
    const double rolling_windows = MeasureRate(windows, [&] {
      index.QueryAllWindows(document, window_len, window_results);
    });
    wtable.AddRow({TablePrinter::Int(window_len), "per-window Query",
                   TablePrinter::Num(naive_windows, 0),
                   TablePrinter::Num(1.0, 2)});
    wtable.AddRow({TablePrinter::Int(window_len), "QueryAllWindows",
                   TablePrinter::Num(rolling_windows, 0),
                   TablePrinter::Num(rolling_windows / naive_windows, 2)});
    const std::string prefix = "len" + std::to_string(window_len);
    json.Add("windows", prefix + "_per_window_qps", naive_windows, "qps");
    json.Add("windows", prefix + "_rolling_qps", rolling_windows, "qps");
  }
  wtable.Print();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("bench_hotpath",
                          "the query hot path (Section IV serving)");
  usi::bench::BenchJson json;
  usi::RunTableSection(json);
  usi::RunBatchSection(args, json);
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path, "bench_hotpath")) return 1;
    std::printf("\nwrote machine-readable results to %s\n",
                args.json_path.c_str());
  }
  return 0;
}
