// Google-benchmark microbenchmarks for the substrates: suffix-array
// construction, Karp-Rabin hashing, the fingerprint table vs
// std::unordered_map, LCE backends, and RMQ.

#include <unordered_map>

#include <benchmark/benchmark.h>

#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/lce.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/rmq.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/text/generators.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

const Text& BenchText(index_t n) {
  static const Text text = MakeDnaLike(1 << 20, 42).text();
  static Text slice;
  slice.assign(text.begin(), text.begin() + n);
  return slice;
}

void BM_SuffixArraySais(benchmark::State& state) {
  const Text text = Text(BenchText(static_cast<index_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArray(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 19);

void BM_SuffixArrayDoubling(benchmark::State& state) {
  const Text text = Text(BenchText(static_cast<index_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArrayDoubling(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayDoubling)->Arg(1 << 14)->Arg(1 << 17);

void BM_LcpKasai(benchmark::State& state) {
  const Text text = Text(BenchText(static_cast<index_t>(state.range(0))));
  const auto sa = BuildSuffixArray(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLcpArray(text, sa));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpKasai)->Arg(1 << 17)->Arg(1 << 19);

void BM_KarpRabinPrefixBuild(benchmark::State& state) {
  const Text text = Text(BenchText(static_cast<index_t>(state.range(0))));
  const KarpRabinHasher hasher(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrefixFingerprints(text, hasher));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KarpRabinPrefixBuild)->Arg(1 << 17)->Arg(1 << 20);

void BM_RollingWindow(benchmark::State& state) {
  const Text text = Text(BenchText(1 << 18));
  const KarpRabinHasher hasher(1);
  const index_t len = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    RollingHasher window(hasher, len);
    for (index_t i = 0; i + 1 < len; ++i) window.Push(text[i]);
    u64 sum = 0;
    for (index_t i = 0; i + len <= text.size(); ++i) {
      if (i == 0) {
        window.Push(text[len - 1]);
      } else {
        window.Roll(text[i - 1], text[i + len - 1]);
      }
      sum ^= window.Fingerprint();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_RollingWindow)->Arg(8)->Arg(64)->Arg(512);

void BM_FingerprintTableLookup(benchmark::State& state) {
  FingerprintTable<double> table(1 << 16);
  Rng rng(3);
  std::vector<PatternKey> keys;
  for (int i = 0; i < (1 << 16); ++i) {
    const PatternKey key{rng.Next() % Mersenne61::kPrime,
                         static_cast<u32>(rng.UniformInRange(1, 64))};
    keys.push_back(key);
    table.FindOrInsert(key, 1.0);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(keys[cursor++ & 0xFFFF]));
  }
}
BENCHMARK(BM_FingerprintTableLookup);

void BM_StdUnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<u64, double> table;
  Rng rng(3);
  std::vector<u64> keys;
  for (int i = 0; i < (1 << 16); ++i) {
    keys.push_back(rng.Next());
    table.emplace(keys.back(), 1.0);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[cursor++ & 0xFFFF]));
  }
}
BENCHMARK(BM_StdUnorderedMapLookup);

template <typename Oracle>
void LceBench(benchmark::State& state, const Oracle& oracle, index_t n) {
  Rng rng(5);
  for (auto _ : state) {
    const index_t i = static_cast<index_t>(rng.UniformBelow(n));
    const index_t j = static_cast<index_t>(rng.UniformBelow(n));
    benchmark::DoNotOptimize(oracle.Lce(i, j));
  }
}

void BM_LceNaive(benchmark::State& state) {
  const Text& text = BenchText(1 << 18);
  NaiveLce oracle(text);
  LceBench(state, oracle, 1 << 18);
}
BENCHMARK(BM_LceNaive);

void BM_LceRmq(benchmark::State& state) {
  const Text& text = BenchText(1 << 18);
  RmqLce oracle(text);
  LceBench(state, oracle, 1 << 18);
}
BENCHMARK(BM_LceRmq);

void BM_LceSampledKr(benchmark::State& state) {
  const Text& text = BenchText(1 << 18);
  KarpRabinHasher hasher(1);
  SampledKrLce oracle(text, hasher, static_cast<index_t>(state.range(0)));
  LceBench(state, oracle, 1 << 18);
}
BENCHMARK(BM_LceSampledKr)->Arg(4)->Arg(16)->Arg(64);

void BM_RangeMinQuery(benchmark::State& state) {
  Rng rng(7);
  std::vector<index_t> values(1 << 18);
  for (auto& v : values) v = static_cast<index_t>(rng.UniformBelow(1 << 20));
  RangeMin rmq(values);
  for (auto _ : state) {
    std::size_t l = rng.UniformBelow(values.size());
    std::size_t r = rng.UniformBelow(values.size());
    if (l > r) std::swap(l, r);
    benchmark::DoNotOptimize(rmq.Min(l, r));
  }
}
BENCHMARK(BM_RangeMinQuery);

}  // namespace
}  // namespace usi

BENCHMARK_MAIN();
