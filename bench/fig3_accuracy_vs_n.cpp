// Regenerates Fig. 3f-i: Accuracy of AT, TT and SH versus the text length n
// (prefixes of each dataset at the default K ratio and default s).

#include "bench_common.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

using bench::Miner;

void RunDataset(const DatasetSpec& spec) {
  const index_t full_n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString full = MakeDataset(spec, full_n);

  TablePrinter table("Fig. 3f-i — Accuracy (%) vs n on " + spec.name +
                     " (K = n * default ratio, s=" +
                     TablePrinter::Int(spec.default_s) + ")");
  table.SetHeader({"n", "AT", "TT", "SH"});
  for (int step = 1; step <= 5; ++step) {
    const index_t n = full_n / 5 * step;
    const Text text(full.text().begin(), full.text().begin() + n);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    SubstringStats stats(text);
    const TopKList exact = stats.TopK(k);
    const bench::MinerRun at = bench::RunMiner(Miner::kAt, text, k,
                                               spec.default_s);
    const bench::MinerRun tt = bench::RunMiner(Miner::kTt, text, k, 0);
    const bench::MinerRun sh = bench::RunMiner(Miner::kSh, text, k, 0);
    table.AddRow(
        {TablePrinter::Int(n),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, at.list.items), 1),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, tt.list.items), 1),
         sh.timed_out
             ? "DNF"
             : TablePrinter::Num(
                   TopKAccuracyPercent(exact.items, sh.list.items), 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig3_accuracy_vs_n", "Fig. 3f-i");
  for (const usi::DatasetSpec& spec : usi::AllDatasetSpecs()) {
    usi::RunDataset(spec);
  }
  return 0;
}
