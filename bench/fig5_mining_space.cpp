// Regenerates Fig. 5a-d: working space of the four top-K miners versus n
// (XML- and HUM-like) and versus s (AT only). ET holds the full Section V
// structure (O(n)); AT holds the sparse index + merge lists (O(n/s + K));
// TT and SH hold O(K) sketches. Structure-reported bytes are the primary
// number; process peak RSS is printed for reference.

#include "bench_common.hpp"
#include "usi/util/memory.hpp"

namespace usi {
namespace {

using bench::Miner;

void SpaceVsN(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t full_n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString full = MakeDataset(spec, full_n);

  TablePrinter table(std::string("Fig. 5a-b — working space vs n on ") + name +
                     " (default K ratio)");
  table.SetHeader({"n", "ET", "AT", "TT", "SH"});
  for (int step = 1; step <= 4; ++step) {
    const index_t n = full_n / 4 * step;
    const Text text(full.text().begin(), full.text().begin() + n);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    const auto et = bench::RunMiner(Miner::kEt, text, k, 0);
    const auto at = bench::RunMiner(Miner::kAt, text, k, spec.default_s);
    const auto tt = bench::RunMiner(Miner::kTt, text, k, 0);
    const auto sh = bench::RunMiner(Miner::kSh, text, k, 0);
    table.AddRow({TablePrinter::Int(n), FormatBytes(et.space_bytes),
                  FormatBytes(at.space_bytes), FormatBytes(tt.space_bytes),
                  FormatBytes(sh.space_bytes)});
  }
  table.Print();
}

void SpaceVsS(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);

  TablePrinter table(std::string("Fig. 5c-d — AT working space vs s on ") +
                     name + " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"s", "AT space", "vs ET"});
  const auto et = bench::RunMiner(Miner::kEt, ws.text(), k, 0);
  for (u32 s : spec.s_sweep) {
    const auto at = bench::RunMiner(Miner::kAt, ws.text(), k, s);
    table.AddRow({TablePrinter::Int(s), FormatBytes(at.space_bytes),
                  TablePrinter::Num(static_cast<double>(et.space_bytes) /
                                        static_cast<double>(at.space_bytes),
                                    1) +
                      "x smaller"});
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig5_mining_space", "Fig. 5a-d");
  usi::SpaceVsN("XML");
  usi::SpaceVsN("HUM");
  usi::SpaceVsS("XML");
  usi::SpaceVsS("HUM");
  std::printf("\npeak process RSS: %s\n",
              usi::FormatBytes(usi::ReadPeakRssBytes()).c_str());
  return 0;
}
