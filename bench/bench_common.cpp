#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/heavy_keeper.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/topk/topk_trie.hpp"
#include "usi/util/memory.hpp"

namespace usi::bench {

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(std::string("--json=").size());
      continue;
    }
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      continue;
    }
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || parsed < 0) {
      // A typo must not silently fall back to hardware concurrency and
      // invalidate the measurement the user thought they asked for.
      std::fprintf(stderr, "invalid --threads value '%s' (expected a "
                           "non-negative integer)\n", value.c_str());
      std::exit(2);
    }
    args.threads = static_cast<unsigned>(parsed);
  }
  return args;
}

namespace {

/// Escapes the characters JSON strings cannot hold verbatim; metric names
/// are ASCII identifiers, so quotes/backslashes/control bytes suffice.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void BenchJson::Add(const std::string& section, const std::string& name,
                    double value, const std::string& unit) {
  entries_.push_back(Entry{section, name, value, unit});
}

bool BenchJson::WriteTo(const std::string& path,
                        const std::string& bench_name) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for --json output\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n"
                  "  \"scale_divisor\": %u,\n  \"metrics\": [",
               JsonEscape(bench_name).c_str(), ScaleDivisor());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f,
                 "%s\n    {\"section\": \"%s\", \"name\": \"%s\", "
                 "\"value\": %.9g, \"unit\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(e.section).c_str(),
                 JsonEscape(e.name).c_str(), e.value,
                 JsonEscape(e.unit).c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

index_t ScaleDivisor() {
  const char* env = std::getenv("USI_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long value = std::strtol(env, nullptr, 10);
  return value >= 1 ? static_cast<index_t>(value) : 1;
}

index_t ScaledLength(const DatasetSpec& spec) {
  return std::max<index_t>(1000, spec.default_n / ScaleDivisor());
}

void PrintBanner(const char* bench_name, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s  —  regenerates %s of 'Indexing Strings with Utilities'\n",
              bench_name, paper_ref);
  std::printf("scale divisor: %u (set USI_BENCH_SCALE to change)\n",
              ScaleDivisor());
  std::printf("datasets (synthetic stand-ins, DESIGN.md Sec. 3):");
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    std::printf(" %s[n=%u,seed=%llu]", spec.name.c_str(), ScaledLength(spec),
                static_cast<unsigned long long>(spec.seed));
  }
  std::printf("\n==============================================================\n");
}

const char* MinerName(Miner miner) {
  switch (miner) {
    case Miner::kEt:
      return "ET";
    case Miner::kAt:
      return "AT";
    case Miner::kTt:
      return "TT";
    case Miner::kSh:
      return "SH";
  }
  return "?";
}

MinerRun RunMiner(Miner miner, const Text& text, u64 k, u32 s) {
  MinerRun run;
  Timer timer;
  switch (miner) {
    case Miner::kEt: {
      SubstringStats stats(text);
      run.list = stats.TopK(k);
      run.space_bytes = stats.SizeInBytes();
      break;
    }
    case Miner::kAt: {
      ApproximateTopKOptions options;
      options.rounds = s;
      run.list = ApproximateTopK(text, k, options);
      // Working space: the sparse index (n/s positions + lcp), the sampled-KR
      // LCE table (n/s fingerprints), and the 2*oversample*k merge lists.
      run.space_bytes =
          (text.size() / std::max<u32>(1, s)) * (2 * sizeof(index_t)) +
          (text.size() / std::max<u32>(1, s)) * sizeof(u64) +
          2 * options.oversample * k * sizeof(TopKSubstring);
      break;
    }
    case Miner::kTt: {
      TopKTrieStats stats;
      run.list = TopKTrie(text, k, {}, &stats);
      run.space_bytes = stats.space_bytes;
      break;
    }
    case Miner::kSh: {
      SubstringHkOptions options;
      // Work budget: the bench analogue of the paper's 5-day cutoff.
      options.max_hashed_substrings = 24ULL * text.size();
      SubstringHkStats stats;
      run.list = SubstringHeavyKeeper(text, k, options, &stats);
      run.space_bytes = stats.space_bytes;
      run.timed_out = stats.timed_out;
      break;
    }
  }
  run.seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace usi::bench
