// Ablations beyond the paper's figures (DESIGN.md Section 4, last row):
//  (a) Approximate-Top-K oversampling factor (our addition; Section VI only
//      fixes the per-round list at K) — accuracy/runtime trade-off;
//  (b) LCE backend used inside Approximate-Top-K — space/time trade-off
//      standing in for Prezza's in-place structure;
//  (c) global utility kinds — query-time invariance of the USI design;
//  (d) dynamic appends — per-append cost of the Section X extension.

#include <cstdio>

#include "bench_common.hpp"
#include "usi/core/dynamic_usi.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/suffix/lce.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/measures.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/memory.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

void OversampleAblation() {
  const DatasetSpec& spec = DatasetSpecByName("ECOLI");
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 120'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  SubstringStats stats(ws.text());
  const TopKList exact = stats.TopK(k);

  TablePrinter table("Ablation (a) — AT oversampling factor on ECOLI (s=" +
                     TablePrinter::Int(spec.default_s) + ")");
  table.SetHeader({"oversample", "Accuracy", "NDCG", "seconds"});
  for (u32 factor : {1u, 2u, 4u, 8u}) {
    ApproximateTopKOptions options;
    options.rounds = spec.default_s;
    options.oversample = factor;
    TopKList approx;
    const double seconds = bench::TimeOnce(
        [&] { approx = ApproximateTopK(ws.text(), k, options); });
    table.AddRow(
        {TablePrinter::Int(factor),
         TablePrinter::Num(TopKAccuracyPercent(exact.items, approx.items), 1),
         TablePrinter::Num(TopKNdcg(exact.items, approx.items), 4),
         TablePrinter::Num(seconds, 2)});
  }
  table.Print();
}

void LceBackendAblation() {
  const DatasetSpec& spec = DatasetSpecByName("HUM");
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 120'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  SubstringStats stats(ws.text());
  const TopKList exact = stats.TopK(k);

  struct Case {
    const char* name;
    LceBackendKind backend;
  };
  TablePrinter table("Ablation (b) — LCE backend inside AT on HUM (s=" +
                     TablePrinter::Int(spec.default_s) + ")");
  table.SetHeader({"backend", "Accuracy", "seconds", "LCE space"});
  for (const Case& c :
       {Case{"sampled-KR (paper-faithful)", LceBackendKind::kSampledKr},
        Case{"full-KR table", LceBackendKind::kFullKr},
        Case{"SA+LCP+RMQ", LceBackendKind::kRmq},
        Case{"naive scan", LceBackendKind::kNaive}}) {
    ApproximateTopKOptions options;
    options.rounds = spec.default_s;
    options.lce_backend = c.backend;
    TopKList approx;
    const double seconds = bench::TimeOnce(
        [&] { approx = ApproximateTopK(ws.text(), k, options); });
    std::size_t lce_space = 0;
    {
      KarpRabinHasher hasher(1);
      switch (c.backend) {
        case LceBackendKind::kSampledKr:
          lce_space = SampledKrLce(ws.text(), hasher, spec.default_s).SizeInBytes();
          break;
        case LceBackendKind::kFullKr:
          lce_space = KrLce(ws.text(), hasher).SizeInBytes();
          break;
        case LceBackendKind::kRmq:
          lce_space = RmqLce(ws.text()).SizeInBytes();
          break;
        case LceBackendKind::kNaive:
          lce_space = NaiveLce(ws.text()).SizeInBytes();
          break;
      }
    }
    table.AddRow(
        {c.name,
         TablePrinter::Num(TopKAccuracyPercent(exact.items, approx.items), 1),
         TablePrinter::Num(seconds, 2), FormatBytes(lce_space)});
  }
  table.Print();
}

void UtilityKindAblation() {
  const DatasetSpec& spec = DatasetSpecByName("ADV");
  const index_t n = bench::ScaledLength(spec);
  const WeightedString ws = MakeDataset(spec, n);
  SubstringStats stats(ws.text());
  const TopKList pool = stats.TopK(n / 50);
  Rng rng(3);
  std::vector<Text> queries;
  for (int q = 0; q < 3000 && !pool.items.empty(); ++q) {
    const TopKSubstring& item = pool.items[rng.UniformBelow(pool.items.size())];
    queries.push_back(Text(ws.text().begin() + item.witness,
                           ws.text().begin() + item.witness + item.length));
  }

  TablePrinter table("Ablation (c) — global utility kinds on ADV (class U)");
  table.SetHeader({"U", "avg query time (us)", "construction (s)"});
  for (auto kind : {GlobalUtilityKind::kSum, GlobalUtilityKind::kMin,
                    GlobalUtilityKind::kMax, GlobalUtilityKind::kAvg}) {
    UsiOptions options;
    options.k = spec.default_k;
    options.utility = kind;
    double construction = 0;
    UsiIndex* index = nullptr;
    construction = bench::TimeOnce([&] { index = new UsiIndex(ws, options); });
    double checksum = 0;
    const double seconds = bench::TimeOnce([&] {
      for (const Text& q : queries) checksum += index->Utility(q);
    });
    (void)checksum;
    table.AddRow({GlobalUtilityKindName(kind),
                  TablePrinter::Num(seconds * 1e6 / queries.size(), 3),
                  TablePrinter::Num(construction, 3)});
    delete index;
  }
  table.Print();
}

void DynamicAppendCost() {
  const DatasetSpec& spec = DatasetSpecByName("HUM");
  const WeightedString seed_ws = MakeDataset(spec, 50'000);
  TablePrinter table("Ablation (d) — Section X dynamic appends (HUM seed n=50k)");
  table.SetHeader({"tracked K", "appends", "us/append", "tracked lengths ok"});
  for (u64 k : {256ULL, 1024ULL, 4096ULL}) {
    DynamicUsiOptions options;
    options.k = k;
    DynamicUsi dynamic(seed_ws, options);
    Rng rng(7);
    const int appends = 20'000;
    const double seconds = bench::TimeOnce([&] {
      for (int a = 0; a < appends; ++a) {
        dynamic.Append(static_cast<Symbol>(rng.UniformBelow(4)),
                       rng.UniformDouble());
      }
    });
    table.AddRow({TablePrinter::Int(static_cast<long long>(k)),
                  TablePrinter::Int(appends),
                  TablePrinter::Num(seconds * 1e6 / appends, 2),
                  dynamic.TrackedEntries() > 0 ? "yes" : "no"});
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("ablation_usi", "design-choice ablations (ours)");
  usi::OversampleAblation();
  usi::LceBackendAblation();
  usi::UtilityKindAblation();
  usi::DynamicAppendCost();
  return 0;
}
