// Regenerates Fig. 6a-j: average query time of UET, UAT and BSL1-4 on the
// W1 workloads (varying K) and the W2,p workloads (varying p), for all five
// datasets. The paper's headline: UET/UAT are on average 3.1x (up to 15x)
// faster than the best baseline, and improve with K and with p while the
// baselines stay flat.
//
// Every engine is driven through the unified QueryEngine contract via
// UsiService (single-threaded for the per-query figures). A final section
// per dataset reports UsiService::QueryBatch throughput — queries/sec at 1,
// 2 and hardware-concurrency threads (plus --threads N when given).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/core/workload.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

constexpr std::size_t kQueriesPerWorkload = 2000;

/// Average per-query microseconds through a single-threaded service batch.
double AvgMicros(QueryEngine& engine, const std::vector<Text>& patterns) {
  UsiServiceOptions sequential;
  sequential.threads = 1;
  UsiService service(engine, sequential);
  Timer timer;
  const std::vector<QueryResult> results = service.QueryBatch(patterns);
  const double micros = timer.ElapsedSeconds() * 1e6 / patterns.size();
  double checksum = 0;
  for (const QueryResult& r : results) checksum += r.utility;
  (void)checksum;
  return micros;
}

/// Sustained QueryBatch throughput at a given pool width.
double QueriesPerSecond(QueryEngine& engine, unsigned threads,
                        const std::vector<Text>& patterns) {
  UsiServiceOptions options;
  options.threads = threads;
  UsiService service(engine, options);
  service.QueryBatch(patterns);  // Warm-up: page in tables, prime the pool.
  std::size_t served = 0;
  Timer timer;
  do {
    service.QueryBatch(patterns);
    served += patterns.size();
  } while (timer.ElapsedSeconds() < 0.2 && served < 400'000);
  return static_cast<double>(served) / timer.ElapsedSeconds();
}

void RunDataset(const DatasetSpec& spec, const bench::BenchArgs& args,
                bench::BenchJson& json) {
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);

  SubstringStats stats(ws.text());
  const TopKList pool_w1 = stats.TopK(n / 50);
  const TopKList pool_w2 = stats.TopK(n / 100);

  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);

  WorkloadOptions wopts;
  wopts.num_queries = kQueriesPerWorkload;
  wopts.random_max_len =
      spec.name == "ADV" ? 200 : (spec.name == "IOT" ? 20'000 : 5'000);
  wopts.seed = spec.seed ^ 0xBE;
  const Workload w1 = MakeWorkloadW1(ws.text(), pool_w1.items, wopts);

  // --- Fig. 6a-e: query time vs K on W1. ---
  TablePrinter by_k("Fig. 6a-e — avg W1 query time (us) vs K on " + spec.name +
                    " (n=" + TablePrinter::Int(n) + ")");
  by_k.SetHeader({"K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (std::size_t ki = 0; ki + 1 < spec.k_sweep.size(); ++ki) {
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.k_sweep[ki]) * n / spec.default_n);
    UsiOptions uet_options;
    uet_options.k = k;
    UsiIndex uet(ws, uet_options);
    UsiOptions uat_options = uet_options;
    uat_options.miner = UsiMiner::kApproximate;
    uat_options.approx.rounds = spec.default_s;
    UsiIndex uat(ws, uat_options);

    BaselineContext context;
    context.ws = &ws;
    context.sa = &sa;
    context.psw = &psw;
    context.cache_capacity = k;

    std::vector<std::string> row = {
        TablePrinter::Int(static_cast<long long>(k))};
    row.push_back(TablePrinter::Num(AvgMicros(uet, w1.patterns), 2));
    row.push_back(TablePrinter::Num(AvgMicros(uat, w1.patterns), 2));
    for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                      BaselineKind::kBsl3, BaselineKind::kBsl4}) {
      auto baseline = MakeBaseline(kind, context);
      row.push_back(TablePrinter::Num(AvgMicros(*baseline, w1.patterns), 2));
    }
    by_k.AddRow(std::move(row));
  }
  by_k.Print();

  // --- Fig. 6f-j: query time vs p on W2,p at the default K. ---
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  UsiOptions uet_options;
  uet_options.k = k;
  UsiIndex uet(ws, uet_options);
  UsiOptions uat_options = uet_options;
  uat_options.miner = UsiMiner::kApproximate;
  uat_options.approx.rounds = spec.default_s;
  UsiIndex uat(ws, uat_options);

  TablePrinter by_p("Fig. 6f-j — avg W2,p query time (us) vs p on " +
                    spec.name + " (K=" +
                    TablePrinter::Int(static_cast<long long>(k)) + ")");
  by_p.SetHeader({"p (%)", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (u32 p : {20u, 40u, 60u, 80u}) {
    const Workload w2 =
        MakeWorkloadW2(ws.text(), pool_w2.items, pool_w1.items, p, wopts);
    BaselineContext context;
    context.ws = &ws;
    context.sa = &sa;
    context.psw = &psw;
    context.cache_capacity = k;
    std::vector<std::string> row = {TablePrinter::Int(p)};
    const double uet_us = AvgMicros(uet, w2.patterns);
    const double uat_us = AvgMicros(uat, w2.patterns);
    json.Add(spec.name, "w2_p" + std::to_string(p) + "_uet_avg_us", uet_us,
             "us");
    json.Add(spec.name, "w2_p" + std::to_string(p) + "_uat_avg_us", uat_us,
             "us");
    row.push_back(TablePrinter::Num(uet_us, 2));
    row.push_back(TablePrinter::Num(uat_us, 2));
    for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                      BaselineKind::kBsl3, BaselineKind::kBsl4}) {
      auto baseline = MakeBaseline(kind, context);
      row.push_back(TablePrinter::Num(AvgMicros(*baseline, w2.patterns), 2));
    }
    by_p.AddRow(std::move(row));
  }
  by_p.Print();

  // --- Serving throughput: UsiService::QueryBatch over the W1 workload. ---
  std::vector<unsigned> counts = {1, 2, ThreadPool::HardwareConcurrency()};
  if (args.threads != 0) counts.push_back(args.threads);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  TablePrinter serving("UsiService::QueryBatch throughput on " + spec.name +
                       " (UET, K=" +
                       TablePrinter::Int(static_cast<long long>(k)) +
                       ", W1 batch of " +
                       TablePrinter::Int(static_cast<long long>(
                           w1.patterns.size())) +
                       ")");
  serving.SetHeader({"threads", "queries/s", "speedup"});
  double base_qps = 0;
  for (unsigned threads : counts) {
    const double qps = QueriesPerSecond(uet, threads, w1.patterns);
    if (base_qps == 0) base_qps = qps;
    json.Add(spec.name, "w1_uet_qps_t" + std::to_string(threads), qps, "qps");
    serving.AddRow({TablePrinter::Int(threads), TablePrinter::Num(qps, 0),
                    TablePrinter::Num(qps / base_qps, 2)});
  }
  serving.Print();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("fig6_query_time", "Fig. 6a-j");
  std::printf("hardware concurrency: %u; --threads flag: %u (0 = hw)\n",
              usi::ThreadPool::HardwareConcurrency(), args.threads);
  usi::bench::BenchJson json;
  for (const usi::DatasetSpec& spec : usi::AllDatasetSpecs()) {
    usi::RunDataset(spec, args, json);
  }
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path, "fig6_query_time")) return 1;
    std::printf("\nwrote machine-readable results to %s\n",
                args.json_path.c_str());
  }
  std::printf("\nShape check (paper): UET/UAT beat every baseline and get "
              "faster as K or p grows; baselines stay flat. QueryBatch "
              "throughput should scale with threads on multi-core hosts.\n");
  return 0;
}
