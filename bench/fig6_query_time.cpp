// Regenerates Fig. 6a-j: average query time of UET, UAT and BSL1-4 on the
// W1 workloads (varying K) and the W2,p workloads (varying p), for all five
// datasets. The paper's headline: UET/UAT are on average 3.1x (up to 15x)
// faster than the best baseline, and improve with K and with p while the
// baselines stay flat.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/workload.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

constexpr std::size_t kQueriesPerWorkload = 2000;

struct Engines {
  std::unique_ptr<UsiIndex> uet;
  std::unique_ptr<UsiIndex> uat;
  std::vector<std::unique_ptr<UsiBaseline>> baselines;
};

double AvgMicros(const std::vector<Text>& patterns,
                 const std::function<double(const Text&)>& query) {
  Timer timer;
  double checksum = 0;
  for (const Text& p : patterns) checksum += query(p);
  const double micros = timer.ElapsedSeconds() * 1e6 / patterns.size();
  (void)checksum;
  return micros;
}

void RunDataset(const DatasetSpec& spec) {
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);

  SubstringStats stats(ws.text());
  const TopKList pool_w1 = stats.TopK(n / 50);
  const TopKList pool_w2 = stats.TopK(n / 100);

  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);

  WorkloadOptions wopts;
  wopts.num_queries = kQueriesPerWorkload;
  wopts.random_max_len =
      spec.name == "ADV" ? 200 : (spec.name == "IOT" ? 20'000 : 5'000);
  wopts.seed = spec.seed ^ 0xBE;
  const Workload w1 = MakeWorkloadW1(ws.text(), pool_w1.items, wopts);

  // --- Fig. 6a-e: query time vs K on W1. ---
  TablePrinter by_k("Fig. 6a-e — avg W1 query time (us) vs K on " + spec.name +
                    " (n=" + TablePrinter::Int(n) + ")");
  by_k.SetHeader({"K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (std::size_t ki = 0; ki + 1 < spec.k_sweep.size(); ++ki) {
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.k_sweep[ki]) * n / spec.default_n);
    UsiOptions uet_options;
    uet_options.k = k;
    UsiIndex uet(ws, uet_options);
    UsiOptions uat_options = uet_options;
    uat_options.miner = UsiMiner::kApproximate;
    uat_options.approx.rounds = spec.default_s;
    UsiIndex uat(ws, uat_options);

    BaselineContext context;
    context.ws = &ws;
    context.sa = &sa;
    context.psw = &psw;
    context.cache_capacity = k;

    std::vector<std::string> row = {
        TablePrinter::Int(static_cast<long long>(k))};
    row.push_back(TablePrinter::Num(
        AvgMicros(w1.patterns, [&](const Text& p) { return uet.Utility(p); }), 2));
    row.push_back(TablePrinter::Num(
        AvgMicros(w1.patterns, [&](const Text& p) { return uat.Utility(p); }), 2));
    for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                      BaselineKind::kBsl3, BaselineKind::kBsl4}) {
      auto baseline = MakeBaseline(kind, context);
      row.push_back(TablePrinter::Num(
          AvgMicros(w1.patterns,
                    [&](const Text& p) { return baseline->Query(p).utility; }),
          2));
    }
    by_k.AddRow(std::move(row));
  }
  by_k.Print();

  // --- Fig. 6f-j: query time vs p on W2,p at the default K. ---
  const u64 k =
      std::max<u64>(10, static_cast<u64>(spec.default_k) * n / spec.default_n);
  UsiOptions uet_options;
  uet_options.k = k;
  UsiIndex uet(ws, uet_options);
  UsiOptions uat_options = uet_options;
  uat_options.miner = UsiMiner::kApproximate;
  uat_options.approx.rounds = spec.default_s;
  UsiIndex uat(ws, uat_options);

  TablePrinter by_p("Fig. 6f-j — avg W2,p query time (us) vs p on " +
                    spec.name + " (K=" +
                    TablePrinter::Int(static_cast<long long>(k)) + ")");
  by_p.SetHeader({"p (%)", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (u32 p : {20u, 40u, 60u, 80u}) {
    const Workload w2 =
        MakeWorkloadW2(ws.text(), pool_w2.items, pool_w1.items, p, wopts);
    BaselineContext context;
    context.ws = &ws;
    context.sa = &sa;
    context.psw = &psw;
    context.cache_capacity = k;
    std::vector<std::string> row = {TablePrinter::Int(p)};
    row.push_back(TablePrinter::Num(
        AvgMicros(w2.patterns, [&](const Text& q) { return uet.Utility(q); }), 2));
    row.push_back(TablePrinter::Num(
        AvgMicros(w2.patterns, [&](const Text& q) { return uat.Utility(q); }), 2));
    for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                      BaselineKind::kBsl3, BaselineKind::kBsl4}) {
      auto baseline = MakeBaseline(kind, context);
      row.push_back(TablePrinter::Num(
          AvgMicros(w2.patterns,
                    [&](const Text& q) { return baseline->Query(q).utility; }),
          2));
    }
    by_p.AddRow(std::move(row));
  }
  by_p.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig6_query_time", "Fig. 6a-j");
  for (const usi::DatasetSpec& spec : usi::AllDatasetSpecs()) {
    usi::RunDataset(spec);
  }
  std::printf("\nShape check (paper): UET/UAT beat every baseline and get "
              "faster as K or p grows; baselines stay flat.\n");
  return 0;
}
