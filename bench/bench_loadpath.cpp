// Load-path bench (crash-safe persistence PR): v2 heap deserialization vs
// v3 mmap open, per dataset. Two tables:
//
//   size — persisted file sizes of both formats (v3 carries the table's
//          ctrl/slot arrays verbatim plus the PSW, so it trades bytes for
//          the O(1) open).
//   open — startup latency: v2 LoadFromFile (full stream read + SA scan +
//          hash re-insertion + O(n) PSW rebuild) against v3 OpenMapped,
//          warm (file in page cache) and cold (page cache dropped via
//          posix_fadvise DONTNEED). A cold v3 open faults in only the
//          header pages; the rest demand-pages as queries touch it, so the
//          bench also reports cold open + a query burst to price that in.
//
// Acceptance bar (ISSUE: crash-safe persistence): v3 open >= 10x faster
// than v2 load on the largest bench text. --json PATH writes
// machine-readable results (BENCH_loadpath.json in CI).

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/usi_index.hpp"

namespace usi {
namespace {

constexpr int kRepeats = 5;

/// Best-of-N wall time; opens are microsecond-scale, so the least-disturbed
/// run is the honest figure.
template <typename Fn>
double BestOf(Fn fn) {
  double best = 0;
  for (int r = 0; r < kRepeats; ++r) {
    const double seconds = bench::TimeOnce(fn);
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// Drops \p path from the page cache (best-effort) so the next read faults
/// in from storage — the "cold process on a warm machine" startup scenario.
void DropCaches(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);  // Dirty pages cannot be dropped; this file is clean anyway.
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

double FileMb(const std::string& path) {
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<double>(bytes) / 1e6;
}

struct LoadpathRow {
  std::string name;
  double v2_mb = 0;
  double v3_mb = 0;
  double v2_warm_s = 0;
  double v2_cold_s = 0;
  double v3_warm_s = 0;
  double v3_cold_s = 0;
  double v3_cold_burst_s = 0;  ///< Cold open + the query burst.
  /// v2 warm load / v3 warm open — the instant-start scenario (process
  /// restart on a warm machine: the file is in the page cache either way,
  /// so this isolates the O(n) deserialization the v3 format removes;
  /// storage latency would add the same constant to both cold paths).
  double speedup = 0;
};

LoadpathRow RunDataset(const char* name, bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = bench::ScaledLength(spec);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k = std::max<u64>(
      10, static_cast<u64>(spec.default_k) * n / spec.default_n);

  UsiOptions options;
  options.k = k;
  options.threads = 0;  // Build as fast as the host allows; not measured.
  const UsiIndex index(ws, options);

  const std::string stem =
      std::string(P_tmpdir) + "/usi_bench_loadpath_" + name;
  const std::string v2_path = stem + "_v2.bin";
  const std::string v3_path = stem + "_v3.bin";
  LoadpathRow row;
  row.name = name;
  if (!index.SaveToFile(v2_path, IndexFileFormat::kV2Heap) ||
      !index.SaveToFile(v3_path, IndexFileFormat::kV3Mapped)) {
    std::fprintf(stderr, "bench_loadpath: saving %s failed\n", name);
    return row;
  }
  row.v2_mb = FileMb(v2_path);
  row.v3_mb = FileMb(v3_path);

  // A burst of table-hitting and fallback queries, for the demand-paging
  // figure: strided fragments touch SA/PSW/table pages all over the file.
  std::vector<Text> burst;
  for (index_t i = 0; i + 8 <= ws.size() && burst.size() < 1000; i += 997) {
    burst.push_back(ws.Fragment(i, 8));
  }
  const auto run_burst = [&](const UsiIndex& idx) {
    double sink = 0;
    for (const Text& pattern : burst) sink += idx.Utility(pattern);
    return sink;
  };

  // The cache drop runs before each repeat, outside the timed region —
  // charging the drop itself to the open would overstate the cold cost.
  const auto cold_best_of = [](const std::string& path, auto fn) {
    double best = 0;
    for (int r = 0; r < kRepeats; ++r) {
      DropCaches(path);
      const double seconds = bench::TimeOnce(fn);
      if (r == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  row.v2_warm_s = BestOf([&] {
    const auto loaded = UsiIndex::LoadFromFile(ws, v2_path);
    USI_CHECK(loaded != nullptr);
  });
  row.v3_warm_s = BestOf([&] {
    const auto mapped = UsiIndex::OpenMapped(ws, v3_path);
    USI_CHECK(mapped != nullptr);
  });
  row.v2_cold_s = cold_best_of(v2_path, [&] {
    const auto loaded = UsiIndex::LoadFromFile(ws, v2_path);
    USI_CHECK(loaded != nullptr);
  });
  row.v3_cold_s = cold_best_of(v3_path, [&] {
    const auto mapped = UsiIndex::OpenMapped(ws, v3_path);
    USI_CHECK(mapped != nullptr);
  });
  row.v3_cold_burst_s = cold_best_of(v3_path, [&] {
    const auto mapped = UsiIndex::OpenMapped(ws, v3_path);
    USI_CHECK(mapped != nullptr);
    run_burst(*mapped);
  });
  row.speedup = row.v3_warm_s > 0 ? row.v2_warm_s / row.v3_warm_s : 0;

  const std::string section = std::string("loadpath.") + name;
  json->Add(section, "v2_file", row.v2_mb * 1e6, "bytes");
  json->Add(section, "v3_file", row.v3_mb * 1e6, "bytes");
  json->Add(section, "v2_load_warm", row.v2_warm_s * 1e6, "us");
  json->Add(section, "v2_load_cold", row.v2_cold_s * 1e6, "us");
  json->Add(section, "v3_open_warm", row.v3_warm_s * 1e6, "us");
  json->Add(section, "v3_open_cold", row.v3_cold_s * 1e6, "us");
  json->Add(section, "v3_open_cold_plus_1k_queries",
            row.v3_cold_burst_s * 1e6, "us");
  json->Add(section, "open_speedup_v3_vs_v2", row.speedup, "x");

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  return row;
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  (void)args.threads;
  usi::bench::PrintBanner("bench_loadpath",
                          "index persistence: v2 heap load vs v3 mmap open");
  usi::bench::BenchJson json;

  std::vector<usi::LoadpathRow> rows;
  // Ordered smallest to largest; the last row is the acceptance row.
  for (const char* name : {"XML", "ADV", "HUM"}) {
    rows.push_back(usi::RunDataset(name, &json));
  }

  usi::TablePrinter size_table("Persisted index size");
  size_table.SetHeader({"dataset", "v2 (MB)", "v3 (MB)"});
  for (const auto& row : rows) {
    size_table.AddRow({row.name, usi::TablePrinter::Num(row.v2_mb, 2),
                       usi::TablePrinter::Num(row.v3_mb, 2)});
  }
  size_table.Print();

  usi::TablePrinter open_table(
      "Startup latency (best of 5; cold = page cache dropped)");
  open_table.SetHeader({"dataset", "v2 warm (us)", "v2 cold (us)",
                        "v3 warm (us)", "v3 cold (us)",
                        "v3 cold+1k queries (us)", "speedup"});
  for (const auto& row : rows) {
    open_table.AddRow({row.name, usi::TablePrinter::Num(row.v2_warm_s * 1e6, 0),
                       usi::TablePrinter::Num(row.v2_cold_s * 1e6, 0),
                       usi::TablePrinter::Num(row.v3_warm_s * 1e6, 0),
                       usi::TablePrinter::Num(row.v3_cold_s * 1e6, 0),
                       usi::TablePrinter::Num(row.v3_cold_burst_s * 1e6, 0),
                       usi::TablePrinter::Num(row.speedup, 1) + "x"});
  }
  open_table.Print();

  const usi::LoadpathRow& largest = rows.back();
  std::printf("\nv3 open vs v2 load on %s: %.1fx "
              "(acceptance bar: 10.0x; speedup = v2 warm load / v3 warm open)\n",
              largest.name.c_str(), largest.speedup);
  json.Add("loadpath.summary", "largest_text_speedup", largest.speedup, "x");

  if (!args.json_path.empty() &&
      !json.WriteTo(args.json_path, "bench_loadpath")) {
    return 1;
  }
  return 0;
}
