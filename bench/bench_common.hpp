#ifndef USI_BENCH_BENCH_COMMON_HPP_
#define USI_BENCH_BENCH_COMMON_HPP_

/// \file bench_common.hpp
/// Shared plumbing for the figure/table benches.
///
/// Every bench regenerates one table or figure of the paper's evaluation
/// (Section IX) at laptop scale and prints the same rows/series the paper
/// plots. Sizes derive from the Table II registry divided by
/// USI_BENCH_SCALE (environment variable, default 1): raise it to make a
/// quick pass, lower it (0 is clamped to 1) for the full run.

#include <string>
#include <vector>

#include "usi/text/dataset.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/table_printer.hpp"
#include "usi/util/timer.hpp"

namespace usi::bench {

/// Command-line options shared by the benches.
struct BenchArgs {
  /// --threads N: pool width for the serving/throughput sections.
  /// 0 (default) = hardware concurrency.
  unsigned threads = 0;
  /// --json PATH: write machine-readable results (BenchJson) to PATH.
  /// Empty (default) = human-readable tables only.
  std::string json_path;
};

/// Parses the shared bench flags (--threads N / --threads=N, --json PATH /
/// --json=PATH) from argv; unknown arguments are ignored so per-bench flags
/// can coexist.
BenchArgs ParseBenchArgs(int argc, char** argv);

/// Accumulates measurements and writes them as one JSON document — the
/// machine-readable side of a bench, consumed by the CI perf-trajectory
/// artifact (BENCH_*.json). Schema:
///   {"bench": "...", "scale_divisor": N, "schema_version": 1,
///    "metrics": [{"section": "...", "name": "...", "value": X,
///                 "unit": "..."}, ...]}
class BenchJson {
 public:
  /// Records one measurement. \p section groups related metrics (usually a
  /// dataset or table name), \p unit is free-form ("qps", "us", "bytes").
  void Add(const std::string& section, const std::string& name, double value,
           const std::string& unit);

  /// Writes the document to \p path; returns false on I/O failure.
  bool WriteTo(const std::string& path, const std::string& bench_name) const;

  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::string section;
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Entry> entries_;
};

/// Reads USI_BENCH_SCALE (>= 1) from the environment.
index_t ScaleDivisor();

/// Dataset length after scaling.
index_t ScaledLength(const DatasetSpec& spec);

/// Prints the standard bench banner (dataset sizes, seeds, scale divisor).
void PrintBanner(const char* bench_name, const char* paper_ref);

/// Runs \p fn once and returns elapsed seconds.
template <typename Fn>
double TimeOnce(Fn fn) {
  Timer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Mining-method identifiers used across the Fig. 3-5 benches.
enum class Miner { kEt, kAt, kTt, kSh };

/// Display name of a miner ("ET", "AT", "TT", "SH").
const char* MinerName(Miner miner);

/// Result of running one miner: substrings + cost measurements.
struct MinerRun {
  TopKList list;
  double seconds = 0;
  std::size_t space_bytes = 0;  ///< Structure-reported working space.
  bool timed_out = false;       ///< SH work budget exhausted (paper: ">5 days").
};

/// Runs one of the four top-K miners with the defaults used throughout the
/// benches. \p s is only used by AT.
MinerRun RunMiner(Miner miner, const Text& text, u64 k, u32 s);

}  // namespace usi::bench

#endif  // USI_BENCH_BENCH_COMMON_HPP_
