// Fallback-path bench (learned last-mile PR): the table-miss query path —
// locate the pattern's SA interval, then aggregate its occurrences — timed
// three ways per dataset:
//
//   lookup — plain binary search (FindSaInterval) vs the learned model
//            (LearnedSa::FindInterval) vs the batched learned search
//            (FindIntervalBatch, AMAC-pipelined probes), in lookups/s.
//            Every interval is verified byte-identical across the three.
//            Runs on a serving-scale instance of each dataset (64x the
//            Table II registry length), sized so the suffix array exceeds
//            the LLC — the regime the batched path exists for: under
//            multi-text sharded serving the aggregate working set dwarfs
//            the cache, so fallback probes are memory round trips, which
//            the batched search overlaps 16-wide. Two rates per variant:
//            warm (best-of over repeats, caches as the run leaves them)
//            and evicted (the LLC is flushed before each repeat).
//   eps    — model error-bound sweep on the largest text: segments, payload
//            bytes, and batched lookup rate as ε widens.
//   agg    — occurrence aggregation at registry scale: the prefetched
//            VisitSaInterval walk against a naive no-prefetch loop, in
//            Mocc/s.
//
// Acceptance bar (ISSUE: learned last-mile fallback): batched learned
// lookups >= 3x plain binary search on the largest bench text, in the
// evicted (miss-path) regime. --json PATH writes machine-readable results
// (BENCH_fallback.json in CI).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/utility.hpp"
#include "usi/suffix/learned_sa.hpp"
#include "usi/suffix/sa_search.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

constexpr int kRepeats = 3;
constexpr std::size_t kLookups = 4096;

/// Lookup sections run on instances this many times the registry length —
/// at 1x every suffix array fits in a server LLC and there are no memory
/// stalls for the batched search to overlap. The smoke divisor
/// (USI_BENCH_SCALE) applies on top, so CI smoke stays tiny.
constexpr index_t kServingScale = 64;

template <typename Fn>
double BestOf(Fn fn) {
  double best = 0;
  for (int r = 0; r < kRepeats; ++r) {
    const double seconds = bench::TimeOnce(fn);
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// Pushes SA/text/model lines out of the cache hierarchy by streaming a
/// buffer comfortably larger than any LLC, so the next timed repeat starts
/// from memory — the aggregate-working-set serving regime.
void EvictLlc() {
  static std::vector<u64> junk(48u << 20);  // 384 MB.
  for (std::size_t i = 0; i < junk.size(); i += 8) junk[i] += 1;
}

/// Best-of-N where every repeat starts with the LLC evicted (the eviction
/// itself runs outside the timed region).
template <typename Fn>
double ColdBestOf(Fn fn) {
  double best = 0;
  for (int r = 0; r < kRepeats; ++r) {
    EvictLlc();
    const double seconds = bench::TimeOnce(fn);
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// Miss-path pattern workload: fragments long enough (up to 16 bytes) that
/// on byte-like texts the last mile must compare text past the packed key,
/// with a third mutated — mostly absent, landing between stored keys (or
/// outside the alphabet entirely) where the model's prediction is weakest.
std::vector<Text> MakePatterns(const Text& text, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  patterns.reserve(kLookups);
  while (patterns.size() < kLookups) {
    const index_t len = 4 + static_cast<index_t>(rng.UniformBelow(13));
    if (len > text.size()) continue;
    const index_t start =
        static_cast<index_t>(rng.UniformBelow(text.size() - len + 1));
    Text pattern(text.begin() + start, text.begin() + start + len);
    if (patterns.size() % 3 == 0) {
      pattern[rng.UniformBelow(len)] =
          static_cast<Symbol>(rng.UniformBelow(256));
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

/// Serving-scale text + SA, kept alive across sections so the ε sweep
/// reuses the largest dataset's (expensive) suffix array.
struct ServingSet {
  Text text;
  std::vector<index_t> sa;
};

ServingSet MakeServingSet(const DatasetSpec& spec) {
  const u64 n64 = static_cast<u64>(bench::ScaledLength(spec)) * kServingScale;
  const index_t n = static_cast<index_t>(n64);
  ServingSet set;
  set.text = MakeDataset(spec, n).text();
  set.sa = BuildSuffixArray(set.text);
  return set;
}

struct FallbackRow {
  std::string name;
  double plain_warm_per_s = 0;
  double learned_warm_per_s = 0;
  double batched_warm_per_s = 0;
  double plain_cold_per_s = 0;
  double learned_cold_per_s = 0;
  double batched_cold_per_s = 0;
  double agg_naive_mocc_s = 0;
  double agg_prefetch_mocc_s = 0;
  u64 model_segments = 0;
  double model_mb = 0;
  /// Batched learned lookups / plain binary-search lookups, both in the
  /// evicted regime — the acceptance figure.
  double speedup = 0;
};

/// One dataset: serving-scale lookup section, registry-scale aggregation
/// section. When \p keep is non-null the serving text/SA move into it on
/// return (for section reuse) instead of being freed.
FallbackRow RunDataset(const char* name, bench::BenchJson* json,
                       ServingSet* keep) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  ServingSet set = MakeServingSet(spec);
  const Text& text = set.text;
  const std::vector<index_t>& sa = set.sa;

  LearnedSa model;
  model.Build(text, sa);

  FallbackRow row;
  row.name = name;
  row.model_segments = model.num_segments();
  row.model_mb = static_cast<double>(model.SizeInBytes()) / 1e6;

  const std::vector<Text> patterns = MakePatterns(text, 0x5EED);
  std::vector<PatternSpan> spans;
  spans.reserve(patterns.size());
  for (const Text& p : patterns) spans.emplace_back(p.data(), p.size());
  std::vector<SaInterval> batched(patterns.size());

  // Parity first: the three paths must agree byte-for-byte on every
  // interval before any of them is worth timing.
  model.FindIntervalBatch(text, sa, spans, batched);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const SaInterval plain = FindSaInterval(text, sa, spans[i]);
    const SaInterval learned = model.FindInterval(text, sa, spans[i]);
    USI_CHECK(plain.lb == learned.lb && plain.rb == learned.rb);
    USI_CHECK(plain.lb == batched[i].lb && plain.rb == batched[i].rb);
  }

  u64 sink = 0;
  const auto run_plain = [&] {
    for (const PatternSpan& p : spans) {
      const SaInterval iv = FindSaInterval(text, sa, p);
      sink += iv.lb + iv.rb;
    }
  };
  const auto run_learned = [&] {
    for (const PatternSpan& p : spans) {
      const SaInterval iv = model.FindInterval(text, sa, p);
      sink += iv.lb + iv.rb;
    }
  };
  const auto run_batched = [&] {
    model.FindIntervalBatch(text, sa, spans, batched);
    sink += batched.back().lb;
  };
  const double q = static_cast<double>(patterns.size());
  const double plain_warm_s = BestOf(run_plain);
  const double learned_warm_s = BestOf(run_learned);
  const double batched_warm_s = BestOf(run_batched);
  const double plain_cold_s = ColdBestOf(run_plain);
  const double learned_cold_s = ColdBestOf(run_learned);
  const double batched_cold_s = ColdBestOf(run_batched);
  row.plain_warm_per_s = plain_warm_s > 0 ? q / plain_warm_s : 0;
  row.learned_warm_per_s = learned_warm_s > 0 ? q / learned_warm_s : 0;
  row.batched_warm_per_s = batched_warm_s > 0 ? q / batched_warm_s : 0;
  row.plain_cold_per_s = plain_cold_s > 0 ? q / plain_cold_s : 0;
  row.learned_cold_per_s = learned_cold_s > 0 ? q / learned_cold_s : 0;
  row.batched_cold_per_s = batched_cold_s > 0 ? q / batched_cold_s : 0;
  row.speedup = row.plain_cold_per_s > 0
                    ? row.batched_cold_per_s / row.plain_cold_per_s
                    : 0;

  // Occurrence aggregation (registry scale): locate every distinct 4-byte
  // fragment at a coarse stride and aggregate each interval both ways.
  // Interval walks are SA-ordered random access into SA and PSW — exactly
  // what the prefetched visit hides.
  const WeightedString ws = MakeDataset(spec, bench::ScaledLength(spec));
  const Text& reg_text = ws.text();
  const std::vector<index_t> reg_sa = BuildSuffixArray(reg_text);
  const PrefixSumWeights psw(ws);
  std::vector<SaInterval> agg_intervals;
  u64 total_occ = 0;
  for (index_t i = 0; i + 4 <= ws.size() && agg_intervals.size() < 512;
       i += 1543) {
    const Text frag = ws.Fragment(i, 4);
    const SaInterval iv = FindSaInterval(reg_text, reg_sa, frag);
    if (!iv.IsEmpty()) {
      agg_intervals.push_back(iv);
      total_occ += iv.Count();
    }
  }
  const ExhaustiveQueryEngine engine(reg_text, reg_sa, psw,
                                     GlobalUtilityKind::kSum);
  double agg_sink = 0;
  const double naive_s = BestOf([&] {
    for (const SaInterval iv : agg_intervals) {
      UtilityAccumulator acc;
      for (index_t k = iv.lb; k <= iv.rb; ++k) {
        acc.Add(psw.LocalUtility(reg_sa[k], 4), GlobalUtilityKind::kSum);
      }
      agg_sink += acc.Finalize(GlobalUtilityKind::kSum);
    }
  });
  const double prefetch_s = BestOf([&] {
    for (const SaInterval iv : agg_intervals) {
      agg_sink += engine.Aggregate(iv, 4).utility;
    }
  });
  row.agg_naive_mocc_s = naive_s > 0 ? total_occ / naive_s / 1e6 : 0;
  row.agg_prefetch_mocc_s = prefetch_s > 0 ? total_occ / prefetch_s / 1e6 : 0;
  if (sink == 42 && agg_sink == 42.5) std::printf("(unreachable)\n");

  const std::string section = std::string("fallback.") + name;
  json->Add(section, "plain_lookups_warm", row.plain_warm_per_s, "per_s");
  json->Add(section, "learned_lookups_warm", row.learned_warm_per_s, "per_s");
  json->Add(section, "batched_lookups_warm", row.batched_warm_per_s, "per_s");
  json->Add(section, "plain_lookups_evicted", row.plain_cold_per_s, "per_s");
  json->Add(section, "learned_lookups_evicted", row.learned_cold_per_s,
            "per_s");
  json->Add(section, "batched_lookups_evicted", row.batched_cold_per_s,
            "per_s");
  json->Add(section, "speedup_batched_vs_plain_evicted", row.speedup, "x");
  json->Add(section, "model_payload", row.model_mb * 1e6, "bytes");
  json->Add(section, "model_segments",
            static_cast<double>(row.model_segments), "count");
  json->Add(section, "agg_naive", row.agg_naive_mocc_s, "Mocc_per_s");
  json->Add(section, "agg_prefetch", row.agg_prefetch_mocc_s, "Mocc_per_s");
  if (keep != nullptr) *keep = std::move(set);
  return row;
}

void RunEpsilonSweep(const char* name, const ServingSet& set,
                     bench::BenchJson* json) {
  const Text& text = set.text;
  const std::vector<index_t>& sa = set.sa;
  const std::vector<Text> patterns = MakePatterns(text, 0xE9);
  std::vector<PatternSpan> spans;
  for (const Text& p : patterns) spans.emplace_back(p.data(), p.size());
  std::vector<SaInterval> out(patterns.size());

  TablePrinter table(std::string("Error-bound sweep on ") + name +
                     " (batched learned lookups, LLC evicted)");
  table.SetHeader({"epsilon", "segments", "payload (KB)", "lookups/s"});
  for (const u32 eps : {8u, 16u, 32u, 64u, 128u, 256u}) {
    LearnedSa model;
    model.Build(text, sa, {eps});
    const double seconds = ColdBestOf([&] {
      model.FindIntervalBatch(text, sa, spans, out);
    });
    const double per_s = seconds > 0 ? patterns.size() / seconds : 0;
    table.AddRow({TablePrinter::Num(eps, 0),
                  TablePrinter::Num(static_cast<double>(model.num_segments()), 0),
                  TablePrinter::Num(model.SizeInBytes() / 1e3, 1),
                  TablePrinter::Num(per_s, 0)});
    const std::string section = "fallback.eps_sweep";
    const std::string prefix = "eps" + std::to_string(eps);
    json->Add(section, prefix + "_segments",
              static_cast<double>(model.num_segments()), "count");
    json->Add(section, prefix + "_payload",
              static_cast<double>(model.SizeInBytes()), "bytes");
    json->Add(section, prefix + "_batched_lookups", per_s, "per_s");
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  (void)args.threads;
  usi::bench::PrintBanner("bench_fallback",
                          "table-miss path: plain vs learned last-mile SA "
                          "search");
  usi::bench::BenchJson json;

  std::vector<usi::FallbackRow> rows;
  usi::ServingSet hum;  // Kept for the ε sweep.
  // Ordered smallest to largest; the last row is the acceptance row.
  for (const char* name : {"XML", "ADV", "HUM"}) {
    const bool is_hum = std::string(name) == "HUM";
    rows.push_back(usi::RunDataset(name, &json, is_hum ? &hum : nullptr));
  }

  usi::TablePrinter warm_table(
      "Miss-path interval lookups, warm LLC (best of 3, byte-identical "
      "answers)");
  warm_table.SetHeader(
      {"dataset", "plain/s", "learned/s", "batched/s", "model (MB)",
       "segments"});
  for (const auto& row : rows) {
    warm_table.AddRow(
        {row.name, usi::TablePrinter::Num(row.plain_warm_per_s, 0),
         usi::TablePrinter::Num(row.learned_warm_per_s, 0),
         usi::TablePrinter::Num(row.batched_warm_per_s, 0),
         usi::TablePrinter::Num(row.model_mb, 2),
         usi::TablePrinter::Num(static_cast<double>(row.model_segments), 0)});
  }
  warm_table.Print();

  usi::TablePrinter cold_table(
      "Miss-path interval lookups, LLC evicted before each repeat (the "
      "sharded-serving regime)");
  cold_table.SetHeader(
      {"dataset", "plain/s", "learned/s", "batched/s", "speedup"});
  for (const auto& row : rows) {
    cold_table.AddRow(
        {row.name, usi::TablePrinter::Num(row.plain_cold_per_s, 0),
         usi::TablePrinter::Num(row.learned_cold_per_s, 0),
         usi::TablePrinter::Num(row.batched_cold_per_s, 0),
         usi::TablePrinter::Num(row.speedup, 1) + "x"});
  }
  cold_table.Print();

  usi::TablePrinter agg_table(
      "Occurrence aggregation (SA-ordered PSW walks)");
  agg_table.SetHeader({"dataset", "naive (Mocc/s)", "prefetched (Mocc/s)"});
  for (const auto& row : rows) {
    agg_table.AddRow({row.name,
                      usi::TablePrinter::Num(row.agg_naive_mocc_s, 1),
                      usi::TablePrinter::Num(row.agg_prefetch_mocc_s, 1)});
  }
  agg_table.Print();

  usi::RunEpsilonSweep("HUM", hum, &json);

  const usi::FallbackRow& largest = rows.back();
  std::printf("\nbatched learned vs plain binary search on %s: %.1fx "
              "(acceptance bar: 3.0x; speedup = batched lookups/s / plain "
              "lookups/s, LLC evicted)\n",
              largest.name.c_str(), largest.speedup);
  json.Add("fallback.summary", "largest_text_speedup", largest.speedup, "x");

  if (!args.json_path.empty() &&
      !json.WriteTo(args.json_path, "bench_fallback")) {
    return 1;
  }
  return 0;
}
