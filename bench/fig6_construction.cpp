// Regenerates Fig. 6q-t: construction time of UET, UAT and BSL1-4 versus K
// and versus n (XML- and HUM-like). Shape: baselines build faster (no top-K
// mining or table population), UET builds faster than UAT, and everything
// scales (near-)linearly in n. A final section reports the staged parallel
// build pipeline (UsiBuilder): per-stage seconds and peak-RSS deltas at 1, 2
// and hardware-concurrency threads — all three timed stages (SA-IS, mining,
// phase (ii) table population) run on the pool.
//
// --json PATH writes every measurement as BenchJson (the CI perf-trajectory
// artifact consumes it as BENCH_construction.json).

#include <algorithm>

#include "bench_common.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/util/memory.hpp"

namespace usi {
namespace {

std::vector<std::string> ConstructionRow(const WeightedString& ws, u64 k,
                                         u32 s, std::string label,
                                         bench::BenchJson* json,
                                         const std::string& section) {
  std::vector<std::string> row = {label};
  {
    const double seconds = bench::TimeOnce([&] {
      UsiOptions options;
      options.k = k;
      UsiIndex uet(ws, options);
    });
    row.push_back(TablePrinter::Num(seconds, 3));
    json->Add(section, label + ".uet_s", seconds, "s");
  }
  {
    const double seconds = bench::TimeOnce([&] {
      UsiOptions options;
      options.k = k;
      options.miner = UsiMiner::kApproximate;
      options.approx.rounds = s;
      UsiIndex uat(ws, options);
    });
    row.push_back(TablePrinter::Num(seconds, 3));
    json->Add(section, label + ".uat_s", seconds, "s");
  }
  {
    // The baselines share one SA + PSW build; their caches are O(1) to init.
    const double seconds = bench::TimeOnce([&] {
      const std::vector<index_t> sa = BuildSuffixArray(ws.text());
      const PrefixSumWeights psw(ws);
      BaselineContext context;
      context.ws = &ws;
      context.sa = &sa;
      context.psw = &psw;
      context.cache_capacity = k;
      for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                        BaselineKind::kBsl3, BaselineKind::kBsl4}) {
        auto baseline = MakeBaseline(kind, context);
        (void)baseline;
      }
    });
    row.push_back(TablePrinter::Num(seconds, 3));
    json->Add(section, label + ".bsl_s", seconds, "s");
  }
  return row;
}

void ConstructionVsK(const char* name, bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  TablePrinter table(std::string("Fig. 6q-r — construction time (s) vs K on ") +
                     name + " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"K", "UET", "UAT", "BSL1-4 (shared)"});
  for (std::size_t ki = 0; ki + 1 < spec.k_sweep.size(); ++ki) {
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.k_sweep[ki]) * n / spec.default_n);
    table.AddRow(ConstructionRow(
        ws, k, spec.default_s, std::string("K=") + TablePrinter::Int(static_cast<long long>(k)),
        json, std::string("vs_k.") + name));
  }
  table.Print();
}

void ConstructionVsN(const char* name, bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t full_n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString full = MakeDataset(spec, full_n);
  TablePrinter table(std::string("Fig. 6s-t — construction time (s) vs n on ") +
                     name + " (default K ratio)");
  table.SetHeader({"n", "UET", "UAT", "BSL1-4 (shared)"});
  for (int step = 1; step <= 4; ++step) {
    const index_t n = full_n / 4 * step;
    const WeightedString ws = full.Prefix(n);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    table.AddRow(ConstructionRow(ws, k, spec.default_s,
                                 std::string("n=") + TablePrinter::Int(n), json,
                                 std::string("vs_n.") + name));
  }
  table.Print();
}

void ParallelBuildStages(const char* name, const bench::BenchArgs& args,
                         bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k = std::max<u64>(
      10, static_cast<u64>(spec.default_k) * n / spec.default_n);

  std::vector<unsigned> counts = {1, 2, ThreadPool::HardwareConcurrency()};
  if (args.threads != 0) counts.push_back(args.threads);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  TablePrinter table(std::string("UsiBuilder staged build on ") + name +
                     " (UET, n=" + TablePrinter::Int(n) + ", K=" +
                     TablePrinter::Int(static_cast<long long>(k)) + ")");
  table.SetHeader({"threads", "sa (s)", "mine (s)", "table (s)", "total (s)",
                   "peak RSS"});
  for (unsigned threads : counts) {
    UsiOptions options;
    options.k = k;
    options.threads = threads;
    const UsiIndex index(ws, options);
    const UsiBuildInfo& info = index.build_info();
    table.AddRow({TablePrinter::Int(threads),
                  TablePrinter::Num(info.sa_seconds, 3),
                  TablePrinter::Num(info.mining_seconds, 3),
                  TablePrinter::Num(info.table_seconds, 3),
                  TablePrinter::Num(info.total_seconds, 3),
                  FormatBytes(info.peak_rss_bytes)});
    const std::string section = std::string("staged.") + name;
    const std::string prefix = std::string("t") + TablePrinter::Int(threads) + ".";
    json->Add(section, prefix + "sa_s", info.sa_seconds, "s");
    json->Add(section, prefix + "mine_s", info.mining_seconds, "s");
    json->Add(section, prefix + "table_s", info.table_seconds, "s");
    json->Add(section, prefix + "total_s", info.total_seconds, "s");
    json->Add(section, prefix + "peak_rss",
              static_cast<double>(info.peak_rss_bytes), "bytes");
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("fig6_construction", "Fig. 6q-t");
  usi::bench::BenchJson json;
  usi::ConstructionVsK("XML", &json);
  usi::ConstructionVsK("HUM", &json);
  usi::ConstructionVsN("XML", &json);
  usi::ConstructionVsN("HUM", &json);
  usi::ParallelBuildStages("XML", args, &json);
  if (!args.json_path.empty() &&
      !json.WriteTo(args.json_path, "fig6_construction")) {
    return 1;
  }
  return 0;
}
