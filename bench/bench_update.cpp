// Update tier: what an append costs and what it buys. Four sections over
// one HUM-like text: (a) AppendText latency percentiles with background
// compactions cycling underneath, (b) append-visibility latency vs the
// full-rebuild path (UpdateText + wait) — the tier's reason to exist; the
// ratio is the headline number, (c) the compaction publish pause (entry
// lock hold while the generation swaps and the successor overlay
// warm-starts) vs the build it hides, and (d) serving qps while an
// appender churns vs while full rebuilds churn vs quiescent. --json PATH
// emits BENCH_update.json for the CI perf-trajectory artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/rng.hpp"

namespace usi {
namespace {

constexpr const char* kId = "HUM";

WeightedString MakeBaseText() {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == kId) {
      return MakeDataset(spec,
                         std::min<index_t>(bench::ScaledLength(spec), 60'000));
    }
  }
  USI_CHECK(false);
  return WeightedString({}, {});
}

/// Scaled append volume: enough to force several compactions at the
/// threshold the sections use, small enough for the smoke run.
index_t AppendVolume(const WeightedString& base) {
  return std::max<index_t>(512, base.size() / 4);
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[i];
}

std::vector<Text> MakePatterns(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> patterns;
  for (int i = 0; i < 150; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(12, ws.size() - start);
    patterns.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(2, max_len))));
  }
  return patterns;
}

double QueriesPerSecond(UsiMultiService& service,
                        const std::vector<MultiQuery>& queries) {
  std::vector<QueryResult> results(queries.size());
  USI_CHECK(service.QueryBatchInto(queries, results) == ServeStatus::kOk);
  std::size_t served = 0;
  Timer timer;
  do {
    USI_CHECK(service.QueryBatchInto(queries, results) == ServeStatus::kOk);
    served += queries.size();
  } while (timer.ElapsedSeconds() < 0.25 && served < 4'000'000);
  return static_cast<double>(served) / timer.ElapsedSeconds();
}

void RunAppendLatency(const WeightedString& base, bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  options.delta_compact_threshold = 1024;
  UsiMultiService service(options);
  service.SubmitText(kId, base);
  service.WaitForBuilds();

  const index_t volume = AppendVolume(base);
  Rng rng(0x0ADD);
  Text span(1, Symbol{0});
  const std::vector<double> weight = {1.0};
  std::vector<double> latency_us;
  latency_us.reserve(volume);
  for (index_t i = 0; i < volume; ++i) {
    span[0] = base.letter(static_cast<index_t>(rng.UniformBelow(base.size())));
    const auto t0 = std::chrono::steady_clock::now();
    USI_CHECK(service.AppendText(kId, span, weight) == ServeStatus::kOk);
    const auto t1 = std::chrono::steady_clock::now();
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  service.WaitForBuilds();
  const auto stats = service.StatsFor(kId);
  USI_CHECK(stats.has_value());

  const double p50 = Percentile(latency_us, 0.50);
  const double p99 = Percentile(latency_us, 0.99);
  const double worst = latency_us.back();  // Sorted by Percentile.
  TablePrinter table("AppendText latency — " + std::to_string(volume) +
                     " single-symbol appends over n=" +
                     TablePrinter::Int(base.size()) +
                     " (compaction threshold 1024, background lanes)");
  table.SetHeader({"metric", "value"});
  table.AddRow({"p50", TablePrinter::Int(static_cast<long long>(p50)) + " us"});
  table.AddRow({"p99", TablePrinter::Int(static_cast<long long>(p99)) + " us"});
  table.AddRow({"max", TablePrinter::Int(static_cast<long long>(worst)) +
                           " us"});
  table.AddRow({"compactions", TablePrinter::Int(static_cast<long long>(
                                   stats->compactions))});
  table.Print();
  json.Add("append_latency", "p50_us", p50, "us");
  json.Add("append_latency", "p99_us", p99, "us");
  json.Add("append_latency", "compactions",
           static_cast<double>(stats->compactions), "count");
}

void RunVisibilityVsRebuild(const WeightedString& base,
                            bench::BenchJson& json) {
  // The tier's headline: an appended symbol is queryable the moment
  // AppendText returns; the pre-tier path re-indexed the whole text. Both
  // measured as end-to-end visibility latency (mutate -> query sees it).
  constexpr int kSamples = 16;
  Rng rng(0xF457);
  Text span(1, Symbol{0});
  const std::vector<double> weight = {1.0};

  double append_total_us = 0;
  {
    UsiMultiServiceOptions options;
    options.delta_compact_threshold = 0;  // Pure overlay path.
    UsiMultiService service(options);
    service.SubmitText(kId, base);
    service.WaitForBuilds();
    for (int i = 0; i < kSamples; ++i) {
      span[0] =
          base.letter(static_cast<index_t>(rng.UniformBelow(base.size())));
      Timer timer;
      USI_CHECK(service.AppendText(kId, span, weight) == ServeStatus::kOk);
      append_total_us += timer.ElapsedMicros();  // Visible at return.
    }
  }

  double rebuild_total_us = 0;
  {
    UsiMultiService service((UsiMultiServiceOptions()));
    service.SubmitText(kId, base);
    service.WaitForBuilds();
    Text grown = base.text();
    std::vector<double> weights = base.weights();
    for (int i = 0; i < kSamples; ++i) {
      grown.push_back(
          base.letter(static_cast<index_t>(rng.UniformBelow(base.size()))));
      weights.push_back(1.0);
      Timer timer;
      service.UpdateText(kId, WeightedString(grown, weights));
      USI_CHECK(service.WaitForText(kId) == BuildState::kReady);
      rebuild_total_us += timer.ElapsedMicros();  // Visible at publish.
    }
  }

  const double append_us = append_total_us / kSamples;
  const double rebuild_us = rebuild_total_us / kSamples;
  const double speedup = rebuild_us / append_us;
  TablePrinter table("Append visibility — update tier vs full-rebuild path (" +
                     std::to_string(kSamples) + " samples, n=" +
                     TablePrinter::Int(base.size()) + ")");
  table.SetHeader({"path", "us to visible", "speedup"});
  table.AddRow({"AppendText (delta overlay)",
                TablePrinter::Int(static_cast<long long>(append_us)), "1x"});
  table.AddRow({"UpdateText + publish (rebuild)",
                TablePrinter::Int(static_cast<long long>(rebuild_us)),
                TablePrinter::Int(static_cast<long long>(speedup)) + "x"});
  table.Print();
  json.Add("visibility", "append_us", append_us, "us");
  json.Add("visibility", "rebuild_us", rebuild_us, "us");
  json.Add("visibility", "speedup", speedup, "x");
}

void RunCompactionPause(const WeightedString& base, bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  options.delta_compact_threshold = 512;
  UsiMultiService service(options);
  service.SubmitText(kId, base);
  service.WaitForBuilds();

  Rng rng(0xC0AC);
  Text span(1, Symbol{0});
  const std::vector<double> weight = {1.0};
  double max_pause_us = 0;
  double last_pause_us = 0;
  constexpr int kCycles = 6;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (index_t i = 0; i < 512; ++i) {
      span[0] =
          base.letter(static_cast<index_t>(rng.UniformBelow(base.size())));
      USI_CHECK(service.AppendText(kId, span, weight) == ServeStatus::kOk);
    }
    service.WaitForBuilds();
    const auto stats = service.StatsFor(kId);
    USI_CHECK(stats.has_value());
    last_pause_us = static_cast<double>(stats->compact_publish_ns) / 1e3;
    max_pause_us = std::max(max_pause_us, last_pause_us);
  }
  const auto stats = service.StatsFor(kId);
  TablePrinter table("Compaction publish pause — entry-lock hold at swap (" +
                     std::to_string(kCycles) +
                     " cycles, threshold 512, n grows from " +
                     TablePrinter::Int(base.size()) + ")");
  table.SetHeader({"metric", "value"});
  table.AddRow({"max pause", TablePrinter::Int(static_cast<long long>(
                                 max_pause_us)) +
                                 " us"});
  table.AddRow({"last pause", TablePrinter::Int(static_cast<long long>(
                                  last_pause_us)) +
                                  " us"});
  table.AddRow({"compactions", TablePrinter::Int(static_cast<long long>(
                                   stats->compactions))});
  table.Print();
  json.Add("compaction", "max_pause_us", max_pause_us, "us");
  json.Add("compaction", "compactions",
           static_cast<double>(stats->compactions), "count");
}

void RunServingUnderChurn(const WeightedString& base, bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  options.delta_compact_threshold = 1024;
  UsiMultiService service(options);
  service.SubmitText(kId, base);
  service.WaitForBuilds();

  const std::vector<Text> patterns = MakePatterns(base, 0x9E55);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({kId, p});

  const double quiescent_qps = QueriesPerSecond(service, queries);

  // Append churn: one writer streams symbols through the update tier
  // (compactions included) while the measured thread serves.
  std::atomic<bool> stop{false};
  std::atomic<u64> churn_ops{0};
  std::thread appender([&] {
    Rng rng(0xA11D);
    Text span(1, Symbol{0});
    const std::vector<double> weight = {1.0};
    while (!stop.load(std::memory_order_relaxed)) {
      span[0] =
          base.letter(static_cast<index_t>(rng.UniformBelow(base.size())));
      if (service.AppendText(kId, span, weight) == ServeStatus::kOk) {
        churn_ops.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const double append_churn_qps = QueriesPerSecond(service, queries);
  stop.store(true);
  appender.join();
  const u64 appends_in_window = churn_ops.load();
  service.WaitForBuilds();

  // Rebuild churn: the pre-tier alternative, same serving workload.
  stop.store(false);
  std::thread rebuilder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.UpdateText(kId, base);
      service.WaitForText(kId);
    }
  });
  const double rebuild_churn_qps = QueriesPerSecond(service, queries);
  stop.store(true);
  rebuilder.join();
  service.WaitForBuilds();

  TablePrinter table("Serving qps under churn — append stream vs rebuild "
                     "stream (hw threads)");
  table.SetHeader({"mode", "qps", "mutations in window"});
  table.AddRow({"quiescent",
                TablePrinter::Int(static_cast<long long>(quiescent_qps)),
                "0"});
  table.AddRow({"append churn",
                TablePrinter::Int(static_cast<long long>(append_churn_qps)),
                TablePrinter::Int(static_cast<long long>(appends_in_window))});
  table.AddRow({"rebuild churn",
                TablePrinter::Int(static_cast<long long>(rebuild_churn_qps)),
                "(continuous)"});
  table.Print();
  json.Add("churn", "qps_quiescent", quiescent_qps, "qps");
  json.Add("churn", "qps_append_churn", append_churn_qps, "qps");
  json.Add("churn", "qps_rebuild_churn", rebuild_churn_qps, "qps");
  json.Add("churn", "appends_in_window",
           static_cast<double>(appends_in_window), "count");
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("bench_update",
                          "incremental update tier (AppendText + compaction)");
  std::printf("hardware concurrency: %u\n\n",
              usi::ThreadPool::HardwareConcurrency());

  const usi::WeightedString base = usi::MakeBaseText();
  usi::bench::BenchJson json;

  usi::RunAppendLatency(base, json);
  usi::RunVisibilityVsRebuild(base, json);
  usi::RunCompactionPause(base, json);
  usi::RunServingUnderChurn(base, json);

  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path, "bench_update")) return 1;
    std::printf("\nwrote machine-readable results to %s\n",
                args.json_path.c_str());
  }
  std::printf(
      "\nShape check: append p99 should sit orders of magnitude under a "
      "rebuild, the visibility speedup should clear 100x at full scale, the "
      "compaction pause should stay microseconds (the build runs off-lock; "
      "only the swap + warm-start holds the entry), and append-churn qps "
      "should beat rebuild-churn qps.\n");
  return 0;
}
