// Regenerates Fig. 6k-p: index size of UET, UAT and BSL1-4 versus K (XML,
// HUM, ADV) and versus n. The paper's shape: all six indexes nearly
// coincide — the suffix array + PSW dominate; BSL1 is slightly smaller (no
// hash table) and BSL4 slightly smaller than BSL3 (sketch vs exact counts).

#include <memory>

#include "bench_common.hpp"
#include "usi/core/baselines.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/util/memory.hpp"

namespace usi {
namespace {

std::vector<std::string> SizesRow(const WeightedString& ws,
                                  const std::vector<index_t>& sa,
                                  const PrefixSumWeights& psw, u64 k, u32 s,
                                  std::string label) {
  UsiOptions uet_options;
  uet_options.k = k;
  const UsiIndex uet(ws, uet_options);
  UsiOptions uat_options = uet_options;
  uat_options.miner = UsiMiner::kApproximate;
  uat_options.approx.rounds = s;
  const UsiIndex uat(ws, uat_options);
  BaselineContext context;
  context.ws = &ws;
  context.sa = &sa;
  context.psw = &psw;
  context.cache_capacity = k;

  std::vector<std::string> row = {std::move(label),
                                  FormatBytes(uet.SizeInBytes()),
                                  FormatBytes(uat.SizeInBytes())};
  for (auto kind : {BaselineKind::kBsl1, BaselineKind::kBsl2,
                    BaselineKind::kBsl3, BaselineKind::kBsl4}) {
    auto baseline = MakeBaseline(kind, context);
    // Caching baselines grow as queries arrive; warm them with K dummy keys
    // worth of growth upper bound is their capacity, which SizeInBytes
    // already reserves. Report as-built size, as mallinfo2 would.
    row.push_back(FormatBytes(baseline->SizeInBytes()));
  }
  return row;
}

void SizeVsK(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString ws = MakeDataset(spec, n);
  const std::vector<index_t> sa = BuildSuffixArray(ws.text());
  const PrefixSumWeights psw(ws);

  TablePrinter table(std::string("Fig. 6k-m — index size vs K on ") + name +
                     " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (std::size_t ki = 0; ki + 1 < spec.k_sweep.size(); ++ki) {
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.k_sweep[ki]) * n / spec.default_n);
    table.AddRow(SizesRow(ws, sa, psw, k, spec.default_s,
                          TablePrinter::Int(static_cast<long long>(k))));
  }
  table.Print();
}

void SizeVsN(const char* name) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t full_n = std::min<index_t>(bench::ScaledLength(spec), 150'000);
  const WeightedString full = MakeDataset(spec, full_n);

  TablePrinter table(std::string("Fig. 6n-p — index size vs n on ") + name +
                     " (default K ratio)");
  table.SetHeader({"n", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"});
  for (int step = 1; step <= 4; ++step) {
    const index_t n = full_n / 4 * step;
    const WeightedString ws = full.Prefix(n);
    const std::vector<index_t> sa = BuildSuffixArray(ws.text());
    const PrefixSumWeights psw(ws);
    const u64 k = std::max<u64>(
        10, static_cast<u64>(spec.default_k) * n / spec.default_n);
    table.AddRow(
        SizesRow(ws, sa, psw, k, spec.default_s, TablePrinter::Int(n)));
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("fig6_index_size", "Fig. 6k-p");
  usi::SizeVsK("XML");
  usi::SizeVsK("HUM");
  usi::SizeVsK("ADV");
  usi::SizeVsN("XML");
  usi::SizeVsN("HUM");
  usi::SizeVsN("ADV");
  return 0;
}
