// Construction hot-path bench (PR: cache-conscious SA-IS, pool-parallel
// mining, memory-lean staged builds). Three sections, all best-of-3:
//
//   rss   — staged UsiBuilder peak-RSS table: per-stage VmHWM deltas and the
//           final peak (runs first: VmHWM is process-monotone, so only the
//           first big allocations attribute cleanly).
//   sa    — suffix-array construction rates: the seed's textbook SA-IS
//           (BuildSuffixArrayReference) vs the rewritten BuildSuffixArray,
//           single-thread and with the level-0 passes on a pool. The
//           acceptance bar is sais_speedup_vs_reference >= 1.5 single-thread.
//   mine  — exact-miner statistics build (chunked Kasai LCP + chunked
//           LCP-interval traversal + radix sort), sequential vs pool at
//           2/4/hw threads.
//
// --json PATH writes machine-readable results (BENCH_build.json in CI).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/memory.hpp"

namespace usi {
namespace {

constexpr int kRepeats = 3;

/// Best-of-N wall time (construction benches report the least-disturbed run).
template <typename Fn>
double BestOf(Fn fn) {
  double best = 0;
  for (int r = 0; r < kRepeats; ++r) {
    const double seconds = bench::TimeOnce(fn);
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

double MbPerSec(index_t n, double seconds) {
  return seconds > 0 ? static_cast<double>(n) / seconds / 1e6 : 0;
}

void StagedRssSection(const char* name, bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = std::min<index_t>(bench::ScaledLength(spec), 400'000);
  const WeightedString ws = MakeDataset(spec, n);
  const u64 k = std::max<u64>(
      10, static_cast<u64>(spec.default_k) * n / spec.default_n);

  UsiOptions options;
  options.k = k;
  options.threads = 1;
  const UsiIndex index(ws, options);
  const UsiBuildInfo& info = index.build_info();

  TablePrinter table(std::string("Memory-lean staged build on ") + name +
                     " (UET, n=" + TablePrinter::Int(n) + ", K=" +
                     TablePrinter::Int(static_cast<long long>(k)) + ")");
  table.SetHeader({"stage", "seconds", "peak-RSS delta"});
  table.AddRow({"sa", TablePrinter::Num(info.sa_seconds, 3),
                FormatBytes(info.sa_rss_delta_bytes)});
  table.AddRow({"mine", TablePrinter::Num(info.mining_seconds, 3),
                FormatBytes(info.mining_rss_delta_bytes)});
  table.AddRow({"table", TablePrinter::Num(info.table_seconds, 3),
                FormatBytes(info.table_rss_delta_bytes)});
  table.AddRow({"learn", TablePrinter::Num(info.learn_seconds, 3),
                FormatBytes(info.learn_rss_delta_bytes)});
  table.AddRow({"total", TablePrinter::Num(info.total_seconds, 3),
                FormatBytes(info.peak_rss_bytes)});
  table.Print();

  const std::string section = std::string("rss.") + name;
  json->Add(section, "sa_rss_delta",
            static_cast<double>(info.sa_rss_delta_bytes), "bytes");
  json->Add(section, "mine_rss_delta",
            static_cast<double>(info.mining_rss_delta_bytes), "bytes");
  json->Add(section, "table_rss_delta",
            static_cast<double>(info.table_rss_delta_bytes), "bytes");
  json->Add(section, "learn_rss_delta",
            static_cast<double>(info.learn_rss_delta_bytes), "bytes");
  json->Add(section, "peak_rss", static_cast<double>(info.peak_rss_bytes),
            "bytes");
}

/// Returns the single-thread speedup so main can aggregate the geomean —
/// the headline acceptance metric (per-dataset numbers stay in the JSON).
double SaRatesSection(const char* name, unsigned pool_threads,
                      bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = bench::ScaledLength(spec);
  const Text text = MakeDataset(spec, n).text();

  const double reference_s = BestOf([&] {
    const std::vector<index_t> sa = BuildSuffixArrayReference(text);
  });
  const double sais_s = BestOf([&] {
    const std::vector<index_t> sa = BuildSuffixArray(text);
  });
  ThreadPool pool(pool_threads);
  const double sais_pool_s = BestOf([&] {
    const std::vector<index_t> sa = BuildSuffixArray(text, &pool);
  });

  const double speedup = sais_s > 0 ? reference_s / sais_s : 0;
  TablePrinter table(std::string("SA construction (best of 3) on ") + name +
                     " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"variant", "seconds", "MB/s"});
  table.AddRow({"seed SA-IS (reference)", TablePrinter::Num(reference_s, 4),
                TablePrinter::Num(MbPerSec(n, reference_s), 1)});
  table.AddRow({"SA-IS (rewrite, 1t)", TablePrinter::Num(sais_s, 4),
                TablePrinter::Num(MbPerSec(n, sais_s), 1)});
  table.AddRow({"SA-IS (rewrite, pool " + TablePrinter::Int(pool_threads) +
                    "t)",
                TablePrinter::Num(sais_pool_s, 4),
                TablePrinter::Num(MbPerSec(n, sais_pool_s), 1)});
  table.AddRow({"single-thread speedup", TablePrinter::Num(speedup, 2), "x"});
  table.Print();

  const std::string section = std::string("sa.") + name;
  json->Add(section, "reference_mb_s", MbPerSec(n, reference_s), "MB/s");
  json->Add(section, "sais_mb_s", MbPerSec(n, sais_s), "MB/s");
  json->Add(section, "sais_pool_mb_s", MbPerSec(n, sais_pool_s), "MB/s");
  json->Add(section, "sais_speedup_vs_reference", speedup, "x");
  return speedup;
}

void MiningSection(const char* name, bench::BenchJson* json) {
  const DatasetSpec& spec = DatasetSpecByName(name);
  const index_t n = bench::ScaledLength(spec);
  const Text text = MakeDataset(spec, n).text();
  const std::vector<index_t> sa = BuildSuffixArray(text);

  const double seq_s = BestOf([&] {
    std::vector<index_t> sa_copy = sa;
    SubstringStats stats(text, std::move(sa_copy));
  });

  std::vector<unsigned> counts = {2, 4};
  const unsigned hw = ThreadPool::HardwareConcurrency();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end() && hw > 1) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  TablePrinter table(std::string("Exact-miner stats build (best of 3) on ") +
                     name + " (n=" + TablePrinter::Int(n) + ")");
  table.SetHeader({"threads", "seconds", "speedup"});
  table.AddRow({"1 (seq)", TablePrinter::Num(seq_s, 4), "1.00"});
  const std::string section = std::string("mine.") + name;
  json->Add(section, "seq_s", seq_s, "s");
  for (unsigned threads : counts) {
    ThreadPool pool(threads);
    const double pool_s = BestOf([&] {
      std::vector<index_t> sa_copy = sa;
      SubstringStats stats(text, std::move(sa_copy), &pool);
    });
    const double speedup = pool_s > 0 ? seq_s / pool_s : 0;
    table.AddRow({TablePrinter::Int(threads), TablePrinter::Num(pool_s, 4),
                  TablePrinter::Num(speedup, 2)});
    json->Add(section, "pool" + TablePrinter::Int(threads) + "_s", pool_s,
              "s");
    json->Add(section, "pool" + TablePrinter::Int(threads) + "_speedup",
              speedup, "x");
  }
  table.Print();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) {
  const usi::bench::BenchArgs args = usi::bench::ParseBenchArgs(argc, argv);
  usi::bench::PrintBanner("bench_buildpath", "the Fig. 6 build-time study");
  usi::bench::BenchJson json;

  // RSS first: VmHWM only attributes cleanly before anything else has
  // raised the process peak.
  usi::StagedRssSection("XML", &json);

  const unsigned pool_threads =
      args.threads != 0 ? args.threads
                        : usi::ThreadPool::HardwareConcurrency();
  double log_speedup_sum = 0;
  int sa_sections = 0;
  for (const char* name : {"XML", "HUM", "ADV"}) {
    const double speedup = usi::SaRatesSection(name, pool_threads, &json);
    if (speedup > 0) {
      log_speedup_sum += std::log(speedup);
      ++sa_sections;
    }
  }
  const double geomean =
      sa_sections > 0 ? std::exp(log_speedup_sum / sa_sections) : 0;
  std::printf("\nSA-IS single-thread geomean speedup vs seed: %.2fx "
              "(acceptance bar: 1.50x)\n",
              geomean);
  json.Add("sa.summary", "geomean_speedup_vs_reference", geomean, "x");
  for (const char* name : {"XML", "HUM"}) {
    usi::MiningSection(name, &json);
  }

  if (!args.json_path.empty() &&
      !json.WriteTo(args.json_path, "bench_buildpath")) {
    return 1;
  }
  return 0;
}
