// Reliability layer, quantified: (a) saturation goodput of cost-aware
// admission vs the plain in-flight count cap — the cost model must shed
// load at least as well as the old cap, i.e. served-query throughput at
// saturation is no worse — and (b) deadline adherence: when a batch hits
// its cooperative deadline, how far past it does it run? The contract is
// "no more than one checkpoint interval of engine work"; the bench reports
// the p50/p99 overshoot so regressions in checkpoint placement show up as
// a trajectory change. --json PATH emits BENCH_reliability.json for the CI
// artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/rng.hpp"
#include "usi/util/table_printer.hpp"

namespace usi {
namespace {

/// Frequent-leaning fragments plus a tail of misses (the misses exercise
/// the SA fallback, whose chunked loop hosts the deadline poll).
std::vector<Text> MakePatterns(const WeightedString& ws, u64 seed) {
  Rng rng(seed);
  std::vector<Text> distinct;
  for (int i = 0; i < 40; ++i) {
    const index_t start = static_cast<index_t>(rng.UniformBelow(ws.size()));
    const index_t max_len = std::min<index_t>(12, ws.size() - start);
    distinct.push_back(ws.Fragment(
        start, static_cast<index_t>(rng.UniformInRange(2, max_len))));
  }
  std::vector<Text> patterns;
  for (int i = 0; i < 360; ++i) {
    patterns.push_back(distinct[rng.UniformBelow(distinct.size())]);
  }
  for (int i = 0; i < 40; ++i) {
    patterns.push_back(Text(static_cast<std::size_t>(rng.UniformInRange(2, 8)),
                            static_cast<Symbol>(200 + i)));
  }
  return patterns;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

struct SaturationResult {
  u64 served_batches = 0;
  u64 shed_batches = 0;
  double goodput_qps = 0;  ///< Answered queries per second (admitted only).
};

/// Hammers the service with \p threads concurrent clients for ~\p seconds
/// and reports goodput (served queries/s) plus admitted/shed counts.
SaturationResult Saturate(UsiMultiService& service,
                          const std::vector<MultiQuery>& queries,
                          int threads, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<u64> ok{0};
  std::atomic<u64> shed{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < threads; ++t) {
    hammers.emplace_back([&] {
      std::vector<QueryResult> results(queries.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const ServeStatus status = service.QueryBatchInto(queries, results);
        (status == ServeStatus::kOk ? ok : shed).fetch_add(1);
      }
    });
  }
  Timer timer;
  while (timer.ElapsedSeconds() < seconds) std::this_thread::yield();
  stop.store(true);
  for (std::thread& hammer : hammers) hammer.join();
  SaturationResult result;
  result.served_batches = ok.load();
  result.shed_batches = shed.load();
  result.goodput_qps = static_cast<double>(ok.load() * queries.size()) /
                       timer.ElapsedSeconds();
  return result;
}

/// (a) Saturation goodput: the same hammer workload against the plain
/// in-flight count cap and against cost-aware admission with an equivalent
/// budget (two average batches' worth of estimated serving cost).
void RunAdmissionComparison(const WeightedString& ws,
                            const std::vector<MultiQuery>& queries,
                            bench::BenchJson& json) {
  constexpr int kHammerThreads = 4;
  constexpr double kWindow = 0.25;

  // Calibrate one batch's serving time (used to express the cost cap in the
  // same units the count cap implies: ~2 concurrent batches).
  double batch_ms;
  {
    UsiMultiServiceOptions options;
    UsiMultiService service(options);
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    std::vector<QueryResult> results(queries.size());
    service.QueryBatchInto(queries, results);  // Warm-up.
    Timer timer;
    for (int i = 0; i < 8; ++i) service.QueryBatchInto(queries, results);
    batch_ms = timer.ElapsedSeconds() / 8 * 1e3;
  }

  SaturationResult by_count, by_cost;
  {
    UsiMultiServiceOptions options;
    options.max_inflight_batches = 2;
    UsiMultiService service(options);
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    by_count = Saturate(service, queries, kHammerThreads, kWindow);
  }
  {
    UsiMultiServiceOptions options;
    options.max_inflight_cost_ms = 2 * batch_ms;
    UsiMultiService service(options);
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    by_cost = Saturate(service, queries, kHammerThreads, kWindow);
  }

  TablePrinter table(
      "Admission at saturation — " + std::to_string(kHammerThreads) +
      " hammer threads, batch=" + TablePrinter::Int(queries.size()) +
      " (cost cap = 2 avg batches = " +
      TablePrinter::Int(static_cast<long long>(2 * batch_ms * 1000)) + " us)");
  table.SetHeader({"admission", "goodput qps", "served", "shed"});
  const auto row = [&](const char* name, const SaturationResult& r) {
    table.AddRow({name,
                  TablePrinter::Int(static_cast<long long>(r.goodput_qps)),
                  TablePrinter::Int(static_cast<long long>(r.served_batches)),
                  TablePrinter::Int(static_cast<long long>(r.shed_batches))});
  };
  row("count cap (=2)", by_count);
  row("cost-aware", by_cost);
  table.Print();
  std::printf("  goodput ratio (cost-aware / count cap): %.2f\n\n",
              by_count.goodput_qps == 0
                  ? 0
                  : by_cost.goodput_qps / by_count.goodput_qps);

  json.Add("saturation", "goodput_count_cap", by_count.goodput_qps, "qps");
  json.Add("saturation", "goodput_cost_cap", by_cost.goodput_qps, "qps");
  json.Add("saturation", "shed_count_cap",
           static_cast<double>(by_count.shed_batches), "count");
  json.Add("saturation", "shed_cost_cap",
           static_cast<double>(by_cost.shed_batches), "count");
}

/// (b) Deadline adherence: run the batch under a deadline shorter than its
/// unconstrained serving time and measure how far past the deadline the
/// call returns (the cooperative-checkpoint overshoot).
void RunDeadlineAdherence(const WeightedString& ws,
                          const std::vector<MultiQuery>& queries,
                          bench::BenchJson& json) {
  UsiMultiServiceOptions options;
  UsiMultiService service(options);
  service.SubmitText("t", ws);
  service.WaitForBuilds();
  std::vector<QueryResult> results(queries.size());
  service.QueryBatchInto(queries, results);  // Warm-up.

  // Unconstrained batch time -> pick a deadline that expires mid-batch.
  Timer calibrate;
  for (int i = 0; i < 8; ++i) service.QueryBatchInto(queries, results);
  const double batch_seconds = calibrate.ElapsedSeconds() / 8;
  const auto budget = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(batch_seconds / 2));

  constexpr int kRounds = 200;
  int expired = 0;
  std::vector<double> overshoot_us;
  for (int round = 0; round < kRounds; ++round) {
    MultiBatchOptions batch_options;
    const auto start = std::chrono::steady_clock::now();
    batch_options.deadline = start + budget;
    const ServeStatus status =
        service.QueryBatchInto(queries, results, batch_options);
    const auto end = std::chrono::steady_clock::now();
    if (status == ServeStatus::kDeadlineExceeded) {
      ++expired;
      const auto past = end - (start + budget);
      overshoot_us.push_back(
          std::chrono::duration<double, std::micro>(past).count());
    }
  }

  const double p50 = Percentile(overshoot_us, 0.50);
  const double p99 = Percentile(overshoot_us, 0.99);
  TablePrinter table(
      "Deadline adherence — budget = half the batch time (" +
      TablePrinter::Int(static_cast<long long>(batch_seconds * 5e5)) +
      " us), " + std::to_string(kRounds) + " rounds");
  table.SetHeader({"metric", "value"});
  table.AddRow({"expired batches",
                TablePrinter::Int(expired) + " / " +
                    TablePrinter::Int(kRounds)});
  table.AddRow({"overshoot p50 (us)",
                TablePrinter::Int(static_cast<long long>(p50))});
  table.AddRow({"overshoot p99 (us)",
                TablePrinter::Int(static_cast<long long>(p99))});
  table.Print();

  json.Add("deadline", "expired_fraction",
           static_cast<double>(expired) / kRounds, "fraction");
  json.Add("deadline", "overshoot_p50_us", p50, "us");
  json.Add("deadline", "overshoot_p99_us", p99, "us");
}

int Main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("bench_reliability",
                     "reliability layer: admission + deadlines");

  const DatasetSpec* xml = nullptr;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == "XML") xml = &spec;
  }
  if (xml == nullptr) {
    std::fprintf(stderr, "XML dataset spec missing\n");
    return 1;
  }
  const WeightedString ws = MakeDataset(
      *xml, std::min<index_t>(bench::ScaledLength(*xml), 60'000));
  const std::vector<Text> patterns = MakePatterns(ws, 0xBEEF);
  std::vector<MultiQuery> queries;
  for (const Text& p : patterns) queries.push_back({"t", p});

  bench::BenchJson json;
  RunAdmissionComparison(ws, queries, json);
  RunDeadlineAdherence(ws, queries, json);

  if (!args.json_path.empty() &&
      !json.WriteTo(args.json_path, "reliability")) {
    std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) { return usi::Main(argc, argv); }
