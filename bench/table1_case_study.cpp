// Regenerates Table I (Section II case study): on the ADV dataset, the top-4
// substrings of length >= 3 by *global utility* versus the top-4 *frequent*
// substrings, with their utility ranks. The paper's headline: the two lists
// differ, and the most frequent substring ranks only 21st by utility.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/topk/substring_stats.hpp"

namespace usi {
namespace {

std::string Pretty(const Text& text, index_t witness, index_t length) {
  // Categories are letters a..n, as in the paper's Table Ic.
  std::string s;
  for (index_t k = 0; k < length; ++k) {
    s.push_back(static_cast<char>('a' + text[witness + k]));
  }
  return s;
}

void Run() {
  const DatasetSpec& spec = DatasetSpecByName("ADV");
  const index_t n = bench::ScaledLength(spec);
  const WeightedString ws = MakeDataset(spec, n);

  UsiOptions options;
  options.k = spec.default_k;
  const UsiIndex index(ws, options);

  SubstringStats stats(ws.text());
  const TopKList frequent = stats.TopK(spec.default_k);

  struct Entry {
    std::string substring;
    double utility;
    index_t frequency;
    std::size_t frequency_rank;
  };
  std::vector<Entry> entries;
  std::size_t frequency_rank = 0;
  for (const TopKSubstring& item : frequent.items) {
    if (item.length < 3) continue;
    ++frequency_rank;
    const Text pattern(ws.text().begin() + item.witness,
                       ws.text().begin() + item.witness + item.length);
    entries.push_back({Pretty(ws.text(), item.witness, item.length),
                       index.Utility(pattern), item.frequency, frequency_rank});
  }
  std::vector<std::size_t> by_utility(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) by_utility[i] = i;
  std::sort(by_utility.begin(), by_utility.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].utility > entries[b].utility;
  });
  std::vector<std::size_t> utility_rank(entries.size());
  for (std::size_t rank = 0; rank < by_utility.size(); ++rank) {
    utility_rank[by_utility[rank]] = rank + 1;
  }

  TablePrinter table_a("Table Ia — top-4 substrings (len >= 3) by global utility");
  table_a.SetHeader({"Substring", "Rank", "Utility U", "Frequency"});
  for (std::size_t rank = 0; rank < std::min<std::size_t>(4, by_utility.size());
       ++rank) {
    const Entry& e = entries[by_utility[rank]];
    table_a.AddRow({e.substring, TablePrinter::Int(static_cast<long long>(rank + 1)),
                    TablePrinter::Num(e.utility, 1), TablePrinter::Int(e.frequency)});
  }
  table_a.Print();

  TablePrinter table_b("Table Ib — top-4 FREQUENT substrings (len >= 3) + their utility rank");
  table_b.SetHeader({"Substring", "UtilityRank", "Utility U", "Frequency"});
  for (std::size_t i = 0; i < entries.size() && entries[i].frequency_rank <= 4;
       ++i) {
    table_b.AddRow({entries[i].substring,
                    TablePrinter::Int(static_cast<long long>(utility_rank[i])),
                    TablePrinter::Num(entries[i].utility, 1),
                    TablePrinter::Int(entries[i].frequency)});
  }
  table_b.Print();

  const bool diverge = !entries.empty() && utility_rank[0] != 1;
  std::printf(
      "\nShape check (paper: top-frequent is NOT top-useful; their champion "
      "ranked 21st by utility): %s — most frequent (len>=3) substring has "
      "utility rank %zu.\n",
      diverge ? "REPRODUCED" : "NOT reproduced (seed-dependent)",
      entries.empty() ? 0 : utility_rank[0]);
}

}  // namespace
}  // namespace usi

int main() {
  usi::bench::PrintBanner("table1_case_study", "Table I (Section II)");
  usi::Run();
  return 0;
}
