#include "usi/hash/caches.hpp"

namespace usi {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  USI_CHECK(capacity >= 1);
  nodes_.reserve(capacity);
  map_.reserve(capacity * 2);
}

bool LruCache::Get(const PatternKey& key, double* value) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  const u32 slot = it->second;
  Detach(slot);
  PushFront(slot);
  *value = nodes_[slot].value;
  return true;
}

void LruCache::Put(const PatternKey& key, double value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    const u32 slot = it->second;
    nodes_[slot].value = value;
    Detach(slot);
    PushFront(slot);
    return;
  }
  u32 slot;
  if (map_.size() >= capacity_) {
    // Evict the tail (least recently used).
    slot = tail_;
    Detach(slot);
    map_.erase(nodes_[slot].key);
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<u32>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[slot].key = key;
  nodes_[slot].value = value;
  PushFront(slot);
  map_.emplace(key, slot);
}

void LruCache::Detach(u32 slot) {
  Node& node = nodes_[slot];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else if (head_ == slot) {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else if (tail_ == slot) {
    tail_ = node.prev;
  }
  node.prev = node.next = kNil;
}

void LruCache::PushFront(u32 slot) {
  Node& node = nodes_[slot];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

std::size_t LruCache::SizeInBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         map_.size() * (sizeof(PatternKey) + sizeof(u32) + sizeof(void*)) +
         free_slots_.capacity() * sizeof(u32);
}

LfuCache::LfuCache(std::size_t capacity) : capacity_(capacity) {
  USI_CHECK(capacity >= 1);
  heap_.reserve(capacity);
  map_.reserve(capacity * 2);
}

bool LfuCache::Get(const PatternKey& key, double* value) const {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *value = heap_[it->second].value;
  return true;
}

void LfuCache::Offer(const PatternKey& key, u64 count, double value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Counts only grow, so a cached entry can only sift down in a min-heap.
    heap_[it->second].count = count;
    heap_[it->second].value = value;
    SiftDown(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(Entry{key, value, count});
    map_.emplace(key, heap_.size() - 1);
    SiftUp(heap_.size() - 1);
    return;
  }
  if (count <= heap_[0].count) return;  // Not popular enough to displace.
  map_.erase(heap_[0].key);
  heap_[0] = Entry{key, value, count};
  map_.emplace(key, 0);
  SiftDown(0);
}

void LfuCache::SiftUp(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (heap_[parent].count <= heap_[pos].count) break;
    HeapSwap(parent, pos);
    pos = parent;
  }
}

void LfuCache::SiftDown(std::size_t pos) {
  while (true) {
    const std::size_t left = 2 * pos + 1;
    const std::size_t right = 2 * pos + 2;
    std::size_t smallest = pos;
    if (left < heap_.size() && heap_[left].count < heap_[smallest].count) {
      smallest = left;
    }
    if (right < heap_.size() && heap_[right].count < heap_[smallest].count) {
      smallest = right;
    }
    if (smallest == pos) break;
    HeapSwap(smallest, pos);
    pos = smallest;
  }
}

void LfuCache::HeapSwap(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  map_[heap_[a].key] = a;
  map_[heap_[b].key] = b;
}

std::size_t LfuCache::SizeInBytes() const {
  return heap_.capacity() * sizeof(Entry) +
         map_.size() * (sizeof(PatternKey) + 2 * sizeof(std::size_t));
}

}  // namespace usi
