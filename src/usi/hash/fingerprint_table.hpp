#ifndef USI_HASH_FINGERPRINT_TABLE_HPP_
#define USI_HASH_FINGERPRINT_TABLE_HPP_

/// \file fingerprint_table.hpp
/// Open-addressing hash table keyed by (Karp-Rabin fingerprint, length).
///
/// This is the hash table H of USI_TOP-K (Section IV): key = fingerprint of a
/// top-K frequent substring, value = its precomputed global utility. The
/// paper keys by fingerprint alone; we add the pattern length to the key,
/// which eliminates collisions between substrings of different lengths for
/// free (DESIGN.md Section 5.3).
///
/// Layout vs. the paper's plain hash table H: the paper's description is a
/// textbook open-addressing table of records probed one slot at a time.
/// Storing the occupancy flag inline costs a full record read per probed
/// slot — the dominant query-time expense once H outgrows the fast cache
/// levels. We keep the paper's semantics but split the storage
/// SwissTable-style:
///
///   ctrl:     [ t | t | E | t | ... ]  1 byte per slot: 7-bit hash tag, or
///                                      E = empty (high bit set). Probed one
///                                      GROUP (16 slots under SSE2, 8 via
///                                      portable SWAR) per step.
///   entries:  [ (key, value) | ... ]   parallel record array, touched only
///                                      on a tag match.
///
/// A probe reads one group of control bytes and rejects all non-matching
/// slots by tag without ever loading their records; only tag matches (1/128
/// per occupied slot) read an entry. Keys and values stay adjacent in one
/// record — measurements showed that fully separate key/value arrays cost a
/// third dependent cache-line miss per hit and forfeit half the speedup, so
/// only the control bytes are split out (that is where the probe locality
/// lives). No deletion (the index is rebuilt, never shrunk) keeps probing
/// tombstone-free and lets the table run at a 7/8 max load factor — the
/// byte footprint is well under the old padded slots-with-flag layout at
/// 3/5 load. Large tables are backed by transparent huge pages where the
/// OS offers them (random probes otherwise pay a TLB walk per lookup).
///
/// The slot/tag hash is a single Fibonacci multiply: Karp-Rabin
/// fingerprints are already uniform, so the full splitmix finalizer
/// (HashPatternKey, still used by the query caches and sketches) is wasted
/// work on this hot path. Serialization is unaffected by any of this: the
/// index writes entries in canonical (len, fp) order, so table layout never
/// leaks into saved bytes.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "usi/hash/pattern_key.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Cache-line-aligned allocator for the table's arrays. glibc hands large
/// allocations back at (page + 16), which would make half of the 32-byte
/// entry records straddle two cache lines — measurably slower probes. A
/// 64-byte base keeps every record and every control group load within the
/// minimum number of lines.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheAlignedAllocator<U>&) const {
    return false;
  }
};

/// Open-addressing map PatternKey -> V, tagged layout (see file header).
///
/// \par Storage backings
/// The table runs in one of two modes, serving identical answers:
///  * owning (default): ctrl + record arrays live in cache-aligned heap
///    vectors; all mutating operations are available.
///  * non-owning view (AdoptView): the arrays live in externally managed
///    read-only memory — index format v3 points them straight into an
///    mmap'd file image — and only the read surface (Find, VisitBatch,
///    const ForEach, size/capacity) is usable; mutators abort via
///    USI_CHECK. The backing storage must outlive the table.
template <typename V>
class FingerprintTable {
 public:
  /// One record: key and value adjacent (see file header for why). Public
  /// because this is the unit of the serialized record array — index format
  /// v3 persists the records verbatim and maps them back with AdoptView.
  struct Slot {
    PatternKey key;
    V value{};
  };

  /// Slots inspected per probe step (one control-group load).
#if defined(__SSE2__)
  static constexpr std::size_t kGroupWidth = 16;
#else
  static constexpr std::size_t kGroupWidth = 8;
#endif

  /// Slot/tag hash: one Fibonacci multiply. Low bits pick the probe start,
  /// the top 7 bits are the control tag. Karp-Rabin fingerprints are
  /// uniform, so this distributes as well as the splitmix finalizer at a
  /// third of the cost; two keys whose (fp + len) coincide merely share a
  /// probe sequence and are separated by the full key comparison. Exposed
  /// so tests can construct keys with chosen probe starts and tags.
  static u64 SlotHash(const PatternKey& key) {
    return (key.fp + key.len) * 0x9E3779B97F4A7C15ULL;
  }

  FingerprintTable() { AllocateTable(kMinCapacity); }

  /// Pre-sizes for \p expected entries (avoids rehashing in construction).
  explicit FingerprintTable(std::size_t expected) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity <<= 1;
    AllocateTable(capacity);
  }

  // Copies re-anchor the storage pointers: an owning copy must probe its own
  // fresh arrays, not the source's. Moves transfer the heap buffers, so the
  // copied pointers stay valid and the defaults are correct.
  FingerprintTable(const FingerprintTable& other) { *this = other; }
  FingerprintTable& operator=(const FingerprintTable& other) {
    ctrl_ = other.ctrl_;
    entries_ = other.entries_;
    mask_ = other.mask_;
    size_ = other.size_;
    view_ = other.view_;
    ctrl_p_ = view_ ? other.ctrl_p_ : ctrl_.data();
    slots_p_ = view_ ? other.slots_p_ : entries_.data();
    return *this;
  }
  FingerprintTable(FingerprintTable&&) noexcept = default;
  FingerprintTable& operator=(FingerprintTable&&) noexcept = default;

  /// Number of stored entries.
  std::size_t size() const { return size_; }

  /// Number of slots (power of two; grows when size exceeds 7/8 of it).
  std::size_t capacity() const { return mask_ + 1; }

  /// Rebinds the table to externally managed, read-only storage: \p ctrl
  /// must point at \p capacity + kGroupWidth control bytes (cloned tail
  /// included) and \p slots at \p capacity records laid out exactly as the
  /// owning mode stores them — i.e. at bytes previously produced by
  /// ctrl_bytes()/slots() of an equivalent table. Frees any owned arrays.
  /// The caller guarantees the backing outlives the table; \p size is the
  /// occupied-entry count the backing was serialized with.
  void AdoptView(const u8* ctrl, const Slot* slots, std::size_t capacity,
                 std::size_t size) {
    USI_CHECK(capacity >= kMinCapacity &&
              (capacity & (capacity - 1)) == 0 &&
              size * kMaxLoadDen <= capacity * kMaxLoadNum);
    ctrl_ = CtrlArray();
    entries_ = EntryArray();
    ctrl_p_ = ctrl;
    slots_p_ = slots;
    mask_ = capacity - 1;
    size_ = size;
    view_ = true;
  }

  /// Whether the arrays are heap-owned (false after AdoptView).
  bool OwnsStorage() const { return !view_; }

  /// The control-byte array, cloned tail included — the exact bytes a
  /// non-owning view must be given back. Valid in both modes.
  std::span<const u8> ctrl_bytes() const {
    return {ctrl_p_, capacity() + kGroupWidth};
  }

  /// The record array (capacity() slots; empty slots hold value-initialized
  /// records). Valid in both modes.
  std::span<const Slot> slots() const { return {slots_p_, capacity()}; }

  /// Inserts \p key with \p value if absent; returns pointer to the stored
  /// value either way. Probing for the key happens before any load-factor
  /// check, so re-inserting a present key never triggers a rehash; the
  /// failed probe already located the insert slot, so a fresh insert pays
  /// one probe walk, not two. Owning mode only.
  V* FindOrInsert(const PatternKey& key, const V& value) {
    USI_CHECK(!view_);
    const u64 h = SlotHash(key);
    std::size_t slot = 0;
    if (const V* existing = FindWithHash(key, h, &slot)) {
      return const_cast<V*>(existing);
    }
    if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      Rehash(capacity() * 2);
      return InsertFresh(key, value, h);  // The old probe slot is stale.
    }
    return PlaceAt(slot, key, value, h);
  }

  /// Returns the value for \p key, or nullptr if absent.
  V* Find(const PatternKey& key) {
    return const_cast<V*>(FindWithHash(key, SlotHash(key)));
  }

  const V* Find(const PatternKey& key) const {
    return FindWithHash(key, SlotHash(key));
  }

  /// Whether \p key is present.
  bool Contains(const PatternKey& key) const { return Find(key) != nullptr; }

  /// Batched lookup core: calls fn(i, Find(keys[i])) for every i, with the
  /// probes software-pipelined AMAC-style. Three stages run interleaved in
  /// one loop, each a fixed distance ahead of the next: stage A hashes
  /// key[i+24] and prefetches its control group, stage B probes the tags of
  /// key[i+12] and prefetches its candidate entry, stage C verifies the key
  /// and visits item i. Interleaving (rather than running each stage as its
  /// own pass) spaces the prefetches out so the CPU's page walkers and fill
  /// buffers keep up — back-to-back prefetch bursts get dropped exactly
  /// when they miss the TLB, which is every probe on a large table.
  /// Allocation-free (fixed ring state on the stack).
  template <typename Fn>
  void VisitBatch(std::span<const PatternKey> keys, Fn fn) const {
    constexpr std::size_t kHashLead = 24;   ///< Stage A runs this far ahead.
    constexpr std::size_t kProbeLead = 12;  ///< Stage B runs this far ahead.
    constexpr std::size_t kRing = 32;       ///< Power of two > kHashLead.
    const std::size_t n = keys.size();
    if (n < 2 * kHashLead) {
      for (std::size_t i = 0; i < n; ++i) fn(i, Find(keys[i]));
      return;
    }
    // Hoisted table state: the visitor is opaque to the compiler, so member
    // accesses inside the loop would otherwise reload every iteration.
    const u8* const ctrl = ctrl_p_;
    const Slot* const entries = slots_p_;
    const std::size_t mask = mask_;
    u64 h[kRing];
    u32 match[kRing];
    std::size_t slot[kRing];
    const auto stage_a = [&](std::size_t x) {
      const u64 hx = SlotHash(keys[x]);
      h[x & (kRing - 1)] = hx;
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(ctrl + (hx & mask));
#endif
    };
    const auto stage_b = [&](std::size_t x) {
      const u64 hx = h[x & (kRing - 1)];
      const std::size_t pos = hx & mask;
      const u32 m = MatchLanes(ctrl + pos, TagOf(hx));
      match[x & (kRing - 1)] = m;
      // With no match this points one group ahead — a harmless prefetch.
      const std::size_t s =
          (pos + static_cast<std::size_t>(
                     std::countr_zero(m | (1u << kGroupWidth)))) &
          mask;
      slot[x & (kRing - 1)] = s;
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(entries + s);
#endif
    };
    const auto stage_c = [&](std::size_t x) {
      // Overwhelmingly common: the lowest tag match in the first group is
      // the key (a lowest-lane SWAR false positive is impossible, and tag
      // collisions run 1/128 per occupied lane). Everything else — probe
      // continuation, collision, miss — takes the general loop.
      const std::size_t r = x & (kRing - 1);
      const V* value;
      if (match[r] != 0 && entries[slot[r]].key == keys[x]) [[likely]] {
        value = &entries[slot[r]].value;
      } else {
        value = FindWithHash(keys[x], h[r]);
      }
      fn(x, value);
    };
    for (std::size_t x = 0; x < kHashLead; ++x) stage_a(x);
    for (std::size_t x = 0; x < kProbeLead; ++x) stage_b(x);
    std::size_t i = 0;
    for (; i + kHashLead < n; ++i) {
      stage_a(i + kHashLead);
      stage_b(i + kProbeLead);
      stage_c(i);
    }
    for (; i < n; ++i) {
      if (i + kProbeLead < n) stage_b(i + kProbeLead);
      stage_c(i);
    }
  }

  /// Batched lookup: out[i] = Find(keys[i]) via VisitBatch.
  void FindBatch(std::span<const PatternKey> keys, const V** out) const {
    VisitBatch(keys, [out](std::size_t i, const V* value) { out[i] = value; });
  }

  /// Removes all entries, keeping the capacity. Owning mode only.
  void Clear() {
    USI_CHECK(!view_);
    std::fill(ctrl_.begin(), ctrl_.end(), kEmpty);
    size_ = 0;
  }

  /// Applies \p fn(key, value&) to every entry (unspecified order).
  /// Owning mode only — the mutable form would hand out references into
  /// read-only mapped memory.
  template <typename Fn>
  void ForEach(Fn fn) {
    USI_CHECK(!view_);
    for (std::size_t s = 0; s <= mask_; ++s) {
      if (ctrl_[s] != kEmpty) fn(entries_[s].key, entries_[s].value);
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (std::size_t s = 0; s <= mask_; ++s) {
      if (ctrl_p_[s] != kEmpty) fn(slots_p_[s].key, slots_p_[s].value);
    }
  }

  /// Storage footprint in bytes: owned heap bytes, or — for a view — the
  /// logical size of the adopted arrays (file-backed pages the kernel
  /// shares across processes, but resident all the same once touched).
  std::size_t SizeInBytes() const {
    if (view_) {
      return (capacity() + kGroupWidth) * sizeof(u8) +
             capacity() * sizeof(Slot);
    }
    return ctrl_.capacity() * sizeof(u8) +
           entries_.capacity() * sizeof(Slot);
  }

  /// Capacity floor and the 7/8 max load factor. Public because persisted
  /// table images (index format v3) record their capacity/size and loaders
  /// must re-validate the same invariants AdoptView enforces — without
  /// aborting on corrupt input.
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 7;  // Load factor 7/8.
  static constexpr std::size_t kMaxLoadDen = 8;

 private:
  static constexpr u8 kEmpty = 0x80;  ///< High bit set; tags are 7-bit.

  /// 7-bit control tag from the hash's top bits.
  static u8 TagOf(u64 h) { return static_cast<u8>(h >> 57); }

  /// Bit-per-lane mask of control bytes equal to \p tag in the group at
  /// \p pos. The SWAR fallback may set spurious lanes ABOVE a true match
  /// (borrow propagation), never below and never without one — so the
  /// lowest set lane is always a true tag match, and callers filter the
  /// rest with the full key comparison.
  static u32 MatchLanes(const u8* group_start, u8 tag) {
#if defined(__SSE2__)
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group_start));
    return static_cast<u32>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)))));
#else
    u64 g;
    std::memcpy(&g, group_start, sizeof(g));
    const u64 x = g ^ (kLsbs * tag);
    return MsbsToLanes((x - kLsbs) & ~x & kMsbs);
#endif
  }

  /// Bit-per-lane mask of empty control bytes (exact: occupied bytes have
  /// the high bit clear).
  static u32 EmptyLanes(const u8* group_start) {
#if defined(__SSE2__)
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group_start));
    return static_cast<u32>(_mm_movemask_epi8(group));
#else
    u64 g;
    std::memcpy(&g, group_start, sizeof(g));
    return MsbsToLanes(g & kMsbs);
#endif
  }

  static constexpr u64 kLsbs = 0x0101010101010101ULL;
  static constexpr u64 kMsbs = 0x8080808080808080ULL;

  /// Collapses 0x80 byte flags into one bit per lane (movemask emulation,
  /// used by the non-SSE2 fallback). Exact: the multiplier's exponents are
  /// 7k for k = 1..8, so lane j's bit 8j lands at 8j + 7(8-j) = 56 + j and
  /// nowhere else in the top byte, with no two partial products colliding
  /// (8j1 + 7k1 = 8j2 + 7k2 forces j1 = j2) — hence no carries. A k = 0
  /// term would alias lane 7 onto lane 0; the static_assert below checks
  /// all 256 lane subsets at compile time on every platform.
  static constexpr u32 MsbsToLanes(u64 msbs) {
    return static_cast<u32>(((msbs >> 7) * 0x0102040810204080ULL) >> 56);
  }

  static consteval bool VerifyMsbsToLanes() {
    for (u32 lanes = 0; lanes < 256; ++lanes) {
      u64 msbs = 0;
      for (int j = 0; j < 8; ++j) {
        if ((lanes >> j) & 1) msbs |= u64{0x80} << (8 * j);
      }
      if (MsbsToLanes(msbs) != lanes) return false;
    }
    return true;
  }
  static_assert(VerifyMsbsToLanes(),
                "SWAR movemask emulation must be exact for every lane subset");

  /// Probes for \p key. On a miss, \p insert_slot (when non-null) receives
  /// the slot where the key would be inserted — the first empty lane of the
  /// terminating group, i.e. exactly the slot InsertFresh would pick — so a
  /// failed find doubles as the insert probe.
  const V* FindWithHash(const PatternKey& key, u64 h,
                        std::size_t* insert_slot = nullptr) const {
    const u8* const ctrl = ctrl_p_;
    const Slot* const entries = slots_p_;
    const u8 tag = TagOf(h);
    std::size_t pos = h & mask_;
    while (true) {
      u32 m = MatchLanes(ctrl + pos, tag);
      while (m != 0) {
        const std::size_t s =
            (pos + static_cast<std::size_t>(std::countr_zero(m))) & mask_;
        if (entries[s].key == key) return &entries[s].value;
        m &= m - 1;
      }
      // No deletion => the probe chain for a stored key never crosses an
      // empty slot; an empty lane anywhere in the group ends the search.
      const u32 empty = EmptyLanes(ctrl + pos);
      if (empty != 0) {
        if (insert_slot != nullptr) {
          *insert_slot =
              (pos + static_cast<std::size_t>(std::countr_zero(empty))) &
              mask_;
        }
        return nullptr;
      }
      pos = (pos + kGroupWidth) & mask_;
    }
  }

  /// Writes \p key (known absent) into empty slot \p s of its probe chain.
  V* PlaceAt(std::size_t s, const PatternKey& key, const V& value, u64 h) {
    SetCtrl(s, TagOf(h));
    entries_[s].key = key;
    entries_[s].value = value;
    ++size_;
    return &entries_[s].value;
  }

  /// Places \p key (known absent, load already checked) in the first empty
  /// slot of its probe sequence.
  V* InsertFresh(const PatternKey& key, const V& value, u64 h) {
    std::size_t pos = h & mask_;
    while (true) {
      const u32 empty = EmptyLanes(ctrl_.data() + pos);
      if (empty != 0) {
        return PlaceAt(
            (pos + static_cast<std::size_t>(std::countr_zero(empty))) & mask_,
            key, value, h);
      }
      pos = (pos + kGroupWidth) & mask_;
    }
  }

  /// Writes a control byte, mirroring the first kGroupWidth slots into the
  /// cloned tail so group loads near the end wrap without branching.
  void SetCtrl(std::size_t s, u8 byte) {
    ctrl_[s] = byte;
    if (s < kGroupWidth) ctrl_[capacity() + s] = byte;
  }

  /// Best-effort THP backing for a large buffer: with the kernel in
  /// "madvise" THP mode, random probes over a 4K-paged table pay a TLB
  /// walk per lookup. Must run before the pages are first touched.
  static void AdviseHugePages(const void* data, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    constexpr std::uintptr_t kPage = 4096;
    if (bytes < (std::size_t{8} << 20)) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(data);
    const std::uintptr_t begin = (addr + kPage - 1) & ~(kPage - 1);
    const std::uintptr_t end = (addr + bytes) & ~(kPage - 1);
    if (end > begin) {
      (void)madvise(reinterpret_cast<void*>(begin), end - begin,
                    MADV_HUGEPAGE);
    }
#else
    (void)data;
    (void)bytes;
#endif
  }

  void AllocateTable(std::size_t new_capacity) {
    ctrl_ = CtrlArray();
    ctrl_.reserve(new_capacity + kGroupWidth);
    AdviseHugePages(ctrl_.data(), ctrl_.capacity());
    ctrl_.assign(new_capacity + kGroupWidth, kEmpty);
    entries_ = EntryArray();
    entries_.reserve(new_capacity);
    AdviseHugePages(entries_.data(), entries_.capacity() * sizeof(Slot));
    entries_.resize(new_capacity);
    // Value-initialization zeroes the members but not the struct padding
    // (after PatternKey::len and V's tail), and PlaceAt assigns members
    // only — so without this memset the padding would carry heap garbage
    // into the v3 record image, which persists slots verbatim and promises
    // byte-identical serialization for equal tables. Slot is trivially
    // copyable, so blanking the array and member-assigning later is defined.
    std::memset(static_cast<void*>(entries_.data()), 0,
                new_capacity * sizeof(Slot));
    ctrl_p_ = ctrl_.data();
    slots_p_ = entries_.data();
    mask_ = new_capacity - 1;
    size_ = 0;
    view_ = false;
  }

  void Rehash(std::size_t new_capacity) {
    CtrlArray old_ctrl = std::move(ctrl_);
    EntryArray old_entries = std::move(entries_);
    const std::size_t old_capacity = old_entries.size();
    AllocateTable(new_capacity);
    for (std::size_t s = 0; s < old_capacity; ++s) {
      if (old_ctrl[s] != kEmpty) {
        InsertFresh(old_entries[s].key, old_entries[s].value,
                    SlotHash(old_entries[s].key));
      }
    }
  }

  using CtrlArray = std::vector<u8, CacheAlignedAllocator<u8>>;
  using EntryArray = std::vector<Slot, CacheAlignedAllocator<Slot>>;

  CtrlArray ctrl_;      ///< capacity + kGroupWidth (cloned tail); owning mode.
  EntryArray entries_;  ///< Parallel to ctrl_[0..capacity); owning mode.
  /// Read-path storage pointers: into ctrl_/entries_ when owning, into the
  /// adopted backing when a view. Every probe goes through these, so both
  /// modes share one code path.
  const u8* ctrl_p_ = nullptr;
  const Slot* slots_p_ = nullptr;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool view_ = false;
};

}  // namespace usi

#endif  // USI_HASH_FINGERPRINT_TABLE_HPP_
