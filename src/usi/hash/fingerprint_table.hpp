#ifndef USI_HASH_FINGERPRINT_TABLE_HPP_
#define USI_HASH_FINGERPRINT_TABLE_HPP_

/// \file fingerprint_table.hpp
/// Open-addressing hash table keyed by (Karp-Rabin fingerprint, length).
///
/// This is the hash table H of USI_TOP-K (Section IV): key = fingerprint of a
/// top-K frequent substring, value = its precomputed global utility. The
/// paper keys by fingerprint alone; we add the pattern length to the key,
/// which eliminates collisions between substrings of different lengths for
/// free (DESIGN.md Section 5.3). Linear probing with a power-of-two capacity
/// and a 0.6 max load factor; no deletion (the index is rebuilt, never
/// shrunk), which keeps probing tombstone-free.

#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Hash-table key: fingerprint plus pattern length.
struct PatternKey {
  u64 fp = 0;
  u32 len = 0;

  bool operator==(const PatternKey& other) const {
    return fp == other.fp && len == other.len;
  }
};

/// Mixes a PatternKey into a table slot hash (splitmix-style finalizer).
inline u64 HashPatternKey(const PatternKey& key) {
  u64 z = key.fp ^ (static_cast<u64>(key.len) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Open-addressing map PatternKey -> V.
template <typename V>
class FingerprintTable {
 public:
  FingerprintTable() { Rehash(kMinCapacity); }

  /// Pre-sizes for \p expected entries (avoids rehashing in construction).
  explicit FingerprintTable(std::size_t expected) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity <<= 1;
    Rehash(capacity);
  }

  /// Number of stored entries.
  std::size_t size() const { return size_; }

  /// Inserts \p key with \p value if absent; returns pointer to the stored
  /// value either way.
  V* FindOrInsert(const PatternKey& key, const V& value) {
    if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      Rehash(capacity() * 2);
    }
    std::size_t slot = SlotFor(key);
    while (slots_[slot].occupied) {
      if (slots_[slot].key == key) return &slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    slots_[slot].occupied = true;
    slots_[slot].key = key;
    slots_[slot].value = value;
    ++size_;
    return &slots_[slot].value;
  }

  /// Returns the value for \p key, or nullptr if absent.
  V* Find(const PatternKey& key) {
    std::size_t slot = SlotFor(key);
    while (slots_[slot].occupied) {
      if (slots_[slot].key == key) return &slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }

  const V* Find(const PatternKey& key) const {
    return const_cast<FingerprintTable*>(this)->Find(key);
  }

  /// Whether \p key is present.
  bool Contains(const PatternKey& key) const { return Find(key) != nullptr; }

  /// Removes all entries, keeping the capacity.
  void Clear() {
    for (auto& slot : slots_) slot.occupied = false;
    size_ = 0;
  }

  /// Applies \p fn(key, value&) to every entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn fn) {
    for (auto& slot : slots_) {
      if (slot.occupied) fn(slot.key, slot.value);
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& slot : slots_) {
      if (slot.occupied) fn(slot.key, slot.value);
    }
  }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    PatternKey key;
    V value{};
    bool occupied = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 3;  // load factor 3/5.
  static constexpr std::size_t kMaxLoadDen = 5;

  std::size_t capacity() const { return slots_.size(); }

  std::size_t SlotFor(const PatternKey& key) const {
    return static_cast<std::size_t>(HashPatternKey(key)) & mask_;
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (auto& slot : old) {
      if (slot.occupied) FindOrInsert(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace usi

#endif  // USI_HASH_FINGERPRINT_TABLE_HPP_
