#ifndef USI_HASH_KARP_RABIN_HPP_
#define USI_HASH_KARP_RABIN_HPP_

/// \file karp_rabin.hpp
/// Karp-Rabin rolling fingerprints modulo the Mersenne prime 2^61 - 1.
///
/// Fingerprints are the keys of the USI hash table (Section IV): equal
/// strings hash equal, and distinct substrings of a text collide with
/// probability O(n^2 / 2^61) for a random base. The class precomputes prefix
/// fingerprints and base powers so any substring fingerprint is O(1)
/// (Section III cites [18] for exactly this); RollingHasher supports the
/// sliding-window construction phase and the small-space LCE backends that
/// must not hold the O(n)-word prefix table.

#include <span>
#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Arithmetic modulo p = 2^61 - 1.
class Mersenne61 {
 public:
  static constexpr u64 kPrime = (u64{1} << 61) - 1;

  static u64 Add(u64 a, u64 b) {
    u64 s = a + b;
    if (s >= kPrime) s -= kPrime;
    return s;
  }

  static u64 Sub(u64 a, u64 b) { return Add(a, kPrime - b); }

  static u64 Mul(u64 a, u64 b) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    u64 lo = static_cast<u64>(product & kPrime);
    u64 hi = static_cast<u64>(product >> 61);
    u64 s = lo + hi;
    if (s >= kPrime) s -= kPrime;
    return s;
  }

  static u64 Pow(u64 base, u64 exp) {
    u64 result = 1;
    while (exp > 0) {
      if (exp & 1) result = Mul(result, base);
      base = Mul(base, base);
      exp >>= 1;
    }
    return result;
  }
};

/// Fingerprint of S[i..j] = sum S[k] * base^(j-k) mod p, i.e. most significant
/// letter first. Stateless of the text; carries only the base and its powers.
///
/// Thread-safety: Hash() and Append() never touch the lazily-grown power
/// table and are safe to call concurrently. PowerOfBase() (and anything built
/// on it: Concat, SuffixOf, RollingHasher construction) grows the table on a
/// cache miss, so concurrent use requires either (a) ReservePowers() up to
/// the largest exponent needed before sharing the hasher across threads, or
/// (b) thread-confined scratch: give each worker its own copy (the class is
/// cheaply copyable) — the parallel build pipeline does both.
class KarpRabinHasher {
 public:
  /// Derives a random base in [256, p-1) from \p seed.
  explicit KarpRabinHasher(u64 seed = 0xF1A6F1A6ULL);

  /// Whether \p base is acceptable to FromBase. Deserializers must check
  /// untrusted bases with this instead of letting FromBase abort.
  static bool IsValidBase(u64 base) {
    return base >= 257 && base < Mersenne61::kPrime;
  }

  /// Reconstructs a hasher with a known base (index deserialization: stored
  /// fingerprints are only valid under the base that produced them).
  static KarpRabinHasher FromBase(u64 base);

  /// The base in use (two structures hashing the same text must share it).
  u64 base() const { return base_; }

  /// base^k mod p; grows the internal power table on demand.
  u64 PowerOfBase(std::size_t k) const;

  /// Pre-grows the power table through base^upto so every subsequent
  /// PowerOfBase(k <= upto) is a read-only lookup — the precondition for
  /// sharing one hasher across concurrently-querying threads.
  void ReservePowers(std::size_t upto) const { (void)PowerOfBase(upto); }

  /// Whether PowerOfBase(k <= upto) is already a read-only lookup, i.e.
  /// ReservePowers(upto) would be a no-op. Serving layers use this to skip
  /// their exclusive prepare section once the table has warmed up.
  bool PowersCover(std::size_t upto) const { return powers_.size() > upto; }

  /// O(len) fingerprint of an explicit string.
  u64 Hash(std::span<const Symbol> s) const;

  /// Heap footprint of the lazily-grown power table (index-size accounting:
  /// ReservePowers keeps it resident for the hasher's lifetime).
  std::size_t SizeInBytes() const { return powers_.capacity() * sizeof(u64); }

  /// Extends fingerprint \p fp of a string X to the fingerprint of X.c.
  u64 Append(u64 fp, Symbol c) const {
    return Mersenne61::Add(Mersenne61::Mul(fp, base_), c + 1);
  }

  /// Fingerprint of X.Y given fp(X), fp(Y) and |Y|.
  u64 Concat(u64 fp_left, u64 fp_right, std::size_t right_len) const {
    return Mersenne61::Add(Mersenne61::Mul(fp_left, PowerOfBase(right_len)),
                           fp_right);
  }

  /// Fingerprint of Y given fp(X.Y), fp(X) and |Y| (suffix extraction).
  u64 SuffixOf(u64 fp_full, u64 fp_prefix, std::size_t suffix_len) const {
    return Mersenne61::Sub(
        fp_full, Mersenne61::Mul(fp_prefix, PowerOfBase(suffix_len)));
  }

 private:
  u64 base_;
  mutable std::vector<u64> powers_;  // powers_[k] = base^k.
};

/// Prefix-fingerprint table over a fixed text: O(1) fingerprint of any
/// fragment. This is the construction-time representation used by the USI
/// index and by the KR-based LCE backend.
class PrefixFingerprints {
 public:
  PrefixFingerprints() = default;

  /// Builds prefix fingerprints of \p text with \p hasher (O(n)).
  PrefixFingerprints(const Text& text, const KarpRabinHasher& hasher);

  /// Fingerprint of text[i .. i+len-1] in O(1).
  u64 Fragment(index_t i, index_t len) const {
    USI_DCHECK(i + len < prefix_.size() + 1);
    return hasher_->SuffixOf(prefix_[i + len], prefix_[i], len);
  }

  /// Fingerprint of the length-\p len prefix.
  u64 Prefix(index_t len) const { return prefix_[len]; }

  /// Text length covered.
  index_t size() const {
    return prefix_.empty() ? 0 : static_cast<index_t>(prefix_.size() - 1);
  }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const { return prefix_.capacity() * sizeof(u64); }

 private:
  const KarpRabinHasher* hasher_ = nullptr;
  std::vector<u64> prefix_;  // prefix_[k] = fp(text[0..k-1]).
};

/// Constant-space rolling window of fixed length over a stream of symbols:
/// push the next letter, the oldest one falls out. Used by construction
/// phase (ii) (Section IV) which slides a length-l window over S.
class RollingHasher {
 public:
  /// \p window_len is the fixed window length.
  RollingHasher(const KarpRabinHasher& hasher, index_t window_len)
      : hasher_(&hasher),
        window_len_(window_len),
        top_power_(hasher.PowerOfBase(window_len > 0 ? window_len - 1 : 0)) {}

  /// Slides the window: removes \p outgoing (the letter window_len positions
  /// back) and appends \p incoming. For the first window_len letters pass
  /// Prime() as outgoing via Prime()/Push().
  void Push(Symbol incoming) {
    USI_DCHECK(filled_ < window_len_);
    fp_ = hasher_->Append(fp_, incoming);
    ++filled_;
  }

  /// Advances a full window by one letter.
  void Roll(Symbol outgoing, Symbol incoming) {
    USI_DCHECK(filled_ == window_len_);
    fp_ = Mersenne61::Sub(
        fp_, Mersenne61::Mul(static_cast<u64>(outgoing) + 1, top_power_));
    fp_ = hasher_->Append(fp_, incoming);
  }

  /// Whether the window is full.
  bool Full() const { return filled_ == window_len_; }

  /// Current window fingerprint (valid once Full()).
  u64 Fingerprint() const { return fp_; }

 private:
  const KarpRabinHasher* hasher_;
  index_t window_len_;
  u64 top_power_;
  u64 fp_ = 0;
  index_t filled_ = 0;
};

}  // namespace usi

#endif  // USI_HASH_KARP_RABIN_HPP_
