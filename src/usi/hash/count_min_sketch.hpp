#ifndef USI_HASH_COUNT_MIN_SKETCH_HPP_
#define USI_HASH_COUNT_MIN_SKETCH_HPP_

/// \file count_min_sketch.hpp
/// Count-min sketch [23] and the HeavyKeeper exponential-decay sketch [24].
///
/// The plain sketch backs baseline BSL4 (space-efficient top-K-seen-so-far,
/// Section IX-C). The decay sketch is the "count-with-exponential-decay"
/// structure at the heart of HeavyKeeper, reused by SubstringHK (Section
/// VII): a bucket holds (fingerprint, count); colliding inserts decay the
/// incumbent with probability b^-count and capture the bucket when the count
/// hits zero.

#include <vector>

#include "usi/util/common.hpp"
#include "usi/util/rng.hpp"

namespace usi {

/// Classic count-min sketch with conservative update option.
class CountMinSketch {
 public:
  /// \p width buckets per row, \p depth rows.
  CountMinSketch(std::size_t width, std::size_t depth, u64 seed = 0xC3C3);

  /// Adds \p amount to \p key's counters.
  void Add(u64 key, u32 amount = 1);

  /// Point estimate (min over rows); never under-estimates.
  u32 Estimate(u64 key) const;

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const { return counters_.capacity() * sizeof(u32); }

 private:
  std::size_t Bucket(u64 key, std::size_t row) const {
    return (Rng::Mix(key, seeds_[row]) % width_) + row * width_;
  }

  std::size_t width_;
  std::size_t depth_;
  std::vector<u64> seeds_;
  std::vector<u32> counters_;
};

/// HeavyKeeper's decayed-count sketch: each bucket stores the fingerprint of
/// the item currently owning it plus a count. An insert of a different item
/// decays the count with probability b^-count; at zero the new item captures
/// the bucket with count 1.
class DecaySketch {
 public:
  /// \p decay_base is the paper's b (1.08 by default, as in [24]).
  DecaySketch(std::size_t width, std::size_t depth, double decay_base = 1.08,
              u64 seed = 0xDECA1);

  /// Inserts one occurrence of \p key; returns the updated estimate.
  u32 Insert(u64 key);

  /// Max-over-rows estimate for \p key (0 if it owns no bucket).
  u32 Estimate(u64 key) const;

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const { return buckets_.capacity() * sizeof(Bucket); }

 private:
  struct Bucket {
    u64 fp = 0;
    u32 count = 0;
  };
  static constexpr u32 kDecayTableSize = 256;

  std::size_t Index(u64 key, std::size_t row) const {
    return (Rng::Mix(key, seeds_[row]) % width_) + row * width_;
  }

  /// b^-count, from the precomputed table for small counts.
  double DecayProbability(u32 count);

  std::size_t width_;
  std::size_t depth_;
  double decay_base_;
  std::vector<u64> seeds_;
  std::vector<Bucket> buckets_;
  Rng rng_;
  double decay_table_[kDecayTableSize];
};

}  // namespace usi

#endif  // USI_HASH_COUNT_MIN_SKETCH_HPP_
