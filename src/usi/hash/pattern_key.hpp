#ifndef USI_HASH_PATTERN_KEY_HPP_
#define USI_HASH_PATTERN_KEY_HPP_

/// \file pattern_key.hpp
/// The (Karp-Rabin fingerprint, length) key shared by everything that maps
/// patterns to values: the USI hash table H (fingerprint_table.hpp), the
/// query caches, the frequency summaries and the count-min sketch adapter.
/// Split out of fingerprint_table.hpp so interface-level headers
/// (query_engine.hpp's QueryScratch) can name the key without pulling in
/// the table implementation and its platform intrinsics.

#include "usi/util/common.hpp"

namespace usi {

/// Hash-table key: fingerprint plus pattern length.
struct PatternKey {
  u64 fp = 0;
  u32 len = 0;

  bool operator==(const PatternKey& other) const {
    return fp == other.fp && len == other.len;
  }
};

/// Mixes a PatternKey into a 64-bit hash (splitmix-style finalizer). Used by
/// the query caches, the count-min sketch and std::unordered_map adapters;
/// FingerprintTable itself uses its cheaper single-multiply SlotHash.
inline u64 HashPatternKey(const PatternKey& key) {
  u64 z = key.fp ^ (static_cast<u64>(key.len) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace usi

#endif  // USI_HASH_PATTERN_KEY_HPP_
