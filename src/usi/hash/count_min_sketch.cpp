#include "usi/hash/count_min_sketch.hpp"

#include <algorithm>
#include <cmath>

namespace usi {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth, u64 seed)
    : width_(width), depth_(depth) {
  USI_CHECK(width >= 1 && depth >= 1);
  seeds_.resize(depth);
  for (std::size_t row = 0; row < depth; ++row) {
    seeds_[row] = Rng::Mix(seed, row + 1);
  }
  counters_.assign(width * depth, 0);
}

void CountMinSketch::Add(u64 key, u32 amount) {
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[Bucket(key, row)] += amount;
  }
}

u32 CountMinSketch::Estimate(u64 key) const {
  u32 best = ~u32{0};
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[Bucket(key, row)]);
  }
  return best;
}

DecaySketch::DecaySketch(std::size_t width, std::size_t depth,
                         double decay_base, u64 seed)
    : width_(width), depth_(depth), decay_base_(decay_base), rng_(seed) {
  USI_CHECK(width >= 1 && depth >= 1);
  USI_CHECK(decay_base > 1.0);
  seeds_.resize(depth);
  for (std::size_t row = 0; row < depth; ++row) {
    seeds_[row] = Rng::Mix(seed, row + 0x51);
  }
  buckets_.assign(width * depth, Bucket{});
  // Inserts decay on (almost) every collision; precompute b^-c for the hot
  // small counts so std::pow stays off the scan path.
  for (u32 c = 0; c < kDecayTableSize; ++c) {
    decay_table_[c] = std::pow(decay_base_, -static_cast<double>(c));
  }
}

u32 DecaySketch::Insert(u64 key) {
  u32 best = 0;
  for (std::size_t row = 0; row < depth_; ++row) {
    Bucket& bucket = buckets_[Index(key, row)];
    if (bucket.count == 0 || bucket.fp == key) {
      bucket.fp = key;
      ++bucket.count;
      best = std::max(best, bucket.count);
    } else {
      // Exponential decay: evict the incumbent with probability b^-count.
      if (rng_.Bernoulli(DecayProbability(bucket.count))) {
        if (--bucket.count == 0) {
          bucket.fp = key;
          bucket.count = 1;
          best = std::max(best, bucket.count);
        }
      }
    }
  }
  return best;
}

double DecaySketch::DecayProbability(u32 count) {
  if (count < kDecayTableSize) return decay_table_[count];
  return std::pow(decay_base_, -static_cast<double>(count));
}

u32 DecaySketch::Estimate(u64 key) const {
  u32 best = 0;
  for (std::size_t row = 0; row < depth_; ++row) {
    const Bucket& bucket = buckets_[Index(key, row)];
    if (bucket.fp == key) best = std::max(best, bucket.count);
  }
  return best;
}

}  // namespace usi
