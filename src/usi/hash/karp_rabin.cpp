#include "usi/hash/karp_rabin.hpp"

#include "usi/util/rng.hpp"

namespace usi {

KarpRabinHasher::KarpRabinHasher(u64 seed) {
  Rng rng(seed);
  // Base uniform in [257, p-2]; staying above the alphabet keeps short
  // strings collision-free even against adversarial inputs.
  base_ = 257 + rng.UniformBelow(Mersenne61::kPrime - 259);
  powers_ = {1, base_};
}

KarpRabinHasher KarpRabinHasher::FromBase(u64 base) {
  USI_CHECK(IsValidBase(base));
  KarpRabinHasher hasher;
  hasher.base_ = base;
  hasher.powers_ = {1, base};
  return hasher;
}

u64 KarpRabinHasher::PowerOfBase(std::size_t k) const {
  while (powers_.size() <= k) {
    powers_.push_back(Mersenne61::Mul(powers_.back(), base_));
  }
  return powers_[k];
}

u64 KarpRabinHasher::Hash(std::span<const Symbol> s) const {
  u64 fp = 0;
  for (Symbol c : s) fp = Append(fp, c);
  return fp;
}

PrefixFingerprints::PrefixFingerprints(const Text& text,
                                       const KarpRabinHasher& hasher)
    : hasher_(&hasher) {
  prefix_.resize(text.size() + 1);
  prefix_[0] = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    prefix_[i + 1] = hasher.Append(prefix_[i], text[i]);
  }
  hasher.PowerOfBase(text.size());  // Pre-grow so Fragment() is O(1).
}

}  // namespace usi
