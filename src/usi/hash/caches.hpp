#ifndef USI_HASH_CACHES_HPP_
#define USI_HASH_CACHES_HPP_

/// \file caches.hpp
/// Query-result caches used by the USI baselines (Section IX-C).
///
/// BSL2 caches the K most *recently* queried patterns (LruCache). BSL3
/// caches the K most *frequently* queried patterns with exact counts
/// (LfuCache with an exact count map). BSL4 is BSL3 with the counts held in
/// a count-min sketch (the cache exposes a pluggable counter for this).
/// All caches map PatternKey -> double (the cached global utility).

#include <unordered_map>
#include <vector>

#include "usi/hash/fingerprint_table.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Hash functor so PatternKey can key std::unordered_map in cache internals.
struct PatternKeyHash {
  std::size_t operator()(const PatternKey& key) const {
    return static_cast<std::size_t>(HashPatternKey(key));
  }
};

/// Fixed-capacity least-recently-used cache (intrusive doubly-linked list
/// over a slot vector + hash map; no per-operation allocation after warmup).
class LruCache {
 public:
  /// \p capacity is the maximum number of cached patterns (the baseline's K).
  explicit LruCache(std::size_t capacity);

  /// Looks up \p key; on hit refreshes recency and writes the value.
  bool Get(const PatternKey& key, double* value);

  /// Inserts or refreshes \p key with \p value, evicting the LRU entry
  /// when full.
  void Put(const PatternKey& key, double value);

  /// Number of cached entries.
  std::size_t size() const { return map_.size(); }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  struct Node {
    PatternKey key;
    double value = 0;
    u32 prev = kNil;
    u32 next = kNil;
  };
  static constexpr u32 kNil = ~u32{0};

  void Detach(u32 slot);
  void PushFront(u32 slot);

  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::vector<u32> free_slots_;
  u32 head_ = kNil;
  u32 tail_ = kNil;
  std::unordered_map<PatternKey, u32, PatternKeyHash> map_;
};

/// Fixed-capacity least-frequently-queried cache ("top-K seen so far",
/// BSL3/BSL4). Eviction follows the paper: a pattern enters the cache only
/// when its query count exceeds the smallest count among cached patterns;
/// the displaced pattern is the one with that smallest count. Counting is
/// pluggable: exact (BSL3) or sketch-estimated (BSL4), supplied by the
/// caller via RecordQuery's count argument.
class LfuCache {
 public:
  explicit LfuCache(std::size_t capacity);

  /// Looks up \p key; writes the cached value on hit.
  bool Get(const PatternKey& key, double* value) const;

  /// Updates the cached count of \p key to \p count if cached (heap fix), or
  /// considers admitting (key,value) given its current query \p count.
  void Offer(const PatternKey& key, u64 count, double value);

  /// Number of cached entries.
  std::size_t size() const { return map_.size(); }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  struct Entry {
    PatternKey key;
    double value = 0;
    u64 count = 0;
  };

  // Indexed binary min-heap on Entry::count.
  void SiftUp(std::size_t pos);
  void SiftDown(std::size_t pos);
  void HeapSwap(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::vector<Entry> heap_;
  std::unordered_map<PatternKey, std::size_t, PatternKeyHash> map_;  // key -> heap pos.
};

}  // namespace usi

#endif  // USI_HASH_CACHES_HPP_
