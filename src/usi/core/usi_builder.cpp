#include "usi/core/usi_builder.hpp"

#include <algorithm>
#include <utility>

#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/bit_vector.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/memory.hpp"
#include "usi/util/timer.hpp"

namespace usi {
namespace {

/// Peak-RSS growth since \p before (VmHWM is monotone; 0 when unavailable).
std::size_t PeakRssDelta(std::size_t before) {
  const std::size_t after = ReadPeakRssBytes();
  return after > before ? after - before : 0;
}

}  // namespace

UsiBuilder::UsiBuilder(const WeightedString& ws, const UsiOptions& options)
    : ws_(&ws), options_(options) {}

UsiBuilder::~UsiBuilder() = default;

UsiBuilder& UsiBuilder::UsePool(ThreadPool* pool) {
  pool_ = pool;
  return *this;
}

ThreadPool* UsiBuilder::EffectivePool() {
  if (pool_ != nullptr) return pool_;
  const unsigned threads = options_.threads == 0
                               ? ThreadPool::HardwareConcurrency()
                               : options_.threads;
  if (threads <= 1) return nullptr;
  if (owned_pool_ == nullptr || owned_pool_->thread_count() != threads) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return owned_pool_.get();
}

std::unique_ptr<UsiIndex> UsiBuilder::Build() {
  std::unique_ptr<UsiIndex> index(
      new UsiIndex(UsiIndex::BuildTag{}, *ws_, options_));
  BuildInto(*index);
  return index;
}

void UsiBuilder::BuildInto(UsiIndex& index) {
  stages_.clear();
  Timer total_timer;
  const Text& text = ws_->text();
  const index_t n = ws_->size();
  const u64 k = options_.k > 0 ? options_.k : std::max<u64>(1, n / 100);
  ThreadPool* pool = EffectivePool();

  index.build_info_ = UsiBuildInfo{};
  index.build_info_.k = k;
  index.build_info_.threads_used = pool == nullptr ? 1 : pool->thread_count();

  // Stage "sa": the text index every later phase shares. The SA-IS level-0
  // histogram and LMS gathering run on the pool; the workspace arena is
  // stack-local to the call, so the stage leaves nothing behind but the
  // array itself.
  Timer sa_timer;
  std::size_t rss_before = ReadPeakRssBytes();
  USI_FAILPOINT("build.sa");
  std::vector<index_t> sa = BuildSuffixArray(text, pool);
  index.build_info_.sa_seconds = sa_timer.ElapsedSeconds();
  index.build_info_.sa_rss_delta_bytes = PeakRssDelta(rss_before);
  stages_.push_back(
      {"sa", index.build_info_.sa_seconds, index.build_info_.sa_rss_delta_bytes});

  // Stage "mine": phase (i), the top-K frequent substrings. The stats object
  // (LCP + T/Q/L tables) is scoped to this block and its LCP array is
  // released the moment the node table exists, so none of the mining
  // intermediates are resident while the table stage runs.
  Timer mining_timer;
  rss_before = ReadPeakRssBytes();
  USI_FAILPOINT("build.mine");
  TopKList mined;
  if (options_.miner == UsiMiner::kExact && n > 0) {
    SubstringStats stats(text, std::move(sa), pool);
    stats.ReleaseLcp();  // T/Q/L are built; the LCP scratch is dead weight.
    mined = stats.TopK(k);
    index.sa_ = stats.TakeSa();  // Reuse the shared suffix array.
  } else {
    index.sa_ = std::move(sa);
    if (n > 0) mined = ApproximateTopK(text, k, options_.approx);
  }
  index.build_info_.mining_seconds = mining_timer.ElapsedSeconds();
  index.build_info_.mining_rss_delta_bytes = PeakRssDelta(rss_before);
  stages_.push_back({"mine", index.build_info_.mining_seconds,
                     index.build_info_.mining_rss_delta_bytes});

  index_t tau = kInvalidIndex;
  for (const TopKSubstring& item : mined.items) {
    tau = std::min(tau, item.frequency);
  }
  index.build_info_.tau_k = mined.items.empty() ? 0 : tau;

  // Stage "table": phases (ii)+(iii), parallel over distinct lengths.
  Timer table_timer;
  rss_before = ReadPeakRssBytes();
  USI_FAILPOINT("build.table");
  PopulateTable(index, mined, pool);
  mined = TopKList{};  // The mined list fed the table; release it now.
  index.build_info_.table_seconds = table_timer.ElapsedSeconds();
  index.build_info_.table_rss_delta_bytes = PeakRssDelta(rss_before);
  stages_.push_back({"table", index.build_info_.table_seconds,
                     index.build_info_.table_rss_delta_bytes});

  // Stage "learn": fit the PLA last-mile model over the finished SA (one
  // deterministic sequential pass; learned_sa.hpp). learned_epsilon == 0
  // skips the fit and leaves misses on plain binary search. The vector has
  // its final contents here — only "finalize"'s shrink_to_fit may still
  // move the buffer, and the model stores positions, not pointers, so the
  // fit stays valid across it.
  Timer learn_timer;
  rss_before = ReadPeakRssBytes();
  USI_FAILPOINT("build.learn");
  if (options_.learned_epsilon > 0 && n > 0) {
    index.learned_.Build(text, index.sa_, {options_.learned_epsilon});
  }
  index.build_info_.learn_seconds = learn_timer.ElapsedSeconds();
  index.build_info_.learn_rss_delta_bytes = PeakRssDelta(rss_before);
  stages_.push_back({"learn", index.build_info_.learn_seconds,
                     index.build_info_.learn_rss_delta_bytes});

  // Stage "finalize": drop construction slack from build-owned vectors
  // (SizeInBytes reports used bytes; keeping slack would waste resident
  // memory on every long-lived index) and wire the SA + PSW fallback path.
  Timer finalize_timer;
  rss_before = ReadPeakRssBytes();
  index.sa_.shrink_to_fit();
  // After the shrink: sa_span_ and the fallback engine view the vector's
  // final buffer, which no longer moves for the index lifetime.
  index.sa_span_ = index.sa_;
  index.fallback_ =
      ExhaustiveQueryEngine(text, index.sa_span_, index.psw_, index.kind_);
  if (!index.learned_.empty()) {
    index.fallback_.AttachLearned(&index.learned_);
  }
  stages_.push_back(
      {"finalize", finalize_timer.ElapsedSeconds(), PeakRssDelta(rss_before)});

  index.build_info_.total_seconds = total_timer.ElapsedSeconds();
  index.build_info_.peak_rss_bytes = ReadPeakRssBytes();
}

void UsiBuilder::PopulateTable(UsiIndex& index, const TopKList& mined,
                               ThreadPool* pool) {
  using TableValue = UsiIndex::TableValue;
  const Text& text = ws_->text();
  const index_t n = ws_->size();
  if (mined.items.empty() || n == 0) return;

  // Group mined substrings by length. stable_sort keeps the (deterministic)
  // mined order within each group, so every thread count sees identical
  // groups and identical per-group insertion order.
  std::vector<const TopKSubstring*> by_length(mined.items.size());
  for (std::size_t i = 0; i < mined.items.size(); ++i) {
    by_length[i] = &mined.items[i];
  }
  std::stable_sort(by_length.begin(), by_length.end(),
                   [](const TopKSubstring* a, const TopKSubstring* b) {
                     return a->length < b->length;
                   });

  struct Group {
    index_t len;
    std::size_t begin;  ///< Range into by_length.
    std::size_t end;
  };
  std::vector<Group> groups;
  index_t max_len = 0;
  for (std::size_t begin = 0; begin < by_length.size();) {
    const index_t len = by_length[begin]->length;
    std::size_t end = begin;
    while (end < by_length.size() && by_length[end]->length == len) ++end;
    groups.push_back({len, begin, end});
    max_len = std::max(max_len, len);
    begin = end;
  }
  index.build_info_.num_lengths = static_cast<index_t>(groups.size());

  const unsigned workers =
      pool == nullptr
          ? 1
          : static_cast<unsigned>(std::min<std::size_t>(pool->thread_count(),
                                                        groups.size()));

  // Thread-confined scratch: each worker gets its own Karp-Rabin hasher
  // (copied after pre-growing the power table, so RollingHasher setup never
  // mutates shared state) and its own occurrence-mark bit vector B.
  index.hasher_.ReservePowers(max_len);
  struct Scratch {
    KarpRabinHasher hasher;
    BitVector marks;
  };
  std::vector<Scratch> scratch;
  scratch.reserve(std::max(1u, workers));
  for (unsigned w = 0; w < std::max(1u, workers); ++w) {
    scratch.push_back(Scratch{index.hasher_, BitVector(mined.exact ? n : 0)});
  }

  // Each length group aggregates into a private table; groups touch
  // disjoint key sets because the length is part of the key.
  std::vector<FingerprintTable<TableValue>> partials(groups.size());
  const PrefixSumWeights& psw = index.psw_;
  const GlobalUtilityKind kind = index.kind_;
  const std::vector<index_t>& sa = index.sa_;

  ParallelFor(pool, groups.size(), [&](std::size_t g, unsigned worker) {
    const Group& group = groups[g];
    const index_t len = group.len;
    if (len > n || len == 0) return;  // Nothing of this length fits.
    Scratch& s = scratch[worker];
    FingerprintTable<TableValue> local(group.end - group.begin);

    if (mined.exact) {
      // Mark all occurrence starts of this length's substrings in B.
      for (std::size_t i = group.begin; i < group.end; ++i) {
        const TopKSubstring& item = *by_length[i];
        for (index_t k = item.lb; k <= item.rb; ++k) {
          s.marks.Set(sa[k]);
        }
      }
    } else {
      // Approximate miner gives witnesses, not intervals: pre-insert keys
      // so the window pass below runs in update-only mode.
      for (std::size_t i = group.begin; i < group.end; ++i) {
        const TopKSubstring& item = *by_length[i];
        const u64 fp = s.hasher.Hash(
            std::span<const Symbol>(text.data() + item.witness, len));
        local.FindOrInsert(PatternKey{fp, len}, TableValue{});
      }
    }

    // Slide a length-len window over S; O(1) fingerprint and local utility
    // per position (Section IV, phase (ii)).
    RollingHasher window(s.hasher, len);
    for (index_t i = 0; i + 1 < len && i < n; ++i) window.Push(text[i]);
    for (index_t i = 0; i + len <= n; ++i) {
      if (i == 0) {
        window.Push(text[len - 1]);
      } else {
        window.Roll(text[i - 1], text[i + len - 1]);
      }
      const PatternKey key{window.Fingerprint(), len};
      if (mined.exact) {
        if (!s.marks.Test(i)) continue;
        local.FindOrInsert(key, TableValue{})
            ->Add(psw.LocalUtility(i, len), kind);
      } else {
        TableValue* value = local.Find(key);
        if (value != nullptr) value->Add(psw.LocalUtility(i, len), kind);
      }
    }

    if (mined.exact) {
      // Reset only the bits we set (cheaper than zeroing all of B).
      for (std::size_t i = group.begin; i < group.end; ++i) {
        const TopKSubstring& item = *by_length[i];
        for (index_t k = item.lb; k <= item.rb; ++k) {
          s.marks.Clear(sa[k]);
        }
      }
    }
    partials[g] = std::move(local);
  });

  // Deterministic merge in increasing-length order. Disjoint key sets make
  // every per-key (value, count) pair exactly the sequential one, so the
  // main table's contents — and its canonical serialization — are
  // independent of the schedule and the thread count.
  for (FingerprintTable<TableValue>& partial : partials) {
    partial.ForEach([&](const PatternKey& key, TableValue& value) {
      index.table_.FindOrInsert(key, value);
    });
  }
}

}  // namespace usi
