#include "usi/core/update_tier.hpp"

#include <algorithm>
#include <utility>

#include "usi/util/failpoint.hpp"

namespace usi {

DeltaOverlay::DeltaOverlay(std::shared_ptr<const WeightedString> base,
                           index_t context, u64 epoch, GlobalUtilityKind kind)
    : base_(std::move(base)),
      boundary_(base_->size()),
      d0_(boundary_ - std::min(context, boundary_)),
      epoch_(epoch),
      dyn_([kind] {
        DynamicUsiOptions options;
        // No tracked table: crossing probes filter by end position, which a
        // whole-window aggregate cannot answer — and skipping the table
        // keeps the per-append cost at the tree + PSW work alone.
        options.k = 0;
        options.utility = kind;
        return options;
      }()) {
  // Seed the window [d0, n0): same letters, same weights, so the window's
  // prefix sums reproduce the full text's local utilities.
  dyn_.Reserve(boundary_ - d0_);
  for (index_t i = d0_; i < boundary_; ++i) {
    dyn_.Append(base_->letter(i), base_->weight(i));
  }
}

void DeltaOverlay::Append(std::span<const Symbol> text,
                          std::span<const double> weights) {
  USI_CHECK(text.size() == weights.size());
  // Chaos hook, armed BEFORE any mutation: a fired `delta.append` rejects
  // the whole span with the overlay untouched (strong guarantee).
  USI_FAILPOINT("delta.append");
  std::unique_lock<std::shared_mutex> lock(mu_);
  try {
    for (std::size_t i = 0; i < text.size(); ++i) {
      dyn_.Append(text[i], weights[i]);
    }
  } catch (...) {
    // A mid-span failure leaves the tree/PSW half-extended; there is no
    // rollback, so the overlay marks itself unservable and rethrows — the
    // service drops it (base answers stay exact; the overlay's pending
    // appends are lost with it, which the caller sees as the error).
    poisoned_ = true;
    throw;
  }
}

QueryResult DeltaOverlay::QueryCrossingLocked(std::span<const Symbol> pattern,
                                              Scratch& scratch) const {
  QueryResult out;
  const index_t appended = AppendedLocked();
  if (appended == 0 || pattern.empty()) return out;
  const index_t m = static_cast<index_t>(pattern.size());
  const index_t total = boundary_ + appended;
  if (m > total) return out;
  const GlobalUtilityKind kind = dyn_.utility_kind();
  UtilityAccumulator acc;
  if (d0_ == 0 || m <= boundary_ - d0_ + 1) {
    // Every crossing occurrence lies inside the window: collect, keep the
    // ones ending past the boundary, aggregate through the window PSW.
    dyn_.CollectOccurrencesInto(pattern, scratch.occ, scratch.stack);
    for (const index_t j : scratch.occ) {
      if (d0_ + j + m > boundary_) acc.Add(dyn_.LocalUtility(j, m), kind);
    }
  } else {
    // Pattern longer than the window: verify each candidate start directly
    // against base + appended content. Candidates are the O(m + appended)
    // starts whose occurrence would end past the boundary.
    const index_t first = boundary_ >= m ? boundary_ - m + 1 : 0;
    for (index_t i = first; i + m <= total; ++i) {
      bool match = true;
      for (index_t k = 0; k < m && match; ++k) {
        match = SymbolAtLocked(i + k) == pattern[k];
      }
      if (!match) continue;
      double local = 0;
      for (index_t k = 0; k < m; ++k) local += WeightAtLocked(i + k);
      acc.Add(local, kind);
    }
  }
  if (acc.count == 0) return out;
  out.utility = acc.Finalize(kind);
  out.occurrences = acc.count;
  return out;
}

WeightedString DeltaOverlay::SnapshotMerged() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const index_t total = TotalSizeLocked();
  Text text;
  std::vector<double> weights;
  text.reserve(total);
  weights.reserve(total);
  text.insert(text.end(), base_->text().begin(),
              base_->text().begin() + d0_);
  weights.insert(weights.end(), base_->weights().begin(),
                 base_->weights().begin() + d0_);
  text.insert(text.end(), dyn_.text().begin(), dyn_.text().end());
  weights.insert(weights.end(), dyn_.weights().begin(), dyn_.weights().end());
  return WeightedString(std::move(text), std::move(weights));
}

void DeltaOverlay::AppendFrom(const DeltaOverlay& from, index_t from_pos,
                              index_t count) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (index_t i = 0; i < count; ++i) {
    dyn_.Append(from.SymbolAtLocked(from_pos + i),
                from.WeightAtLocked(from_pos + i));
  }
}

void DeltaOverlay::Rebase(index_t new_boundary) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  USI_CHECK(new_boundary >= boundary_ && new_boundary <= TotalSizeLocked());
  boundary_ = new_boundary;
}

DeltaOverlayStats DeltaOverlay::StatsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  DeltaOverlayStats stats;
  stats.boundary = boundary_;
  stats.appended = AppendedLocked();
  stats.window = boundary_ - d0_;
  stats.staleness = dyn_.StalenessBound();
  stats.bytes = dyn_.SizeInBytes();
  stats.epoch = epoch_;
  return stats;
}

}  // namespace usi
