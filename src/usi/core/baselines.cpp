#include "usi/core/baselines.hpp"

namespace usi {

std::unique_ptr<UsiBaseline> MakeBaseline(BaselineKind kind,
                                          const BaselineContext& context) {
  switch (kind) {
    case BaselineKind::kBsl1:
      return std::make_unique<Bsl1NoCache>(context);
    case BaselineKind::kBsl2:
      return std::make_unique<Bsl2Lru>(context);
    case BaselineKind::kBsl3:
      return std::make_unique<Bsl3TopSeen>(context);
    case BaselineKind::kBsl4:
      return std::make_unique<Bsl4SketchTopSeen>(context);
  }
  return nullptr;
}

Bsl1NoCache::Bsl1NoCache(const BaselineContext& context)
    : context_(context),
      engine_(context.ws->text(), *context.sa, *context.psw, context.kind),
      hasher_(context.hash_seed) {
  USI_CHECK(context.ws != nullptr && context.sa != nullptr &&
            context.psw != nullptr);
}

QueryResult Bsl1NoCache::Query(std::span<const Symbol> pattern) {
  return engine_.Compute(pattern);
}

std::size_t Bsl1NoCache::SizeInBytes() const {
  return context_.sa->capacity() * sizeof(index_t) + context_.psw->SizeInBytes();
}

Bsl2Lru::Bsl2Lru(const BaselineContext& context)
    : Bsl1NoCache(context), cache_(context.cache_capacity) {}

QueryResult Bsl2Lru::Query(std::span<const Symbol> pattern) {
  const PatternKey key{hasher_.Hash(pattern),
                       static_cast<u32>(pattern.size())};
  QueryResult result;
  if (cache_.Get(key, &result.utility)) {
    result.from_hash_table = true;
    return result;
  }
  result = engine_.Compute(pattern);
  cache_.Put(key, result.utility);
  return result;
}

std::size_t Bsl2Lru::SizeInBytes() const {
  return Bsl1NoCache::SizeInBytes() + cache_.SizeInBytes();
}

Bsl3TopSeen::Bsl3TopSeen(const BaselineContext& context)
    : Bsl1NoCache(context), cache_(context.cache_capacity) {
  counts_.reserve(context.cache_capacity * 4);
}

QueryResult Bsl3TopSeen::Query(std::span<const Symbol> pattern) {
  const PatternKey key{hasher_.Hash(pattern),
                       static_cast<u32>(pattern.size())};
  const u64 count = ++counts_[key];
  QueryResult result;
  if (cache_.Get(key, &result.utility)) {
    cache_.Offer(key, count, result.utility);  // Heap fix for the new count.
    result.from_hash_table = true;
    return result;
  }
  result = engine_.Compute(pattern);
  cache_.Offer(key, count, result.utility);
  return result;
}

std::size_t Bsl3TopSeen::SizeInBytes() const {
  return Bsl1NoCache::SizeInBytes() + cache_.SizeInBytes() +
         counts_.size() * (sizeof(PatternKey) + sizeof(u64) + sizeof(void*));
}

Bsl4SketchTopSeen::Bsl4SketchTopSeen(const BaselineContext& context)
    : Bsl1NoCache(context),
      cache_(context.cache_capacity),
      counts_(/*width=*/std::max<std::size_t>(64, 2 * context.cache_capacity),
              /*depth=*/4, context.hash_seed ^ 0xB514) {}

QueryResult Bsl4SketchTopSeen::Query(std::span<const Symbol> pattern) {
  const PatternKey key{hasher_.Hash(pattern),
                       static_cast<u32>(pattern.size())};
  const u64 sketch_key = HashPatternKey(key);
  counts_.Add(sketch_key);
  const u64 count = counts_.Estimate(sketch_key);
  QueryResult result;
  if (cache_.Get(key, &result.utility)) {
    cache_.Offer(key, count, result.utility);
    result.from_hash_table = true;
    return result;
  }
  result = engine_.Compute(pattern);
  cache_.Offer(key, count, result.utility);
  return result;
}

std::size_t Bsl4SketchTopSeen::SizeInBytes() const {
  return Bsl1NoCache::SizeInBytes() + cache_.SizeInBytes() +
         counts_.SizeInBytes();
}

}  // namespace usi
