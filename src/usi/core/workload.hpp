#ifndef USI_CORE_WORKLOAD_HPP_
#define USI_CORE_WORKLOAD_HPP_

/// \file workload.hpp
/// Query workload generators of Section IX-C ("Parameters").
///
/// W1: 90% of the query patterns are drawn from the top-(n/50) frequent
/// substrings of the text (top-(n/60) for ECOLI in the paper); the remaining
/// 10% are drawn either from the already-selected frequent patterns or as
/// random substrings with length uniform in a dataset-specific range.
///
/// W2,p: p% of the queries are drawn from the top-(n/100) frequent
/// substrings; the remaining (100-p)% follow the W1 recipe.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Tuning for the workload generators.
struct WorkloadOptions {
  std::size_t num_queries = 10'000;
  index_t top_divisor = 50;     ///< Frequent pool = top-(n/top_divisor).
  double frequent_fraction = 0.9;  ///< W1's 90%; W2 sets p/100.
  index_t random_min_len = 1;   ///< Random-substring length range.
  index_t random_max_len = 5'000;
  u64 seed = 0x30AD;
};

/// A generated workload: patterns plus bookkeeping for reporting.
struct Workload {
  std::vector<Text> patterns;
  std::size_t from_frequent = 0;  ///< Queries drawn from the frequent pool.
  std::size_t random_substrings = 0;
};

/// Builds a W1-style workload. \p frequent_pool should be the top-(n/d)
/// frequent substrings of \p text (mined exactly); witnesses materialize the
/// patterns.
Workload MakeWorkloadW1(const Text& text,
                        const std::vector<TopKSubstring>& frequent_pool,
                        const WorkloadOptions& options);

/// Builds a W2,p workload: \p p_percent of queries from \p frequent_pool_w2
/// (top-(n/100)), the rest per W1 from \p frequent_pool_w1.
Workload MakeWorkloadW2(const Text& text,
                        const std::vector<TopKSubstring>& frequent_pool_w2,
                        const std::vector<TopKSubstring>& frequent_pool_w1,
                        u32 p_percent, const WorkloadOptions& options);

/// Tuning for the skewed (Zipf) generator.
struct ZipfWorkloadOptions {
  std::size_t num_queries = 10'000;
  /// Distinct hot patterns; rank r in [0, pool_size) is drawn with
  /// probability proportional to (r+1)^-s.
  std::size_t pool_size = 512;
  /// Zipf exponent: 0 = uniform over the pool, 1 = classic Zipf; larger
  /// concentrates traffic on the first ranks harder.
  double s = 1.0;
  /// Fraction of queries drawn from the ranked pool; the rest are fresh
  /// uniform-random substrings (the cold tail).
  double hot_fraction = 0.9;
  index_t min_len = 4;  ///< Pattern length range (pool and tail).
  index_t max_len = 64;
  u64 seed = 0x21BF;
};

/// Builds a skewed hot-pattern workload: a ranked pool of \p pool_size
/// random substrings queried with Zipf(s) rank frequencies, mixed with a
/// uniform-random cold tail. This is the realistic "millions of users hit
/// the same few patterns" traffic shape that hot-pattern caches and the
/// degraded tier's admission learning are built for; W1/W2 above are the
/// paper's benchmark mixes, which need a mined frequent pool.
/// `from_frequent` counts the pool draws, `random_substrings` the tail.
Workload MakeWorkloadZipf(const Text& text,
                          const ZipfWorkloadOptions& options);

}  // namespace usi

#endif  // USI_CORE_WORKLOAD_HPP_
