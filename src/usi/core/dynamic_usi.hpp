#ifndef USI_CORE_DYNAMIC_USI_HPP_
#define USI_CORE_DYNAMIC_USI_HPP_

/// \file dynamic_usi.hpp
/// Append-only dynamic USI — the partial solution sketched in Section X.
///
/// State per the paper: an online (Ukkonen) suffix tree, the PSW array
/// extended one position per append, and a table of prefix fingerprints so
/// any fragment fingerprint is O(1). The hash table H caches global
/// utilities of a tracked substring set (initially the top-K of the seed
/// string).
///
/// Append(c, w): extends PSW, the fingerprint table, and the suffix tree.
/// Every *new* occurrence created by an append is a suffix of the new text
/// (frequencies grow monotonically, as Section X observes), so H stays exact
/// by probing, for each tracked length l, the fingerprint of the new
/// length-l suffix and folding in its local utility — O(L_K) per append.
///
/// What stays hard is membership maintenance: substrings can rise into the
/// true top-K as the text grows. Like the paper, we do not chase that
/// incrementally (it is the admitted "very costly" part); RefreshTopK()
/// recomputes the tracked set exactly on demand, and StalenessBound() tells
/// callers how far the tracked set may have drifted. Queries are exact
/// either way: misses fall back to the suffix tree + PSW.

#include <span>
#include <vector>

#include "usi/core/utility.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/suffix_tree.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {

/// Options for DynamicUsi.
struct DynamicUsiOptions {
  u64 k = 1024;  ///< Size of the tracked (precomputed) substring set.
  GlobalUtilityKind utility = GlobalUtilityKind::kSum;
  u64 hash_seed = 0xD1D1;
  /// Hard bound on StalenessBound(): when > 0, Append triggers an automatic
  /// RefreshTopK once this many appends have accumulated since the last
  /// refresh, so the tracked set's drift stays bounded without the caller
  /// scheduling refreshes. 0 = unbounded (refresh only on demand).
  index_t max_staleness = 0;
};

/// Append-only USI index.
class DynamicUsi {
 public:
  explicit DynamicUsi(const DynamicUsiOptions& options = {});

  /// Builds from a seed weighted string (appends every position).
  DynamicUsi(const WeightedString& seed, const DynamicUsiOptions& options = {});

  /// Appends letter \p c with utility \p w. O(L_K) table maintenance plus
  /// amortized-O(1) suffix-tree work (ancestor counts are updated lazily by
  /// the tree's leaf bookkeeping). With options.max_staleness > 0 an
  /// automatic RefreshTopK runs once the bound is reached.
  void Append(Symbol c, double w);

  /// Pre-grows the append-path arrays (text, weights, PSW, prefix
  /// fingerprints, hasher powers) for a text of \p n positions, so appends
  /// up to that length skip their geometric reallocation steps. The suffix
  /// tree still allocates nodes as structure demands — Reserve bounds the
  /// array churn, it cannot make appends allocation-free.
  void Reserve(index_t n);

  /// Answers U(P) over the current text. Exact: hash hit (tracked set) in
  /// O(m), otherwise suffix-tree search + PSW aggregation.
  QueryResult Query(std::span<const Symbol> pattern) const;

  /// Start positions of \p pattern, written into \p out with \p stack as
  /// traversal scratch (both cleared first; zero allocations once warm).
  /// The update tier's boundary-crossing probe runs on this.
  void CollectOccurrencesInto(std::span<const Symbol> pattern,
                              std::vector<index_t>& out,
                              std::vector<index_t>& stack) const {
    tree_.CollectOccurrencesInto(pattern, out, stack);
  }

  /// Local utility of the length-\p len fragment at \p start (PSW lookup).
  double LocalUtility(index_t start, index_t len) const {
    return psw_.LocalUtility(start, len);
  }

  /// The aggregation kind answers are finalized with.
  GlobalUtilityKind utility_kind() const { return options_.utility; }

  /// Recomputes the tracked top-K set from scratch (O(n) — the cost the
  /// paper defers; call at a cadence of your choosing).
  void RefreshTopK();

  /// Appends since the last RefreshTopK; bounds how much the true top-K can
  /// have drifted from the tracked set (each append changes frequencies of
  /// suffixes only).
  index_t StalenessBound() const { return appends_since_refresh_; }

  /// Current text length.
  index_t size() const { return static_cast<index_t>(text_.size()); }

  /// Current text.
  const Text& text() const { return text_; }

  /// Per-position utilities, parallel to text().
  const std::vector<double>& weights() const { return weights_; }

  /// Number of tracked substrings in H.
  std::size_t TrackedEntries() const { return table_.size(); }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  struct TableValue {
    UtilityAccumulator acc;
  };

  DynamicUsiOptions options_;
  Text text_;
  std::vector<double> weights_;
  PrefixSumWeights psw_;
  KarpRabinHasher hasher_;
  std::vector<u64> prefix_fps_;  ///< prefix_fps_[k] = fp(text[0..k)).
  SuffixTree tree_;
  FingerprintTable<TableValue> table_;
  std::vector<index_t> tracked_lengths_;  ///< Distinct lengths in H, sorted.
  index_t appends_since_refresh_ = 0;
};

}  // namespace usi

#endif  // USI_CORE_DYNAMIC_USI_HPP_
