#ifndef USI_CORE_UTILITY_HPP_
#define USI_CORE_UTILITY_HPP_

/// \file utility.hpp
/// The utility-function framework of Section III.
///
/// Local utility: u(i, l) aggregates w[i..i+l-1]; the class U of the paper
/// requires the sliding-window property, whose canonical instance is the
/// sum — implemented by PrefixSumWeights in O(1) per fragment after an O(n)
/// scan. Global utility: U(P) aggregates the local utilities of all
/// occurrences; any linear-time-computable aggregator qualifies, and the four
/// the paper names (sum, min, max, avg) are provided. The default everywhere
/// is the commonly-used "sum of sums" [1], as in Section IX.

#include <span>
#include <vector>

#include "usi/core/query_engine.hpp"
#include "usi/suffix/learned_sa.hpp"
#include "usi/suffix/sa_search.hpp"
#include "usi/text/weighted_string.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Global aggregator over occurrence-local utilities (the paper's U).
enum class GlobalUtilityKind : u8 { kSum, kMin, kMax, kAvg };

/// Number of GlobalUtilityKind enumerators. Loaders validate serialized kind
/// bytes against this; update the anchor when extending the enum past kAvg.
inline constexpr u8 kNumGlobalUtilityKinds =
    static_cast<u8>(GlobalUtilityKind::kAvg) + 1;

/// Human-readable aggregator name.
const char* GlobalUtilityKindName(GlobalUtilityKind kind);

/// The PSW array of Section IV: PSW[i] = u(0, i+1), so any local utility is
/// u(i, l) = PSW[i+l-1] - PSW[i-1] in O(1) (sliding-window property).
///
/// Storage is either owned (built from a WeightedString, appendable) or a
/// non-owning view over an external array (FromRaw — index format v3 serves
/// the PSW section straight out of an mmap). Reads always go through
/// data_/size_, so both modes share one branch-free query path; the backing
/// of a view must outlive the object.
class PrefixSumWeights {
 public:
  PrefixSumWeights() = default;

  /// Builds PSW from \p ws in one scan.
  explicit PrefixSumWeights(const WeightedString& ws);

  PrefixSumWeights(const PrefixSumWeights& other) { *this = other; }
  PrefixSumWeights& operator=(const PrefixSumWeights& other) {
    psw_ = other.psw_;
    view_ = other.view_;
    size_ = other.size_;
    data_ = view_ ? other.data_ : psw_.data();
    return *this;
  }
  PrefixSumWeights(PrefixSumWeights&& other) noexcept {
    *this = std::move(other);
  }
  PrefixSumWeights& operator=(PrefixSumWeights&& other) noexcept {
    psw_ = std::move(other.psw_);
    view_ = other.view_;
    size_ = other.size_;
    data_ = view_ ? other.data_ : psw_.data();
    return *this;
  }

  /// Wraps an external prefix-sum array of \p size doubles without copying.
  /// The array must already hold inclusive prefix sums and must outlive the
  /// returned object.
  static PrefixSumWeights FromRaw(const double* data, index_t size) {
    PrefixSumWeights psw;
    psw.data_ = data;
    psw.size_ = size;
    psw.view_ = true;
    return psw;
  }

  /// Local utility of the fragment starting at \p i with length \p len.
  double LocalUtility(index_t i, index_t len) const {
    USI_DCHECK(len > 0 && i + len <= size_);
    const double before = (i == 0) ? 0.0 : data_[i - 1];
    return data_[i + len - 1] - before;
  }

  /// Extends PSW by one position of weight \p w (DynamicUsi appends).
  /// Views are immutable; appending to one is a programming error.
  void Append(double w) {
    USI_CHECK(!view_);
    psw_.push_back((psw_.empty() ? 0.0 : psw_.back()) + w);
    data_ = psw_.data();
    size_ = psw_.size();
  }

  /// Pre-grows the owned array so Append up to \p n positions skips its
  /// geometric reallocation steps. Views are immutable; reserving on one is
  /// a programming error.
  void Reserve(index_t n) {
    USI_CHECK(!view_);
    psw_.reserve(n);
    data_ = psw_.data();
  }

  /// Number of covered positions.
  index_t size() const { return static_cast<index_t>(size_); }

  /// First prefix sum (size() doubles); what SaveToFile serializes.
  const double* data() const { return data_; }

  /// Whether the array is owned (false for FromRaw views).
  bool OwnsStorage() const { return !view_; }

  /// Heap footprint in bytes; views report the bytes they reference.
  std::size_t SizeInBytes() const {
    return view_ ? size_ * sizeof(double) : psw_.capacity() * sizeof(double);
  }

 private:
  std::vector<double> psw_;
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  bool view_ = false;
};

/// Running aggregate of one global utility; Add() folds in one occurrence's
/// local utility, Finalize() produces U(P).
struct UtilityAccumulator {
  double value = 0;
  index_t count = 0;

  void Add(double local, GlobalUtilityKind kind);
  double Finalize(GlobalUtilityKind kind) const;
};

/// Merges two finalized answers over DISJOINT occurrence sets of the same
/// pattern (the update tier's base + delta split: base counts occurrences
/// ending inside the pinned generation, the delta counts those ending past
/// it) into the answer over their union. Exact for kSum/kMin/kMax — the
/// aggregates compose losslessly; kAvg reconstructs each side's sum from
/// its average, so the merged value can differ from a monolithic
/// computation by one floating-point rounding (occurrence counts are always
/// exact). Either side may be empty (count 0).
QueryResult MergeQueryResults(const QueryResult& base, const QueryResult& delta,
                              GlobalUtilityKind kind);

/// The prefix-sums query path shared by USI's fallback and all baselines:
/// locate the pattern in the suffix array (O(m log n)), then aggregate the
/// local utility of every occurrence through PSW (O(occ)). QueryResult and
/// the QueryEngine interface live in query_engine.hpp.
class ExhaustiveQueryEngine : public QueryEngine {
 public:
  /// Default-constructed engines are unwired: Compute/Query on them is a
  /// programming error and aborts via USI_CHECK (fail loudly rather than
  /// dereference null borrows).
  ExhaustiveQueryEngine() = default;

  /// \p text and \p psw are borrowed, \p sa viewed; all must outlive the
  /// engine. Taking the SA as a span lets heap-built and mmap-backed indexes
  /// share this engine unchanged.
  ExhaustiveQueryEngine(const Text& text, std::span<const index_t> sa,
                        const PrefixSumWeights& psw, GlobalUtilityKind kind)
      : text_(&text), sa_(sa), psw_(&psw), kind_(kind), wired_(true) {}

  /// Attaches a learned last-mile model (borrowed, may be null to detach;
  /// must outlive the engine). When present and non-empty, Compute locates
  /// intervals through LearnedSa::FindInterval — byte-identical answers,
  /// fewer cache-missing probes. Engines copied by value carry the pointer
  /// with them, so the model must outlive every copy too.
  void AttachLearned(const LearnedSa* learned) { learned_ = learned; }

  /// The attached model (null when searching plain).
  const LearnedSa* learned() const { return learned_; }

  /// Computes U(pattern) by full occurrence aggregation.
  QueryResult Compute(std::span<const Symbol> pattern) const;

  /// Locates the pattern's SA interval — through the learned model when one
  /// is attached, plain binary search otherwise. Identical answers.
  SaInterval Locate(std::span<const Symbol> pattern) const;

  /// Aggregates a located interval into U(P) for a pattern of length \p m
  /// (the occurrence-aggregation half of Compute; the batched fallback path
  /// resolves intervals in bulk and aggregates them through this). SA and
  /// PSW reads run with software prefetch — occurrence walks are SA-ordered
  /// random access into both arrays.
  QueryResult Aggregate(SaInterval interval, index_t m) const;

  /// QueryEngine interface. Stateless per query, so concurrent calls are
  /// safe once the engine is wired.
  QueryResult Query(std::span<const Symbol> pattern) override {
    return Compute(pattern);
  }
  const char* Name() const override { return "SA+PSW"; }
  std::size_t SizeInBytes() const override;
  bool SupportsConcurrentQuery() const override { return true; }

  /// Whether the engine borrows a live text/SA/PSW triple.
  bool wired() const { return wired_; }

  GlobalUtilityKind kind() const { return kind_; }

 private:
  const Text* text_ = nullptr;
  std::span<const index_t> sa_;
  const PrefixSumWeights* psw_ = nullptr;
  const LearnedSa* learned_ = nullptr;  ///< Borrowed; null = plain search.
  GlobalUtilityKind kind_ = GlobalUtilityKind::kSum;
  bool wired_ = false;
};

}  // namespace usi

#endif  // USI_CORE_UTILITY_HPP_
