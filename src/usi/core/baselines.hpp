#ifndef USI_CORE_BASELINES_HPP_
#define USI_CORE_BASELINES_HPP_

/// \file baselines.hpp
/// The four nontrivial baselines of Section IX-C. All share the suffix array
/// and PSW with our index — the comparison isolates what is cached:
///
///  * BSL1 — no query caching; every query runs SA + PSW.
///  * BSL2 — LRU: caches the global utilities of the K most recently queried
///    patterns.
///  * BSL3 — "top-K seen so far": caches the K most frequently queried
///    patterns; exact query counts via a hash map, eviction via a min-heap.
///  * BSL4 — BSL3 with the query counts in a count-min sketch (space-
///    efficient, as in [24]).
///
/// None has a query-time guarantee; USI_TOP-K's O(m + tau_K) bound is the
/// contribution they are compared against.

#include <memory>
#include <span>
#include <unordered_map>

#include "usi/core/query_engine.hpp"
#include "usi/core/utility.hpp"
#include "usi/hash/caches.hpp"
#include "usi/hash/count_min_sketch.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {

/// Baselines are ordinary QueryEngines; the alias marks the Section IX-C
/// comparison set. Benches sweep them and USI through the same interface,
/// and UsiService serves the caching ones sequentially (they mutate state
/// per query, so SupportsConcurrentQuery() is false for BSL2-4).
using UsiBaseline = QueryEngine;

/// Identifier for the factory.
enum class BaselineKind : u8 { kBsl1, kBsl2, kBsl3, kBsl4 };

/// Shared construction inputs. The referenced objects must outlive the
/// baseline; building them once and sharing matches the paper's setup where
/// all baselines use the same SA(S) and PSW.
struct BaselineContext {
  const WeightedString* ws = nullptr;
  const std::vector<index_t>* sa = nullptr;
  const PrefixSumWeights* psw = nullptr;
  GlobalUtilityKind kind = GlobalUtilityKind::kSum;
  u64 hash_seed = 0x05111;
  std::size_t cache_capacity = 1024;  ///< The baselines' K.
};

/// Builds a baseline of the requested kind.
std::unique_ptr<UsiBaseline> MakeBaseline(BaselineKind kind,
                                          const BaselineContext& context);

/// BSL1: no caching.
class Bsl1NoCache : public UsiBaseline {
 public:
  explicit Bsl1NoCache(const BaselineContext& context);
  QueryResult Query(std::span<const Symbol> pattern) override;
  const char* Name() const override { return "BSL1"; }
  std::size_t SizeInBytes() const override;
  /// BSL1 keeps no per-query state; concurrent queries are safe.
  bool SupportsConcurrentQuery() const override { return true; }

 protected:
  BaselineContext context_;
  ExhaustiveQueryEngine engine_;
  KarpRabinHasher hasher_;
};

/// BSL2: LRU cache of recently queried patterns.
class Bsl2Lru : public Bsl1NoCache {
 public:
  explicit Bsl2Lru(const BaselineContext& context);
  QueryResult Query(std::span<const Symbol> pattern) override;
  const char* Name() const override { return "BSL2"; }
  std::size_t SizeInBytes() const override;
  bool SupportsConcurrentQuery() const override { return false; }

 private:
  LruCache cache_;
};

/// BSL3: top-K most frequently queried patterns, exact counts.
class Bsl3TopSeen : public Bsl1NoCache {
 public:
  explicit Bsl3TopSeen(const BaselineContext& context);
  QueryResult Query(std::span<const Symbol> pattern) override;
  const char* Name() const override { return "BSL3"; }
  std::size_t SizeInBytes() const override;
  bool SupportsConcurrentQuery() const override { return false; }

 private:
  LfuCache cache_;
  std::unordered_map<PatternKey, u64, PatternKeyHash> counts_;
};

/// BSL4: top-K most frequently queried patterns, sketched counts.
class Bsl4SketchTopSeen : public Bsl1NoCache {
 public:
  explicit Bsl4SketchTopSeen(const BaselineContext& context);
  QueryResult Query(std::span<const Symbol> pattern) override;
  const char* Name() const override { return "BSL4"; }
  std::size_t SizeInBytes() const override;
  bool SupportsConcurrentQuery() const override { return false; }

 private:
  LfuCache cache_;
  CountMinSketch counts_;
};

}  // namespace usi

#endif  // USI_CORE_BASELINES_HPP_
