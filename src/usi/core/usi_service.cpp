#include "usi/core/usi_service.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "usi/parallel/thread_pool.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/mapped_file.hpp"
#include "usi/util/timer.hpp"

namespace usi {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kBusy: return "busy";
    case ServeStatus::kUnknownText: return "unknown-text";
    case ServeStatus::kNotReady: return "not-ready";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ServeStatus::kIndexUnavailable: return "index-unavailable";
    case ServeStatus::kDegraded: return "degraded";
  }
  return "?";
}

namespace {

/// Filler for result slots a batch never reached (deadline expiry) or lost
/// (engine fault): zeros, tagged kNone so callers can tell "no answer" from
/// an exact answer that happens to be zero.
QueryResult UnansweredResult() {
  QueryResult result;
  result.provenance = AnswerProvenance::kNone;
  return result;
}

}  // namespace

UsiService::UsiService(QueryEngine& engine, const UsiServiceOptions& options)
    : engine_(&engine), options_(options) {
  const unsigned threads = options.threads == 0
                               ? ThreadPool::HardwareConcurrency()
                               : options.threads;
  if (threads > 1 && engine.SupportsConcurrentQuery()) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

UsiService::UsiService(QueryEngine& engine, ThreadPool* pool,
                       const UsiServiceOptions& options)
    : engine_(&engine), pool_(pool), options_(options) {}

UsiService::~UsiService() = default;

unsigned UsiService::threads() const {
  if (pool_ == nullptr || !engine_->SupportsConcurrentQuery()) return 1;
  return std::max(1u, pool_->thread_count());
}

std::vector<QueryResult> UsiService::QueryBatch(
    std::span<const Text> patterns) {
  std::vector<QueryResult> results(patterns.size());
  QueryBatchInto(patterns, results);
  return results;
}

std::unique_ptr<UsiService::ScratchBlock> UsiService::AcquireScratch() {
  const std::size_t workers = std::max(1u, threads());
  std::unique_ptr<ScratchBlock> block;
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_free_.empty()) {
      block = std::move(scratch_free_.back());
      scratch_free_.pop_back();
    }
  }
  if (block == nullptr) block = std::make_unique<ScratchBlock>();
  if (block->size() < workers) block->resize(workers);
  return block;
}

void UsiService::ReleaseScratch(std::unique_ptr<ScratchBlock> block) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_free_.push_back(std::move(block));
}

ServeStatus UsiService::QueryBatchInto(std::span<const Text> patterns,
                                       std::span<QueryResult> results,
                                       UsiBatchStats* stats,
                                       const UsiBatchOptions& batch_options) {
  return QueryBatchIntoImpl(patterns, results, stats, batch_options);
}

ServeStatus UsiService::QueryBatchInto(std::span<const PatternSpan> patterns,
                                       std::span<QueryResult> results,
                                       UsiBatchStats* stats,
                                       const UsiBatchOptions& batch_options) {
  return QueryBatchIntoImpl(patterns, results, stats, batch_options);
}

template <typename P>
ServeStatus UsiService::QueryBatchIntoImpl(
    std::span<const P> patterns, std::span<QueryResult> results,
    UsiBatchStats* stats, const UsiBatchOptions& batch_options) {
  USI_CHECK(results.size() >= patterns.size());
  Timer timer;
  UsiBatchStats batch;
  batch.patterns = patterns.size();

  // Backpressure: the in-flight cap is checked before ANY work — a rejected
  // batch touches no scratch, no results, and none of the served totals
  // (only the rejected counter).
  const u64 cap = static_cast<u64>(options_.max_inflight_batches);
  if (cap != 0) {
    const u64 inflight =
        inflight_batches_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (inflight > cap) {
      inflight_batches_.fetch_sub(1, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      totals_.rejected += 1;
      return ServeStatus::kBusy;
    }
  }
  struct InflightRelease {
    std::atomic<u64>* counter;
    ~InflightRelease() {
      if (counter != nullptr) {
        counter->fetch_sub(1, std::memory_order_release);
      }
    }
  } inflight_release{cap != 0 ? &inflight_batches_ : nullptr};

  if (patterns.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_ = batch;
    totals_.batches += 1;
    if (stats != nullptr) *stats = batch;
    return ServeStatus::kOk;
  }

  BatchControl control;
  if (batch_options.deadline.has_value()) {
    control.has_deadline = true;
    control.deadline = *batch_options.deadline;
  }
  std::unique_ptr<ScratchBlock> scratch = AcquireScratch();

  // Once per batch, before any fan-out: the engine pre-grows state the
  // whole batch shares read-only (UsiIndex reserves Karp-Rabin powers for
  // the batch's max pattern length). Growth may reallocate under a
  // concurrent batch's readers, so it runs with the write side of the
  // prepare lock while every serving batch holds the read side. The engine
  // reports (via BatchPrepared) when its monotonically-grown state already
  // covers this batch — the warm steady state — and the exclusive section
  // is skipped entirely.
  std::shared_lock<std::shared_mutex> serving(prepare_rw_);
  if (!engine_->BatchPrepared(patterns)) {
    serving.unlock();
    {
      std::unique_lock<std::shared_mutex> preparing(prepare_rw_);
      engine_->PrepareBatch(patterns);
    }
    // No re-check needed: preparation grows state monotonically, so this
    // batch stays covered no matter how the locks interleave from here.
    serving.lock();
  }

  // The batch's cancellation state rides through the leased scratch (one
  // pointer per worker slot); it MUST be cleared before the block returns
  // to the free list — `control` lives on this stack frame.
  for (QueryScratch& s : *scratch) s.control = &control;

  // Containment wrapper around every engine call: a SIGBUS on a registered
  // mapped range (MappedFaultGuard), a simulated fault (the
  // serve.mapped_fault failpoint, the TSan-safe chaos path), or an
  // exception escaping the engine all turn into "this span failed" —
  // default results, batch reported kIndexUnavailable — instead of killing
  // the process or the pool worker.
  std::atomic<bool> unavailable{false};
  std::atomic<std::size_t> answered{0};
  const auto serve_span = [&](std::span<const P> span_patterns,
                              std::span<QueryResult> span_results,
                              QueryScratch* span_scratch) {
    bool ok = false;
    try {
      if (USI_FAILPOINT_FIRED("serve.mapped_fault")) {
        ok = false;
      } else {
        ok = MappedFaultGuard::Run([&] {
          engine_->QueryBatch(span_patterns, span_results, span_scratch);
        });
      }
    } catch (...) {
      ok = false;
    }
    if (ok) {
      answered.fetch_add(span_patterns.size(), std::memory_order_relaxed);
    } else {
      std::fill(span_results.begin(), span_results.end(), UnansweredResult());
      unavailable.store(true, std::memory_order_relaxed);
    }
  };

  const unsigned workers = threads();
  const std::size_t min_shard = std::max<std::size_t>(1, options_.min_shard_size);
  if (workers <= 1 || patterns.size() < 2 * min_shard) {
    // Sequential serving, in batch order (also the only correct mode for
    // caching engines, whose answers depend on query order). With a
    // deadline the batch runs in min_shard-sized chunks so the cooperative
    // checkpoints exist here too; without one it stays a single engine call.
    if (!control.has_deadline) {
      serve_span(patterns, results.first(patterns.size()), &(*scratch)[0]);
    } else {
      for (std::size_t begin = 0; begin < patterns.size();
           begin += min_shard) {
        const std::size_t end =
            std::min(patterns.size(), begin + min_shard);
        if (control.Expired()) {
          std::fill(results.begin() + begin,
                    results.begin() + patterns.size(), UnansweredResult());
          break;
        }
        serve_span(patterns.subspan(begin, end - begin),
                   results.subspan(begin, end - begin), &(*scratch)[0]);
      }
    }
  } else {
    // Contiguous shards, a few per worker so uneven per-pattern costs (hash
    // hit vs SA fallback) balance out. Every pattern writes its own result
    // slot, so the output is schedule-independent. Each shard runs the
    // engine's batch path with the scratch of the worker it landed on.
    // The deadline checkpoint sits between shards: an expired shard writes
    // defaults and returns, so overshoot is bounded by one shard of work.
    const std::size_t target_shards = static_cast<std::size_t>(workers) * 4;
    const std::size_t shard_size = std::max(
        min_shard, (patterns.size() + target_shards - 1) / target_shards);
    const std::size_t shards = (patterns.size() + shard_size - 1) / shard_size;
    ParallelFor(pool_, shards, [&](std::size_t s, unsigned worker) {
      const std::size_t begin = s * shard_size;
      const std::size_t end = std::min(patterns.size(), begin + shard_size);
      if (control.Expired()) {
        std::fill(results.begin() + begin, results.begin() + end,
                  UnansweredResult());
        return;
      }
      serve_span(patterns.subspan(begin, end - begin),
                 results.subspan(begin, end - begin), &(*scratch)[worker]);
    });
    batch.shards = shards;
    // Fewer shards than workers means only that many bodies ever ran
    // concurrently; report the parallelism the timing actually reflects.
    batch.threads_used =
        static_cast<unsigned>(std::min<std::size_t>(workers, shards));
  }
  for (QueryScratch& s : *scratch) s.control = nullptr;
  ReleaseScratch(std::move(scratch));

  batch.answered = answered.load(std::memory_order_relaxed);
  batch.deadline_expired =
      control.has_deadline && control.expired.load(std::memory_order_relaxed);
  const bool failed = unavailable.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    batch.hash_hits += results[i].from_hash_table ? 1 : 0;
  }
  batch.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = batch;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_ = batch;
    totals_.batches += 1;
    totals_.queries += batch.answered;
    totals_.hash_hits += batch.hash_hits;
    totals_.deadline_expired += batch.deadline_expired ? 1 : 0;
    totals_.serve_failures += failed ? 1 : 0;
  }
  if (failed) return ServeStatus::kIndexUnavailable;
  if (batch.deadline_expired) return ServeStatus::kDeadlineExceeded;
  return ServeStatus::kOk;
}

UsiServiceTotals UsiService::totals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return totals_;
}

}  // namespace usi
