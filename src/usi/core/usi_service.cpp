#include "usi/core/usi_service.hpp"

#include <algorithm>
#include <utility>

#include "usi/parallel/thread_pool.hpp"
#include "usi/util/timer.hpp"

namespace usi {

UsiService::UsiService(QueryEngine& engine, const UsiServiceOptions& options)
    : engine_(&engine), options_(options) {
  const unsigned threads = options.threads == 0
                               ? ThreadPool::HardwareConcurrency()
                               : options.threads;
  if (threads > 1 && engine.SupportsConcurrentQuery()) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

UsiService::UsiService(QueryEngine& engine, ThreadPool* pool,
                       const UsiServiceOptions& options)
    : engine_(&engine), pool_(pool), options_(options) {}

UsiService::~UsiService() = default;

unsigned UsiService::threads() const {
  if (pool_ == nullptr || !engine_->SupportsConcurrentQuery()) return 1;
  return std::max(1u, pool_->thread_count());
}

std::vector<QueryResult> UsiService::QueryBatch(
    std::span<const Text> patterns) {
  std::vector<QueryResult> results(patterns.size());
  QueryBatchInto(patterns, results);
  return results;
}

std::unique_ptr<UsiService::ScratchBlock> UsiService::AcquireScratch() {
  const std::size_t workers = std::max(1u, threads());
  std::unique_ptr<ScratchBlock> block;
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_free_.empty()) {
      block = std::move(scratch_free_.back());
      scratch_free_.pop_back();
    }
  }
  if (block == nullptr) block = std::make_unique<ScratchBlock>();
  if (block->size() < workers) block->resize(workers);
  return block;
}

void UsiService::ReleaseScratch(std::unique_ptr<ScratchBlock> block) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_free_.push_back(std::move(block));
}

void UsiService::QueryBatchInto(std::span<const Text> patterns,
                                std::span<QueryResult> results,
                                UsiBatchStats* stats) {
  QueryBatchIntoImpl(patterns, results, stats);
}

void UsiService::QueryBatchInto(std::span<const PatternSpan> patterns,
                                std::span<QueryResult> results,
                                UsiBatchStats* stats) {
  QueryBatchIntoImpl(patterns, results, stats);
}

template <typename P>
void UsiService::QueryBatchIntoImpl(std::span<const P> patterns,
                                    std::span<QueryResult> results,
                                    UsiBatchStats* stats) {
  USI_CHECK(results.size() >= patterns.size());
  Timer timer;
  UsiBatchStats batch;
  batch.patterns = patterns.size();
  if (patterns.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_ = batch;
    totals_.batches += 1;
    if (stats != nullptr) *stats = batch;
    return;
  }
  std::unique_ptr<ScratchBlock> scratch = AcquireScratch();

  // Once per batch, before any fan-out: the engine pre-grows state the
  // whole batch shares read-only (UsiIndex reserves Karp-Rabin powers for
  // the batch's max pattern length). Growth may reallocate under a
  // concurrent batch's readers, so it runs with the write side of the
  // prepare lock while every serving batch holds the read side. The engine
  // reports (via BatchPrepared) when its monotonically-grown state already
  // covers this batch — the warm steady state — and the exclusive section
  // is skipped entirely.
  std::shared_lock<std::shared_mutex> serving(prepare_rw_);
  if (!engine_->BatchPrepared(patterns)) {
    serving.unlock();
    {
      std::unique_lock<std::shared_mutex> preparing(prepare_rw_);
      engine_->PrepareBatch(patterns);
    }
    // No re-check needed: preparation grows state monotonically, so this
    // batch stays covered no matter how the locks interleave from here.
    serving.lock();
  }

  const unsigned workers = threads();
  const std::size_t min_shard = std::max<std::size_t>(1, options_.min_shard_size);
  if (workers <= 1 || patterns.size() < 2 * min_shard) {
    // Sequential serving, in batch order (also the only correct mode for
    // caching engines, whose answers depend on query order).
    engine_->QueryBatch(patterns, results, &(*scratch)[0]);
  } else {
    // Contiguous shards, a few per worker so uneven per-pattern costs (hash
    // hit vs SA fallback) balance out. Every pattern writes its own result
    // slot, so the output is schedule-independent. Each shard runs the
    // engine's batch path with the scratch of the worker it landed on.
    const std::size_t target_shards = static_cast<std::size_t>(workers) * 4;
    const std::size_t shard_size = std::max(
        min_shard, (patterns.size() + target_shards - 1) / target_shards);
    const std::size_t shards = (patterns.size() + shard_size - 1) / shard_size;
    ParallelFor(pool_, shards, [&](std::size_t s, unsigned worker) {
      const std::size_t begin = s * shard_size;
      const std::size_t end = std::min(patterns.size(), begin + shard_size);
      engine_->QueryBatch(patterns.subspan(begin, end - begin),
                          results.subspan(begin, end - begin),
                          &(*scratch)[worker]);
    });
    batch.shards = shards;
    // Fewer shards than workers means only that many bodies ever ran
    // concurrently; report the parallelism the timing actually reflects.
    batch.threads_used =
        static_cast<unsigned>(std::min<std::size_t>(workers, shards));
  }
  ReleaseScratch(std::move(scratch));

  for (std::size_t i = 0; i < patterns.size(); ++i) {
    batch.hash_hits += results[i].from_hash_table ? 1 : 0;
  }
  batch.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = batch;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_ = batch;
    totals_.batches += 1;
    totals_.queries += batch.patterns;
    totals_.hash_hits += batch.hash_hits;
  }
}

UsiServiceTotals UsiService::totals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return totals_;
}

}  // namespace usi
