#include "usi/core/degraded_tier.hpp"

#include <algorithm>

#include "usi/util/rng.hpp"

namespace usi {
namespace {

/// Base of the CMS epsilon (the classic w = ceil(e / eps) sizing).
constexpr double kEuler = 2.718281828459045;

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

DegradedTier::DegradedTier(const DegradedTierOptions& options)
    : options_(options),
      // Popularity only steers cache admission, so its geometry tracks the
      // cache: enough buckets that hot patterns rarely fight for one.
      popularity_(std::max<std::size_t>(64, options.cache_capacity * 2), 2,
                  1.08, options.seed ^ 0x9E3779B97F4A7C15ULL) {
  if (options_.cache_capacity > 0) {
    cache_.resize(RoundUpPow2(options_.cache_capacity));
  }
  if (options_.sketch_width > 0 && options_.sketch_depth > 0 &&
      options_.max_sketched_keys > 0) {
    width_ = RoundUpPow2(options_.sketch_width);
    depth_ = options_.sketch_depth;
    epsilon_ = kEuler / static_cast<double>(width_);
    u64 seed_state = options_.seed;
    row_seeds_.resize(depth_);
    for (std::size_t row = 0; row < depth_; ++row) {
      row_seeds_[row] = Rng::SplitMix64(&seed_state);
    }
    cms_utility_.assign(width_ * depth_, 0.0);
    cms_occurrences_.assign(width_ * depth_, 0);
    seen_.assign(RoundUpPow2(options_.max_sketched_keys) * 2, 0);
    seen_cap_ = seen_.size() - seen_.size() / 8;  // stop at 7/8 occupancy
  }
}

PatternKey DegradedTier::KeyFor(std::span<const Symbol> pattern) {
  // FNV-1a over the symbol bytes, finished with a splitmix round: the tier
  // only needs identity consistent with itself, not the index's Karp-Rabin
  // fingerprints.
  u64 h = 0xCBF29CE484222325ULL;
  for (const Symbol s : pattern) {
    h ^= static_cast<u64>(s);
    h *= 0x100000001B3ULL;
  }
  u64 state = h;
  return PatternKey{Rng::SplitMix64(&state),
                    static_cast<u32>(pattern.size())};
}

std::size_t DegradedTier::CmsBucket(u64 hash, std::size_t row) const {
  return (Rng::Mix(hash, row_seeds_[row]) & (width_ - 1)) + row * width_;
}

void DegradedTier::RecordExact(const PatternKey& key,
                               const QueryResult& result) {
  const u64 hash = HashPatternKey(key);
  // The record path rides on every exactly-served query: never queue behind
  // the lock, drop the update instead (the tier is telemetry, not truth).
  if (!mu_.try_lock()) {
    record_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_, std::adopt_lock);
  ++records_;
  const u32 popularity = popularity_.Insert(hash);
  if (!cache_.empty()) CacheUpsertLocked(key, hash, result, popularity);
  // Sketch rung: each distinct pattern's utility enters the count-min
  // arrays exactly once (the filter enforces it), preserving the classic
  // additive-overestimate bound relative to the inserted mass. Negative
  // utilities would break the one-sided guarantee, so they stay cache-only.
  if (width_ != 0 && result.utility >= 0 && SeenInsertLocked(hash)) {
    for (std::size_t row = 0; row < depth_; ++row) {
      const std::size_t bucket = CmsBucket(hash, row);
      cms_utility_[bucket] += result.utility;
      cms_occurrences_[bucket] += static_cast<u32>(result.occurrences);
    }
    sketch_mass_ += result.utility;
  }
}

bool DegradedTier::TryAnswer(const PatternKey& key, QueryResult* out) {
  const u64 hash = HashPatternKey(key);
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  // Degraded traffic is still popularity evidence: keep the admission
  // signal learning even while the exact path is dark.
  const u32 popularity = popularity_.Insert(hash);
  (void)popularity;
  if (!cache_.empty() && CacheFindLocked(key, hash, out)) {
    out->from_hash_table = false;
    out->provenance = AnswerProvenance::kCached;
    out->error_bound = 0;
    ++cache_hits_;
    return true;
  }
  if (width_ != 0 && SeenContainsLocked(hash)) {
    double utility = cms_utility_[CmsBucket(hash, 0)];
    u32 occurrences = cms_occurrences_[CmsBucket(hash, 0)];
    for (std::size_t row = 1; row < depth_; ++row) {
      const std::size_t bucket = CmsBucket(hash, row);
      utility = std::min(utility, cms_utility_[bucket]);
      occurrences = std::min(occurrences, cms_occurrences_[bucket]);
    }
    out->utility = utility;
    out->occurrences = static_cast<index_t>(occurrences);
    out->from_hash_table = false;
    out->provenance = AnswerProvenance::kApproximate;
    out->error_bound = epsilon_ * sketch_mass_;
    ++sketch_answers_;
    return true;
  }
  ++unanswered_;
  return false;
}

void DegradedTier::CacheUpsertLocked(const PatternKey& key, u64 hash,
                                     const QueryResult& result,
                                     u32 popularity) {
  const std::size_t mask = cache_.size() - 1;
  const std::size_t base = hash & mask;
  const std::size_t window = std::min(kProbeWindow, cache_.size());
  std::size_t free_slot = cache_.size();
  std::size_t victim = base;
  u32 victim_popularity = ~u32{0};
  for (std::size_t w = 0; w < window; ++w) {
    const std::size_t slot = (base + w) & mask;
    CacheSlot& entry = cache_[slot];
    if (!entry.used) {
      if (free_slot == cache_.size()) free_slot = slot;
      continue;
    }
    if (entry.key == key) {
      entry.utility = result.utility;
      entry.occurrences = result.occurrences;
      entry.popularity = std::max(entry.popularity, popularity);
      return;
    }
    if (entry.popularity < victim_popularity) {
      victim_popularity = entry.popularity;
      victim = slot;
    }
  }
  if (free_slot != cache_.size()) {
    cache_[free_slot] =
        CacheSlot{key, result.utility, result.occurrences, popularity, true};
    ++cache_size_;
    return;
  }
  // BSL3/BSL4 admission, windowed: a newcomer only displaces the least
  // popular incumbent of its probe window when it is strictly hotter.
  if (popularity > victim_popularity) {
    cache_[victim] =
        CacheSlot{key, result.utility, result.occurrences, popularity, true};
  }
}

bool DegradedTier::CacheFindLocked(const PatternKey& key, u64 hash,
                                   QueryResult* out) {
  const std::size_t mask = cache_.size() - 1;
  const std::size_t base = hash & mask;
  const std::size_t window = std::min(kProbeWindow, cache_.size());
  for (std::size_t w = 0; w < window; ++w) {
    CacheSlot& entry = cache_[(base + w) & mask];
    if (!entry.used || !(entry.key == key)) continue;
    out->utility = entry.utility;
    out->occurrences = entry.occurrences;
    return true;
  }
  return false;
}

bool DegradedTier::SeenInsertLocked(u64 hash) {
  if (hash == 0) hash = 1;  // 0 marks an empty filter slot.
  const std::size_t mask = seen_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  while (seen_[slot] != 0) {
    if (seen_[slot] == hash) return false;  // Already sketched.
    slot = (slot + 1) & mask;
  }
  if (seen_size_ >= seen_cap_) return false;  // Filter full: stop learning.
  seen_[slot] = hash;
  ++seen_size_;
  return true;
}

bool DegradedTier::SeenContainsLocked(u64 hash) const {
  if (hash == 0) hash = 1;
  const std::size_t mask = seen_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  while (seen_[slot] != 0) {
    if (seen_[slot] == hash) return true;
    slot = (slot + 1) & mask;
  }
  return false;
}

void DegradedTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(cache_.begin(), cache_.end(), CacheSlot{});
  cache_size_ = 0;
  std::fill(seen_.begin(), seen_.end(), 0);
  seen_size_ = 0;
  std::fill(cms_utility_.begin(), cms_utility_.end(), 0.0);
  std::fill(cms_occurrences_.begin(), cms_occurrences_.end(), 0);
  sketch_mass_ = 0;
  popularity_ = DecaySketch(
      std::max<std::size_t>(64, options_.cache_capacity * 2), 2, 1.08,
      options_.seed ^ 0x9E3779B97F4A7C15ULL);
}

DegradedTierStats DegradedTier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DegradedTierStats stats;
  stats.cache_capacity = cache_.size();
  stats.cache_size = cache_size_;
  stats.records = records_;
  stats.record_drops = record_drops_.load(std::memory_order_relaxed);
  stats.lookups = lookups_;
  stats.cache_hits = cache_hits_;
  stats.sketch_answers = sketch_answers_;
  stats.unanswered = unanswered_;
  stats.sketch_width = width_;
  stats.sketch_depth = depth_;
  stats.epsilon = epsilon_;
  stats.sketched_keys = seen_size_;
  stats.max_sketched_keys = seen_cap_;
  stats.sketch_mass = sketch_mass_;
  return stats;
}

std::size_t DegradedTier::SizeInBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.capacity() * sizeof(CacheSlot) +
         seen_.capacity() * sizeof(u64) +
         cms_utility_.capacity() * sizeof(double) +
         cms_occurrences_.capacity() * sizeof(u32) +
         row_seeds_.capacity() * sizeof(u64) + popularity_.SizeInBytes();
}

}  // namespace usi
