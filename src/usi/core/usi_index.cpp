#include "usi/core/usi_index.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "usi/core/usi_builder.hpp"
#include "usi/util/binary_io.hpp"
#include "usi/util/failpoint.hpp"

namespace usi {

const char* LoadErrorCodeName(LoadErrorCode code) {
  switch (code) {
    case LoadErrorCode::kOk: return "ok";
    case LoadErrorCode::kNotFound: return "not-found";
    case LoadErrorCode::kIo: return "io-error";
    case LoadErrorCode::kBadFormat: return "bad-format";
    case LoadErrorCode::kCorrupt: return "corrupt";
    case LoadErrorCode::kTextMismatch: return "text-mismatch";
    case LoadErrorCode::kHostMismatch: return "host-mismatch";
  }
  return "?";
}

namespace {

/// Loader failure funnel: records the typed error (when the caller asked
/// for one) and yields the null index every load path returns on refusal.
std::unique_ptr<UsiIndex> LoadFail(LoadError* error, LoadErrorCode code,
                                   std::string message) {
  if (error != nullptr) {
    error->code = code;
    error->message = std::move(message);
  }
  return nullptr;
}

// The v2 stream format's magic + version (index_format.hpp).
constexpr u32 kIndexMagic = format_v2::kMagic;
constexpr u32 kIndexVersion = format_v2::kVersion;

/// Number of UsiMiner enumerators; loaders validate the serialized byte.
constexpr u8 kNumUsiMiners = static_cast<u8>(UsiMiner::kApproximate) + 1;

/// QueryBatch fingerprints in prefix-clustered order only when the average
/// pattern is at least this long; below it, hashing a pattern outright is
/// cheaper than placing it in the clustered order.
constexpr std::size_t kClusterMinAvgLen = 16;

/// Sharing detector: the smallest batch worth clustering (service shards
/// are often ~100-500 patterns, so this must stay well below shard size),
/// the most packed prefixes sampled (batches at or below it are sampled
/// exhaustively), and the sampled duplicate fraction
/// (dupes * kShareDetectInverse >= sample size) above which clustering is
/// predicted to pay for its sort.
constexpr std::size_t kClusterMinBatch = 64;
constexpr std::size_t kShareSampleSize = 256;
constexpr std::size_t kShareDetectInverse = 8;

/// Packed ordering key for prefix clustering: 6 prefix bytes then the
/// (capped) length, so repeats of one pattern — the common case in serving
/// traffic — end up adjacent with a full-length LCP, and comparisons never
/// indirect into the pattern storage. P is Text or PatternSpan.
template <typename P>
u64 PackedOrderKey(const P& pattern) {
  u64 packed = 0;
  const std::size_t take = std::min<std::size_t>(6, pattern.size());
  for (std::size_t j = 0; j < take; ++j) {
    packed |= static_cast<u64>(pattern[j]) << (56 - 8 * j);
  }
  return packed | std::min<std::size_t>(pattern.size(), 0xFFFF);
}

/// QueryBatch uses the table's pipelined VisitBatch only for tables at
/// least this large; smaller tables are cache-resident, where the
/// pipeline's bookkeeping costs more than the misses it hides (~L2 size).
constexpr std::size_t kPipelinedProbeMinTableBytes = std::size_t{2} << 20;

/// QueryBatch resolves table misses through the batched learned search only
/// when a batch collects at least this many; below it the AMAC state
/// machine's setup outweighs the miss overlap it buys.
constexpr std::size_t kBatchedMissMin = 4;

/// Flat hash-table entry for serialization.
struct SerializedEntry {
  u64 fp;
  u32 len;
  u32 count;
  double value;
};

}  // namespace

UsiIndex::UsiIndex(BuildTag, const WeightedString& ws,
                   const UsiOptions& options)
    : ws_(&ws),
      kind_(options.utility),
      miner_(options.miner),
      hasher_(options.hash_seed),
      psw_(ws),
      table_(options.k > 0 ? options.k : std::max<u64>(1, ws.size() / 100)) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options)
    : UsiIndex(ws, options, nullptr) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options,
                   ThreadPool* pool)
    : UsiIndex(BuildTag{}, ws, options) {
  UsiBuilder builder(ws, options);
  if (pool != nullptr) builder.UsePool(pool);
  builder.BuildInto(*this);
}

QueryResult UsiIndex::Query(std::span<const Symbol> pattern) const {
  QueryResult result;
  if (pattern.empty() || pattern.size() > ws_->size()) return result;
  const u64 fp = hasher_.Hash(pattern);
  const PatternKey key{fp, static_cast<u32>(pattern.size())};
  const TableValue* value = table_.Find(key);
  if (value != nullptr && value->count > 0) {
    result.utility = value->Finalize(kind_);
    result.occurrences = value->count;
    result.from_hash_table = true;
    return result;
  }
  return fallback_.Compute(pattern);
}

namespace {

/// Longest pattern in a batch (P is Text or PatternSpan).
template <typename P>
std::size_t MaxPatternLen(std::span<const P> patterns) {
  std::size_t max_len = 0;
  for (const P& pattern : patterns) {
    max_len = std::max(max_len, pattern.size());
  }
  return max_len;
}

}  // namespace

void UsiIndex::PrepareBatch(std::span<const Text> patterns) {
  // One shared pre-grow instead of per-query growth: every power any shard
  // can need is now a read-only lookup, so concurrent shards never mutate
  // the hasher (the precondition ReservePowers documents).
  hasher_.ReservePowers(MaxPatternLen(patterns));
}

void UsiIndex::PrepareBatch(std::span<const PatternSpan> patterns) {
  hasher_.ReservePowers(MaxPatternLen(patterns));
}

bool UsiIndex::BatchPrepared(std::span<const Text> patterns) const {
  // powers_.size() only grows, and growth happens under UsiService's
  // exclusive prepare lock — so a true answer here cannot be invalidated
  // by a concurrent batch.
  return hasher_.PowersCover(MaxPatternLen(patterns));
}

bool UsiIndex::BatchPrepared(std::span<const PatternSpan> patterns) const {
  return hasher_.PowersCover(MaxPatternLen(patterns));
}

void UsiIndex::QueryBatch(std::span<const Text> patterns,
                          std::span<QueryResult> results,
                          QueryScratch* scratch) const {
  QueryBatchImpl(patterns, results, scratch);
}

void UsiIndex::QueryBatch(std::span<const PatternSpan> patterns,
                          std::span<QueryResult> results,
                          QueryScratch* scratch) const {
  QueryBatchImpl(patterns, results, scratch);
}

template <typename P>
void UsiIndex::QueryBatchImpl(std::span<const P> patterns,
                              std::span<QueryResult> results,
                              QueryScratch* scratch) const {
  USI_CHECK(results.size() >= patterns.size());
  QueryScratch local;
  if (scratch == nullptr) scratch = &local;
  const std::size_t batch = patterns.size();
  if (batch == 0) return;

  std::size_t max_len = 0;
  std::size_t total_len = 0;
  for (const P& pattern : patterns) {
    max_len = std::max(max_len, pattern.size());
    total_len += pattern.size();
  }
  std::vector<u64>& fps = scratch->prefix_fps;
  if (fps.size() < max_len + 1) fps.resize(max_len + 1);
  fps[0] = 0;
  std::vector<PatternKey>& keys = scratch->keys;
  keys.resize(batch);

  // Fingerprint stage. When the batch shows real prefix sharing,
  // fingerprint in clustered order: patterns sharing a prefix sit adjacent,
  // and each one extends the running prefix-fingerprint chain from the
  // longest common prefix with its predecessor instead of rehashing from
  // scratch. The order only needs to CLUSTER shared prefixes, not be truly
  // lexicographic (each fingerprint is recomputed from its actual LCP with
  // its predecessor either way), so the sort compares a packed 8-byte
  // prefix — O(1) per comparison instead of O(m).
  //
  // Clustering is gated twice, because its sort is a pure loss on batches
  // of short or near-distinct patterns: (1) the average pattern must be
  // long enough that hashing dominates the ordering overhead, and (2) a
  // strided sample of the packed prefixes, sorted, must actually contain
  // repeats. Heavy sharing — hot queries repeated across a batch,
  // hierarchical key families — shows up as sampled duplicates; a
  // near-distinct batch does not, and hashes directly instead.
  bool cluster =
      total_len >= batch * kClusterMinAvgLen && batch >= kClusterMinBatch;
  if (cluster) {
    // Detector first, on a strided sample only — a rejected batch must not
    // pay for packing all its keys. Ceil stride: a floor would leave the
    // batch's tail unsampled, hiding sharing concentrated there.
    u64 sample[kShareSampleSize];
    const std::size_t stride =
        (batch + kShareSampleSize - 1) / kShareSampleSize;
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < batch && sampled < kShareSampleSize;
         i += stride) {
      sample[sampled++] = PackedOrderKey(patterns[i]);
    }
    std::sort(sample, sample + sampled);
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < sampled; ++i) {
      repeats += sample[i] == sample[i - 1] ? 1 : 0;
    }
    cluster = repeats * kShareDetectInverse >= sampled;
  }
  if (cluster) {
    std::vector<std::pair<u64, u32>>& cluster_order = scratch->cluster;
    cluster_order.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      cluster_order[i] = {PackedOrderKey(patterns[i]), static_cast<u32>(i)};
    }
    // Pair order (key, index): deterministic, and ties keep batch order.
    std::sort(cluster_order.begin(), cluster_order.end());

    const P* prev = nullptr;
    for (const auto& [packed, idx] : cluster_order) {
      const P& pattern = patterns[idx];
      std::size_t lcp = 0;
      if (prev != nullptr) {
        const std::size_t bound = std::min(prev->size(), pattern.size());
        while (lcp < bound && (*prev)[lcp] == pattern[lcp]) ++lcp;
      }
      // The running fingerprint stays in a register: routing the chain
      // through fps[] would put a store-to-load forward on the critical
      // path of every Append.
      u64 fp = fps[lcp];
      for (std::size_t j = lcp; j < pattern.size(); ++j) {
        fp = hasher_.Append(fp, pattern[j]);
        fps[j + 1] = fp;
      }
      keys[idx] = PatternKey{pattern.empty() ? 0 : fps[pattern.size()],
                            static_cast<u32>(pattern.size())};
      prev = &pattern;
    }
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      keys[i] = PatternKey{hasher_.Hash(patterns[i]),
                          static_cast<u32>(patterns[i].size())};
    }
  }

  // Probe stage, answering in original order either way. The pipelined
  // VisitBatch exists to overlap out-of-cache line and TLB fetches; when H
  // is small enough to live in the fast cache levels its bookkeeping is
  // pure overhead, so cache-resident tables take the plain loop. Hits are
  // answered in place; misses are STAGED (position + borrowed bytes) rather
  // than resolved — the miss path is the expensive one, and deferring it
  // lets the batched learned search overlap the SA probes of all misses.
  std::vector<u32>& misses = scratch->misses;
  std::vector<PatternSpan>& miss_patterns = scratch->miss_patterns;
  misses.clear();
  miss_patterns.clear();
  const auto answer = [&](std::size_t i, const TableValue* value) {
    const P& pattern = patterns[i];
    QueryResult result;
    if (pattern.empty() || pattern.size() > ws_->size()) {
      results[i] = result;
      return;
    }
    if (value != nullptr && value->count > 0) {
      result.utility = value->Finalize(kind_);
      result.occurrences = value->count;
      result.from_hash_table = true;
      results[i] = result;
      return;
    }
    misses.push_back(static_cast<u32>(i));
    miss_patterns.push_back(PatternSpan(pattern.data(), pattern.size()));
  };
  if (table_.SizeInBytes() >= kPipelinedProbeMinTableBytes) {
    table_.VisitBatch(std::span<const PatternKey>(keys.data(), batch),
                      answer);
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      answer(i, table_.Find(keys[i]));
    }
  }

  // Miss stage. With a learned model and enough misses to fill the AMAC
  // pipeline, resolve all SA intervals in one batched pass (probes of
  // independent searches overlap) and aggregate each; otherwise the plain
  // per-miss path. Either way the answers match per-pattern Query exactly.
  //
  // This is the expensive stage (O(m log n + occ) per miss), so the
  // batch's cooperative deadline is checkpointed here: with a BatchControl
  // attached the batched pass runs in chunks, and expiry default-fills the
  // unreached miss slots and returns early (hits were already answered in
  // place above). Overshoot past the deadline is bounded by one chunk.
  if (misses.empty()) return;
  USI_FAILPOINT("query.fallback");
  const BatchControl* control = scratch->control;
  const auto expire_from = [&](std::size_t j) {
    for (; j < misses.size(); ++j) results[misses[j]] = QueryResult{};
  };
  if (!learned_.empty() && misses.size() >= kBatchedMissMin) {
    std::vector<SaInterval>& intervals = scratch->miss_intervals;
    intervals.resize(misses.size());
    // Without a deadline the whole miss set goes through one batched pass
    // (maximum probe overlap); with one, chunked so checkpoints exist.
    constexpr std::size_t kDeadlineChunk = 64;
    const std::size_t chunk = (control != nullptr && control->has_deadline)
                                  ? kDeadlineChunk
                                  : misses.size();
    for (std::size_t begin = 0; begin < misses.size(); begin += chunk) {
      if (control != nullptr && control->Expired()) {
        expire_from(begin);
        return;
      }
      const std::size_t end = std::min(misses.size(), begin + chunk);
      learned_.FindIntervalBatch(
          ws_->text(), sa_span_,
          std::span<const PatternSpan>(miss_patterns.data() + begin,
                                       end - begin),
          std::span<SaInterval>(intervals.data() + begin, end - begin));
      for (std::size_t j = begin; j < end; ++j) {
        results[misses[j]] = fallback_.Aggregate(
            intervals[j], static_cast<index_t>(miss_patterns[j].size()));
      }
    }
  } else {
    constexpr std::size_t kDeadlinePollStride = 16;
    for (std::size_t j = 0; j < misses.size(); ++j) {
      if (control != nullptr && j % kDeadlinePollStride == 0 &&
          control->Expired()) {
        expire_from(j);
        return;
      }
      results[misses[j]] = fallback_.Compute(miss_patterns[j]);
    }
  }
}

void UsiIndex::QueryAllWindows(std::span<const Symbol> document,
                               index_t window_len,
                               std::span<QueryResult> results) const {
  if (window_len == 0 || document.size() < window_len) return;
  const std::size_t windows = document.size() - window_len + 1;
  USI_CHECK(results.size() >= windows);
  // RollingHasher reads base^(window_len-1) at construction; growing the
  // power table here (not per window) keeps the loop read-only.
  hasher_.ReservePowers(window_len);
  RollingHasher window(hasher_, window_len);
  for (index_t i = 0; i + 1 < window_len; ++i) window.Push(document[i]);
  for (std::size_t i = 0; i < windows; ++i) {
    if (i == 0) {
      window.Push(document[window_len - 1]);
    } else {
      window.Roll(document[i - 1], document[i + window_len - 1]);
    }
    QueryResult result;
    if (window_len <= ws_->size()) {
      const PatternKey key{window.Fingerprint(), window_len};
      const TableValue* value = table_.Find(key);
      if (value != nullptr && value->count > 0) {
        result.utility = value->Finalize(kind_);
        result.occurrences = value->count;
        result.from_hash_table = true;
      } else {
        result = fallback_.Compute(document.subspan(i, window_len));
      }
    }
    results[i] = result;
  }
}

std::size_t UsiIndex::SizeInBytes() const {
  // sa_span_.size(), not a capacity: the builder shrinks its vectors and
  // loaders read them exact, so slack must never inflate the figure; for a
  // mapped index this counts the file-backed bytes the views reference.
  // The fallback engine borrows the SA/PSW (counted once, above); only its
  // own object footprint is added. The hasher's power table counts too:
  // PrepareBatch grows it to the longest pattern ever served and it stays
  // resident for the index lifetime.
  return sa_span_.size() * sizeof(index_t) + psw_.SizeInBytes() +
         table_.SizeInBytes() + sizeof(fallback_) + hasher_.SizeInBytes() +
         learned_.SizeInBytes();
}

UsiIndex::UsiIndex(LoadTag, const WeightedString& ws)
    : ws_(&ws),
      kind_(GlobalUtilityKind::kSum),
      hasher_(),
      table_(16) {}
// psw_ stays default-constructed: the v2 loader rebuilds it from ws (one
// O(n) scan), the v3 opener views the file's PSW section — building it here
// would put an O(n) pass on the near-zero open path.

namespace {

/// The table entries in canonical (length, fingerprint) order: equal table
/// contents serialize to equal bytes no matter what insertion order the
/// build schedule produced. Shared by both formats.
template <typename Table>
std::vector<SerializedEntry> CanonicalEntries(const Table& table) {
  std::vector<SerializedEntry> entries;
  entries.reserve(table.size());
  table.ForEach([&](const PatternKey& key, const UtilityAccumulator& value) {
    entries.push_back(
        SerializedEntry{key.fp, key.len, value.count, value.value});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SerializedEntry& a, const SerializedEntry& b) {
              return a.len != b.len ? a.len < b.len : a.fp < b.fp;
            });
  return entries;
}

}  // namespace

bool UsiIndex::SaveV2Body(BinaryWriter& writer) const {
  writer.Write(kIndexMagic);
  writer.Write(kIndexVersion);
  writer.Write(static_cast<u32>(ws_->size()));
  writer.Write(static_cast<u8>(kind_));
  writer.Write(static_cast<u8>(miner_));
  writer.Write(hasher_.base());
  writer.Write(build_info_.k);
  writer.Write(build_info_.tau_k);
  writer.Write(build_info_.num_lengths);
  // sa_span_, not sa_: a mapped index owns no SA vector but re-serializes
  // to v2 all the same (that is the v3 -> v2 conversion path).
  writer.WriteSpan(sa_span_);
  writer.WriteVector(CanonicalEntries(table_));
  return writer.ok();
}

bool UsiIndex::SaveV3Body(BinaryWriter& writer,
                          const SaveOptions& save_options) const {
  using namespace format_v3;
  using Table = FingerprintTable<TableValue>;

  // Canonical table image: re-insert the sorted entries into a fresh table
  // pre-sized for exactly size() entries. The pre-size loop guarantees the
  // final capacity up front, so no rehash happens and the resulting
  // ctrl/slot bytes are a pure function of the table CONTENTS — the v3
  // image is byte-deterministic like v2. AllocateTable blanks the slot
  // array before any insert, so record padding is zero, never
  // uninitialized heap bytes.
  const std::vector<SerializedEntry> entries = CanonicalEntries(table_);
  Table canon(entries.size());
  for (const SerializedEntry& entry : entries) {
    TableValue value;
    value.value = entry.value;
    value.count = entry.count;
    canon.FindOrInsert(PatternKey{entry.fp, entry.len}, value);
  }
  const std::span<const u8> ctrl = canon.ctrl_bytes();
  const std::span<const Table::Slot> slots = canon.slots();

  FileHeader header;
  header.n = static_cast<u32>(ws_->size());
  header.kind = static_cast<u8>(kind_);
  header.miner = static_cast<u8>(miner_);
  header.base = hasher_.base();
  header.k = build_info_.k;
  header.tau_k = build_info_.tau_k;
  header.num_lengths = build_info_.num_lengths;
  header.table_size = canon.size();
  header.table_capacity = canon.capacity();
  header.slot_bytes = sizeof(Table::Slot);

  const void* payloads[kNumSections] = {sa_span_.data(), psw_.data(),
                                        ctrl.data(), slots.data()};
  const u64 lengths[kNumSections] = {
      sa_span_.size_bytes(), static_cast<u64>(psw_.size()) * sizeof(double),
      ctrl.size_bytes(), slots.size_bytes()};
  u64 offset = kFirstSectionOffset;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    header.sections[s].id = static_cast<u32>(s);
    header.sections[s].offset = offset;
    header.sections[s].length = lengths[s];
    header.sections[s].checksum = Checksum64(payloads[s], lengths[s]);
    offset = AlignUp(offset + lengths[s]);
  }
  // Exact end of the last payload — no tail padding, so file_bytes pins
  // the file size byte-for-byte.
  header.file_bytes = header.sections[kNumSections - 1].offset +
                      header.sections[kNumSections - 1].length;

  // Optional learned-model section: a Serialize() image appended after the
  // last core section, described by the extension entry in the header
  // slack. When the index carries no model (legacy mapped image, or a build
  // with learned_epsilon == 0) a default-ε model is fit for the save, so
  // every default save of equal indexes emits equal bytes. The absent case
  // writes an all-zero entry — byte-identical to the zero padding every
  // pre-extension writer put there.
  LearnedSectionEntry ext;
  std::vector<u8> learned_payload;
  if (save_options.learned_section) {
    LearnedSa refit;
    const LearnedSa* model = &learned_;
    if (learned_.empty()) {
      refit.Build(ws_->text(), sa_span_);
      model = &refit;
    }
    if (!model->empty()) {
      learned_payload = model->Serialize();
      ext.ext_magic = kLearnedMagic;
      ext.epsilon = model->epsilon();
      ext.offset = AlignUp(header.file_bytes);
      ext.length = learned_payload.size();
      ext.checksum = Checksum64(learned_payload.data(), ext.length);
      ext.num_segments = model->num_segments();
      ext.entry_checksum =
          Checksum64(&ext, offsetof(LearnedSectionEntry, entry_checksum));
      header.file_bytes = ext.offset + ext.length;
    }
  }
  header.header_checksum =
      Checksum64(&header, offsetof(FileHeader, header_checksum));

  writer.WriteRaw(&header, sizeof(header));
  writer.WriteRaw(&ext, sizeof(ext));  // Fills the slack at offset 208.
  for (std::size_t s = 0; s < kNumSections; ++s) {
    writer.PadTo(header.sections[s].offset);
    writer.WriteRaw(payloads[s], lengths[s]);
  }
  if (ext.ext_magic == kLearnedMagic) {
    writer.PadTo(ext.offset);
    writer.WriteRaw(learned_payload.data(), ext.length);
  }
  return writer.ok() && writer.bytes_written() == header.file_bytes;
}

bool UsiIndex::SaveToFile(const std::string& path,
                          IndexFileFormat format) const {
  return SaveToFile(path, format, SaveOptions());
}

bool UsiIndex::SaveToFile(const std::string& path, IndexFileFormat format,
                          const SaveOptions& save_options) const {
  // Atomic publish (util/mapped_file.hpp): the destination is replaced only
  // by a complete, flushed image. A crash — or a failed write, flush, or
  // fsync — leaves `path` untouched, holding whatever complete image it had
  // before.
  const std::string staged = StageTempPath(path);
  BinaryWriter writer(staged);
  bool body_ok = format == IndexFileFormat::kV3Mapped
                     ? SaveV3Body(writer, save_options)
                     : SaveV2Body(writer);
  // Chaos hooks for the two failure classes the publish protocol must
  // contain: a write/flush error while staging (save.body) and a failed
  // rename/fsync at publish time (save.publish). Either way the
  // destination keeps its previous complete image and the staged temp is
  // removed here — exactly the real-failure path.
  if (USI_FAILPOINT_FIRED("save.body")) body_ok = false;
  // Close() before publish: its result covers the final buffer flush, so an
  // out-of-space truncation surfaces here instead of being renamed live.
  if (!(writer.Close() && body_ok) || USI_FAILPOINT_FIRED("save.publish") ||
      !PublishFile(staged, path)) {
    std::remove(staged.c_str());
    return false;
  }
  return true;
}

std::unique_ptr<UsiIndex> UsiIndex::OpenMapped(const WeightedString& ws,
                                               const std::string& path) {
  return OpenMapped(ws, path, OpenOptions(), nullptr);
}

std::unique_ptr<UsiIndex> UsiIndex::OpenMapped(const WeightedString& ws,
                                               const std::string& path,
                                               const OpenOptions& options) {
  return OpenMapped(ws, path, options, nullptr);
}

std::unique_ptr<UsiIndex> UsiIndex::OpenMapped(const WeightedString& ws,
                                               const std::string& path,
                                               const OpenOptions& options,
                                               LoadError* error) {
  using namespace format_v3;
  using Table = FingerprintTable<TableValue>;
  using Slot = Table::Slot;
  if (error != nullptr) *error = LoadError{};

  if (USI_FAILPOINT_FIRED("open.mapped")) {
    return LoadFail(error, LoadErrorCode::kIo, "failpoint open.mapped");
  }
  int open_errno = 0;
  std::unique_ptr<MappedFile> mapping =
      MappedFile::OpenReadOnly(path, &open_errno);
  if (mapping == nullptr) {
    return open_errno == ENOENT
               ? LoadFail(error, LoadErrorCode::kNotFound,
                          "cannot open " + path)
               : LoadFail(error, LoadErrorCode::kIo,
                          "open/stat/mmap failed: " + path);
  }
  if (mapping->size() < sizeof(FileHeader)) {
    return LoadFail(error, LoadErrorCode::kBadFormat,
                    "file shorter than a v3 header");
  }
  // Copy the header out of the mapping before validating: one place to
  // reason about alignment, and the checks below read stable memory even
  // if the file is concurrently replaced.
  FileHeader header;
  std::memcpy(&header, mapping->data(), sizeof(header));
  if (header.magic != kMagic || header.version != kVersion) {
    return LoadFail(error, LoadErrorCode::kBadFormat,
                    "not a v3 index file (magic/version mismatch)");
  }
  // The checksum covers every header byte including the section directory,
  // so a flipped offset/length/checksum in the directory is caught here in
  // O(1) without touching any payload.
  if (header.header_checksum !=
      Checksum64(&header, offsetof(FileHeader, header_checksum))) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "header checksum mismatch");
  }
  // file_bytes pins the exact size: truncated AND extended files both fail
  // (a prefix of a valid file passes every other header check).
  if (header.file_bytes != mapping->size()) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "file size differs from header file_bytes (truncated "
                    "or extended image)");
  }
  if (header.n != ws.size()) {
    return LoadFail(error, LoadErrorCode::kTextMismatch,
                    "index was saved over a text of different length");
  }
  if (header.kind >= kNumGlobalUtilityKinds) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "invalid utility kind byte");
  }
  if (header.miner >= kNumUsiMiners) {
    return LoadFail(error, LoadErrorCode::kCorrupt, "invalid miner byte");
  }
  if (!KarpRabinHasher::IsValidBase(header.base)) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "invalid Karp-Rabin base");
  }
  // Host-layout guard: a slot written with a different value layout (or a
  // different index_t width, checked via the SA section length below) must
  // not be reinterpreted.
  if (header.slot_bytes != sizeof(Slot)) {
    return LoadFail(error, LoadErrorCode::kHostMismatch,
                    "table slot layout differs from this host");
  }
  // Same invariants AdoptView asserts, but as load failures: a corrupt
  // capacity/size pair must reject the file, not abort the process.
  const u64 capacity = header.table_capacity;
  if (capacity < Table::kMinCapacity ||
      (capacity & (capacity - 1)) != 0 ||
      header.table_size * Table::kMaxLoadDen > capacity * Table::kMaxLoadNum) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "invalid table capacity/size pair");
  }
  const u64 expected_lengths[kNumSections] = {
      static_cast<u64>(header.n) * sizeof(index_t),
      static_cast<u64>(header.n) * sizeof(double),
      capacity + Table::kGroupWidth, capacity * sizeof(Slot)};
  u64 expected_offset = kFirstSectionOffset;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const SectionEntry& section = header.sections[s];
    if (section.id != s || section.offset != expected_offset ||
        section.length != expected_lengths[s] ||
        section.offset + section.length > header.file_bytes) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "section directory geometry mismatch");
    }
    expected_offset = AlignUp(expected_offset + section.length);
  }
  const u64 core_end = header.sections[kNumSections - 1].offset +
                       header.sections[kNumSections - 1].length;

  // Learned-model extension entry, read from the header slack. Legacy
  // writers zero-padded the slack, so ext_magic == 0 cleanly means "no
  // learned section". A nonzero entry that fails ANY check rejects the
  // file: a present-but-corrupt extension is corruption like any other,
  // not something to silently serve without.
  LearnedSectionEntry ext;
  std::memcpy(&ext, mapping->data() + sizeof(FileHeader), sizeof(ext));
  if (ext.ext_magic != 0) {
    if (ext.ext_magic != kLearnedMagic) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "unknown extension magic in header slack");
    }
    if (ext.entry_checksum !=
        Checksum64(&ext, offsetof(LearnedSectionEntry, entry_checksum))) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "learned extension entry checksum mismatch");
    }
    if (ext.offset != AlignUp(core_end) || ext.length == 0 ||
        ext.length > header.file_bytes - ext.offset ||
        ext.offset + ext.length != header.file_bytes) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "learned extension geometry mismatch");
    }
  } else if (header.file_bytes != core_end) {
    // No extension, yet bytes past the last core section: a doctored or
    // concatenated file, not slack.
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "trailing bytes after last section");
  }

  const u8* const base = mapping->data();
  if (options.deep_verify) {
    // One sequential pass over the whole image (readahead hinted): every
    // section checksum, then SA positions range-checked so a payload flip
    // cannot become an out-of-bounds PSW read at query time. Published
    // files can't be torn (atomic publish), so this guards against storage
    // rot and untrusted transport, not crashes.
    mapping->AdviseWillNeed();
    for (std::size_t s = 0; s < kNumSections; ++s) {
      const SectionEntry& section = header.sections[s];
      if (Checksum64(base + section.offset, section.length) !=
          section.checksum) {
        return LoadFail(error, LoadErrorCode::kCorrupt,
                        "section payload checksum mismatch");
      }
    }
    const auto* sa = reinterpret_cast<const index_t*>(
        base + header.sections[kSuffixArray].offset);
    for (u64 i = 0; i < header.n; ++i) {
      if (sa[i] >= header.n) {
        return LoadFail(error, LoadErrorCode::kCorrupt,
                        "suffix-array position out of range");
      }
    }
    if (ext.ext_magic == kLearnedMagic &&
        Checksum64(base + ext.offset, ext.length) != ext.checksum) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "learned section checksum mismatch");
    }
  }

  std::unique_ptr<UsiIndex> index(new UsiIndex(LoadTag{}, ws));
  index->kind_ = static_cast<GlobalUtilityKind>(header.kind);
  index->miner_ = static_cast<UsiMiner>(header.miner);
  index->hasher_ = KarpRabinHasher::FromBase(header.base);
  index->build_info_.k = header.k;
  index->build_info_.tau_k = header.tau_k;
  index->build_info_.num_lengths = header.num_lengths;
  // Pointer fixup — the whole "load": every structure views the mapping.
  // Section offsets are 64-aligned in the file and the mapping is
  // page-aligned, so each cast below lands on aligned memory.
  index->sa_span_ = {reinterpret_cast<const index_t*>(
                         base + header.sections[kSuffixArray].offset),
                     header.n};
  index->psw_ = PrefixSumWeights::FromRaw(
      reinterpret_cast<const double*>(base +
                                      header.sections[kPrefixSums].offset),
      static_cast<index_t>(header.n));
  index->table_.AdoptView(
      base + header.sections[kTableCtrl].offset,
      reinterpret_cast<const Slot*>(base +
                                    header.sections[kTableSlots].offset),
      capacity, header.table_size);
  index->fallback_ = ExhaustiveQueryEngine(ws.text(), index->sa_span_,
                                           index->psw_, index->kind_);
  if (ext.ext_magic == kLearnedMagic) {
    // The payload is served in place (AdoptView) — the mapping outlives the
    // model via mapping_. AdoptView re-validates the payload's own header
    // and geometry; the entry's epsilon/num_segments must agree with the
    // adopted model, or the file is inconsistent with itself.
    if (!index->learned_.AdoptView(base + ext.offset, ext.length) ||
        index->learned_.epsilon() != ext.epsilon ||
        index->learned_.num_segments() != ext.num_segments ||
        index->learned_.fit_n() != header.n) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "learned section payload inconsistent with entry");
    }
    index->fallback_.AttachLearned(&index->learned_);
  }
  index->mapping_ = std::move(mapping);
  // Serving probes pages out of order; default readahead would fault in
  // neighbours pointlessly.
  index->mapping_->AdviseRandom();
  return index;
}

std::unique_ptr<UsiIndex> UsiIndex::LoadFromFile(const WeightedString& ws,
                                                 const std::string& path) {
  return LoadFromFile(ws, path, nullptr);
}

std::unique_ptr<UsiIndex> UsiIndex::LoadFromFile(const WeightedString& ws,
                                                 const std::string& path,
                                                 LoadError* error) {
  if (error != nullptr) *error = LoadError{};
  {
    // Magic dispatch: the first u32 names the format. v3 files are opened
    // by mmap, everything else falls through to the v2 stream loader.
    BinaryReader sniff(path);
    u32 magic = 0;
    if (!sniff.Read(&magic)) {
      return LoadFail(error, LoadErrorCode::kNotFound,
                      "cannot open or read " + path);
    }
    if (magic == format_v3::kMagic) {
      return OpenMapped(ws, path, OpenOptions(), error);
    }
  }
  if (USI_FAILPOINT_FIRED("load.v2")) {
    return LoadFail(error, LoadErrorCode::kIo, "failpoint load.v2");
  }
  BinaryReader reader(path);
  u32 magic = 0;
  u32 version = 0;
  u32 n = 0;
  u8 kind = 0;
  u8 miner = 0;
  u64 base = 0;
  if (!reader.Read(&magic) || magic != kIndexMagic) {
    return LoadFail(error, LoadErrorCode::kBadFormat,
                    "not an index file (unknown magic)");
  }
  if (!reader.Read(&version) || version != kIndexVersion) {
    return LoadFail(error, LoadErrorCode::kBadFormat,
                    "unsupported v2 version");
  }
  if (!reader.Read(&n) || n != ws.size()) {
    return LoadFail(error, LoadErrorCode::kTextMismatch,
                    "index was saved over a text of different length");
  }
  if (!reader.Read(&kind) || kind >= kNumGlobalUtilityKinds) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "invalid utility kind byte");
  }
  if (!reader.Read(&miner) || miner >= kNumUsiMiners) {
    return LoadFail(error, LoadErrorCode::kCorrupt, "invalid miner byte");
  }
  if (!reader.Read(&base) || !KarpRabinHasher::IsValidBase(base)) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "invalid Karp-Rabin base");
  }

  std::unique_ptr<UsiIndex> index(new UsiIndex(LoadTag{}, ws));
  index->kind_ = static_cast<GlobalUtilityKind>(kind);
  index->miner_ = static_cast<UsiMiner>(miner);
  index->hasher_ = KarpRabinHasher::FromBase(base);
  if (!reader.Read(&index->build_info_.k) ||
      !reader.Read(&index->build_info_.tau_k) ||
      !reader.Read(&index->build_info_.num_lengths)) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "truncated build-info block");
  }
  if (!reader.ReadVector(&index->sa_) || index->sa_.size() != ws.size()) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "suffix-array payload truncated or wrong length");
  }
  // Corrupted SA payload bytes must not become out-of-bounds positions that
  // query-time PSW lookups would dereference.
  for (const index_t pos : index->sa_) {
    if (pos >= ws.size()) {
      return LoadFail(error, LoadErrorCode::kCorrupt,
                      "suffix-array position out of range");
    }
  }
  std::vector<SerializedEntry> entries;
  if (!reader.ReadVector(&entries)) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "hash-table payload truncated");
  }
  // The entry vector is the file's last payload: anything after it is not
  // slack, it is corruption (a concatenated or doctored file), and a loader
  // that shrugged it off would serve whatever prefix happened to parse.
  if (!reader.ExactlyConsumed()) {
    return LoadFail(error, LoadErrorCode::kCorrupt,
                    "trailing bytes after last payload");
  }
  for (const SerializedEntry& entry : entries) {
    TableValue value;
    value.value = entry.value;
    value.count = entry.count;
    index->table_.FindOrInsert(PatternKey{entry.fp, entry.len}, value);
  }
  index->sa_span_ = index->sa_;
  index->psw_ = PrefixSumWeights(ws);
  index->fallback_ = ExhaustiveQueryEngine(ws.text(), index->sa_span_,
                                           index->psw_, index->kind_);
  // The v2 stream predates the learned model and carries no ε, so refit at
  // the default — one extra sequential pass on a path that already does a
  // full O(n) read, and v2-loaded indexes serve misses as fast as built
  // ones. (A v2 round-trip of an off-default-ε index refits at the
  // default; the v3 learned section is the lossless carrier.)
  index->learned_.Build(ws.text(), index->sa_span_);
  if (!index->learned_.empty()) {
    index->fallback_.AttachLearned(&index->learned_);
  }
  return index;
}

}  // namespace usi
