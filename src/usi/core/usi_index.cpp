#include "usi/core/usi_index.hpp"

#include <algorithm>

#include "usi/suffix/suffix_array.hpp"
#include "usi/topk/substring_stats.hpp"
#include "usi/util/binary_io.hpp"
#include "usi/util/bit_vector.hpp"
#include "usi/util/timer.hpp"

namespace usi {
namespace {

constexpr u32 kIndexMagic = 0x55534931;  // "USI1".
constexpr u32 kIndexVersion = 1;

/// Flat hash-table entry for serialization.
struct SerializedEntry {
  u64 fp;
  u32 len;
  u32 count;
  double value;
};

}  // namespace

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options)
    : ws_(&ws),
      kind_(options.utility),
      hasher_(options.hash_seed),
      psw_(ws),
      table_(options.k > 0 ? options.k : std::max<u64>(1, ws.size() / 100)) {
  Timer total_timer;
  const Text& text = ws.text();
  const index_t n = ws.size();
  const u64 k = options.k > 0 ? options.k : std::max<u64>(1, n / 100);
  build_info_.k = k;

  // Phase (i): mine the top-K frequent substrings.
  Timer mining_timer;
  TopKList mined;
  if (options.miner == UsiMiner::kExact && n > 0) {
    SubstringStats stats(text);
    mined = stats.TopK(k);
    sa_ = stats.TakeSa();  // Reuse the stats' suffix array as the text index.
  } else {
    sa_ = BuildSuffixArray(text);
    if (n > 0) mined = ApproximateTopK(text, k, options.approx);
  }
  build_info_.mining_seconds = mining_timer.ElapsedSeconds();

  index_t tau = kInvalidIndex;
  for (const TopKSubstring& item : mined.items) {
    tau = std::min(tau, item.frequency);
  }
  build_info_.tau_k = mined.items.empty() ? 0 : tau;

  // Phases (ii)+(iii): precompute global utilities; PSW was built above.
  Timer table_timer;
  PopulateTable(mined);
  build_info_.table_seconds = table_timer.ElapsedSeconds();

  fallback_ = ExhaustiveQueryEngine(text, sa_, psw_, kind_);
  build_info_.total_seconds = total_timer.ElapsedSeconds();
}

void UsiIndex::PopulateTable(const TopKList& mined) {
  const Text& text = ws_->text();
  const index_t n = ws_->size();
  if (mined.items.empty() || n == 0) return;

  // Group mined substrings by length (bucket sort on length).
  std::vector<const TopKSubstring*> by_length(mined.items.size());
  for (std::size_t i = 0; i < mined.items.size(); ++i) {
    by_length[i] = &mined.items[i];
  }
  std::sort(by_length.begin(), by_length.end(),
            [](const TopKSubstring* a, const TopKSubstring* b) {
              return a->length < b->length;
            });

  BitVector occurrence_starts(mined.exact ? n : 0);
  index_t num_lengths = 0;
  std::size_t group_begin = 0;
  while (group_begin < by_length.size()) {
    const index_t len = by_length[group_begin]->length;
    std::size_t group_end = group_begin;
    while (group_end < by_length.size() &&
           by_length[group_end]->length == len) {
      ++group_end;
    }
    ++num_lengths;
    if (len > n) break;  // Nothing of this length fits (defensive).

    if (mined.exact) {
      // Mark all occurrence starts of this length's substrings in B_len.
      for (std::size_t g = group_begin; g < group_end; ++g) {
        const TopKSubstring& item = *by_length[g];
        for (index_t k = item.lb; k <= item.rb; ++k) {
          occurrence_starts.Set(sa_[k]);
        }
      }
    } else {
      // Approximate miner gives witnesses, not intervals: pre-insert keys so
      // the window pass below runs in update-only mode.
      for (std::size_t g = group_begin; g < group_end; ++g) {
        const TopKSubstring& item = *by_length[g];
        const u64 fp = hasher_.Hash(
            std::span<const Symbol>(text.data() + item.witness, len));
        table_.FindOrInsert(PatternKey{fp, len}, TableValue{});
      }
    }

    // Slide a length-len window over S; O(1) fingerprint and local utility
    // per position (Section IV, phase (ii)).
    RollingHasher window(hasher_, len);
    for (index_t i = 0; i + 1 < len && i < n; ++i) window.Push(text[i]);
    for (index_t i = 0; i + len <= n; ++i) {
      if (i == 0) {
        window.Push(text[len - 1]);
      } else {
        window.Roll(text[i - 1], text[i + len - 1]);
      }
      const PatternKey key{window.Fingerprint(), len};
      if (mined.exact) {
        if (!occurrence_starts.Test(i)) continue;
        TableValue* value = table_.FindOrInsert(key, TableValue{});
        value->Add(psw_.LocalUtility(i, len), kind_);
      } else {
        TableValue* value = table_.Find(key);
        if (value != nullptr) value->Add(psw_.LocalUtility(i, len), kind_);
      }
    }

    if (mined.exact) {
      // Reset only the bits we set (cheaper than zeroing all of B).
      for (std::size_t g = group_begin; g < group_end; ++g) {
        const TopKSubstring& item = *by_length[g];
        for (index_t k = item.lb; k <= item.rb; ++k) {
          occurrence_starts.Clear(sa_[k]);
        }
      }
    }
    group_begin = group_end;
  }
  build_info_.num_lengths = num_lengths;
}

QueryResult UsiIndex::Query(std::span<const Symbol> pattern) const {
  QueryResult result;
  if (pattern.empty() || pattern.size() > ws_->size()) return result;
  const u64 fp = hasher_.Hash(pattern);
  const PatternKey key{fp, static_cast<u32>(pattern.size())};
  const TableValue* value = table_.Find(key);
  if (value != nullptr && value->count > 0) {
    result.utility = value->Finalize(kind_);
    result.occurrences = value->count;
    result.from_hash_table = true;
    return result;
  }
  return fallback_.Compute(pattern);
}

std::size_t UsiIndex::SizeInBytes() const {
  return sa_.capacity() * sizeof(index_t) + psw_.SizeInBytes() +
         table_.SizeInBytes();
}

UsiIndex::UsiIndex(LoadTag, const WeightedString& ws)
    : ws_(&ws),
      kind_(GlobalUtilityKind::kSum),
      hasher_(),
      psw_(ws),
      table_(16) {}

bool UsiIndex::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path);
  writer.Write(kIndexMagic);
  writer.Write(kIndexVersion);
  writer.Write(static_cast<u32>(ws_->size()));
  writer.Write(static_cast<u8>(kind_));
  writer.Write(hasher_.base());
  writer.Write(build_info_.k);
  writer.Write(build_info_.tau_k);
  writer.Write(build_info_.num_lengths);
  writer.WriteVector(sa_);
  std::vector<SerializedEntry> entries;
  entries.reserve(table_.size());
  table_.ForEach([&](const PatternKey& key, const TableValue& value) {
    entries.push_back(SerializedEntry{key.fp, key.len, value.count, value.value});
  });
  writer.WriteVector(entries);
  return writer.ok();
}

std::unique_ptr<UsiIndex> UsiIndex::LoadFromFile(const WeightedString& ws,
                                                 const std::string& path) {
  BinaryReader reader(path);
  u32 magic = 0;
  u32 version = 0;
  u32 n = 0;
  u8 kind = 0;
  u64 base = 0;
  if (!reader.Read(&magic) || magic != kIndexMagic) return nullptr;
  if (!reader.Read(&version) || version != kIndexVersion) return nullptr;
  if (!reader.Read(&n) || n != ws.size()) return nullptr;
  if (!reader.Read(&kind) || kind >= kNumGlobalUtilityKinds) return nullptr;
  if (!reader.Read(&base) || !KarpRabinHasher::IsValidBase(base)) {
    return nullptr;
  }

  std::unique_ptr<UsiIndex> index(new UsiIndex(LoadTag{}, ws));
  index->kind_ = static_cast<GlobalUtilityKind>(kind);
  index->hasher_ = KarpRabinHasher::FromBase(base);
  if (!reader.Read(&index->build_info_.k) ||
      !reader.Read(&index->build_info_.tau_k) ||
      !reader.Read(&index->build_info_.num_lengths)) {
    return nullptr;
  }
  if (!reader.ReadVector(&index->sa_) || index->sa_.size() != ws.size()) {
    return nullptr;
  }
  // Corrupted SA payload bytes must not become out-of-bounds positions that
  // query-time PSW lookups would dereference.
  for (const index_t pos : index->sa_) {
    if (pos >= ws.size()) return nullptr;
  }
  std::vector<SerializedEntry> entries;
  if (!reader.ReadVector(&entries)) return nullptr;
  for (const SerializedEntry& entry : entries) {
    TableValue value;
    value.value = entry.value;
    value.count = entry.count;
    index->table_.FindOrInsert(PatternKey{entry.fp, entry.len}, value);
  }
  index->fallback_ = ExhaustiveQueryEngine(ws.text(), index->sa_, index->psw_,
                                           index->kind_);
  return index;
}

}  // namespace usi
