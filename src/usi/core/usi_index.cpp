#include "usi/core/usi_index.hpp"

#include <algorithm>

#include "usi/core/usi_builder.hpp"
#include "usi/util/binary_io.hpp"

namespace usi {
namespace {

constexpr u32 kIndexMagic = 0x55534931;  // "USI1".
// Version 2 added the miner byte (UET/UAT) after the utility kind.
constexpr u32 kIndexVersion = 2;

/// Number of UsiMiner enumerators; loaders validate the serialized byte.
constexpr u8 kNumUsiMiners = static_cast<u8>(UsiMiner::kApproximate) + 1;

/// Flat hash-table entry for serialization.
struct SerializedEntry {
  u64 fp;
  u32 len;
  u32 count;
  double value;
};

}  // namespace

UsiIndex::UsiIndex(BuildTag, const WeightedString& ws,
                   const UsiOptions& options)
    : ws_(&ws),
      kind_(options.utility),
      miner_(options.miner),
      hasher_(options.hash_seed),
      psw_(ws),
      table_(options.k > 0 ? options.k : std::max<u64>(1, ws.size() / 100)) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options)
    : UsiIndex(ws, options, nullptr) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options,
                   ThreadPool* pool)
    : UsiIndex(BuildTag{}, ws, options) {
  UsiBuilder builder(ws, options);
  if (pool != nullptr) builder.UsePool(pool);
  builder.BuildInto(*this);
}

QueryResult UsiIndex::Query(std::span<const Symbol> pattern) const {
  QueryResult result;
  if (pattern.empty() || pattern.size() > ws_->size()) return result;
  const u64 fp = hasher_.Hash(pattern);
  const PatternKey key{fp, static_cast<u32>(pattern.size())};
  const TableValue* value = table_.Find(key);
  if (value != nullptr && value->count > 0) {
    result.utility = value->Finalize(kind_);
    result.occurrences = value->count;
    result.from_hash_table = true;
    return result;
  }
  return fallback_.Compute(pattern);
}

std::size_t UsiIndex::SizeInBytes() const {
  return sa_.capacity() * sizeof(index_t) + psw_.SizeInBytes() +
         table_.SizeInBytes();
}

UsiIndex::UsiIndex(LoadTag, const WeightedString& ws)
    : ws_(&ws),
      kind_(GlobalUtilityKind::kSum),
      hasher_(),
      psw_(ws),
      table_(16) {}

bool UsiIndex::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path);
  writer.Write(kIndexMagic);
  writer.Write(kIndexVersion);
  writer.Write(static_cast<u32>(ws_->size()));
  writer.Write(static_cast<u8>(kind_));
  writer.Write(static_cast<u8>(miner_));
  writer.Write(hasher_.base());
  writer.Write(build_info_.k);
  writer.Write(build_info_.tau_k);
  writer.Write(build_info_.num_lengths);
  writer.WriteVector(sa_);
  std::vector<SerializedEntry> entries;
  entries.reserve(table_.size());
  table_.ForEach([&](const PatternKey& key, const TableValue& value) {
    entries.push_back(SerializedEntry{key.fp, key.len, value.count, value.value});
  });
  // Canonical (length, fingerprint) order: equal table contents serialize to
  // equal bytes no matter what insertion order the build schedule produced.
  std::sort(entries.begin(), entries.end(),
            [](const SerializedEntry& a, const SerializedEntry& b) {
              return a.len != b.len ? a.len < b.len : a.fp < b.fp;
            });
  writer.WriteVector(entries);
  return writer.ok();
}

std::unique_ptr<UsiIndex> UsiIndex::LoadFromFile(const WeightedString& ws,
                                                 const std::string& path) {
  BinaryReader reader(path);
  u32 magic = 0;
  u32 version = 0;
  u32 n = 0;
  u8 kind = 0;
  u8 miner = 0;
  u64 base = 0;
  if (!reader.Read(&magic) || magic != kIndexMagic) return nullptr;
  if (!reader.Read(&version) || version != kIndexVersion) return nullptr;
  if (!reader.Read(&n) || n != ws.size()) return nullptr;
  if (!reader.Read(&kind) || kind >= kNumGlobalUtilityKinds) return nullptr;
  if (!reader.Read(&miner) || miner >= kNumUsiMiners) return nullptr;
  if (!reader.Read(&base) || !KarpRabinHasher::IsValidBase(base)) {
    return nullptr;
  }

  std::unique_ptr<UsiIndex> index(new UsiIndex(LoadTag{}, ws));
  index->kind_ = static_cast<GlobalUtilityKind>(kind);
  index->miner_ = static_cast<UsiMiner>(miner);
  index->hasher_ = KarpRabinHasher::FromBase(base);
  if (!reader.Read(&index->build_info_.k) ||
      !reader.Read(&index->build_info_.tau_k) ||
      !reader.Read(&index->build_info_.num_lengths)) {
    return nullptr;
  }
  if (!reader.ReadVector(&index->sa_) || index->sa_.size() != ws.size()) {
    return nullptr;
  }
  // Corrupted SA payload bytes must not become out-of-bounds positions that
  // query-time PSW lookups would dereference.
  for (const index_t pos : index->sa_) {
    if (pos >= ws.size()) return nullptr;
  }
  std::vector<SerializedEntry> entries;
  if (!reader.ReadVector(&entries)) return nullptr;
  for (const SerializedEntry& entry : entries) {
    TableValue value;
    value.value = entry.value;
    value.count = entry.count;
    index->table_.FindOrInsert(PatternKey{entry.fp, entry.len}, value);
  }
  index->fallback_ = ExhaustiveQueryEngine(ws.text(), index->sa_, index->psw_,
                                           index->kind_);
  return index;
}

}  // namespace usi
