#include "usi/core/usi_index.hpp"

#include <algorithm>

#include "usi/core/usi_builder.hpp"
#include "usi/util/binary_io.hpp"

namespace usi {
namespace {

constexpr u32 kIndexMagic = 0x55534931;  // "USI1".
// Version 2 added the miner byte (UET/UAT) after the utility kind.
constexpr u32 kIndexVersion = 2;

/// Number of UsiMiner enumerators; loaders validate the serialized byte.
constexpr u8 kNumUsiMiners = static_cast<u8>(UsiMiner::kApproximate) + 1;

/// QueryBatch fingerprints in prefix-clustered order only when the average
/// pattern is at least this long; below it, hashing a pattern outright is
/// cheaper than placing it in the clustered order.
constexpr std::size_t kClusterMinAvgLen = 16;

/// Sharing detector: the smallest batch worth clustering (service shards
/// are often ~100-500 patterns, so this must stay well below shard size),
/// the most packed prefixes sampled (batches at or below it are sampled
/// exhaustively), and the sampled duplicate fraction
/// (dupes * kShareDetectInverse >= sample size) above which clustering is
/// predicted to pay for its sort.
constexpr std::size_t kClusterMinBatch = 64;
constexpr std::size_t kShareSampleSize = 256;
constexpr std::size_t kShareDetectInverse = 8;

/// Packed ordering key for prefix clustering: 6 prefix bytes then the
/// (capped) length, so repeats of one pattern — the common case in serving
/// traffic — end up adjacent with a full-length LCP, and comparisons never
/// indirect into the pattern storage.
u64 PackedOrderKey(const Text& pattern) {
  u64 packed = 0;
  const std::size_t take = std::min<std::size_t>(6, pattern.size());
  for (std::size_t j = 0; j < take; ++j) {
    packed |= static_cast<u64>(pattern[j]) << (56 - 8 * j);
  }
  return packed | std::min<std::size_t>(pattern.size(), 0xFFFF);
}

/// QueryBatch uses the table's pipelined VisitBatch only for tables at
/// least this large; smaller tables are cache-resident, where the
/// pipeline's bookkeeping costs more than the misses it hides (~L2 size).
constexpr std::size_t kPipelinedProbeMinTableBytes = std::size_t{2} << 20;

/// Flat hash-table entry for serialization.
struct SerializedEntry {
  u64 fp;
  u32 len;
  u32 count;
  double value;
};

}  // namespace

UsiIndex::UsiIndex(BuildTag, const WeightedString& ws,
                   const UsiOptions& options)
    : ws_(&ws),
      kind_(options.utility),
      miner_(options.miner),
      hasher_(options.hash_seed),
      psw_(ws),
      table_(options.k > 0 ? options.k : std::max<u64>(1, ws.size() / 100)) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options)
    : UsiIndex(ws, options, nullptr) {}

UsiIndex::UsiIndex(const WeightedString& ws, const UsiOptions& options,
                   ThreadPool* pool)
    : UsiIndex(BuildTag{}, ws, options) {
  UsiBuilder builder(ws, options);
  if (pool != nullptr) builder.UsePool(pool);
  builder.BuildInto(*this);
}

QueryResult UsiIndex::Query(std::span<const Symbol> pattern) const {
  QueryResult result;
  if (pattern.empty() || pattern.size() > ws_->size()) return result;
  const u64 fp = hasher_.Hash(pattern);
  const PatternKey key{fp, static_cast<u32>(pattern.size())};
  const TableValue* value = table_.Find(key);
  if (value != nullptr && value->count > 0) {
    result.utility = value->Finalize(kind_);
    result.occurrences = value->count;
    result.from_hash_table = true;
    return result;
  }
  return fallback_.Compute(pattern);
}

void UsiIndex::PrepareBatch(std::span<const Text> patterns) {
  std::size_t max_len = 0;
  for (const Text& pattern : patterns) {
    max_len = std::max(max_len, pattern.size());
  }
  // One shared pre-grow instead of per-query growth: every power any shard
  // can need is now a read-only lookup, so concurrent shards never mutate
  // the hasher (the precondition ReservePowers documents).
  hasher_.ReservePowers(max_len);
}

bool UsiIndex::BatchPrepared(std::span<const Text> patterns) const {
  std::size_t max_len = 0;
  for (const Text& pattern : patterns) {
    max_len = std::max(max_len, pattern.size());
  }
  // powers_.size() only grows, and growth happens under UsiService's
  // exclusive prepare lock — so a true answer here cannot be invalidated
  // by a concurrent batch.
  return hasher_.PowersCover(max_len);
}

void UsiIndex::QueryBatch(std::span<const Text> patterns,
                          std::span<QueryResult> results,
                          QueryScratch* scratch) const {
  USI_CHECK(results.size() >= patterns.size());
  QueryScratch local;
  if (scratch == nullptr) scratch = &local;
  const std::size_t batch = patterns.size();
  if (batch == 0) return;

  std::size_t max_len = 0;
  std::size_t total_len = 0;
  for (const Text& pattern : patterns) {
    max_len = std::max(max_len, pattern.size());
    total_len += pattern.size();
  }
  std::vector<u64>& fps = scratch->prefix_fps;
  if (fps.size() < max_len + 1) fps.resize(max_len + 1);
  fps[0] = 0;
  std::vector<PatternKey>& keys = scratch->keys;
  keys.resize(batch);

  // Fingerprint stage. When the batch shows real prefix sharing,
  // fingerprint in clustered order: patterns sharing a prefix sit adjacent,
  // and each one extends the running prefix-fingerprint chain from the
  // longest common prefix with its predecessor instead of rehashing from
  // scratch. The order only needs to CLUSTER shared prefixes, not be truly
  // lexicographic (each fingerprint is recomputed from its actual LCP with
  // its predecessor either way), so the sort compares a packed 8-byte
  // prefix — O(1) per comparison instead of O(m).
  //
  // Clustering is gated twice, because its sort is a pure loss on batches
  // of short or near-distinct patterns: (1) the average pattern must be
  // long enough that hashing dominates the ordering overhead, and (2) a
  // strided sample of the packed prefixes, sorted, must actually contain
  // repeats. Heavy sharing — hot queries repeated across a batch,
  // hierarchical key families — shows up as sampled duplicates; a
  // near-distinct batch does not, and hashes directly instead.
  bool cluster =
      total_len >= batch * kClusterMinAvgLen && batch >= kClusterMinBatch;
  if (cluster) {
    // Detector first, on a strided sample only — a rejected batch must not
    // pay for packing all its keys. Ceil stride: a floor would leave the
    // batch's tail unsampled, hiding sharing concentrated there.
    u64 sample[kShareSampleSize];
    const std::size_t stride =
        (batch + kShareSampleSize - 1) / kShareSampleSize;
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < batch && sampled < kShareSampleSize;
         i += stride) {
      sample[sampled++] = PackedOrderKey(patterns[i]);
    }
    std::sort(sample, sample + sampled);
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < sampled; ++i) {
      repeats += sample[i] == sample[i - 1] ? 1 : 0;
    }
    cluster = repeats * kShareDetectInverse >= sampled;
  }
  if (cluster) {
    std::vector<std::pair<u64, u32>>& cluster_order = scratch->cluster;
    cluster_order.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      cluster_order[i] = {PackedOrderKey(patterns[i]), static_cast<u32>(i)};
    }
    // Pair order (key, index): deterministic, and ties keep batch order.
    std::sort(cluster_order.begin(), cluster_order.end());

    const Text* prev = nullptr;
    for (const auto& [packed, idx] : cluster_order) {
      const Text& pattern = patterns[idx];
      std::size_t lcp = 0;
      if (prev != nullptr) {
        const std::size_t bound = std::min(prev->size(), pattern.size());
        while (lcp < bound && (*prev)[lcp] == pattern[lcp]) ++lcp;
      }
      // The running fingerprint stays in a register: routing the chain
      // through fps[] would put a store-to-load forward on the critical
      // path of every Append.
      u64 fp = fps[lcp];
      for (std::size_t j = lcp; j < pattern.size(); ++j) {
        fp = hasher_.Append(fp, pattern[j]);
        fps[j + 1] = fp;
      }
      keys[idx] = PatternKey{pattern.empty() ? 0 : fps[pattern.size()],
                            static_cast<u32>(pattern.size())};
      prev = &pattern;
    }
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      keys[i] = PatternKey{hasher_.Hash(patterns[i]),
                          static_cast<u32>(patterns[i].size())};
    }
  }

  // Probe stage, answering in original order either way. The pipelined
  // VisitBatch exists to overlap out-of-cache line and TLB fetches; when H
  // is small enough to live in the fast cache levels its bookkeeping is
  // pure overhead, so cache-resident tables take the plain loop.
  const auto answer = [&](std::size_t i, const TableValue* value) {
    const Text& pattern = patterns[i];
    QueryResult result;
    if (pattern.empty() || pattern.size() > ws_->size()) {
      results[i] = result;
      return;
    }
    if (value != nullptr && value->count > 0) {
      result.utility = value->Finalize(kind_);
      result.occurrences = value->count;
      result.from_hash_table = true;
    } else {
      result = fallback_.Compute(pattern);
    }
    results[i] = result;
  };
  if (table_.SizeInBytes() >= kPipelinedProbeMinTableBytes) {
    table_.VisitBatch(std::span<const PatternKey>(keys.data(), batch),
                      answer);
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      answer(i, table_.Find(keys[i]));
    }
  }
}

void UsiIndex::QueryAllWindows(std::span<const Symbol> document,
                               index_t window_len,
                               std::span<QueryResult> results) const {
  if (window_len == 0 || document.size() < window_len) return;
  const std::size_t windows = document.size() - window_len + 1;
  USI_CHECK(results.size() >= windows);
  // RollingHasher reads base^(window_len-1) at construction; growing the
  // power table here (not per window) keeps the loop read-only.
  hasher_.ReservePowers(window_len);
  RollingHasher window(hasher_, window_len);
  for (index_t i = 0; i + 1 < window_len; ++i) window.Push(document[i]);
  for (std::size_t i = 0; i < windows; ++i) {
    if (i == 0) {
      window.Push(document[window_len - 1]);
    } else {
      window.Roll(document[i - 1], document[i + window_len - 1]);
    }
    QueryResult result;
    if (window_len <= ws_->size()) {
      const PatternKey key{window.Fingerprint(), window_len};
      const TableValue* value = table_.Find(key);
      if (value != nullptr && value->count > 0) {
        result.utility = value->Finalize(kind_);
        result.occurrences = value->count;
        result.from_hash_table = true;
      } else {
        result = fallback_.Compute(document.subspan(i, window_len));
      }
    }
    results[i] = result;
  }
}

std::size_t UsiIndex::SizeInBytes() const {
  // sa_.size(), not capacity(): the builder shrinks its vectors, and a
  // loaded index reads them exact, so slack must never inflate the figure.
  // The fallback engine borrows sa_/psw_ (counted once, above); only its
  // own object footprint is added. The hasher's power table counts too:
  // PrepareBatch grows it to the longest pattern ever served and it stays
  // resident for the index lifetime.
  return sa_.size() * sizeof(index_t) + psw_.SizeInBytes() +
         table_.SizeInBytes() + sizeof(fallback_) + hasher_.SizeInBytes();
}

UsiIndex::UsiIndex(LoadTag, const WeightedString& ws)
    : ws_(&ws),
      kind_(GlobalUtilityKind::kSum),
      hasher_(),
      psw_(ws),
      table_(16) {}

bool UsiIndex::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path);
  writer.Write(kIndexMagic);
  writer.Write(kIndexVersion);
  writer.Write(static_cast<u32>(ws_->size()));
  writer.Write(static_cast<u8>(kind_));
  writer.Write(static_cast<u8>(miner_));
  writer.Write(hasher_.base());
  writer.Write(build_info_.k);
  writer.Write(build_info_.tau_k);
  writer.Write(build_info_.num_lengths);
  writer.WriteVector(sa_);
  std::vector<SerializedEntry> entries;
  entries.reserve(table_.size());
  table_.ForEach([&](const PatternKey& key, const TableValue& value) {
    entries.push_back(SerializedEntry{key.fp, key.len, value.count, value.value});
  });
  // Canonical (length, fingerprint) order: equal table contents serialize to
  // equal bytes no matter what insertion order the build schedule produced.
  std::sort(entries.begin(), entries.end(),
            [](const SerializedEntry& a, const SerializedEntry& b) {
              return a.len != b.len ? a.len < b.len : a.fp < b.fp;
            });
  writer.WriteVector(entries);
  return writer.ok();
}

std::unique_ptr<UsiIndex> UsiIndex::LoadFromFile(const WeightedString& ws,
                                                 const std::string& path) {
  BinaryReader reader(path);
  u32 magic = 0;
  u32 version = 0;
  u32 n = 0;
  u8 kind = 0;
  u8 miner = 0;
  u64 base = 0;
  if (!reader.Read(&magic) || magic != kIndexMagic) return nullptr;
  if (!reader.Read(&version) || version != kIndexVersion) return nullptr;
  if (!reader.Read(&n) || n != ws.size()) return nullptr;
  if (!reader.Read(&kind) || kind >= kNumGlobalUtilityKinds) return nullptr;
  if (!reader.Read(&miner) || miner >= kNumUsiMiners) return nullptr;
  if (!reader.Read(&base) || !KarpRabinHasher::IsValidBase(base)) {
    return nullptr;
  }

  std::unique_ptr<UsiIndex> index(new UsiIndex(LoadTag{}, ws));
  index->kind_ = static_cast<GlobalUtilityKind>(kind);
  index->miner_ = static_cast<UsiMiner>(miner);
  index->hasher_ = KarpRabinHasher::FromBase(base);
  if (!reader.Read(&index->build_info_.k) ||
      !reader.Read(&index->build_info_.tau_k) ||
      !reader.Read(&index->build_info_.num_lengths)) {
    return nullptr;
  }
  if (!reader.ReadVector(&index->sa_) || index->sa_.size() != ws.size()) {
    return nullptr;
  }
  // Corrupted SA payload bytes must not become out-of-bounds positions that
  // query-time PSW lookups would dereference.
  for (const index_t pos : index->sa_) {
    if (pos >= ws.size()) return nullptr;
  }
  std::vector<SerializedEntry> entries;
  if (!reader.ReadVector(&entries)) return nullptr;
  for (const SerializedEntry& entry : entries) {
    TableValue value;
    value.value = entry.value;
    value.count = entry.count;
    index->table_.FindOrInsert(PatternKey{entry.fp, entry.len}, value);
  }
  index->fallback_ = ExhaustiveQueryEngine(ws.text(), index->sa_, index->psw_,
                                           index->kind_);
  return index;
}

}  // namespace usi
