#ifndef USI_CORE_USI_BUILDER_HPP_
#define USI_CORE_USI_BUILDER_HPP_

/// \file usi_builder.hpp
/// Staged, instrumented construction pipeline for UsiIndex.
///
/// Construction decomposes into explicit stages — "sa" (SA-IS over the
/// text), "mine" (phase (i) top-K mining), "table" (phase (ii): the
/// O(n * L_K) sliding-window table population, the dominant cost), "learn"
/// (the PLA last-mile model fit over the finished SA; learned_sa.hpp) and
/// "finalize" (fallback wiring). Each stage is timed individually and its
/// peak-RSS growth recorded; the summary lands in UsiIndex::build_info().
///
/// Every stage runs on the pool when one is given. "sa" parallelizes the
/// level-0 SA-IS histogram and LMS gathering; "mine" runs chunked Kasai LCP
/// plus the chunked LCP-interval (ESA) traversal of the exact miner; and
/// phase (ii) parallelizes over the L_K distinct substring lengths: every
/// length group runs its own sliding-window pass with thread-confined
/// scratch (a per-worker copy of the Karp-Rabin hasher and a per-worker
/// occurrence-mark bit vector) into a private fingerprint table, and the
/// per-group partials merge into H in increasing-length order. Because the
/// pattern length is part of every hash key, groups touch disjoint key sets
/// and each key's accumulation order equals the sequential one — so a
/// parallel build serializes byte-identical to a sequential build at any
/// thread count (the determinism contract tests/parallel_test.cpp and
/// tests/buildpath_test.cpp pin).
///
/// Memory-lean staging: each stage releases its dead intermediates (SA-IS
/// workspace, LCP array, the T/Q/L mining tables, the mined list) before
/// the next stage allocates, so the build's peak RSS tracks the largest
/// single stage instead of the sum of all of them.

#include <memory>
#include <vector>

#include "usi/core/usi_index.hpp"

namespace usi {

class ThreadPool;

/// One timed construction stage.
struct UsiBuildStage {
  const char* name;  ///< "sa", "mine", "table", "learn", "finalize".
  double seconds;
  /// How much the stage grew the process peak RSS (VmHWM delta; 0 where
  /// /proc is unavailable or the stage stayed under the running peak).
  std::size_t rss_delta_bytes = 0;
};

/// Builds UsiIndex instances, sequentially or over a thread pool.
class UsiBuilder {
 public:
  /// \p ws is borrowed and must outlive the builder and the built indexes.
  /// options.threads selects the pool width when no pool is injected
  /// (1 = sequential, 0 = hardware concurrency).
  explicit UsiBuilder(const WeightedString& ws, const UsiOptions& options = {});
  ~UsiBuilder();

  UsiBuilder(const UsiBuilder&) = delete;
  UsiBuilder& operator=(const UsiBuilder&) = delete;

  /// Injects a shared pool (borrowed; null = honor options.threads).
  UsiBuilder& UsePool(ThreadPool* pool);

  /// Runs all stages and returns the finished index.
  std::unique_ptr<UsiIndex> Build();

  /// Per-stage timings of the most recent Build.
  const std::vector<UsiBuildStage>& stages() const { return stages_; }

 private:
  friend class UsiIndex;

  /// The pool the stages will run on: the injected one, else a lazily
  /// created owned pool per options.threads, else null (sequential).
  ThreadPool* EffectivePool();

  /// Runs the staged pipeline into \p index (whose invariant members the
  /// BuildTag constructor already initialized).
  void BuildInto(UsiIndex& index);

  /// Phase (ii): parallel-over-lengths table population.
  void PopulateTable(UsiIndex& index, const TopKList& mined, ThreadPool* pool);

  const WeightedString* ws_;
  UsiOptions options_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::vector<UsiBuildStage> stages_;
};

}  // namespace usi

#endif  // USI_CORE_USI_BUILDER_HPP_
