#ifndef USI_CORE_INDEX_FORMAT_HPP_
#define USI_CORE_INDEX_FORMAT_HPP_

/// \file index_format.hpp
/// On-disk layouts of persisted UsiIndex files.
///
/// Two formats share one Save/Load surface (usi_index.hpp):
///
///  * v2 "heap" — the portable stream format: a 38-byte packed header
///    followed by u64-length-prefixed arrays, deserialized into owning heap
///    structures on load. Works on any host; costs a full O(n) read + hash
///    re-insertion at startup.
///  * v3 "mapped" — the layout below: a page-aligned section file whose
///    on-disk bytes ARE the in-memory structures. Opening is header
///    validation + pointer fixup (util/mapped_file.hpp); the kernel demand-
///    pages the sections and shares them across processes. Same-host
///    format: byte order, index_t width, and FingerprintTable slot layout
///    must match the writer (slot_bytes in the header guards the latter).
///
/// \par v3 file layout
///
///     offset 0    FileHeader (208 bytes, see below), header_checksum last
///     ...         zero padding
///     offset 256  section kSuffixArray   n * sizeof(index_t)  [64-aligned]
///     ...         section kPrefixSums    n * sizeof(double)   [64-aligned]
///     ...         section kTableCtrl     capacity + kGroupWidth bytes
///     ...         section kTableSlots    capacity * slot_bytes
///
/// Sections are 64-byte aligned (cache-line; mmap makes file alignment ==
/// memory alignment). The section directory inside the header records each
/// section's id, offset, length, and content checksum; the directory itself
/// is covered by header_checksum, so a flipped offset or length is rejected
/// in O(1) at open without touching the payload. file_bytes pins the exact
/// file size — truncated or extended files fail before any section is read.
///
/// Every v3 (and v2) write goes through the atomic publish protocol of
/// util/mapped_file.hpp: stage to `path.tmp.<pid>`, fsync, rename, fsync
/// parent. A crash at any instant leaves `path` absent or a complete image.

#include <cstddef>

#include "usi/util/common.hpp"

namespace usi {

/// Which on-disk format SaveToFile emits.
enum class IndexFileFormat : u8 {
  kV2Heap,    ///< Portable stream format, heap-deserialized on load.
  kV3Mapped,  ///< Section file served via mmap; same-host only.
};

namespace format_v2 {

/// "USI1" — the stream format's magic. Version 2 of the stream added the
/// miner byte; the magic word kept its original spelling.
inline constexpr u32 kMagic = 0x55534931;

inline constexpr u32 kVersion = 2;

}  // namespace format_v2

namespace format_v3 {

/// "USI3" (v2 files start with "USI1" + version 2; the first u32 of a file
/// dispatches the loader).
inline constexpr u32 kMagic = 0x55534933;

inline constexpr u32 kVersion = 3;

/// Section ids, in file order.
enum SectionId : u32 {
  kSuffixArray = 0,  ///< n * sizeof(index_t), the SA in leaf order.
  kPrefixSums = 1,   ///< n * sizeof(double), the PSW array.
  kTableCtrl = 2,    ///< capacity + kGroupWidth control bytes (cloned tail).
  kTableSlots = 3,   ///< capacity * slot_bytes records.
};

inline constexpr std::size_t kNumSections = 4;

/// Alignment of every section payload. One cache line: mmap maps file
/// offset alignment straight to memory alignment, so aligned sections give
/// aligned arrays.
inline constexpr u64 kSectionAlign = 64;

/// File offset of the first section. Leaves room for the header plus slack
/// for forward-compatible header growth within the version.
inline constexpr u64 kFirstSectionOffset = 256;

/// One row of the section directory.
struct SectionEntry {
  u32 id = 0;        ///< SectionId.
  u32 reserved = 0;  ///< Zero.
  u64 offset = 0;    ///< Absolute file offset, kSectionAlign-aligned.
  u64 length = 0;    ///< Payload bytes (exact, no padding).
  u64 checksum = 0;  ///< Checksum64 of the payload bytes.
};
static_assert(sizeof(SectionEntry) == 32);

/// The v3 file header. Fixed layout, written and read raw; header_checksum
/// is a Checksum64 over every byte that precedes it (including the section
/// directory) and MUST remain the last field.
struct FileHeader {
  u32 magic = kMagic;
  u32 version = kVersion;
  u64 file_bytes = 0;  ///< Exact total file size.
  u32 n = 0;           ///< Text length the index was built over.
  u8 kind = 0;         ///< GlobalUtilityKind.
  u8 miner = 0;        ///< UsiMiner.
  u16 reserved0 = 0;   ///< Zero.
  u64 base = 0;        ///< Karp-Rabin base.
  u64 k = 0;           ///< Effective K.
  u32 tau_k = 0;
  u32 num_lengths = 0;
  u64 table_size = 0;      ///< Occupied hash-table entries.
  u64 table_capacity = 0;  ///< Hash-table slots (power of two).
  u64 slot_bytes = 0;      ///< sizeof one table slot; guards layout drift.
  SectionEntry sections[kNumSections] = {};
  u64 header_checksum = 0;  ///< Checksum64 of all preceding header bytes.
};
static_assert(sizeof(FileHeader) == 208);
static_assert(offsetof(FileHeader, header_checksum) ==
                  sizeof(FileHeader) - sizeof(u64),
              "header_checksum must be the last header field");
static_assert(sizeof(FileHeader) <= kFirstSectionOffset);

/// Rounds \p offset up to the next section boundary.
constexpr u64 AlignUp(u64 offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/// "USIL" — marks a populated learned-model extension entry.
inline constexpr u32 kLearnedMagic = 0x5553494C;

/// Optional learned-model extension descriptor, stored in the slack between
/// FileHeader and kFirstSectionOffset (file offset 208..255). Pre-extension
/// writers zero-padded that gap (BinaryWriter::PadTo), so on legacy images
/// ext_magic reads 0 — "no learned section" — and they keep opening
/// unchanged; the extension needs no version bump and no header change.
/// The entry sits OUTSIDE header_checksum's coverage (which must stay the
/// last covered field), so it carries its own entry_checksum; the payload —
/// a LearnedSa::Serialize image appended after the last core section, with
/// file_bytes grown to cover it — is guarded by checksum like any section.
struct LearnedSectionEntry {
  u32 ext_magic = 0;       ///< kLearnedMagic when present, 0 when absent.
  u32 epsilon = 0;         ///< Recorded model error bound ε.
  u64 offset = 0;          ///< Absolute payload offset, kSectionAlign-aligned.
  u64 length = 0;          ///< Payload bytes (exact).
  u64 checksum = 0;        ///< Checksum64 of the payload bytes.
  u64 num_segments = 0;    ///< Model segments (info/inspect convenience).
  u64 entry_checksum = 0;  ///< Checksum64 of all preceding entry bytes.
};
static_assert(sizeof(LearnedSectionEntry) == 48);
static_assert(offsetof(LearnedSectionEntry, entry_checksum) ==
                  sizeof(LearnedSectionEntry) - sizeof(u64),
              "entry_checksum must be the last entry field");
static_assert(sizeof(FileHeader) + sizeof(LearnedSectionEntry) ==
                  kFirstSectionOffset,
              "the extension entry exactly fills the header slack");

}  // namespace format_v3

}  // namespace usi

#endif  // USI_CORE_INDEX_FORMAT_HPP_
