#include "usi/core/multi_service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "usi/core/usi_builder.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/mapped_file.hpp"
#include "usi/util/timer.hpp"

namespace usi {

const char* BuildStateName(BuildState state) {
  switch (state) {
    case BuildState::kUnknown: return "unknown";
    case BuildState::kPending: return "pending";
    case BuildState::kBuilding: return "building";
    case BuildState::kReady: return "ready";
    case BuildState::kFailed: return "failed";
  }
  return "?";
}

namespace {

/// A text's serving-cost telemetry calibrates once it has served this many
/// pattern bytes; below the threshold the configured prior is used.
constexpr u64 kCostCalibrationBytes = 1024;

}  // namespace

/// One immutable index generation. The weighted string lives here because
/// UsiIndex borrows it; the shared_ptr holding the Generation keeps both
/// alive for as long as any batch still serves from it.
struct UsiMultiService::Generation {
  u64 number = 0;
  WeightedString ws;
  std::unique_ptr<UsiIndex> index;    ///< Borrows ws.
  std::unique_ptr<UsiService> service;  ///< Borrows index + the shared pool.
  /// Serving straight out of an mmap'd file (RegisterTextFromFile). A
  /// mapped generation that faults mid-serve (SIGBUS on a truncated or
  /// revoked backing file) is demoted and recovered; heap generations
  /// cannot lose their backing, so a serve failure there is reported but
  /// never demotes.
  bool mapped = false;
};

/// Registry slot for one named text. `current` is the generation pointer
/// readers pin (a shared_ptr copy under a pointer-copy-scale lock; see
/// PinGeneration); everything else behind `mu` is build bookkeeping writers
/// touch briefly. Waiters on `cv` release `mu` while blocked, so pinning
/// never queues behind a WaitForText.
struct UsiMultiService::TextEntry {
  std::string id;

  std::mutex mu;  ///< Guards current, build_options, scheduled, completed,
                  ///< published, building, last_failed, last_error,
                  ///< failed_builds, retries, source_path, removed, delta,
                  ///< delta_epoch, compaction_scheduled, appends,
                  ///< compactions, compact_publish_ns.
  std::condition_variable cv;  ///< Signals per-text build completions.
  std::shared_ptr<const Generation> current;  ///< Null until first publish.
  /// Update-tier overlay paired with `current`: absorbs appends past the
  /// published base; null until the first append (and again right after a
  /// compaction that left nothing pending). Swapped together with
  /// `current` under `mu`, so a pin sees a consistent (base, delta) pair;
  /// the overlay itself is internally synchronized for its readers.
  std::shared_ptr<DeltaOverlay> delta;
  /// Overlay lineage counter: bumps whenever `delta` is dropped or
  /// replaced. A compaction records the epoch its snapshot saw and only
  /// publishes while the live overlay still carries it — a delta recreated
  /// for different content can never be trimmed by a stale compaction.
  u64 delta_epoch = 0;
  /// A compaction build for this text is queued or running; appends do not
  /// schedule another until it reaches a terminal state.
  bool compaction_scheduled = false;
  u64 appends = 0;              ///< AppendText calls absorbed.
  u64 compactions = 0;          ///< Compaction publishes.
  u64 compact_publish_ns = 0;   ///< Entry-lock hold of the latest publish.
  UsiOptions build_options;
  /// A build lane holds this text (guarded by the service's build_mu_, NOT
  /// by `mu`): per-text serialization across the multi-lane executor.
  bool lane_claimed = false;
  u64 scheduled = 0;  ///< Generation numbers handed out so far.
  u64 completed = 0;  ///< Builds finished (published, superseded or failed).
  u64 published = 0;  ///< Highest generation number stored in `current`.
  bool building = false;     ///< The build lane is on (or retrying) a job.
  bool last_failed = false;  ///< The newest terminal build outcome failed.
  std::string last_error;    ///< Cause of the most recent build failure.
  u64 failed_builds = 0;     ///< Terminal failures (quarantines).
  u64 retries = 0;           ///< Failed attempts that were re-armed.
  /// Backing file of mapped generations (RegisterTextFromFile); recovery
  /// after a mapped fault re-loads from here when the file is still good.
  std::string source_path;
  /// UnregisterText ran: the entry is out of the registry; a build still
  /// holding it must not publish (the generation would be unreachable
  /// anyway — this just skips the wasted service construction).
  bool removed = false;

  /// Graceful-degradation tier: learns exact answers, serves the degraded
  /// paths. Shared across generations — a quarantined text with no
  /// servable generation is exactly when it is needed. Null when disabled
  /// service-wide. The tier itself is internally synchronized.
  std::unique_ptr<DegradedTier> tier;

  std::atomic<u64> batches{0};
  std::atomic<u64> queries{0};
  std::atomic<u64> hash_hits{0};
  /// Cost-model telemetry: cumulative pattern bytes served to completion
  /// and the wall time they took. Their ratio is this text's calibrated
  /// ns-per-byte estimate once past kCostCalibrationBytes.
  std::atomic<u64> served_bytes{0};
  std::atomic<u64> served_ns{0};

  /// The reader-side pin: a shared_ptr copy taken under `mu`. The lock is
  /// held for a refcount increment — not for the batch — so a rebuild
  /// publishing concurrently never blocks readers for longer than a
  /// pointer copy. (std::atomic<std::shared_ptr> would make this genuinely
  /// lock-free, but libstdc++'s implementation guards the pointer with a
  /// lock bit ThreadSanitizer cannot model, and the TSan CI job is part of
  /// this contract.)
  std::shared_ptr<const Generation> PinGeneration() {
    std::lock_guard<std::mutex> lock(mu);
    return current;
  }

  /// As PinGeneration, additionally pinning the update-tier overlay in the
  /// SAME critical section: the pair describes one boundary, so a batch
  /// can never merge a new delta into an old base (or vice versa).
  void PinServing(std::shared_ptr<const Generation>* gen_out,
                  std::shared_ptr<DeltaOverlay>* delta_out) {
    std::lock_guard<std::mutex> lock(mu);
    *gen_out = current;
    *delta_out = delta;
  }

  /// Build-lane state; caller holds `mu`.
  BuildState StateLocked() const {
    if (completed >= scheduled) {
      return last_failed ? BuildState::kFailed : BuildState::kReady;
    }
    return building ? BuildState::kBuilding : BuildState::kPending;
  }
};

/// One queued rebuild (or recovery) job.
struct UsiMultiService::BuildJob {
  EntryPtr entry;
  WeightedString ws;
  u64 generation = 0;
  unsigned attempt = 0;  ///< Failed attempts so far.
  /// Earliest start time; retry jobs carry their backoff here. The default
  /// (epoch) is always ready.
  std::chrono::steady_clock::time_point not_before{};
  /// Non-empty marks a recovery job: try a heap load of this index file
  /// before paying for a full rebuild.
  std::string recover_path;
  /// Compaction job: ws is the overlay's merged snapshot; at publish the
  /// successor overlay warm-starts from the old one.
  bool compaction = false;
  index_t compact_boundary = 0;  ///< Snapshot length ns (new base covers it).
  u64 compact_epoch = 0;         ///< Overlay lineage the snapshot saw.
};

/// Leased per-batch routing buffers: the per-text groups (with their pinned
/// generations) plus gather/scatter staging. Reused across batches, so a
/// steady-state batch shape stops allocating once capacities are warm.
struct UsiMultiService::BatchScratch {
  struct Group {
    EntryPtr entry;
    std::shared_ptr<const Generation> gen;
    /// The update-tier overlay pinned WITH gen (one entry-lock critical
    /// section), so the group's base and delta describe the same boundary.
    std::shared_ptr<DeltaOverlay> delta;
    std::vector<u32> indices;  ///< Positions in the incoming batch.
  };
  std::vector<Group> groups;  ///< groups[0..used) active this batch.
  /// Gathered patterns of one group: spans pointing into the callers'
  /// request storage (MultiQuery::pattern bytes, alive for the whole
  /// QueryBatchInto call) — the gather stage scatters pointers, it never
  /// copies pattern bytes.
  std::vector<PatternSpan> patterns;
  std::vector<QueryResult> results;  ///< Group-local results to scatter.
  DeltaOverlay::Scratch delta_scratch;  ///< Crossing-probe reuse buffers.
};

UsiMultiService::UsiMultiService(const UsiMultiServiceOptions& options)
    : options_(options) {
  const unsigned threads = options.threads == 0
                               ? ThreadPool::HardwareConcurrency()
                               : options.threads;
  // Unlike UsiService, a 1-wide pool is still useful here: it is the build
  // lane (queries are then served inline on caller threads).
  owned_pool_ = std::make_unique<ThreadPool>(std::max(1u, threads));
  pool_ = owned_pool_.get();
}

UsiMultiService::UsiMultiService(ThreadPool* pool,
                                 const UsiMultiServiceOptions& options)
    : pool_(pool), options_(options) {}

UsiMultiService::~UsiMultiService() {
  // Wait until the build lane has drained and retired: after that no pool
  // task can touch this object's members. (An owned pool additionally joins
  // its workers when destroyed below.)
  std::unique_lock<std::mutex> lock(build_mu_);
  build_cv_.wait(lock, [this] {
    return build_queue_.empty() && build_lanes_active_ == 0;
  });
}

unsigned UsiMultiService::threads() const {
  return pool_ == nullptr ? 1 : std::max(1u, pool_->thread_count());
}

UsiMultiService::EntryPtr UsiMultiService::FindEntry(
    std::string_view id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

UsiMultiService::EntryPtr UsiMultiService::EnsureEntry(std::string_view id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(id);
  if (it != registry_.end()) return it->second;
  EntryPtr entry = std::make_shared<TextEntry>();
  entry->id = std::string(id);
  if (options_.enable_degraded_tier) {
    entry->tier = std::make_unique<DegradedTier>(options_.degraded);
  }
  registry_.emplace(entry->id, entry);
  return entry;
}

u64 UsiMultiService::SubmitText(std::string_view id, WeightedString ws,
                                const UsiOptions& build_options) {
  EntryPtr entry = EnsureEntry(id);
  u64 generation;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->build_options = build_options;
    generation = ++entry->scheduled;
    // Full-content replacement supersedes the update tier: pending appends
    // describe the outgoing text.
    if (entry->delta != nullptr) {
      entry->delta = nullptr;
      ++entry->delta_epoch;
    }
  }
  // New content: recorded answers (and their bounds) describe the old text.
  if (entry->tier != nullptr) entry->tier->Clear();
  ScheduleBuild(std::move(entry), std::move(ws), generation);
  return generation;
}

u64 UsiMultiService::SubmitText(std::string_view id, WeightedString ws) {
  return SubmitText(id, std::move(ws), options_.default_build);
}

u64 UsiMultiService::RegisterTextFromFile(std::string_view id,
                                          WeightedString ws,
                                          const std::string& path) {
  // Registration is the natural startup sweep point: a writer that crashed
  // mid-publish left only `path.tmp.*` siblings, which never affect the
  // published file but do leak disk until someone removes them.
  RemoveStaleTemps(path);

  // The generation owns the weighted string (the index borrows it), so the
  // text moves in before the open. Open BEFORE touching the registry: a
  // bad file must not register an id or burn a generation number.
  auto gen = std::make_shared<Generation>();
  gen->ws = std::move(ws);
  std::unique_ptr<UsiIndex> index = UsiIndex::OpenMapped(gen->ws, path);
  if (index == nullptr) return 0;
  gen->index = std::move(index);
  gen->mapped = true;
  UsiServiceOptions service_options;
  service_options.min_shard_size = options_.min_shard_size;
  gen->service =
      std::make_unique<UsiService>(*gen->index, pool_, service_options);

  EntryPtr entry = EnsureEntry(id);
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    gen->number = ++entry->scheduled;
    entry->source_path = path;
    // Full-content replacement supersedes the update tier.
    if (entry->delta != nullptr) {
      entry->delta = nullptr;
      ++entry->delta_epoch;
    }
  }
  // Upsert may swap in different content; the tier must not replay answers
  // recorded against the previous text.
  if (entry->tier != nullptr) entry->tier->Clear();
  // Account the instant publish as a scheduled-and-completed build so
  // WaitForText/WaitForBuilds targets stay consistent with SubmitText's.
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    ++builds_scheduled_;
  }
  const u64 generation = gen->number;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    ++entry->completed;
    // Same monotonic publish as BuildOne: an in-flight rebuild that claims
    // a higher number afterwards supersedes this mapped generation, never
    // the other way round.
    if (gen->number > entry->published) {
      entry->published = gen->number;
      entry->current = std::move(gen);
      entry->last_failed = false;
    }
  }
  entry->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    ++builds_completed_;
  }
  build_cv_.notify_all();
  return generation;
}

u64 UsiMultiService::UpdateText(std::string_view id, WeightedString ws) {
  return UpdateText(id, std::move(ws), nullptr);
}

u64 UsiMultiService::UpdateText(std::string_view id, WeightedString ws,
                                const UsiOptions& build_options) {
  return UpdateText(id, std::move(ws), &build_options);
}

u64 UsiMultiService::UpdateText(std::string_view id, WeightedString ws,
                                const UsiOptions* build_options) {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return 0;
  u64 generation;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (build_options != nullptr) entry->build_options = *build_options;
    generation = ++entry->scheduled;
    // Full-content replacement supersedes the update tier.
    if (entry->delta != nullptr) {
      entry->delta = nullptr;
      ++entry->delta_epoch;
    }
  }
  // New content: recorded answers (and their bounds) describe the old text.
  if (entry->tier != nullptr) entry->tier->Clear();
  ScheduleBuild(std::move(entry), std::move(ws), generation);
  return generation;
}

bool UsiMultiService::SetBuildOptions(std::string_view id,
                                      const UsiOptions& build_options) {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->build_options = build_options;
  return true;
}

ServeStatus UsiMultiService::AppendText(std::string_view id,
                                        std::span<const Symbol> text,
                                        std::span<const double> weights) {
  return AppendTextImpl(id, text, weights, nullptr);
}

ServeStatus UsiMultiService::AppendText(std::string_view id,
                                        std::span<const Symbol> text,
                                        std::span<const double> weights,
                                        const UsiOptions& build_options) {
  return AppendTextImpl(id, text, weights, &build_options);
}

ServeStatus UsiMultiService::AppendTextImpl(std::string_view id,
                                            std::span<const Symbol> text,
                                            std::span<const double> weights,
                                            const UsiOptions* build_options) {
  USI_CHECK(text.size() == weights.size());
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return ServeStatus::kUnknownText;

  bool schedule_compaction = false;
  WeightedString compact_ws;
  u64 compact_generation = 0;
  index_t compact_boundary = 0;
  u64 compact_epoch = 0;
  {
    // The entry lock is held for the whole append (overlay creation, the
    // append itself, the compaction decision): it serializes appenders and
    // — because the compaction publish also swaps under this lock — an
    // append can never land in an overlay that is being replaced mid-span.
    // Readers are unaffected: they pin (pointer copy) and probe the overlay
    // under ITS lock, never this one.
    std::lock_guard<std::mutex> lock(entry->mu);
    if (build_options != nullptr) entry->build_options = *build_options;
    if (entry->current == nullptr) {
      // Appends extend a published base; before the first publish there is
      // no boundary to append past (and no index to merge with).
      return ServeStatus::kNotReady;
    }
    if (entry->delta == nullptr) {
      // First append against this generation: the overlay borrows the
      // generation's text through an aliasing shared_ptr, so the base stays
      // alive as long as the overlay does.
      std::shared_ptr<const WeightedString> base(entry->current,
                                                 &entry->current->ws);
      entry->delta = std::make_shared<DeltaOverlay>(
          std::move(base), options_.delta_context, ++entry->delta_epoch,
          entry->current->index->utility_kind());
    }
    try {
      entry->delta->Append(text, weights);
    } catch (...) {
      if (entry->delta->poisoned()) {
        // Mid-span failure tore the overlay: pending appends are lost with
        // it; the base keeps serving exact answers over its own prefix.
        entry->delta = nullptr;
        ++entry->delta_epoch;
      }
      return ServeStatus::kIndexUnavailable;
    }
    ++entry->appends;
    {
      auto read = entry->delta->LockForRead();
      if (options_.delta_compact_threshold > 0 &&
          entry->delta->AppendedLocked() >= options_.delta_compact_threshold &&
          !entry->compaction_scheduled) {
        compact_boundary = entry->delta->TotalSizeLocked();
        compact_epoch = entry->delta->epoch();
        schedule_compaction = true;
      }
    }
    if (schedule_compaction) {
      // Snapshot under the entry lock (appenders are excluded, so the
      // snapshot IS the content compact_boundary describes) and mark the
      // compaction in flight — one at a time per text.
      compact_ws = entry->delta->SnapshotMerged();
      compact_generation = ++entry->scheduled;
      entry->compaction_scheduled = true;
    }
  }
  // Appended content changed the text: recorded tier answers (and their
  // bounds) describe the shorter text.
  if (entry->tier != nullptr) entry->tier->Clear();
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (schedule_compaction) {
    ScheduleBuild(std::move(entry), std::move(compact_ws), compact_generation,
                  {}, true, compact_boundary, compact_epoch);
  }
  return ServeStatus::kOk;
}

bool UsiMultiService::UnregisterText(std::string_view id) {
  EntryPtr entry;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    entry = it->second;
    registry_.erase(it);
  }
  // Reclaim queued build work: jobs for this text that have not started are
  // dropped. Each dropped job still counts as a completed build — a
  // WaitForBuilds (or a WaitForText that grabbed the EntryPtr before the
  // erase) blocks on scheduled==completed targets and must not hang on work
  // that will never run.
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    for (auto it = build_queue_.begin(); it != build_queue_.end();) {
      if (it->entry == entry) {
        it = build_queue_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    builds_completed_ += dropped;
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->removed = true;  // A build mid-run skips its publish.
    entry->completed += dropped;
    entry->building = false;
    // Drop the registry's generation reference. In-flight batches that
    // pinned it keep serving (RCU: their shared_ptrs keep entry and
    // generation alive; the last reader reclaims both).
    entry->current = nullptr;
    if (entry->delta != nullptr) {
      entry->delta = nullptr;
      ++entry->delta_epoch;
    }
  }
  entry->cv.notify_all();
  build_cv_.notify_all();
  return true;
}

bool UsiMultiService::RemoveText(std::string_view id) {
  return UnregisterText(id);
}

bool UsiMultiService::HasText(std::string_view id) const {
  return FindEntry(id) != nullptr;
}

std::vector<std::string> UsiMultiService::TextIds() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(registry_mu_);
  ids.reserve(registry_.size());
  for (const auto& [id, entry] : registry_) ids.push_back(id);
  return ids;
}

void UsiMultiService::ScheduleBuild(EntryPtr entry, WeightedString ws,
                                    u64 generation, std::string recover_path,
                                    bool compaction, index_t compact_boundary,
                                    u64 compact_epoch) {
  if (pool_ == nullptr) {
    // Degenerate no-pool configuration: build synchronously, right here —
    // retries included (the backoff is a sleep on the caller's thread).
    BuildJob job{std::move(entry), std::move(ws), generation, 0,
                 std::chrono::steady_clock::time_point{},
                 std::move(recover_path), compaction, compact_boundary,
                 compact_epoch};
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      ++builds_scheduled_;
    }
    while (!BuildOne(job)) {
      std::this_thread::sleep_until(job.not_before);
    }
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      ++builds_completed_;
    }
    build_cv_.notify_all();
    return;
  }
  bool start_lane = false;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_queue_.push_back(BuildJob{std::move(entry), std::move(ws),
                                    generation, 0,
                                    std::chrono::steady_clock::time_point{},
                                    std::move(recover_path), compaction,
                                    compact_boundary, compact_epoch});
    ++builds_scheduled_;
    // Spawn another lane while the executor is under its configured width;
    // a surplus lane that finds nothing claimable simply retires.
    if (build_lanes_active_ < std::max(1u, options_.build_lanes)) {
      ++build_lanes_active_;
      start_lane = true;
    }
  }
  if (start_lane) pool_->Run([this] { BuildLane(); });
  build_cv_.notify_all();
}

void UsiMultiService::BuildLane() {
  for (;;) {
    BuildJob job;
    {
      std::unique_lock<std::mutex> lock(build_mu_);
      for (;;) {
        if (build_queue_.empty()) {
          --build_lanes_active_;
          // Notify while still holding the lock: a destructor waiting on
          // build_cv_ can only resume after we release it, by which point
          // this task no longer touches the service.
          build_cv_.notify_all();
          return;
        }
        // FIFO among ready jobs whose text no other lane holds: the
        // per-text claim keeps each text's generations strictly sequential
        // while distinct texts build in parallel. Retry jobs whose backoff
        // has not elapsed are skipped over (a delayed retry must not stall
        // the lane for every other text).
        const auto now = std::chrono::steady_clock::now();
        auto ready = std::find_if(
            build_queue_.begin(), build_queue_.end(), [&](const BuildJob& j) {
              return j.not_before <= now && !j.entry->lane_claimed;
            });
        if (ready != build_queue_.end()) {
          job = std::move(*ready);
          build_queue_.erase(ready);
          job.entry->lane_claimed = true;
          break;
        }
        // Nothing claimable: every remaining job is either backing off or
        // held by another lane. Sleep until the earliest unclaimed backoff
        // expires, or — all claimed — until a lane finishing wakes us.
        auto earliest = build_queue_.end();
        for (auto it = build_queue_.begin(); it != build_queue_.end(); ++it) {
          if (it->entry->lane_claimed) continue;
          if (earliest == build_queue_.end() ||
              it->not_before < earliest->not_before) {
            earliest = it;
          }
        }
        if (earliest != build_queue_.end()) {
          build_cv_.wait_until(lock, earliest->not_before);
        } else {
          build_cv_.wait(lock);
        }
      }
    }
    const bool terminal = BuildOne(job);
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      job.entry->lane_claimed = false;
      if (terminal) {
        ++builds_completed_;
      } else {
        // Failed attempt, retries remain: back into the queue with its
        // backoff; it is still the same scheduled build, so the completion
        // counters do not move.
        build_queue_.push_back(std::move(job));
      }
    }
    build_cv_.notify_all();
  }
}

bool UsiMultiService::BuildOne(BuildJob& job) {
  TextEntry& entry = *job.entry;
  auto gen = std::make_shared<Generation>();
  gen->number = job.generation;
  gen->ws = std::move(job.ws);
  UsiOptions build_options;
  {
    std::lock_guard<std::mutex> lock(entry.mu);
    if (entry.removed) {
      // Unregistered while queued or retrying: the publish target is gone,
      // so the build (and any remaining retries) would be pure waste.
      // Count the job completed and stop here.
      ++entry.completed;
      entry.building = false;
      if (job.compaction) entry.compaction_scheduled = false;
      entry.cv.notify_all();
      return true;
    }
    entry.building = true;
    build_options = entry.build_options;
  }
  // The lane occupies one pool worker, and a task must not ParallelFor on
  // its own pool — so each generation builds through the sequential staged
  // pipeline, leaving the remaining workers to the query fan-out.
  build_options.threads = 1;
  // Containment boundary: anything a build can throw — bad_alloc from the
  // O(n) stage arrays, an armed failpoint, an I/O error surfacing as an
  // exception — lands here, never on the pool worker. The text is re-armed
  // for retry or quarantined; other texts and in-flight queries are
  // untouched.
  try {
    USI_FAILPOINT("multi.build");
    // Compaction-specific chaos hook: a failed fold must leave the old base
    // serving and the overlay absorbing, per the quarantine semantics.
    if (job.compaction) USI_FAILPOINT("compact.swap");
    if (!job.recover_path.empty()) {
      // Recovery after a mapped-generation fault: a heap load of the source
      // file is much cheaper than a rebuild — but only a HEAP load is
      // acceptable (re-mapping the file that just faulted would fault
      // again); a v3 file, whose load path is OpenMapped, falls through to
      // the rebuild.
      std::unique_ptr<UsiIndex> loaded =
          UsiIndex::LoadFromFile(gen->ws, job.recover_path);
      if (loaded != nullptr && !loaded->IsMapped()) {
        gen->index = std::move(loaded);
      }
    }
    if (gen->index == nullptr) {
      UsiBuilder builder(gen->ws, build_options);
      gen->index = builder.Build();
    }
  } catch (const std::bad_alloc&) {
    job.ws = std::move(gen->ws);
    return HandleBuildFailure(job, "out of memory (std::bad_alloc)");
  } catch (const std::exception& e) {
    job.ws = std::move(gen->ws);
    return HandleBuildFailure(job, e.what());
  } catch (...) {
    job.ws = std::move(gen->ws);
    return HandleBuildFailure(job, "unknown exception");
  }
  UsiServiceOptions service_options;
  service_options.min_shard_size = options_.min_shard_size;
  gen->service =
      std::make_unique<UsiService>(*gen->index, pool_, service_options);

  bool compaction_published = false;
  {
    std::lock_guard<std::mutex> lock(entry.mu);
    Timer publish_timer;  // Measures the lock hold appenders/pinners see.
    ++entry.completed;
    entry.building = false;
    if (job.compaction) entry.compaction_scheduled = false;
    // Monotonic publish: a stale build can never clobber a newer
    // generation. Readers that pinned the previous generation keep it
    // alive until their batch completes; the store reclaims nothing.
    // A text unregistered mid-build skips the publish entirely (the
    // generation would be unreachable — it is reclaimed right here).
    bool publish = !entry.removed && gen->number > entry.published;
    if (publish && job.compaction &&
        (entry.delta == nullptr ||
         entry.delta->epoch() != job.compact_epoch)) {
      // Epoch gate: this base indexes a snapshot of the overlay lineage
      // recorded at schedule time. The live overlay was dropped or replaced
      // since (UpdateText, a poisoned append) — it extends DIFFERENT
      // content, and merging it over this base would double-count the
      // positions both cover. The superseding build publishes instead.
      publish = false;
    }
    if (publish) {
      if (job.compaction) {
        // Fold: the new base covers [0, ns). Appends that landed during
        // the build (entry lock excludes appenders NOW, so the count is
        // exact) replay into a successor overlay warm-started over the new
        // base; none pending means no overlay at all.
        std::shared_ptr<DeltaOverlay> old = std::move(entry.delta);
        const index_t ns = job.compact_boundary;
        const index_t extra = old->TotalSizeLocked() - ns;
        if (extra > 0) {
          bool warm = !USI_FAILPOINT_FIRED("compact.warmstart");
          if (warm) {
            try {
              std::shared_ptr<const WeightedString> base(gen, &gen->ws);
              auto next = std::make_shared<DeltaOverlay>(
                  std::move(base), options_.delta_context,
                  ++entry.delta_epoch, gen->index->utility_kind());
              next->AppendFrom(*old, ns, extra);
              entry.delta = std::move(next);
            } catch (...) {
              warm = false;
            }
          }
          if (!warm) {
            // Containment fallback: keep the old overlay, move its boundary
            // to the new base's edge. Still exact — the old window's
            // content is a prefix slice of the new base — just wider than
            // needed; the next successful warm start reclaims the memory.
            old->Rebase(ns);
            entry.delta = std::move(old);
          }
        } else {
          // `old` (the last reference) releases the overlay — and with it
          // the pinned previous generation — when it leaves scope.
          ++entry.delta_epoch;
        }
        ++entry.compactions;
        compaction_published = true;
      } else if (entry.delta != nullptr) {
        // A full rebuild replaces content wholesale; an overlay created
        // against the outgoing base (appends raced the rebuild) describes
        // text this generation supersedes.
        entry.delta = nullptr;
        ++entry.delta_epoch;
      }
      entry.published = gen->number;
      entry.current = std::move(gen);
      entry.last_failed = false;
    }
    if (compaction_published) {
      entry.compact_publish_ns =
          static_cast<u64>(publish_timer.ElapsedSeconds() * 1e9);
    }
  }
  entry.cv.notify_all();
  if (compaction_published) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool UsiMultiService::HandleBuildFailure(BuildJob& job,
                                         const std::string& what) {
  TextEntry& entry = *job.entry;
  if (job.attempt < options_.max_build_retries) {
    // Re-arm with capped exponential backoff: base, 2x, 4x, 8x, 16x.
    const unsigned shift = std::min(job.attempt, 4u);
    const auto delay = std::chrono::milliseconds(
        static_cast<u64>(options_.build_retry_backoff_ms) << shift);
    ++job.attempt;
    job.not_before = std::chrono::steady_clock::now() + delay;
    {
      std::lock_guard<std::mutex> lock(entry.mu);
      ++entry.retries;
      entry.last_error = what;
    }
    return false;
  }
  // Retries exhausted: quarantine. The build counts as completed — a
  // WaitForText must terminate and report kFailed, not hang — and the
  // previous generation, if any, keeps serving untouched. The service-wide
  // counter bumps before the state publish wakes waiters, so a caller woken
  // by WaitForText never reads a stats() snapshot missing this failure.
  builds_failed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(entry.mu);
    ++entry.completed;
    ++entry.failed_builds;
    entry.last_error = what;
    entry.building = false;
    // A quarantined compaction re-arms the trigger: the old base keeps
    // serving, the overlay keeps absorbing, and the next append past the
    // threshold schedules a fresh fold. (While retrying, the flag stays
    // set — one compaction in flight per text.)
    if (job.compaction) entry.compaction_scheduled = false;
    if (job.generation > entry.published) entry.last_failed = true;
  }
  entry.cv.notify_all();
  return true;
}

BuildState UsiMultiService::WaitForText(std::string_view id) {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return BuildState::kUnknown;
  std::unique_lock<std::mutex> lock(entry->mu);
  const u64 target = entry->scheduled;
  entry->cv.wait(lock, [&] { return entry->completed >= target; });
  return entry->last_failed ? BuildState::kFailed : BuildState::kReady;
}

BuildState UsiMultiService::TextState(std::string_view id) const {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return BuildState::kUnknown;
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->StateLocked();
}

void UsiMultiService::WaitForBuilds() {
  std::unique_lock<std::mutex> lock(build_mu_);
  const u64 target = builds_scheduled_;
  build_cv_.wait(lock, [&] { return builds_completed_ >= target; });
}

std::unique_ptr<UsiMultiService::BatchScratch>
UsiMultiService::AcquireBatchScratch() {
  {
    std::lock_guard<std::mutex> lock(batch_scratch_mu_);
    if (!batch_scratch_free_.empty()) {
      auto scratch = std::move(batch_scratch_free_.back());
      batch_scratch_free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<BatchScratch>();
}

void UsiMultiService::ReleaseBatchScratch(
    std::unique_ptr<BatchScratch> scratch) {
  std::lock_guard<std::mutex> lock(batch_scratch_mu_);
  batch_scratch_free_.push_back(std::move(scratch));
}

ServeStatus UsiMultiService::QueryBatchInto(
    std::span<const MultiQuery> queries, std::span<QueryResult> results,
    const MultiBatchOptions& batch_options) {
  USI_CHECK(results.size() >= queries.size());
  if (queries.empty()) return ServeStatus::kOk;

  // Degradation ladder opt-in: a shed or failed batch is answered from the
  // per-text tiers (exact -> cache -> sketch -> none) instead of rejected.
  const bool degrade =
      batch_options.allow_degraded && options_.enable_degraded_tier;

  // Admission, stage 1 — the in-flight count cap: a counter, not a queue,
  // so overload is shed with kBusy immediately instead of building an
  // unbounded backlog.
  const u64 cap = static_cast<u64>(options_.max_inflight_batches);
  const u64 inflight =
      inflight_batches_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (cap != 0 && inflight > cap) {
    inflight_batches_.fetch_sub(1, std::memory_order_release);
    // Shedding to the tier costs microseconds and touches no engine, so a
    // degraded serve does not re-enter admission: the caller still gets an
    // answer per slot while the exact path stays protected.
    if (degrade) return ServeDegradedBatch(queries, results);
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kBusy;
  }
  struct InflightRelease {
    std::atomic<u64>& counter;
    ~InflightRelease() { counter.fetch_sub(1, std::memory_order_release); }
  } inflight_release{inflight_batches_};

  // Admission, stage 2 — the cost cap, checked BEFORE routing and scratch
  // acquisition: at saturation most batches are shed, and a rejection that
  // pays for pinning and group-building contends with the batches actually
  // serving (rejection itself becomes the overload). The pre-pass only
  // accumulates pattern bytes per distinct text id and prices them with
  // that text's calibrated ns-per-byte (the prior until a text has served
  // kCostCalibrationBytes). Unknown ids contribute nothing here; routing
  // below still reports them as kUnknownText before any query executes.
  // A lone batch (nothing else in flight) always admits, whatever its
  // estimate — the cap bounds concurrency pile-up, it must not make a big
  // batch unservable.
  const u64 cost_cap_ns =
      static_cast<u64>(options_.max_inflight_cost_ms * 1e6);
  u64 est_cost_ns = 0;
  bool cost_charged = false;
  if (cost_cap_ns != 0) {
    struct IdBytes {
      std::string_view id;
      double bytes;
    };
    // Reused across calls: zero steady-state allocation, thread-confined.
    thread_local std::vector<IdBytes> per_id;
    per_id.clear();
    for (const MultiQuery& q : queries) {
      IdBytes* found = nullptr;
      for (IdBytes& entry : per_id) {
        if (entry.id == q.text_id) {
          found = &entry;
          break;
        }
      }
      if (found == nullptr) {
        per_id.push_back({q.text_id, 0});
        found = &per_id.back();
      }
      found->bytes += static_cast<double>(q.pattern.size_bytes());
    }
    double est = 0;
    for (const IdBytes& id_bytes : per_id) {
      const EntryPtr entry = FindEntry(id_bytes.id);
      if (entry == nullptr) continue;
      const u64 served_bytes =
          entry->served_bytes.load(std::memory_order_relaxed);
      const double per_byte =
          served_bytes >= kCostCalibrationBytes
              ? static_cast<double>(
                    entry->served_ns.load(std::memory_order_relaxed)) /
                    static_cast<double>(served_bytes)
              : options_.default_cost_ns_per_byte;
      est += id_bytes.bytes * per_byte;
    }
    est_cost_ns = static_cast<u64>(est);
    // Admit while the cost already in flight is under the budget; the last
    // admit may overshoot, exactly as a count cap of N admits the Nth batch
    // regardless of the others' progress. (Charging `prev + est > cap`
    // instead would reject the second batch whenever its estimate drifts a
    // hair past half the budget — effectively halving concurrency relative
    // to the count cap it replaces.) prev == 0 admits unconditionally: a
    // lone batch must serve whatever its estimate.
    const u64 prev =
        inflight_cost_ns_.fetch_add(est_cost_ns, std::memory_order_acq_rel);
    if (prev >= cost_cap_ns) {
      inflight_cost_ns_.fetch_sub(est_cost_ns, std::memory_order_release);
      if (degrade) return ServeDegradedBatch(queries, results);
      overload_rejected_.fetch_add(1, std::memory_order_relaxed);
      return ServeStatus::kOverloaded;
    }
    cost_charged = true;
  }
  struct CostRelease {
    std::atomic<u64>* counter;
    u64 charge;
    ~CostRelease() {
      if (counter != nullptr) {
        counter->fetch_sub(charge, std::memory_order_release);
      }
    }
  } cost_release{cost_charged ? &inflight_cost_ns_ : nullptr, est_cost_ns};

  std::unique_ptr<BatchScratch> scratch = AcquireBatchScratch();
  std::size_t used_groups = 0;
  const auto cleanup = [&] {
    for (std::size_t k = 0; k < used_groups; ++k) {
      scratch->groups[k].entry.reset();
      scratch->groups[k].gen.reset();  // Unpin: may reclaim an old generation.
      scratch->groups[k].delta.reset();
    }
    ReleaseBatchScratch(std::move(scratch));
  };

  // Route: group query positions per text, pinning each text's current
  // generation exactly once — the whole batch is answered from a consistent
  // snapshot per text, whatever the rebuild lane does meanwhile.
  BatchScratch::Group* last_group = nullptr;
  std::string_view last_id{};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const MultiQuery& q = queries[i];
    if (last_group == nullptr || q.text_id != last_id) {
      last_group = nullptr;
      for (std::size_t k = 0; k < used_groups; ++k) {
        if (scratch->groups[k].entry->id == q.text_id) {
          last_group = &scratch->groups[k];
          break;
        }
      }
      if (last_group == nullptr) {
        EntryPtr entry = FindEntry(q.text_id);
        if (entry == nullptr) {
          cleanup();
          return ServeStatus::kUnknownText;
        }
        std::shared_ptr<const Generation> gen;
        std::shared_ptr<DeltaOverlay> delta;
        entry->PinServing(&gen, &delta);
        if (gen == nullptr && !(degrade && entry->tier != nullptr)) {
          cleanup();
          return ServeStatus::kNotReady;
        }
        // gen may be null past this point: a degraded-opt-in batch admits a
        // generation-less text (first build pending, or quarantined while
        // the build lane retries) and serves that group from its tier.
        if (used_groups == scratch->groups.size()) {
          scratch->groups.emplace_back();
        }
        last_group = &scratch->groups[used_groups++];
        last_group->entry = std::move(entry);
        last_group->gen = std::move(gen);
        last_group->delta = std::move(delta);
        last_group->indices.clear();
      }
      last_id = q.text_id;
    }
    last_group->indices.push_back(static_cast<u32>(i));
  }

  // Serve each group through its generation's UsiService: gather the
  // group's patterns contiguously, answer (sharded across the shared pool
  // for batches worth fanning out), scatter back to the callers' slots.
  // The deadline checkpoint sits between groups (and, via the forwarded
  // batch options, between shards inside each group); once it trips, the
  // remaining groups' result slots are default-filled, honoring the
  // partial-status contract that every slot is written.
  const bool has_deadline = batch_options.deadline.has_value();
  bool expired = false;
  bool unavailable = false;
  bool degraded_used = false;
  std::size_t answered = 0;
  std::size_t answered_degraded = 0;
  for (std::size_t k = 0; k < used_groups; ++k) {
    BatchScratch::Group& group = scratch->groups[k];
    const std::size_t n = group.indices.size();
    DegradedTier* tier = degrade ? group.entry->tier.get() : nullptr;
    if (expired ||
        (has_deadline &&
         std::chrono::steady_clock::now() >= *batch_options.deadline)) {
      expired = true;
      // Deadline rung: unreached slots get tier answers instead of bare
      // defaults (status stays kDeadlineExceeded; provenance tells the
      // caller which slots the tier filled).
      answered_degraded += FillFromTier(tier, queries, group.indices, results);
      continue;
    }
    if (group.gen == nullptr) {
      // Quarantine rung: no servable generation, whole group from the tier
      // while the build lane retries in the background.
      answered_degraded += FillFromTier(tier, queries, group.indices, results);
      degraded_used = true;
      group.entry->batches.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (scratch->patterns.size() < n) scratch->patterns.resize(n);
    if (scratch->results.size() < n) scratch->results.resize(n);
    u64 group_bytes = 0;
    for (std::size_t j = 0; j < n; ++j) {
      scratch->patterns[j] = queries[group.indices[j]].pattern;
      group_bytes += scratch->patterns[j].size_bytes();
    }
    UsiBatchStats batch_stats;
    UsiBatchOptions sub_options;
    sub_options.deadline = batch_options.deadline;
    Timer group_timer;
    const ServeStatus group_status = group.gen->service->QueryBatchInto(
        std::span<const PatternSpan>(scratch->patterns.data(), n),
        std::span<QueryResult>(scratch->results.data(), n), &batch_stats,
        sub_options);
    // Update-tier merge: the pinned base answered occurrences ending inside
    // its own prefix; the pinned overlay answers those ending past it. One
    // read lock spans the whole group, so every slot merges against the
    // same append snapshot. Taken only after the entry lock was released
    // (pinning) — the service-wide lock order.
    bool delta_discarded = false;
    if (group.delta != nullptr) {
      auto read = group.delta->LockForRead();
      if (group.delta->AppendedLocked() > 0) {
        if (group_status == ServeStatus::kOk) {
          const GlobalUtilityKind kind = group.gen->index->utility_kind();
          for (std::size_t j = 0; j < n; ++j) {
            const QueryResult cross = group.delta->QueryCrossingLocked(
                scratch->patterns[j], scratch->delta_scratch);
            if (cross.occurrences > 0) {
              scratch->results[j] =
                  MergeQueryResults(scratch->results[j], cross, kind);
              // The table's precomputed answer covered the base only.
              scratch->results[j].from_hash_table = false;
            }
          }
        } else if (group_status == ServeStatus::kDeadlineExceeded) {
          // The deadline tripped mid-group: which slots the base reached is
          // known, but an "answered" slot here carries a base-only answer —
          // NOT a full-text answer — and the caller cannot tell it from a
          // complete one. Discard to defaults (the partial-status contract:
          // unreached slots carry QueryResult{}).
          for (std::size_t j = 0; j < n; ++j) {
            scratch->results[j] = QueryResult{};
          }
          delta_discarded = true;
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      results[group.indices[j]] = scratch->results[j];
    }
    if (!delta_discarded) answered += batch_stats.answered;
    group.entry->batches.fetch_add(1, std::memory_order_relaxed);
    group.entry->queries.fetch_add(batch_stats.answered,
                                   std::memory_order_relaxed);
    group.entry->hash_hits.fetch_add(batch_stats.hash_hits,
                                     std::memory_order_relaxed);
    if (group_status == ServeStatus::kOk) {
      // Feed the tier from the exact path: every served (pattern, answer)
      // pair is popularity evidence and a candidate cache/sketch entry.
      // Recording happens whether or not THIS batch opted into degraded
      // serving — learning must precede the first failure. RecordExact
      // never blocks (try_lock, drop on contention) and never allocates.
      if (group.entry->tier != nullptr) {
        DegradedTier& learn = *group.entry->tier;
        for (std::size_t j = 0; j < n; ++j) {
          learn.RecordExact(DegradedTier::KeyFor(scratch->patterns[j]),
                            scratch->results[j]);
        }
      }
      // Cost-model calibration: only fully-served groups feed the estimate
      // (a partial group's bytes/time ratio is not the text's). Wall time
      // under a shared pool scales with the number of concurrent batches,
      // so charge the CPU share instead: otherwise saturation inflates the
      // calibrated ns/byte and the cost cap under-admits against a budget
      // expressed in intrinsic (unloaded) serving cost.
      const u64 concurrent = std::max<u64>(
          1, static_cast<u64>(
                 inflight_batches_.load(std::memory_order_relaxed)));
      group.entry->served_bytes.fetch_add(group_bytes,
                                          std::memory_order_relaxed);
      group.entry->served_ns.fetch_add(
          static_cast<u64>(group_timer.ElapsedSeconds() * 1e9) / concurrent,
          std::memory_order_relaxed);
    } else if (group_status == ServeStatus::kDeadlineExceeded) {
      expired = true;
    } else if (group_status == ServeStatus::kIndexUnavailable) {
      if (tier != nullptr) {
        // Fault rung: the group's engine failed mid-serve (mapped fault or
        // an exception out of the fallback path). Which slots it reached is
        // unknowable from here — a legitimate exact answer and a failure
        // default are both representable as zeros — so the WHOLE group is
        // re-answered from the tier with honest provenance on every slot.
        answered_degraded +=
            FillFromTier(tier, queries, group.indices, results);
        degraded_used = true;
      } else {
        unavailable = true;
      }
      if (group.gen->mapped) {
        // A mapped generation faulted (truncated or revoked backing file):
        // demote it so no later batch serves from the bad mapping, and
        // schedule a recovery build — heap load of the source file when it
        // is still good, full rebuild otherwise. Only the first batch to
        // observe the fault demotes (the pointer compare); concurrent
        // failures of the same generation are no-ops here.
        TextEntry& entry = *group.entry;
        bool demoted = false;
        u64 generation = 0;
        std::string recover_path;
        {
          std::lock_guard<std::mutex> lock(entry.mu);
          if (entry.current == group.gen) {
            entry.current = nullptr;
            // The overlay extends the demoted base; the recovery build
            // re-indexes the base content alone, so pending appends are
            // dropped with the mapping that lost them.
            if (entry.delta != nullptr) {
              entry.delta = nullptr;
              ++entry.delta_epoch;
            }
            generation = ++entry.scheduled;
            recover_path = entry.source_path;
            demoted = true;
          }
        }
        if (demoted) {
          ScheduleBuild(group.entry, WeightedString(group.gen->ws),
                        generation, std::move(recover_path));
        }
      }
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(answered, std::memory_order_relaxed);
  if (answered_degraded != 0) {
    degraded_answers_.fetch_add(answered_degraded, std::memory_order_relaxed);
  }
  if (expired) deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  if (unavailable) {
    index_unavailable_.fetch_add(1, std::memory_order_relaxed);
  }
  cleanup();
  if (unavailable) return ServeStatus::kIndexUnavailable;
  if (expired) return ServeStatus::kDeadlineExceeded;
  if (degraded_used) {
    degraded_batches_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kDegraded;
  }
  return ServeStatus::kOk;
}

std::size_t UsiMultiService::FillFromTier(DegradedTier* tier,
                                          std::span<const MultiQuery> queries,
                                          std::span<const u32> indices,
                                          std::span<QueryResult> results) {
  std::size_t filled = 0;
  for (const u32 idx : indices) {
    QueryResult& slot = results[idx];
    slot = QueryResult{};
    if (tier != nullptr &&
        tier->TryAnswer(DegradedTier::KeyFor(queries[idx].pattern), &slot)) {
      ++filled;
    } else {
      slot.provenance = AnswerProvenance::kNone;
    }
  }
  return filled;
}

ServeStatus UsiMultiService::ServeDegradedBatch(
    std::span<const MultiQuery> queries, std::span<QueryResult> results) {
  // Validation pass first: the all-or-nothing kUnknownText contract (no
  // result slot touched) holds on the degraded path too.
  {
    std::string_view last_id{};
    bool have_last = false;
    for (const MultiQuery& q : queries) {
      if (have_last && q.text_id == last_id) continue;
      if (FindEntry(q.text_id) == nullptr) return ServeStatus::kUnknownText;
      last_id = q.text_id;
      have_last = true;
    }
  }
  std::size_t filled = 0;
  std::string_view last_id{};
  EntryPtr entry;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const MultiQuery& q = queries[i];
    if (entry == nullptr || q.text_id != last_id) {
      entry = FindEntry(q.text_id);  // May be gone since validation: kNone.
      last_id = q.text_id;
    }
    QueryResult& slot = results[i];
    slot = QueryResult{};
    DegradedTier* tier = entry == nullptr ? nullptr : entry->tier.get();
    if (tier != nullptr &&
        tier->TryAnswer(DegradedTier::KeyFor(q.pattern), &slot)) {
      ++filled;
    } else {
      slot.provenance = AnswerProvenance::kNone;
    }
  }
  degraded_batches_.fetch_add(1, std::memory_order_relaxed);
  if (filled != 0) {
    degraded_answers_.fetch_add(filled, std::memory_order_relaxed);
  }
  return ServeStatus::kDegraded;
}

MultiBatchResult UsiMultiService::QueryBatch(
    std::span<const MultiQuery> queries) {
  MultiBatchResult out;
  out.results.resize(queries.size());
  out.status = QueryBatchInto(queries, out.results);
  // The partial statuses return written (if partly default) slots; only the
  // all-or-nothing rejections leave nothing worth returning.
  if (out.status != ServeStatus::kOk &&
      out.status != ServeStatus::kDeadlineExceeded &&
      out.status != ServeStatus::kIndexUnavailable &&
      out.status != ServeStatus::kDegraded) {
    out.results.clear();
  }
  return out;
}

ServeStatus UsiMultiService::Query(std::string_view text_id,
                                   std::span<const Symbol> pattern,
                                   QueryResult& result) {
  const MultiQuery query{text_id, pattern};
  return QueryBatchInto(std::span<const MultiQuery>(&query, 1),
                        std::span<QueryResult>(&result, 1));
}

std::optional<UsiTextStats> UsiMultiService::StatsFor(
    std::string_view id) const {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return std::nullopt;
  UsiTextStats stats;
  if (std::shared_ptr<const Generation> gen = entry->PinGeneration()) {
    stats.generation = gen->number;
    stats.last_build = gen->index->build_info();
  }
  std::shared_ptr<DeltaOverlay> delta;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    stats.builds_scheduled = entry->scheduled;
    stats.builds_completed = entry->completed;
    stats.builds_failed = entry->failed_builds;
    stats.build_retries = entry->retries;
    stats.build_state = entry->StateLocked();
    stats.last_build_error = entry->last_error;
    stats.appends = entry->appends;
    stats.compactions = entry->compactions;
    stats.compact_publish_ns = entry->compact_publish_ns;
    delta = entry->delta;  // Snapshot OUTSIDE the entry lock (lock order).
  }
  if (delta != nullptr) stats.delta = delta->StatsSnapshot();
  stats.batches = entry->batches.load(std::memory_order_relaxed);
  stats.queries = entry->queries.load(std::memory_order_relaxed);
  stats.hash_hits = entry->hash_hits.load(std::memory_order_relaxed);
  const u64 served_bytes =
      entry->served_bytes.load(std::memory_order_relaxed);
  if (served_bytes >= kCostCalibrationBytes) {
    stats.cost_ns_per_byte =
        static_cast<double>(entry->served_ns.load(std::memory_order_relaxed)) /
        static_cast<double>(served_bytes);
  }
  if (entry->tier != nullptr) stats.degraded = entry->tier->stats();
  return stats;
}

UsiMultiStats UsiMultiService::stats() const {
  UsiMultiStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  stats.overload_rejected =
      overload_rejected_.load(std::memory_order_relaxed);
  stats.deadline_expired =
      deadline_expired_.load(std::memory_order_relaxed);
  stats.index_unavailable =
      index_unavailable_.load(std::memory_order_relaxed);
  stats.builds_failed = builds_failed_.load(std::memory_order_relaxed);
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.degraded_batches =
      degraded_batches_.load(std::memory_order_relaxed);
  stats.degraded_answers =
      degraded_answers_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    stats.builds_scheduled = builds_scheduled_;
    stats.builds_completed = builds_completed_;
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    stats.texts = registry_.size();
  }
  return stats;
}

}  // namespace usi
