#include "usi/core/multi_service.hpp"

#include <algorithm>
#include <utility>

#include "usi/core/usi_builder.hpp"
#include "usi/parallel/thread_pool.hpp"

namespace usi {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kBusy: return "busy";
    case ServeStatus::kUnknownText: return "unknown-text";
    case ServeStatus::kNotReady: return "not-ready";
  }
  return "?";
}

/// One immutable index generation. The weighted string lives here because
/// UsiIndex borrows it; the shared_ptr holding the Generation keeps both
/// alive for as long as any batch still serves from it.
struct UsiMultiService::Generation {
  u64 number = 0;
  WeightedString ws;
  std::unique_ptr<UsiIndex> index;    ///< Borrows ws.
  std::unique_ptr<UsiService> service;  ///< Borrows index + the shared pool.
};

/// Registry slot for one named text. `current` is the generation pointer
/// readers pin (a shared_ptr copy under a pointer-copy-scale lock; see
/// PinGeneration); everything else behind `mu` is build bookkeeping writers
/// touch briefly. Waiters on `cv` release `mu` while blocked, so pinning
/// never queues behind a WaitForText.
struct UsiMultiService::TextEntry {
  std::string id;

  std::mutex mu;  ///< Guards current, build_options, scheduled, completed,
                  ///< published.
  std::condition_variable cv;  ///< Signals per-text build completions.
  std::shared_ptr<const Generation> current;  ///< Null until first publish.
  UsiOptions build_options;
  u64 scheduled = 0;  ///< Generation numbers handed out so far.
  u64 completed = 0;  ///< Builds finished (published or superseded).
  u64 published = 0;  ///< Highest generation number stored in `current`.

  std::atomic<u64> batches{0};
  std::atomic<u64> queries{0};
  std::atomic<u64> hash_hits{0};

  /// The reader-side pin: a shared_ptr copy taken under `mu`. The lock is
  /// held for a refcount increment — not for the batch — so a rebuild
  /// publishing concurrently never blocks readers for longer than a
  /// pointer copy. (std::atomic<std::shared_ptr> would make this genuinely
  /// lock-free, but libstdc++'s implementation guards the pointer with a
  /// lock bit ThreadSanitizer cannot model, and the TSan CI job is part of
  /// this contract.)
  std::shared_ptr<const Generation> PinGeneration() {
    std::lock_guard<std::mutex> lock(mu);
    return current;
  }
};

/// One queued rebuild.
struct UsiMultiService::BuildJob {
  EntryPtr entry;
  WeightedString ws;
  u64 generation = 0;
};

/// Leased per-batch routing buffers: the per-text groups (with their pinned
/// generations) plus gather/scatter staging. Reused across batches, so a
/// steady-state batch shape stops allocating once capacities are warm.
struct UsiMultiService::BatchScratch {
  struct Group {
    EntryPtr entry;
    std::shared_ptr<const Generation> gen;
    std::vector<u32> indices;  ///< Positions in the incoming batch.
  };
  std::vector<Group> groups;  ///< groups[0..used) active this batch.
  /// Gathered patterns of one group: spans pointing into the callers'
  /// request storage (MultiQuery::pattern bytes, alive for the whole
  /// QueryBatchInto call) — the gather stage scatters pointers, it never
  /// copies pattern bytes.
  std::vector<PatternSpan> patterns;
  std::vector<QueryResult> results;  ///< Group-local results to scatter.
};

UsiMultiService::UsiMultiService(const UsiMultiServiceOptions& options)
    : options_(options) {
  const unsigned threads = options.threads == 0
                               ? ThreadPool::HardwareConcurrency()
                               : options.threads;
  // Unlike UsiService, a 1-wide pool is still useful here: it is the build
  // lane (queries are then served inline on caller threads).
  owned_pool_ = std::make_unique<ThreadPool>(std::max(1u, threads));
  pool_ = owned_pool_.get();
}

UsiMultiService::UsiMultiService(ThreadPool* pool,
                                 const UsiMultiServiceOptions& options)
    : pool_(pool), options_(options) {}

UsiMultiService::~UsiMultiService() {
  // Wait until the build lane has drained and retired: after that no pool
  // task can touch this object's members. (An owned pool additionally joins
  // its workers when destroyed below.)
  std::unique_lock<std::mutex> lock(build_mu_);
  build_cv_.wait(lock,
                 [this] { return build_queue_.empty() && !build_lane_active_; });
}

unsigned UsiMultiService::threads() const {
  return pool_ == nullptr ? 1 : std::max(1u, pool_->thread_count());
}

UsiMultiService::EntryPtr UsiMultiService::FindEntry(
    std::string_view id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

UsiMultiService::EntryPtr UsiMultiService::EnsureEntry(std::string_view id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(id);
  if (it != registry_.end()) return it->second;
  EntryPtr entry = std::make_shared<TextEntry>();
  entry->id = std::string(id);
  registry_.emplace(entry->id, entry);
  return entry;
}

u64 UsiMultiService::SubmitText(std::string_view id, WeightedString ws,
                                const UsiOptions& build_options) {
  EntryPtr entry = EnsureEntry(id);
  u64 generation;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->build_options = build_options;
    generation = ++entry->scheduled;
  }
  ScheduleBuild(std::move(entry), std::move(ws), generation);
  return generation;
}

u64 UsiMultiService::SubmitText(std::string_view id, WeightedString ws) {
  return SubmitText(id, std::move(ws), options_.default_build);
}

u64 UsiMultiService::RegisterTextFromFile(std::string_view id,
                                          WeightedString ws,
                                          const std::string& path) {
  // The generation owns the weighted string (the index borrows it), so the
  // text moves in before the open. Open BEFORE touching the registry: a
  // bad file must not register an id or burn a generation number.
  auto gen = std::make_shared<Generation>();
  gen->ws = std::move(ws);
  std::unique_ptr<UsiIndex> index = UsiIndex::OpenMapped(gen->ws, path);
  if (index == nullptr) return 0;
  gen->index = std::move(index);
  UsiServiceOptions service_options;
  service_options.min_shard_size = options_.min_shard_size;
  gen->service =
      std::make_unique<UsiService>(*gen->index, pool_, service_options);

  EntryPtr entry = EnsureEntry(id);
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    gen->number = ++entry->scheduled;
  }
  // Account the instant publish as a scheduled-and-completed build so
  // WaitForText/WaitForBuilds targets stay consistent with SubmitText's.
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    ++builds_scheduled_;
  }
  const u64 generation = gen->number;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    ++entry->completed;
    // Same monotonic publish as BuildOne: an in-flight rebuild that claims
    // a higher number afterwards supersedes this mapped generation, never
    // the other way round.
    if (gen->number > entry->published) {
      entry->published = gen->number;
      entry->current = std::move(gen);
    }
  }
  entry->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    ++builds_completed_;
  }
  build_cv_.notify_all();
  return generation;
}

u64 UsiMultiService::UpdateText(std::string_view id, WeightedString ws) {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return 0;
  u64 generation;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    generation = ++entry->scheduled;
  }
  ScheduleBuild(std::move(entry), std::move(ws), generation);
  return generation;
}

bool UsiMultiService::RemoveText(std::string_view id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_.find(id);
  if (it == registry_.end()) return false;
  registry_.erase(it);
  return true;
}

bool UsiMultiService::HasText(std::string_view id) const {
  return FindEntry(id) != nullptr;
}

std::vector<std::string> UsiMultiService::TextIds() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(registry_mu_);
  ids.reserve(registry_.size());
  for (const auto& [id, entry] : registry_) ids.push_back(id);
  return ids;
}

void UsiMultiService::ScheduleBuild(EntryPtr entry, WeightedString ws,
                                    u64 generation) {
  if (pool_ == nullptr) {
    // Degenerate no-pool configuration: build synchronously, right here.
    BuildJob job{std::move(entry), std::move(ws), generation};
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      ++builds_scheduled_;
    }
    BuildOne(job);
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      ++builds_completed_;
    }
    build_cv_.notify_all();
    return;
  }
  bool start_lane = false;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_queue_.push_back(
        BuildJob{std::move(entry), std::move(ws), generation});
    ++builds_scheduled_;
    if (!build_lane_active_) {
      build_lane_active_ = true;
      start_lane = true;
    }
  }
  if (start_lane) pool_->Run([this] { BuildLane(); });
}

void UsiMultiService::BuildLane() {
  for (;;) {
    BuildJob job;
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      if (build_queue_.empty()) {
        build_lane_active_ = false;
        // Notify while still holding the lock: a destructor waiting on
        // build_cv_ can only resume after we release it, by which point
        // this task no longer touches the service.
        build_cv_.notify_all();
        return;
      }
      job = std::move(build_queue_.front());
      build_queue_.pop_front();
    }
    BuildOne(job);
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      ++builds_completed_;
    }
    build_cv_.notify_all();
  }
}

void UsiMultiService::BuildOne(BuildJob& job) {
  auto gen = std::make_shared<Generation>();
  gen->number = job.generation;
  gen->ws = std::move(job.ws);
  UsiOptions build_options;
  {
    std::lock_guard<std::mutex> lock(job.entry->mu);
    build_options = job.entry->build_options;
  }
  // The lane occupies one pool worker, and a task must not ParallelFor on
  // its own pool — so each generation builds through the sequential staged
  // pipeline, leaving the remaining workers to the query fan-out.
  build_options.threads = 1;
  UsiBuilder builder(gen->ws, build_options);
  gen->index = builder.Build();
  UsiServiceOptions service_options;
  service_options.min_shard_size = options_.min_shard_size;
  gen->service =
      std::make_unique<UsiService>(*gen->index, pool_, service_options);

  TextEntry& entry = *job.entry;
  {
    std::lock_guard<std::mutex> lock(entry.mu);
    ++entry.completed;
    // Monotonic publish: a stale build can never clobber a newer
    // generation. Readers that pinned the previous generation keep it
    // alive until their batch completes; the store reclaims nothing.
    if (gen->number > entry.published) {
      entry.published = gen->number;
      entry.current = std::move(gen);
    }
  }
  entry.cv.notify_all();
}

bool UsiMultiService::WaitForText(std::string_view id) {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return false;
  std::unique_lock<std::mutex> lock(entry->mu);
  const u64 target = entry->scheduled;
  entry->cv.wait(lock, [&] { return entry->completed >= target; });
  return true;
}

void UsiMultiService::WaitForBuilds() {
  std::unique_lock<std::mutex> lock(build_mu_);
  const u64 target = builds_scheduled_;
  build_cv_.wait(lock, [&] { return builds_completed_ >= target; });
}

std::unique_ptr<UsiMultiService::BatchScratch>
UsiMultiService::AcquireBatchScratch() {
  {
    std::lock_guard<std::mutex> lock(batch_scratch_mu_);
    if (!batch_scratch_free_.empty()) {
      auto scratch = std::move(batch_scratch_free_.back());
      batch_scratch_free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<BatchScratch>();
}

void UsiMultiService::ReleaseBatchScratch(
    std::unique_ptr<BatchScratch> scratch) {
  std::lock_guard<std::mutex> lock(batch_scratch_mu_);
  batch_scratch_free_.push_back(std::move(scratch));
}

ServeStatus UsiMultiService::QueryBatchInto(
    std::span<const MultiQuery> queries, std::span<QueryResult> results) {
  USI_CHECK(results.size() >= queries.size());
  if (queries.empty()) return ServeStatus::kOk;

  // Admission control: a counter, not a queue — overload is shed with kBusy
  // immediately instead of building an unbounded backlog.
  const u64 cap = static_cast<u64>(options_.max_inflight_batches);
  const u64 inflight =
      inflight_batches_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (cap != 0 && inflight > cap) {
    inflight_batches_.fetch_sub(1, std::memory_order_release);
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kBusy;
  }
  struct InflightRelease {
    std::atomic<u64>& counter;
    ~InflightRelease() { counter.fetch_sub(1, std::memory_order_release); }
  } inflight_release{inflight_batches_};

  std::unique_ptr<BatchScratch> scratch = AcquireBatchScratch();
  std::size_t used_groups = 0;
  const auto cleanup = [&] {
    for (std::size_t k = 0; k < used_groups; ++k) {
      scratch->groups[k].entry.reset();
      scratch->groups[k].gen.reset();  // Unpin: may reclaim an old generation.
    }
    ReleaseBatchScratch(std::move(scratch));
  };

  // Route: group query positions per text, pinning each text's current
  // generation exactly once — the whole batch is answered from a consistent
  // snapshot per text, whatever the rebuild lane does meanwhile.
  BatchScratch::Group* last_group = nullptr;
  std::string_view last_id{};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const MultiQuery& q = queries[i];
    if (last_group == nullptr || q.text_id != last_id) {
      last_group = nullptr;
      for (std::size_t k = 0; k < used_groups; ++k) {
        if (scratch->groups[k].entry->id == q.text_id) {
          last_group = &scratch->groups[k];
          break;
        }
      }
      if (last_group == nullptr) {
        EntryPtr entry = FindEntry(q.text_id);
        if (entry == nullptr) {
          cleanup();
          return ServeStatus::kUnknownText;
        }
        std::shared_ptr<const Generation> gen = entry->PinGeneration();
        if (gen == nullptr) {
          cleanup();
          return ServeStatus::kNotReady;
        }
        if (used_groups == scratch->groups.size()) {
          scratch->groups.emplace_back();
        }
        last_group = &scratch->groups[used_groups++];
        last_group->entry = std::move(entry);
        last_group->gen = std::move(gen);
        last_group->indices.clear();
      }
      last_id = q.text_id;
    }
    last_group->indices.push_back(static_cast<u32>(i));
  }

  // Serve each group through its generation's UsiService: gather the
  // group's patterns contiguously, answer (sharded across the shared pool
  // for batches worth fanning out), scatter back to the callers' slots.
  for (std::size_t k = 0; k < used_groups; ++k) {
    BatchScratch::Group& group = scratch->groups[k];
    const std::size_t n = group.indices.size();
    if (scratch->patterns.size() < n) scratch->patterns.resize(n);
    if (scratch->results.size() < n) scratch->results.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      scratch->patterns[j] = queries[group.indices[j]].pattern;
    }
    UsiBatchStats batch_stats;
    group.gen->service->QueryBatchInto(
        std::span<const PatternSpan>(scratch->patterns.data(), n),
        std::span<QueryResult>(scratch->results.data(), n), &batch_stats);
    for (std::size_t j = 0; j < n; ++j) {
      results[group.indices[j]] = scratch->results[j];
    }
    group.entry->batches.fetch_add(1, std::memory_order_relaxed);
    group.entry->queries.fetch_add(n, std::memory_order_relaxed);
    group.entry->hash_hits.fetch_add(batch_stats.hash_hits,
                                     std::memory_order_relaxed);
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  cleanup();
  return ServeStatus::kOk;
}

MultiBatchResult UsiMultiService::QueryBatch(
    std::span<const MultiQuery> queries) {
  MultiBatchResult out;
  out.results.resize(queries.size());
  out.status = QueryBatchInto(queries, out.results);
  if (out.status != ServeStatus::kOk) out.results.clear();
  return out;
}

ServeStatus UsiMultiService::Query(std::string_view text_id,
                                   std::span<const Symbol> pattern,
                                   QueryResult& result) {
  const MultiQuery query{text_id, pattern};
  return QueryBatchInto(std::span<const MultiQuery>(&query, 1),
                        std::span<QueryResult>(&result, 1));
}

std::optional<UsiTextStats> UsiMultiService::StatsFor(
    std::string_view id) const {
  EntryPtr entry = FindEntry(id);
  if (entry == nullptr) return std::nullopt;
  UsiTextStats stats;
  if (std::shared_ptr<const Generation> gen = entry->PinGeneration()) {
    stats.generation = gen->number;
    stats.last_build = gen->index->build_info();
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    stats.builds_scheduled = entry->scheduled;
    stats.builds_completed = entry->completed;
  }
  stats.batches = entry->batches.load(std::memory_order_relaxed);
  stats.queries = entry->queries.load(std::memory_order_relaxed);
  stats.hash_hits = entry->hash_hits.load(std::memory_order_relaxed);
  return stats;
}

UsiMultiStats UsiMultiService::stats() const {
  UsiMultiStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    stats.builds_scheduled = builds_scheduled_;
    stats.builds_completed = builds_completed_;
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    stats.texts = registry_.size();
  }
  return stats;
}

}  // namespace usi
