#ifndef USI_CORE_USI_INDEX_HPP_
#define USI_CORE_USI_INDEX_HPP_

/// \file usi_index.hpp
/// USI_TOP-K (Section IV, Theorem 1): the paper's data structure for Useful
/// String Indexing.
///
/// Components: a hash table H of precomputed global utilities of the top-K
/// frequent substrings (keyed by Karp-Rabin fingerprint + length), the text
/// index (suffix array as the suffix-tree leaf order), and the prefix-sums
/// array PSW. Queries: O(m) fingerprint + O(1) probe on a hit; O(m log n +
/// occ) <= O(m log n + tau_K) via SA + PSW on a miss.
///
/// The top-K set comes from either miner:
///  * UET — Exact-Top-K (Section V): exact frequencies, SA intervals, and the
///    O(m + tau_K) query guarantee.
///  * UAT — Approximate-Top-K (Section VI): smaller construction space; the
///    guarantee is forfeited (Section VI discusses why) but practice is
///    competitive, as Fig. 6 shows.

#include <memory>
#include <span>
#include <string>

#include "usi/core/utility.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/text/weighted_string.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/topk_types.hpp"

namespace usi {

/// Which mining algorithm feeds construction phase (i).
enum class UsiMiner : u8 {
  kExact,        ///< UET.
  kApproximate,  ///< UAT.
};

/// Construction options for UsiIndex.
struct UsiOptions {
  /// Number of top-K frequent substrings to precompute; 0 means n/100, the
  /// K = Theta(n) regime Section IV recommends.
  u64 k = 0;
  GlobalUtilityKind utility = GlobalUtilityKind::kSum;
  UsiMiner miner = UsiMiner::kExact;
  ApproximateTopKOptions approx = {};  ///< Used when miner == kApproximate.
  u64 hash_seed = 0x05111;             ///< Karp-Rabin base seed.
};

/// Construction telemetry (used by the Fig. 6 benches and by tuning).
struct UsiBuildInfo {
  u64 k = 0;                ///< Effective K.
  index_t tau_k = 0;        ///< Min frequency among mined substrings.
  index_t num_lengths = 0;  ///< L_K: distinct lengths among them.
  double mining_seconds = 0;
  double table_seconds = 0;  ///< Phase (ii): sliding-window aggregation.
  double total_seconds = 0;
};

/// The USI_TOP-K index over a weighted string.
class UsiIndex {
 public:
  /// Builds the index. \p ws is borrowed and must outlive the index.
  UsiIndex(const WeightedString& ws, const UsiOptions& options = {});

  /// Persists the index (suffix array + hash table + parameters; PSW is
  /// recomputed on load, it is a single O(n) scan). Returns false on I/O
  /// failure.
  bool SaveToFile(const std::string& path) const;

  /// Restores an index previously saved over the same weighted string.
  /// Returns nullptr on I/O failure, format mismatch, or if \p ws has a
  /// different length than the saved index.
  static std::unique_ptr<UsiIndex> LoadFromFile(const WeightedString& ws,
                                                const std::string& path);

  /// Answers U(P): hash-table hit in O(m), otherwise SA + PSW fallback.
  QueryResult Query(std::span<const Symbol> pattern) const;

  /// Convenience: just the utility value.
  double Utility(std::span<const Symbol> pattern) const {
    return Query(pattern).utility;
  }

  /// Construction telemetry.
  const UsiBuildInfo& build_info() const { return build_info_; }

  /// Number of precomputed entries in H.
  std::size_t HashTableEntries() const { return table_.size(); }

  /// Index size: SA + PSW + H (+ nothing else; the text is borrowed, as in
  /// the paper's accounting, which reports the index on top of S).
  std::size_t SizeInBytes() const;

  /// The suffix array (exposed for examples and tests).
  const std::vector<index_t>& sa() const { return sa_; }

 private:
  /// Value stored in H: a utility accumulator (value + occurrence count).
  using TableValue = UtilityAccumulator;

  /// Deserialization constructor: members are filled by LoadFromFile. The
  /// tag comes first so the public (ws, options = {}) constructor never
  /// competes with it in overload resolution.
  struct LoadTag {};
  UsiIndex(LoadTag, const WeightedString& ws);

  /// Phase (ii): per distinct length, mark occurrence starts (exact miner)
  /// or pre-insert candidate keys (approximate miner), then slide a window
  /// over S aggregating local utilities into H. O(n * L_K).
  void PopulateTable(const TopKList& mined);

  const WeightedString* ws_;
  GlobalUtilityKind kind_;
  KarpRabinHasher hasher_;
  std::vector<index_t> sa_;
  PrefixSumWeights psw_;
  FingerprintTable<TableValue> table_;
  ExhaustiveQueryEngine fallback_;
  UsiBuildInfo build_info_;
};

}  // namespace usi

#endif  // USI_CORE_USI_INDEX_HPP_
