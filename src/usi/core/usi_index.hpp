#ifndef USI_CORE_USI_INDEX_HPP_
#define USI_CORE_USI_INDEX_HPP_

/// \file usi_index.hpp
/// USI_TOP-K (Section IV, Theorem 1): the paper's data structure for Useful
/// String Indexing.
///
/// Components: a hash table H of precomputed global utilities of the top-K
/// frequent substrings (keyed by Karp-Rabin fingerprint + length), the text
/// index (suffix array as the suffix-tree leaf order), and the prefix-sums
/// array PSW. Queries: O(m) fingerprint + O(1) probe on a hit; O(m log n +
/// occ) <= O(m log n + tau_K) via SA + PSW on a miss.
///
/// The top-K set comes from either miner:
///  * UET — Exact-Top-K (Section V): exact frequencies, SA intervals, and the
///    O(m + tau_K) query guarantee.
///  * UAT — Approximate-Top-K (Section VI): smaller construction space; the
///    guarantee is forfeited (Section VI discusses why) but practice is
///    competitive, as Fig. 6 shows.
///
/// Construction runs through the staged UsiBuilder (usi_builder.hpp): SA,
/// mining, and the phase (ii) table population are instrumented stages, and
/// phase (ii) parallelizes over distinct lengths when a thread pool is given
/// — with byte-identical serialized output to a sequential build.

#include <memory>
#include <span>
#include <string>

#include "usi/core/index_format.hpp"
#include "usi/core/query_engine.hpp"
#include "usi/core/utility.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/learned_sa.hpp"
#include "usi/text/weighted_string.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/mapped_file.hpp"

namespace usi {

class BinaryWriter;
class ThreadPool;
class UsiBuilder;

/// Which mining algorithm feeds construction phase (i).
enum class UsiMiner : u8 {
  kExact,        ///< UET.
  kApproximate,  ///< UAT.
};

/// Why LoadFromFile / OpenMapped refused a file. The nullptr-returning
/// entry points collapse every failure into "no index"; the LoadError
/// out-param overloads keep the distinction, so operators (usi_inspect) and
/// supervising layers can tell a missing file from a corrupt one.
enum class LoadErrorCode : u8 {
  kOk = 0,
  kNotFound,      ///< The file does not exist (or cannot be opened).
  kIo,            ///< Read/stat/mmap failed on an existing file.
  kBadFormat,     ///< Unrecognized magic or version — not an index file.
  kCorrupt,       ///< Checksum, geometry, or consistency check failed.
  kTextMismatch,  ///< Saved over a text of a different length than \p ws.
  kHostMismatch,  ///< Host layout differs (slot bytes / index width).
};

/// Display name of a LoadErrorCode ("ok", "not-found", ...).
const char* LoadErrorCodeName(LoadErrorCode code);

/// Typed load/open failure: the machine-readable code plus a one-line
/// human-readable message naming the check that failed.
struct LoadError {
  LoadErrorCode code = LoadErrorCode::kOk;
  std::string message;
};

/// Construction options for UsiIndex.
struct UsiOptions {
  /// Number of top-K frequent substrings to precompute; 0 means n/100, the
  /// K = Theta(n) regime Section IV recommends.
  u64 k = 0;
  GlobalUtilityKind utility = GlobalUtilityKind::kSum;
  UsiMiner miner = UsiMiner::kExact;
  ApproximateTopKOptions approx = {};  ///< Used when miner == kApproximate.
  u64 hash_seed = 0x05111;             ///< Karp-Rabin base seed.
  /// Error bound ε for the learned fallback model (the "learn" build
  /// stage); 0 skips the stage and serves table misses by plain binary
  /// search. learned_sa.hpp documents the contract.
  u32 learned_epsilon = kDefaultLearnedEpsilon;
  /// Build parallelism: 1 = sequential (default), 0 = hardware concurrency,
  /// N > 1 = a pool of N threads. Any value yields byte-identical
  /// SaveToFile output; see UsiBuilder for the determinism contract.
  unsigned threads = 1;
};

/// Construction telemetry (used by the Fig. 6 benches and by tuning).
struct UsiBuildInfo {
  u64 k = 0;                ///< Effective K.
  index_t tau_k = 0;        ///< Min frequency among mined substrings.
  index_t num_lengths = 0;  ///< L_K: distinct lengths among them.
  double sa_seconds = 0;    ///< Stage 1: suffix-array construction.
  double mining_seconds = 0;  ///< Stage 2: phase (i) top-K mining.
  double table_seconds = 0;  ///< Stage 3: phase (ii) sliding-window tables.
  double learn_seconds = 0;  ///< Stage 4: learned fallback-model fit.
  double total_seconds = 0;
  unsigned threads_used = 1;  ///< Pool width the build ran with.
  /// Process peak RSS (VmHWM) after the build, and how much each stage grew
  /// it — the memory-lean staging contract: each stage releases its dead
  /// intermediates before the next one allocates, so the per-stage deltas
  /// show which stage actually set the peak. 0 where /proc is unavailable.
  std::size_t peak_rss_bytes = 0;
  std::size_t sa_rss_delta_bytes = 0;
  std::size_t mining_rss_delta_bytes = 0;
  std::size_t table_rss_delta_bytes = 0;
  std::size_t learn_rss_delta_bytes = 0;
};

/// The USI_TOP-K index over a weighted string.
class UsiIndex : public QueryEngine {
 public:
  /// Builds the index. \p ws is borrowed and must outlive the index.
  /// options.threads > 1 (or 0) runs the parallel build pipeline.
  UsiIndex(const WeightedString& ws, const UsiOptions& options = {});

  /// As above, sharing an existing pool (borrowed; may be null).
  UsiIndex(const WeightedString& ws, const UsiOptions& options,
           ThreadPool* pool);

  /// Persists the index in \p format. Both formats write hash-table entries
  /// in canonical (length, fingerprint) order, so equal indexes serialize to
  /// equal bytes regardless of build schedule; and both go through the
  /// atomic publish protocol (stage to `path.tmp.<pid>`, fsync, rename,
  /// fsync parent — util/mapped_file.hpp), so a crash mid-save never leaves
  /// a torn file at \p path. Returns false on any I/O failure, INCLUDING
  /// the final flush — an out-of-space file is reported, not published.
  ///
  ///  * kV2Heap (default): portable stream format, heap-loaded anywhere.
  ///  * kV3Mapped: section file for OpenMapped — near-zero startup on the
  ///    same host class (index_format.hpp documents the layout).
  bool SaveToFile(const std::string& path,
                  IndexFileFormat format = IndexFileFormat::kV2Heap) const;

  /// SaveToFile knobs.
  struct SaveOptions {
    /// kV3Mapped only: include the learned-model section. When true (the
    /// default) and the index carries no model (legacy mapped image, or a
    /// build with learned_epsilon == 0), a default-ε model is fit for the
    /// save, so every default v3 image carries the section and equal
    /// indexes keep serializing to equal bytes. False omits the section —
    /// the image opens and serves fine, answering misses by plain binary
    /// search (also the shape every pre-extension image has).
    bool learned_section = true;
  };

  /// As above with explicit \p save_options.
  bool SaveToFile(const std::string& path, IndexFileFormat format,
                  const SaveOptions& save_options) const;

  /// Deep-verification knob for OpenMapped.
  struct OpenOptions {
    /// Also checksum every section payload and range-check the SA (one
    /// sequential O(file) pass) before serving. Off by default — the
    /// atomic publish protocol guarantees a published file is a complete
    /// image, so open stays near-zero; turn on for files from untrusted
    /// transport.
    bool deep_verify = false;
  };

  /// Opens a kV3Mapped file by mmap: header + section-directory validation
  /// and pointer fixup only — no array is read until queries touch it
  /// (demand paging), and the page cache is shared across processes serving
  /// the same file. The mapping lives inside the returned index. Returns
  /// nullptr on I/O failure, format/host mismatch, a corrupt header or
  /// directory, or if \p ws has a different length than the saved index.
  static std::unique_ptr<UsiIndex> OpenMapped(const WeightedString& ws,
                                              const std::string& path,
                                              const OpenOptions& options);
  static std::unique_ptr<UsiIndex> OpenMapped(const WeightedString& ws,
                                              const std::string& path);

  /// As above, reporting WHY a file was refused through \p error (always
  /// written: kOk on success). \p error may be null.
  static std::unique_ptr<UsiIndex> OpenMapped(const WeightedString& ws,
                                              const std::string& path,
                                              const OpenOptions& options,
                                              LoadError* error);

  /// Restores an index previously saved over the same weighted string,
  /// dispatching on the file's magic word: v2 files are heap-deserialized
  /// (with an exact-consumption check — trailing bytes are corruption), v3
  /// files are OpenMapped. Returns nullptr on I/O failure, format mismatch,
  /// or if \p ws has a different length than the saved index.
  static std::unique_ptr<UsiIndex> LoadFromFile(const WeightedString& ws,
                                                const std::string& path);

  /// As above, reporting WHY a file was refused through \p error (always
  /// written: kOk on success). \p error may be null.
  static std::unique_ptr<UsiIndex> LoadFromFile(const WeightedString& ws,
                                                const std::string& path,
                                                LoadError* error);

  /// Answers U(P): hash-table hit in O(m), otherwise SA + PSW fallback.
  /// Safe to call concurrently (the index is immutable after construction).
  QueryResult Query(std::span<const Symbol> pattern) const;

  /// Batch-aware answer path, identical results to per-pattern Query but
  /// substantially cheaper: patterns are probed in sorted order so prefix
  /// fingerprints extend from the longest common prefix instead of being
  /// recomputed per pattern, and table probes run with software prefetch
  /// pipelined ahead. Allocation-free once \p scratch (may be null) has
  /// grown to the workload's batch shape. Safe to call concurrently as long
  /// as each call owns its scratch and PrepareBatch (or ReservePowers) ran
  /// for the batch's max pattern length first — UsiService guarantees both.
  void QueryBatch(std::span<const Text> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) const;

  /// Span-of-spans QueryBatch: identical behavior, patterns borrowed from
  /// caller storage (UsiMultiService scatters pointers into request memory
  /// instead of copying bytes into scratch Texts). Same concurrency
  /// contract as the Text overload.
  void QueryBatch(std::span<const PatternSpan> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) const;

  /// Sliding-window workloads: answers U for every length-\p window_len
  /// window of \p document (results[i] = U(document[i..i+window_len-1]);
  /// results.size() must be document.size() - window_len + 1). One O(1)
  /// rolling-hash step per window instead of an O(window_len) rehash, so
  /// table hits cost O(|document|) total. Concurrent calls are safe once
  /// the hasher's powers cover window_len (PrepareBatch/ReservePowers).
  void QueryAllWindows(std::span<const Symbol> document, index_t window_len,
                       std::span<QueryResult> results) const;

  /// QueryEngine interface.
  QueryResult Query(std::span<const Symbol> pattern) override {
    return static_cast<const UsiIndex*>(this)->Query(pattern);
  }
  void PrepareBatch(std::span<const Text> patterns) override;
  void PrepareBatch(std::span<const PatternSpan> patterns) override;
  bool BatchPrepared(std::span<const Text> patterns) const override;
  bool BatchPrepared(std::span<const PatternSpan> patterns) const override;
  void QueryBatch(std::span<const Text> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) override {
    static_cast<const UsiIndex*>(this)->QueryBatch(patterns, results, scratch);
  }
  void QueryBatch(std::span<const PatternSpan> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) override {
    static_cast<const UsiIndex*>(this)->QueryBatch(patterns, results, scratch);
  }
  const char* Name() const override {
    return miner_ == UsiMiner::kExact ? "UET" : "UAT";
  }
  bool SupportsConcurrentQuery() const override { return true; }

  /// Convenience: just the utility value.
  double Utility(std::span<const Symbol> pattern) const {
    return Query(pattern).utility;
  }

  /// Construction telemetry.
  const UsiBuildInfo& build_info() const { return build_info_; }

  /// The aggregation kind answers are finalized with. The update tier's
  /// delta merge must fold base and delta partials with the same kind.
  GlobalUtilityKind utility_kind() const { return kind_; }

  /// The learned fallback model. empty() when the build disabled it
  /// (learned_epsilon == 0) or the opened image carries no learned section —
  /// misses then go through plain binary search.
  const LearnedSa& learned_sa() const { return learned_; }

  /// Number of precomputed entries in H.
  std::size_t HashTableEntries() const { return table_.size(); }

  /// Index size: SA + PSW + H + the fallback engine object (the text is
  /// borrowed, as in the paper's accounting, which reports the index on top
  /// of S). The SA contributes its used size — BuildInto shrinks build-owned
  /// vectors, so no construction slack is ever reported.
  std::size_t SizeInBytes() const override;

  /// The suffix array (exposed for examples and tests). A span: it views
  /// the owned heap vector for built/v2-loaded indexes and the mmap'd file
  /// image for OpenMapped ones.
  std::span<const index_t> sa() const { return sa_span_; }

  /// Whether this index serves straight out of an mmap'd file (OpenMapped).
  bool IsMapped() const { return mapping_ != nullptr; }

 private:
  friend class UsiBuilder;

  /// Value stored in H: a utility accumulator (value + occurrence count).
  using TableValue = UtilityAccumulator;

  /// Deserialization constructor: members are filled by LoadFromFile /
  /// OpenMapped. The tag comes first so the public (ws, options = {})
  /// constructor never competes with it in overload resolution.
  struct LoadTag {};
  UsiIndex(LoadTag, const WeightedString& ws);

  /// Builder constructor: initializes the invariant members; UsiBuilder
  /// fills sa_/table_/fallback_/build_info_ through BuildInto.
  struct BuildTag {};
  UsiIndex(BuildTag, const WeightedString& ws, const UsiOptions& options);

  bool SaveV2Body(BinaryWriter& writer) const;
  bool SaveV3Body(BinaryWriter& writer, const SaveOptions& save_options) const;

  /// Shared body of both QueryBatch overloads; P is Text or PatternSpan.
  template <typename P>
  void QueryBatchImpl(std::span<const P> patterns,
                      std::span<QueryResult> results,
                      QueryScratch* scratch) const;

  const WeightedString* ws_;
  GlobalUtilityKind kind_;
  UsiMiner miner_ = UsiMiner::kExact;
  KarpRabinHasher hasher_;
  /// Owned SA storage (built / v2-loaded indexes; empty when mapped).
  std::vector<index_t> sa_;
  /// The SA every query path reads: views sa_ or the mapped file image.
  std::span<const index_t> sa_span_;
  PrefixSumWeights psw_;
  FingerprintTable<TableValue> table_;
  /// Learned last-mile model for table misses. Owns its arrays for built /
  /// v2-loaded indexes; views the mapped learned section for OpenMapped
  /// ones (the mapping outlives the model).
  LearnedSa learned_;
  ExhaustiveQueryEngine fallback_;
  UsiBuildInfo build_info_;
  /// Keeps the file image alive for mmap-backed indexes — sa_span_, psw_,
  /// and table_ point into it while the index is in use. (Destruction order
  /// is immaterial: the views' destructors never dereference their
  /// backing.)
  std::unique_ptr<MappedFile> mapping_;
};

}  // namespace usi

#endif  // USI_CORE_USI_INDEX_HPP_
