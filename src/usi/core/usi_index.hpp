#ifndef USI_CORE_USI_INDEX_HPP_
#define USI_CORE_USI_INDEX_HPP_

/// \file usi_index.hpp
/// USI_TOP-K (Section IV, Theorem 1): the paper's data structure for Useful
/// String Indexing.
///
/// Components: a hash table H of precomputed global utilities of the top-K
/// frequent substrings (keyed by Karp-Rabin fingerprint + length), the text
/// index (suffix array as the suffix-tree leaf order), and the prefix-sums
/// array PSW. Queries: O(m) fingerprint + O(1) probe on a hit; O(m log n +
/// occ) <= O(m log n + tau_K) via SA + PSW on a miss.
///
/// The top-K set comes from either miner:
///  * UET — Exact-Top-K (Section V): exact frequencies, SA intervals, and the
///    O(m + tau_K) query guarantee.
///  * UAT — Approximate-Top-K (Section VI): smaller construction space; the
///    guarantee is forfeited (Section VI discusses why) but practice is
///    competitive, as Fig. 6 shows.
///
/// Construction runs through the staged UsiBuilder (usi_builder.hpp): SA,
/// mining, and the phase (ii) table population are instrumented stages, and
/// phase (ii) parallelizes over distinct lengths when a thread pool is given
/// — with byte-identical serialized output to a sequential build.

#include <memory>
#include <span>
#include <string>

#include "usi/core/query_engine.hpp"
#include "usi/core/utility.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/text/weighted_string.hpp"
#include "usi/topk/approximate_topk.hpp"
#include "usi/topk/topk_types.hpp"

namespace usi {

class ThreadPool;
class UsiBuilder;

/// Which mining algorithm feeds construction phase (i).
enum class UsiMiner : u8 {
  kExact,        ///< UET.
  kApproximate,  ///< UAT.
};

/// Construction options for UsiIndex.
struct UsiOptions {
  /// Number of top-K frequent substrings to precompute; 0 means n/100, the
  /// K = Theta(n) regime Section IV recommends.
  u64 k = 0;
  GlobalUtilityKind utility = GlobalUtilityKind::kSum;
  UsiMiner miner = UsiMiner::kExact;
  ApproximateTopKOptions approx = {};  ///< Used when miner == kApproximate.
  u64 hash_seed = 0x05111;             ///< Karp-Rabin base seed.
  /// Build parallelism: 1 = sequential (default), 0 = hardware concurrency,
  /// N > 1 = a pool of N threads. Any value yields byte-identical
  /// SaveToFile output; see UsiBuilder for the determinism contract.
  unsigned threads = 1;
};

/// Construction telemetry (used by the Fig. 6 benches and by tuning).
struct UsiBuildInfo {
  u64 k = 0;                ///< Effective K.
  index_t tau_k = 0;        ///< Min frequency among mined substrings.
  index_t num_lengths = 0;  ///< L_K: distinct lengths among them.
  double sa_seconds = 0;    ///< Stage 1: suffix-array construction.
  double mining_seconds = 0;  ///< Stage 2: phase (i) top-K mining.
  double table_seconds = 0;  ///< Stage 3: phase (ii) sliding-window tables.
  double total_seconds = 0;
  unsigned threads_used = 1;  ///< Pool width the build ran with.
  /// Process peak RSS (VmHWM) after the build, and how much each stage grew
  /// it — the memory-lean staging contract: each stage releases its dead
  /// intermediates before the next one allocates, so the per-stage deltas
  /// show which stage actually set the peak. 0 where /proc is unavailable.
  std::size_t peak_rss_bytes = 0;
  std::size_t sa_rss_delta_bytes = 0;
  std::size_t mining_rss_delta_bytes = 0;
  std::size_t table_rss_delta_bytes = 0;
};

/// The USI_TOP-K index over a weighted string.
class UsiIndex : public QueryEngine {
 public:
  /// Builds the index. \p ws is borrowed and must outlive the index.
  /// options.threads > 1 (or 0) runs the parallel build pipeline.
  UsiIndex(const WeightedString& ws, const UsiOptions& options = {});

  /// As above, sharing an existing pool (borrowed; may be null).
  UsiIndex(const WeightedString& ws, const UsiOptions& options,
           ThreadPool* pool);

  /// Persists the index (suffix array + hash table + parameters; PSW is
  /// recomputed on load, it is a single O(n) scan). Hash-table entries are
  /// written in canonical (length, fingerprint) order, so equal indexes
  /// serialize to equal bytes regardless of build schedule. Returns false on
  /// I/O failure.
  bool SaveToFile(const std::string& path) const;

  /// Restores an index previously saved over the same weighted string.
  /// Returns nullptr on I/O failure, format mismatch, or if \p ws has a
  /// different length than the saved index.
  static std::unique_ptr<UsiIndex> LoadFromFile(const WeightedString& ws,
                                                const std::string& path);

  /// Answers U(P): hash-table hit in O(m), otherwise SA + PSW fallback.
  /// Safe to call concurrently (the index is immutable after construction).
  QueryResult Query(std::span<const Symbol> pattern) const;

  /// Batch-aware answer path, identical results to per-pattern Query but
  /// substantially cheaper: patterns are probed in sorted order so prefix
  /// fingerprints extend from the longest common prefix instead of being
  /// recomputed per pattern, and table probes run with software prefetch
  /// pipelined ahead. Allocation-free once \p scratch (may be null) has
  /// grown to the workload's batch shape. Safe to call concurrently as long
  /// as each call owns its scratch and PrepareBatch (or ReservePowers) ran
  /// for the batch's max pattern length first — UsiService guarantees both.
  void QueryBatch(std::span<const Text> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) const;

  /// Sliding-window workloads: answers U for every length-\p window_len
  /// window of \p document (results[i] = U(document[i..i+window_len-1]);
  /// results.size() must be document.size() - window_len + 1). One O(1)
  /// rolling-hash step per window instead of an O(window_len) rehash, so
  /// table hits cost O(|document|) total. Concurrent calls are safe once
  /// the hasher's powers cover window_len (PrepareBatch/ReservePowers).
  void QueryAllWindows(std::span<const Symbol> document, index_t window_len,
                       std::span<QueryResult> results) const;

  /// QueryEngine interface.
  QueryResult Query(std::span<const Symbol> pattern) override {
    return static_cast<const UsiIndex*>(this)->Query(pattern);
  }
  void PrepareBatch(std::span<const Text> patterns) override;
  bool BatchPrepared(std::span<const Text> patterns) const override;
  void QueryBatch(std::span<const Text> patterns,
                  std::span<QueryResult> results,
                  QueryScratch* scratch) override {
    static_cast<const UsiIndex*>(this)->QueryBatch(patterns, results, scratch);
  }
  const char* Name() const override {
    return miner_ == UsiMiner::kExact ? "UET" : "UAT";
  }
  bool SupportsConcurrentQuery() const override { return true; }

  /// Convenience: just the utility value.
  double Utility(std::span<const Symbol> pattern) const {
    return Query(pattern).utility;
  }

  /// Construction telemetry.
  const UsiBuildInfo& build_info() const { return build_info_; }

  /// Number of precomputed entries in H.
  std::size_t HashTableEntries() const { return table_.size(); }

  /// Index size: SA + PSW + H + the fallback engine object (the text is
  /// borrowed, as in the paper's accounting, which reports the index on top
  /// of S). The SA contributes its used size — BuildInto shrinks build-owned
  /// vectors, so no construction slack is ever reported.
  std::size_t SizeInBytes() const override;

  /// The suffix array (exposed for examples and tests).
  const std::vector<index_t>& sa() const { return sa_; }

 private:
  friend class UsiBuilder;

  /// Value stored in H: a utility accumulator (value + occurrence count).
  using TableValue = UtilityAccumulator;

  /// Deserialization constructor: members are filled by LoadFromFile. The
  /// tag comes first so the public (ws, options = {}) constructor never
  /// competes with it in overload resolution.
  struct LoadTag {};
  UsiIndex(LoadTag, const WeightedString& ws);

  /// Builder constructor: initializes the invariant members; UsiBuilder
  /// fills sa_/table_/fallback_/build_info_ through BuildInto.
  struct BuildTag {};
  UsiIndex(BuildTag, const WeightedString& ws, const UsiOptions& options);

  const WeightedString* ws_;
  GlobalUtilityKind kind_;
  UsiMiner miner_ = UsiMiner::kExact;
  KarpRabinHasher hasher_;
  std::vector<index_t> sa_;
  PrefixSumWeights psw_;
  FingerprintTable<TableValue> table_;
  ExhaustiveQueryEngine fallback_;
  UsiBuildInfo build_info_;
};

}  // namespace usi

#endif  // USI_CORE_USI_INDEX_HPP_
