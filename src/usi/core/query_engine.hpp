#ifndef USI_CORE_QUERY_ENGINE_HPP_
#define USI_CORE_QUERY_ENGINE_HPP_

/// \file query_engine.hpp
/// The query contract shared by every answer path in the library.
///
/// UsiIndex (the paper's USI_TOP-K), ExhaustiveQueryEngine (the SA + PSW
/// scan) and the four Bsl* baselines all answer the same question — U(P) for
/// a pattern P — but grew separate entry points. QueryEngine unifies them so
/// benches, examples and the serving layer (UsiService) drive any engine
/// through one interface, and so batched serving can ask an engine whether
/// concurrent queries are safe before fanning a batch across a thread pool.

#include <cstddef>
#include <span>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Result of a USI query.
struct QueryResult {
  double utility = 0;        ///< U(P); 0 when the pattern does not occur.
  index_t occurrences = 0;   ///< |occ_S(P)|.
  bool from_hash_table = false;  ///< Answered from a precomputed/cached table.
};

/// Abstract answer path for global-utility queries.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Answers U(P). Non-const: caching engines mutate internal state.
  virtual QueryResult Query(std::span<const Symbol> pattern) = 0;

  /// Short display name ("UET", "BSL2", ...).
  virtual const char* Name() const = 0;

  /// Index size in bytes (structures the engine answers from).
  virtual std::size_t SizeInBytes() const = 0;

  /// Whether Query may be invoked concurrently from multiple threads.
  /// Engines that mutate per-query state (the caching baselines) return
  /// false; UsiService then serves their batches sequentially, in order.
  virtual bool SupportsConcurrentQuery() const { return false; }
};

}  // namespace usi

#endif  // USI_CORE_QUERY_ENGINE_HPP_
