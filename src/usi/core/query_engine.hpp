#ifndef USI_CORE_QUERY_ENGINE_HPP_
#define USI_CORE_QUERY_ENGINE_HPP_

/// \file query_engine.hpp
/// The query contract shared by every answer path in the library.
///
/// UsiIndex (the paper's USI_TOP-K), ExhaustiveQueryEngine (the SA + PSW
/// scan) and the four Bsl* baselines all answer the same question — U(P) for
/// a pattern P — but grew separate entry points. QueryEngine unifies them so
/// benches, examples and the serving layer (UsiService) drive any engine
/// through one interface, and so batched serving can ask an engine whether
/// concurrent queries are safe before fanning a batch across a thread pool.
///
/// Batches are first-class: PrepareBatch runs once per batch before any
/// fan-out (engines pre-grow shared read-only state, e.g. the Karp-Rabin
/// power table), and QueryBatch answers a span of patterns into a span of
/// results using caller-owned QueryScratch buffers — the hot path allocates
/// nothing once the scratch has warmed up to the workload's pattern lengths.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "usi/hash/pattern_key.hpp"
#include "usi/suffix/sa_search.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// A borrowed pattern: the span-of-spans batch entry points take these so
/// callers holding patterns in foreign storage (UsiMultiService's gather
/// stage, arena-backed request decoders) scatter pointers instead of
/// copying bytes into scratch Texts. The referenced bytes must stay alive
/// and unchanged for the duration of the batch call.
using PatternSpan = std::span<const Symbol>;

/// Where an answer came from — the rung of the degradation ladder that
/// produced it (exact → hot-pattern cache → sketch estimate → none). The
/// exact path never touches this field: engines write utility/occurrences
/// and leave the default kExact standing, so threading provenance through
/// the serving stack costs the steady state nothing.
enum class AnswerProvenance : u8 {
  kExact = 0,     ///< Answered by an index/engine; error_bound is 0.
  kCached,        ///< Degraded: an exact answer this pattern received
                  ///< earlier, replayed from the hot-pattern cache
                  ///< (error_bound 0 relative to the recorded generation).
  kApproximate,   ///< Degraded: sketch estimate; |utility - U(P)| <=
                  ///< error_bound (one-sided: never an under-estimate).
  kNone,          ///< Filler: no rung could answer; utility/occurrences are
                  ///< default and carry no information.
};

/// Display name of an AnswerProvenance ("exact", "cached", ...).
inline const char* AnswerProvenanceName(AnswerProvenance provenance) {
  switch (provenance) {
    case AnswerProvenance::kExact: return "exact";
    case AnswerProvenance::kCached: return "cached";
    case AnswerProvenance::kApproximate: return "approximate";
    case AnswerProvenance::kNone: return "none";
  }
  return "?";
}

/// Result of a USI query.
struct QueryResult {
  double utility = 0;        ///< U(P); 0 when the pattern does not occur.
  index_t occurrences = 0;   ///< |occ_S(P)|.
  bool from_hash_table = false;  ///< Answered from a precomputed/cached table.
  /// Degradation-ladder rung that produced this answer. Engines leave the
  /// default (kExact); only the degraded serving paths write it.
  AnswerProvenance provenance = AnswerProvenance::kExact;
  /// Advertised error bound on `utility`: 0 for exact/cached answers;
  /// for kApproximate, utility - U(P) is in [0, error_bound] with the
  /// sketch's (epsilon, delta) guarantee (see core/degraded_tier.hpp).
  double error_bound = 0;
};

/// Cooperative cancellation state shared by every worker of one batch.
///
/// The serving layer (UsiService) creates one per deadline-carrying batch
/// and threads a pointer through QueryScratch; engines with long batch
/// stages (UsiIndex's staged miss resolution) poll Expired() at checkpoint
/// boundaries and stop early. The expiry flag LATCHES: once any checkpoint
/// observes the deadline passed, every later check is a single relaxed load
/// — no worker re-reads the clock, and all of them agree the batch expired.
struct BatchControl {
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  mutable std::atomic<bool> expired{false};

  /// Checkpoint poll: true once the deadline has passed (latched).
  bool Expired() const {
    if (!has_deadline) return false;
    if (expired.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() < deadline) return false;
    expired.store(true, std::memory_order_relaxed);
    return true;
  }
};

/// Reusable per-worker buffers for QueryBatch.
///
/// \par Reuse rules
///  * One scratch must never be shared by two concurrently-running
///    QueryBatch calls — it is mutable working memory. UsiService leases a
///    block of one-per-worker scratches to each in-flight batch.
///  * Sequential reuse across batches is the point: buffers only ever
///    grow, so a steady-state workload (same batch shape repeated) stops
///    allocating after the first batch (pinned by query_alloc_test).
///  * A scratch is engine-agnostic and carries no result state; passing it
///    to a different engine, or dropping it between batches, affects only
///    performance, never answers.
struct QueryScratch {
  /// (packed prefix+length, pattern index) pairs — sorting these contiguous
  /// values clusters shared prefixes without indirecting into the patterns.
  std::vector<std::pair<u64, u32>> cluster;
  std::vector<u64> prefix_fps;   ///< Incremental prefix fingerprints.
  std::vector<PatternKey> keys;  ///< Per-pattern table keys.
  /// Table-miss staging for the batched learned-fallback path: the batch
  /// positions that missed H, their borrowed pattern bytes, and the SA
  /// intervals the batched last-mile search resolves them to.
  std::vector<u32> misses;
  std::vector<PatternSpan> miss_patterns;
  std::vector<SaInterval> miss_intervals;
  /// Cancellation state of the in-flight batch (null = no deadline). Set by
  /// the serving layer for the duration of one QueryBatch call; engines
  /// poll it at checkpoint boundaries and leave unreached results
  /// default-constructed. Never owned by the scratch.
  const BatchControl* control = nullptr;
};

/// Abstract answer path for global-utility queries.
///
/// \par Thread safety
/// The contract is opt-in per engine:
///  * SupportsConcurrentQuery() == true promises Query / QueryBatch are
///    safe from multiple threads *provided* each concurrent call owns its
///    QueryScratch and shared state covers the batch (PrepareBatch ran, or
///    BatchPrepared() returned true). UsiIndex qualifies: it is immutable
///    after construction except for the monotonically-grown Karp-Rabin
///    power table, which PrepareBatch pre-grows.
///  * SupportsConcurrentQuery() == false (the caching baselines) means the
///    engine mutates per-query state; callers must serialize, and answer
///    streams depend on query order.
///  * PrepareBatch is the single mutating entry point on concurrent-safe
///    engines; it must be externally excluded from running alongside
///    serving (UsiService holds a reader/writer lock: batches share,
///    preparation is exclusive, warm batches skip it via BatchPrepared).
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Answers U(P). Non-const: caching engines mutate internal state.
  virtual QueryResult Query(std::span<const Symbol> pattern) = 0;

  /// Short display name ("UET", "BSL2", ...).
  virtual const char* Name() const = 0;

  /// Index size in bytes (structures the engine answers from).
  virtual std::size_t SizeInBytes() const = 0;

  /// Whether Query may be invoked concurrently from multiple threads.
  /// Engines that mutate per-query state (the caching baselines) return
  /// false; UsiService then serves their batches sequentially, in order.
  virtual bool SupportsConcurrentQuery() const { return false; }

  /// Called once per batch, before any QueryBatch fan-out, with the full
  /// batch. Engines pre-grow state shared read-only by the batch (UsiIndex
  /// reserves Karp-Rabin powers for the batch's max pattern length so no
  /// concurrent shard ever grows the table). Default: nothing to prepare.
  ///
  /// PrepareBatch may mutate engine state, so it must never run while
  /// another batch is being served on the same engine. UsiService enforces
  /// this with a reader/writer protocol: serving holds a shared lock,
  /// PrepareBatch runs under the exclusive lock, and BatchPrepared() lets
  /// warm batches skip the exclusive section entirely.
  virtual void PrepareBatch(std::span<const Text> patterns) {
    (void)patterns;
  }

  /// Span-of-spans variant of PrepareBatch, same contract.
  virtual void PrepareBatch(std::span<const PatternSpan> patterns) {
    (void)patterns;
  }

  /// Whether PrepareBatch(\p patterns) would be a no-op — i.e. the shared
  /// state it grows already covers this batch, so serving may proceed
  /// without mutating the engine. Called concurrently with serving; must
  /// only read state that PrepareBatch grows monotonically. Default:
  /// false (always prepare), matching the default no-op PrepareBatch being
  /// free to run under the exclusive lock.
  virtual bool BatchPrepared(std::span<const Text> patterns) const {
    (void)patterns;
    return false;
  }

  /// Span-of-spans variant of BatchPrepared, same contract.
  virtual bool BatchPrepared(std::span<const PatternSpan> patterns) const {
    (void)patterns;
    return false;
  }

  /// Answers patterns[i] into results[i] for every i; results.size() must
  /// be >= patterns.size(). \p scratch may be null (the engine then uses
  /// call-local buffers). The answers are exactly what per-pattern Query
  /// calls in batch order would produce. Default: that loop, verbatim —
  /// which is also the only correct serving mode for caching engines.
  virtual void QueryBatch(std::span<const Text> patterns,
                          std::span<QueryResult> results,
                          QueryScratch* scratch) {
    (void)scratch;
    USI_DCHECK(results.size() >= patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      results[i] = Query(patterns[i]);
    }
  }

  /// Span-of-spans variant of QueryBatch, same contract: patterns are
  /// borrowed rather than owned, so gather stages can point into request
  /// storage instead of copying bytes. The default loop makes every engine
  /// correct under it; engines with a real batch path (UsiIndex) override.
  virtual void QueryBatch(std::span<const PatternSpan> patterns,
                          std::span<QueryResult> results,
                          QueryScratch* scratch) {
    (void)scratch;
    USI_DCHECK(results.size() >= patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      results[i] = Query(patterns[i]);
    }
  }
};

}  // namespace usi

#endif  // USI_CORE_QUERY_ENGINE_HPP_
