#ifndef USI_CORE_UPDATE_TIER_HPP_
#define USI_CORE_UPDATE_TIER_HPP_

/// \file update_tier.hpp
/// The delta side of the LSM-flavored update tier: a small, mutable overlay
/// that absorbs appends against an immutable base generation and answers the
/// occurrences the base cannot see.
///
/// \par The base/delta split
/// A published generation indexes the text prefix [0, n0). Appends extend
/// the text past n0 without touching the generation; the overlay owns them.
/// For a pattern of length m, every occurrence either ends at or before n0
/// (the base generation counts it — its index is exact over [0, n0)) or
/// ends after n0 (it uses at least one appended position; the overlay
/// counts it). The two sets partition the occurrences of the full text, so
/// merging the two finalized answers (MergeQueryResults, utility.hpp) is
/// exact — no occurrence is counted twice, none is missed.
///
/// \par How the overlay answers its half
/// The overlay seeds a DynamicUsi over a tail *window* [d0, n0) of the base
/// (d0 = n0 - min(context, n0)) and appends into it. A crossing occurrence
/// starts at most m-1 positions before n0, so as long as m-1 <= n0 - d0 the
/// window contains every crossing occurrence in full: the overlay collects
/// the pattern's occurrences in the window (Ukkonen tree), keeps those
/// ending past n0, and aggregates their PSW local utilities — the window's
/// prefix sums reproduce the same local sums as the full text's. Patterns
/// longer than the window (rare; bounded by the configured context) fall
/// back to a direct verify-and-sum scan over the O(m + appended) candidate
/// starts, reading base text for positions before d0.
///
/// \par Concurrency
/// Internally synchronized with a shared_mutex: Append takes it exclusively
/// for the whole span (a multi-symbol append is atomic — readers see all of
/// it or none); queries take LockForRead and may hold it across a whole
/// batch group, giving the group one untorn snapshot. The owning service
/// orders entry locks BEFORE overlay locks; readers take the overlay lock
/// only after releasing the entry lock.
///
/// \par Lifetime
/// The overlay borrows the base text through a shared_ptr (the service
/// passes an aliasing pointer into the pinned generation), so the base
/// stays alive for as long as the overlay does — pinning (generation,
/// overlay) pairs is what makes a batch's view consistent.

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "usi/core/dynamic_usi.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {

/// Telemetry snapshot of one overlay (usi_inspect / StatsFor surface it).
struct DeltaOverlayStats {
  index_t boundary = 0;   ///< n0: base positions the pinned generation covers.
  index_t appended = 0;   ///< Symbols appended past the boundary.
  index_t window = 0;     ///< Seeded tail-context length (n0 - d0).
  index_t staleness = 0;  ///< DynamicUsi::StalenessBound of the overlay.
  std::size_t bytes = 0;  ///< Heap footprint.
  u64 epoch = 0;          ///< Lineage id (bumps when the service replaces it).
};

/// Mutable delta over one immutable base generation.
class DeltaOverlay {
 public:
  /// Reusable query scratch (occurrence list + tree traversal stack); one
  /// per batch scratch keeps the probe path allocation-free once warm.
  struct Scratch {
    std::vector<index_t> occ;
    std::vector<index_t> stack;
  };

  /// \p base is the generation's text (shared so the generation outlives
  /// the overlay); the overlay covers appends past base->size().
  /// \p context bounds the seeded window; \p epoch tags the lineage;
  /// \p kind must match the paired generation's utility kind so the merged
  /// halves aggregate identically.
  DeltaOverlay(std::shared_ptr<const WeightedString> base, index_t context,
               u64 epoch, GlobalUtilityKind kind);

  /// Appends \p text / \p weights (equal length) atomically: the exclusive
  /// lock spans the whole call, so readers see all of the span or none of
  /// it. Throws when the `delta.append` failpoint is armed (before any
  /// mutation) or on allocation failure mid-append — in the latter case
  /// poisoned() turns true and the overlay must be discarded.
  void Append(std::span<const Symbol> text, std::span<const double> weights);

  /// An exception escaped mid-append: the overlay's state is torn and it
  /// must not serve. The pre-mutation failpoint does NOT poison.
  bool poisoned() const { return poisoned_; }

  /// Read lock for the probe path. Hold it across a batch group's probes
  /// for one consistent snapshot; every *Locked member requires it.
  std::shared_lock<std::shared_mutex> LockForRead() const {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// Symbols appended past the boundary.
  index_t AppendedLocked() const {
    return dyn_.size() - (boundary_ - d0_);
  }

  /// Full text length: boundary + appended.
  index_t TotalSizeLocked() const { return boundary_ + AppendedLocked(); }

  /// The overlay's half of the split answer: occurrences of \p pattern
  /// ending strictly past the boundary, aggregated with the overlay's
  /// utility kind. Allocation-free once \p scratch has warmed.
  QueryResult QueryCrossingLocked(std::span<const Symbol> pattern,
                                  Scratch& scratch) const;

  /// Letter / utility at global position \p pos (>= d0 reads the overlay's
  /// window, below reads the base). Warm-start replay uses these.
  Symbol SymbolAtLocked(index_t pos) const {
    return pos < d0_ ? base_->letter(pos)
                     : dyn_.text()[static_cast<std::size_t>(pos - d0_)];
  }
  double WeightAtLocked(index_t pos) const {
    return pos < d0_ ? base_->weight(pos)
                     : dyn_.weights()[static_cast<std::size_t>(pos - d0_)];
  }

  /// Copies the full current content (base prefix + appends) into one
  /// WeightedString — the compaction snapshot the build lane indexes.
  WeightedString SnapshotMerged() const;

  /// Replays \p count appended positions of \p from, starting at global
  /// position \p from_pos, into this overlay (construction-time warm
  /// start; \p from must be quiescent for writes — the service holds the
  /// entry lock, which serializes all appenders).
  void AppendFrom(const DeltaOverlay& from, index_t from_pos, index_t count);

  /// Compaction-fallback rebase (the `compact.warmstart` containment path):
  /// moves the boundary forward to \p new_boundary — positions before it
  /// are now the new generation's responsibility — without rebuilding the
  /// window. Still exact; the over-wide window is reclaimed by the next
  /// successful warm start.
  void Rebase(index_t new_boundary);

  /// Base positions covered by the paired generation.
  index_t boundary() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return boundary_;
  }

  /// Lineage id assigned at construction (the service bumps its counter
  /// whenever it drops or replaces an overlay; a compaction publishes only
  /// when the live overlay still carries the epoch its snapshot saw).
  u64 epoch() const { return epoch_; }

  /// Telemetry snapshot (takes the read lock).
  DeltaOverlayStats StatsSnapshot() const;

 private:
  mutable std::shared_mutex mu_;
  std::shared_ptr<const WeightedString> base_;  ///< Keeps the generation alive.
  index_t boundary_;  ///< n0 at construction; Rebase moves it forward.
  index_t d0_;        ///< First position the window covers.
  u64 epoch_;
  bool poisoned_ = false;
  DynamicUsi dyn_;  ///< Window + appends; k = 0 (no tracked table).
};

}  // namespace usi

#endif  // USI_CORE_UPDATE_TIER_HPP_
