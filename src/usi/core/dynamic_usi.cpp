#include "usi/core/dynamic_usi.hpp"

#include <algorithm>

#include "usi/topk/substring_stats.hpp"

namespace usi {

DynamicUsi::DynamicUsi(const DynamicUsiOptions& options)
    : options_(options), hasher_(options.hash_seed), table_(options.k) {
  prefix_fps_.push_back(0);
}

DynamicUsi::DynamicUsi(const WeightedString& seed,
                       const DynamicUsiOptions& options)
    : DynamicUsi(options) {
  for (index_t i = 0; i < seed.size(); ++i) {
    Append(seed.letter(i), seed.weight(i));
  }
  RefreshTopK();
}

void DynamicUsi::Append(Symbol c, double w) {
  text_.push_back(c);
  weights_.push_back(w);
  psw_.Append(w);
  prefix_fps_.push_back(hasher_.Append(prefix_fps_.back(), c));
  hasher_.PowerOfBase(text_.size());
  tree_.Extend(c);
  ++appends_since_refresh_;

  // Every new occurrence is a suffix of the extended text (Section X): for
  // each tracked length l, probe the fingerprint of the new length-l suffix;
  // on a hit, fold in its local utility. O(L_K) per append.
  const index_t n = static_cast<index_t>(text_.size());
  for (index_t len : tracked_lengths_) {
    if (len > n) break;  // Lengths are sorted ascending.
    const index_t start = n - len;
    const u64 fp = hasher_.SuffixOf(prefix_fps_[n], prefix_fps_[start], len);
    TableValue* value = table_.Find(PatternKey{fp, len});
    if (value != nullptr) {
      value->acc.Add(psw_.LocalUtility(start, len), options_.utility);
    }
  }

  // Bounded staleness: the tracked set may only drift max_staleness appends
  // before the deferred O(n) recomputation runs automatically.
  if (options_.max_staleness > 0 &&
      appends_since_refresh_ >= options_.max_staleness) {
    RefreshTopK();
  }
}

void DynamicUsi::Reserve(index_t n) {
  text_.reserve(n);
  weights_.reserve(n);
  psw_.Reserve(n);
  prefix_fps_.reserve(static_cast<std::size_t>(n) + 1);
  hasher_.ReservePowers(n);
}

void DynamicUsi::RefreshTopK() {
  table_.Clear();
  tracked_lengths_.clear();
  appends_since_refresh_ = 0;
  if (text_.empty() || options_.k == 0) return;

  // Recompute the exact top-K (the deferred-cost path the paper describes).
  SubstringStats stats(text_);
  const TopKList mined = stats.TopK(options_.k);
  const std::vector<index_t>& sa = stats.sa();

  // Insert keys; then one pass per distinct length to accumulate utilities
  // from the SA intervals (same phase-(ii) idea as the static index, but the
  // intervals make a window scan unnecessary here).
  for (const TopKSubstring& item : mined.items) {
    const index_t start = item.witness;
    const u64 fp = hasher_.SuffixOf(prefix_fps_[start + item.length],
                                    prefix_fps_[start], item.length);
    TableValue* value = table_.FindOrInsert(PatternKey{fp, item.length},
                                            TableValue{});
    for (index_t k = item.lb; k <= item.rb; ++k) {
      value->acc.Add(psw_.LocalUtility(sa[k], item.length), options_.utility);
    }
    tracked_lengths_.push_back(item.length);
  }
  std::sort(tracked_lengths_.begin(), tracked_lengths_.end());
  tracked_lengths_.erase(
      std::unique(tracked_lengths_.begin(), tracked_lengths_.end()),
      tracked_lengths_.end());
}

QueryResult DynamicUsi::Query(std::span<const Symbol> pattern) const {
  QueryResult result;
  if (pattern.empty() || pattern.size() > text_.size()) return result;
  const u64 fp = hasher_.Hash(pattern);
  const TableValue* value =
      table_.Find(PatternKey{fp, static_cast<u32>(pattern.size())});
  if (value != nullptr && value->acc.count > 0) {
    result.utility = value->acc.Finalize(options_.utility);
    result.occurrences = value->acc.count;
    result.from_hash_table = true;
    return result;
  }
  // Fallback: suffix tree locates all occurrences, PSW aggregates them.
  const std::vector<index_t> occurrences = tree_.CollectOccurrences(pattern);
  if (occurrences.empty()) return result;
  UtilityAccumulator acc;
  const index_t m = static_cast<index_t>(pattern.size());
  for (index_t start : occurrences) {
    acc.Add(psw_.LocalUtility(start, m), options_.utility);
  }
  result.utility = acc.Finalize(options_.utility);
  result.occurrences = static_cast<index_t>(occurrences.size());
  return result;
}

std::size_t DynamicUsi::SizeInBytes() const {
  return text_.capacity() * sizeof(Symbol) +
         weights_.capacity() * sizeof(double) + psw_.SizeInBytes() +
         prefix_fps_.capacity() * sizeof(u64) + tree_.SizeInBytes() +
         table_.SizeInBytes() + tracked_lengths_.capacity() * sizeof(index_t);
}

}  // namespace usi
