#ifndef USI_CORE_DEGRADED_TIER_HPP_
#define USI_CORE_DEGRADED_TIER_HPP_

/// \file degraded_tier.hpp
/// Per-text graceful-degradation tier: bounded-error answers when the exact
/// index cannot serve.
///
/// PR 8 made failure *contained* — overload, quarantined builds and mapped
/// faults return typed rejections — but a rejection still answers nothing.
/// The degraded tier closes that gap: it observes (pattern, exact answer)
/// pairs on the exact serving path and replays them on the degraded paths,
/// through a two-rung ladder consulted by UsiMultiService when a batch opts
/// in (MultiBatchOptions::allow_degraded):
///
///   exact  ─► hot-pattern cache  ─► sketch estimate  ─► none (filler slot)
///
/// \par Rungs and bound semantics
///  * **Cache** (AnswerProvenance::kCached, error_bound 0): a fixed-capacity
///    open-addressed answer cache keyed by PatternKey. Admission is the
///    BSL3/BSL4 "top-K seen so far" rule of the caching baselines, learned
///    from traffic: a HeavyKeeper decay sketch estimates each pattern's
///    query popularity, and a new pattern only displaces the least-popular
///    incumbent of its probe window when it is more popular. A hit replays
///    the exact utility the pattern was last served — bound 0 relative to
///    the text content the tier learned from (the multi-service resets the
///    tier when a text's content changes, so within one content version a
///    cached answer equals the exact answer, to the same 64-bit-fingerprint
///    identity standard the index's own hash table H uses).
///  * **Sketch** (AnswerProvenance::kApproximate): a count-min sketch over
///    served (fingerprint -> utility) mass. Each distinct pattern's exact
///    utility is added ONCE (an exact-membership filter of key hashes
///    enforces single insertion), so for a sketched pattern the min-over-rows
///    estimate never under-estimates U(P) and over-estimates by more than
///    epsilon * M (M = total utility mass inserted, epsilon = e / width)
///    with probability at most delta = e^-depth — the classic CMS guarantee,
///    surfaced per answer as QueryResult::error_bound = epsilon * M.
///    Occurrence counts ride in a parallel min-sketch with the same
///    geometry. Patterns the filter has never seen are NOT estimated (the
///    sketch cannot bound an answer for them) — the tier returns false and
///    the serving layer writes a kNone filler slot.
///
/// \par Exact-path cost
/// RecordExact is called for every exactly-served query, so it is built to
/// vanish from the hot path: all structures are fixed-capacity arrays sized
/// at construction (no per-operation allocation, pinned by
/// query_alloc_test), and the tier lock is only ever *try*-acquired on the
/// record path — under contention the update is dropped, trading a little
/// learning for zero queueing. Degraded-path lookups take the lock (they
/// run when the exact path is not serving).
///
/// \par Thread safety
/// All members are safe to call concurrently; one mutex guards the
/// structures (record = try_lock + drop, lookup = lock).

#include <atomic>
#include <mutex>
#include <span>
#include <vector>

#include "usi/core/query_engine.hpp"
#include "usi/hash/count_min_sketch.hpp"
#include "usi/hash/pattern_key.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Tuning for a DegradedTier. Capacities round up to powers of two.
struct DegradedTierOptions {
  /// Hot-pattern answer cache slots (0 disables the cache rung).
  std::size_t cache_capacity = 4096;
  /// Count-min geometry: buckets per row / number of rows. The additive
  /// utility bound is (e / width) * inserted-utility-mass with failure
  /// probability e^-depth.
  std::size_t sketch_width = 4096;
  std::size_t sketch_depth = 4;
  /// Membership-filter capacity: distinct patterns the sketch will learn.
  /// Past ~7/8 occupancy the sketch stops admitting new patterns (already
  /// sketched ones keep answering) so single-insertion stays exact.
  std::size_t max_sketched_keys = 1 << 15;
  u64 seed = 0xDE62ADEDULL;
};

/// Telemetry snapshot of one tier (usi_inspect / UsiTextStats).
struct DegradedTierStats {
  std::size_t cache_capacity = 0;
  std::size_t cache_size = 0;
  u64 records = 0;         ///< Exact answers observed (post-drop).
  u64 record_drops = 0;    ///< Records dropped by try_lock contention.
  u64 lookups = 0;         ///< Degraded-path consults.
  u64 cache_hits = 0;      ///< Lookups answered by the cache rung.
  u64 sketch_answers = 0;  ///< Lookups answered by the sketch rung.
  u64 unanswered = 0;      ///< Lookups no rung could answer.
  std::size_t sketch_width = 0;
  std::size_t sketch_depth = 0;
  double epsilon = 0;       ///< e / width: bound = epsilon * sketch_mass.
  std::size_t sketched_keys = 0;   ///< Distinct patterns in the sketch.
  std::size_t max_sketched_keys = 0;
  double sketch_mass = 0;   ///< Total utility mass inserted (the M above).

  /// Cache hit rate over degraded lookups (0 when never consulted).
  double CacheHitRate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// The per-text front tier. One instance lives on each registered text of a
/// UsiMultiService, shared across index generations (a quarantined text
/// with no servable generation is exactly when the tier earns its keep).
class DegradedTier {
 public:
  explicit DegradedTier(const DegradedTierOptions& options = {});

  /// The tier's pattern identity: a 64-bit hash of the pattern bytes plus
  /// the length. Self-consistent within the tier (it need not match the
  /// index's Karp-Rabin key — the tier is only ever consulted against what
  /// it recorded itself).
  static PatternKey KeyFor(std::span<const Symbol> pattern);

  /// Observes one exactly-served answer (the exact path calls this for
  /// every answered query). Never blocks: under lock contention the update
  /// is dropped. Never allocates.
  void RecordExact(const PatternKey& key, const QueryResult& result);

  /// Degraded-path lookup: tries the cache rung then the sketch rung.
  /// On success writes utility/occurrences and tags \p out with
  /// provenance + error bound; returns false when no rung can answer
  /// (\p out untouched). Never allocates.
  bool TryAnswer(const PatternKey& key, QueryResult* out);

  /// Forgets everything (the owning text's content changed: recorded
  /// answers and bounds no longer describe it). Cumulative telemetry
  /// counters survive; structures and sketch mass reset.
  void Clear();

  /// Telemetry snapshot.
  DegradedTierStats stats() const;

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  /// One answer-cache slot (open addressing, bounded probe window).
  struct CacheSlot {
    PatternKey key;
    double utility = 0;
    index_t occurrences = 0;
    u32 popularity = 0;  ///< HeavyKeeper estimate when last touched.
    bool used = false;
  };
  static constexpr std::size_t kProbeWindow = 8;

  void CacheUpsertLocked(const PatternKey& key, u64 hash,
                         const QueryResult& result, u32 popularity);
  bool CacheFindLocked(const PatternKey& key, u64 hash, QueryResult* out);
  /// Inserts \p hash into the membership filter; true only when newly
  /// inserted (false when already present or the filter is at capacity).
  bool SeenInsertLocked(u64 hash);
  bool SeenContainsLocked(u64 hash) const;
  std::size_t CmsBucket(u64 hash, std::size_t row) const;

  DegradedTierOptions options_;
  mutable std::mutex mu_;

  /// Query-popularity sketch feeding cache admission (HeavyKeeper).
  DecaySketch popularity_;

  std::vector<CacheSlot> cache_;  ///< Power-of-two slots; empty = disabled.
  std::size_t cache_size_ = 0;

  /// Single-insertion membership filter: open-addressed key-hash set.
  std::vector<u64> seen_;
  std::size_t seen_size_ = 0;
  std::size_t seen_cap_ = 0;  ///< Admission stops here (~7/8 of slots).

  /// Utility / occurrence count-min arrays, width_ * depth_ each.
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  double epsilon_ = 0;
  std::vector<u64> row_seeds_;
  std::vector<double> cms_utility_;
  std::vector<u32> cms_occurrences_;
  double sketch_mass_ = 0;

  u64 records_ = 0;
  std::atomic<u64> record_drops_{0};  ///< Bumped without the lock held.
  u64 lookups_ = 0;
  u64 cache_hits_ = 0;
  u64 sketch_answers_ = 0;
  u64 unanswered_ = 0;
};

}  // namespace usi

#endif  // USI_CORE_DEGRADED_TIER_HPP_
