#include "usi/core/utility.hpp"

#include <algorithm>

namespace usi {

const char* GlobalUtilityKindName(GlobalUtilityKind kind) {
  switch (kind) {
    case GlobalUtilityKind::kSum:
      return "sum";
    case GlobalUtilityKind::kMin:
      return "min";
    case GlobalUtilityKind::kMax:
      return "max";
    case GlobalUtilityKind::kAvg:
      return "avg";
  }
  return "?";
}

PrefixSumWeights::PrefixSumWeights(const WeightedString& ws) {
  psw_.resize(ws.size());
  double running = 0;
  for (index_t i = 0; i < ws.size(); ++i) {
    running += ws.weight(i);
    psw_[i] = running;
  }
  data_ = psw_.data();
  size_ = psw_.size();
}

void UtilityAccumulator::Add(double local, GlobalUtilityKind kind) {
  switch (kind) {
    case GlobalUtilityKind::kSum:
    case GlobalUtilityKind::kAvg:
      value += local;
      break;
    case GlobalUtilityKind::kMin:
      value = (count == 0) ? local : std::min(value, local);
      break;
    case GlobalUtilityKind::kMax:
      value = (count == 0) ? local : std::max(value, local);
      break;
  }
  ++count;
}

double UtilityAccumulator::Finalize(GlobalUtilityKind kind) const {
  if (count == 0) return 0;
  if (kind == GlobalUtilityKind::kAvg) {
    return value / static_cast<double>(count);
  }
  return value;
}

QueryResult MergeQueryResults(const QueryResult& base, const QueryResult& delta,
                              GlobalUtilityKind kind) {
  if (delta.occurrences == 0) return base;
  if (base.occurrences == 0) {
    QueryResult out = delta;
    return out;
  }
  QueryResult out = base;
  out.occurrences = base.occurrences + delta.occurrences;
  switch (kind) {
    case GlobalUtilityKind::kSum:
      out.utility = base.utility + delta.utility;
      break;
    case GlobalUtilityKind::kMin:
      out.utility = std::min(base.utility, delta.utility);
      break;
    case GlobalUtilityKind::kMax:
      out.utility = std::max(base.utility, delta.utility);
      break;
    case GlobalUtilityKind::kAvg:
      out.utility =
          (base.utility * static_cast<double>(base.occurrences) +
           delta.utility * static_cast<double>(delta.occurrences)) /
          static_cast<double>(out.occurrences);
      break;
  }
  return out;
}

SaInterval ExhaustiveQueryEngine::Locate(
    std::span<const Symbol> pattern) const {
  USI_CHECK(wired());
  if (learned_ != nullptr && !learned_->empty()) {
    return learned_->FindInterval(*text_, sa_, pattern);
  }
  return FindSaInterval(*text_, sa_, pattern);
}

QueryResult ExhaustiveQueryEngine::Aggregate(SaInterval interval,
                                             index_t m) const {
  USI_CHECK(wired());
  QueryResult result;
  if (interval.IsEmpty()) return result;
  UtilityAccumulator acc;
  const GlobalUtilityKind kind = kind_;
  const PrefixSumWeights* psw = psw_;
  VisitSaInterval(sa_, interval, psw->data(), [&](index_t pos) {
    acc.Add(psw->LocalUtility(pos, m), kind);
  });
  result.utility = acc.Finalize(kind);
  result.occurrences = interval.Count();
  return result;
}

QueryResult ExhaustiveQueryEngine::Compute(
    std::span<const Symbol> pattern) const {
  // A default-constructed engine has nothing to answer from; computing
  // through it is a wiring bug, not bad input — abort before the null
  // borrows are dereferenced.
  USI_CHECK(wired());
  if (pattern.empty()) return QueryResult{};
  return Aggregate(Locate(pattern), static_cast<index_t>(pattern.size()));
}

std::size_t ExhaustiveQueryEngine::SizeInBytes() const {
  if (!wired()) return 0;
  return sa_.size() * sizeof(index_t) + psw_->SizeInBytes();
}

}  // namespace usi
