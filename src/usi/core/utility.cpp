#include "usi/core/utility.hpp"

#include <algorithm>

namespace usi {

const char* GlobalUtilityKindName(GlobalUtilityKind kind) {
  switch (kind) {
    case GlobalUtilityKind::kSum:
      return "sum";
    case GlobalUtilityKind::kMin:
      return "min";
    case GlobalUtilityKind::kMax:
      return "max";
    case GlobalUtilityKind::kAvg:
      return "avg";
  }
  return "?";
}

PrefixSumWeights::PrefixSumWeights(const WeightedString& ws) {
  psw_.resize(ws.size());
  double running = 0;
  for (index_t i = 0; i < ws.size(); ++i) {
    running += ws.weight(i);
    psw_[i] = running;
  }
  data_ = psw_.data();
  size_ = psw_.size();
}

void UtilityAccumulator::Add(double local, GlobalUtilityKind kind) {
  switch (kind) {
    case GlobalUtilityKind::kSum:
    case GlobalUtilityKind::kAvg:
      value += local;
      break;
    case GlobalUtilityKind::kMin:
      value = (count == 0) ? local : std::min(value, local);
      break;
    case GlobalUtilityKind::kMax:
      value = (count == 0) ? local : std::max(value, local);
      break;
  }
  ++count;
}

double UtilityAccumulator::Finalize(GlobalUtilityKind kind) const {
  if (count == 0) return 0;
  if (kind == GlobalUtilityKind::kAvg) {
    return value / static_cast<double>(count);
  }
  return value;
}

QueryResult ExhaustiveQueryEngine::Compute(
    std::span<const Symbol> pattern) const {
  // A default-constructed engine has nothing to answer from; computing
  // through it is a wiring bug, not bad input — abort before the null
  // borrows are dereferenced.
  USI_CHECK(wired());
  QueryResult result;
  if (pattern.empty()) return result;
  const SaInterval interval = FindSaInterval(*text_, sa_, pattern);
  if (interval.IsEmpty()) return result;
  UtilityAccumulator acc;
  const index_t m = static_cast<index_t>(pattern.size());
  for (index_t k = interval.lb; k <= interval.rb; ++k) {
    acc.Add(psw_->LocalUtility(sa_[k], m), kind_);
  }
  result.utility = acc.Finalize(kind_);
  result.occurrences = interval.Count();
  return result;
}

std::size_t ExhaustiveQueryEngine::SizeInBytes() const {
  if (!wired()) return 0;
  return sa_.size() * sizeof(index_t) + psw_->SizeInBytes();
}

}  // namespace usi
