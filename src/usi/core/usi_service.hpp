#ifndef USI_CORE_USI_SERVICE_HPP_
#define USI_CORE_USI_SERVICE_HPP_

/// \file usi_service.hpp
/// Batched, sharded query serving over any QueryEngine.
///
/// UsiService is the throughput layer the ROADMAP's serving story builds on:
/// a batch of patterns is split into contiguous shards and fanned out across
/// a thread pool, with each shard answered independently through the
/// engine's QueryBatch. Before the fan-out, PrepareBatch runs exactly once
/// (UsiIndex pre-grows the shared Karp-Rabin power table to the batch's max
/// pattern length), and every shard gets the reusable QueryScratch of the
/// worker it runs on — after warm-up, a steady-state batch allocates
/// nothing beyond what the caller hands in. Results land in per-pattern
/// slots, so the output is byte-for-byte the sequential answer in the
/// original order, at any thread count.
///
/// Engines that mutate per-query state (the caching baselines BSL2-4 —
/// SupportsConcurrentQuery() == false) are served sequentially and in batch
/// order, preserving their cache semantics exactly.

#include <memory>
#include <span>
#include <vector>

#include "usi/core/query_engine.hpp"
#include "usi/text/alphabet.hpp"

namespace usi {

class ThreadPool;

/// Tuning for UsiService.
struct UsiServiceOptions {
  /// Pool width when the service owns its pool: 0 = hardware concurrency,
  /// 1 = serve in-thread (no pool). Ignored when a pool is injected.
  unsigned threads = 0;
  /// Floor on patterns per shard; small batches stay on one thread rather
  /// than paying fan-out overhead.
  std::size_t min_shard_size = 16;
};

/// Telemetry of the most recent QueryBatch.
struct UsiBatchStats {
  std::size_t patterns = 0;
  std::size_t hash_hits = 0;  ///< Answers served from a precomputed table.
  std::size_t shards = 1;
  unsigned threads_used = 1;
  double seconds = 0;
};

/// Serves batches of utility queries through one QueryEngine.
class UsiService {
 public:
  /// \p engine is borrowed and must outlive the service. The service owns
  /// its pool, sized per \p options.
  explicit UsiService(QueryEngine& engine,
                      const UsiServiceOptions& options = {});

  /// As above but sharing \p pool (borrowed; null = serve in-thread).
  UsiService(QueryEngine& engine, ThreadPool* pool,
             const UsiServiceOptions& options = {});

  ~UsiService();

  UsiService(const UsiService&) = delete;
  UsiService& operator=(const UsiService&) = delete;

  /// Answers every pattern; results[i] corresponds to patterns[i]. Sharded
  /// across the pool when the engine supports concurrent queries, served
  /// sequentially in order otherwise — the results are identical either way.
  std::vector<QueryResult> QueryBatch(std::span<const Text> patterns);

  /// As QueryBatch, into caller-owned storage (results.size() must be >=
  /// patterns.size()). This is the steady-state serving entry point: the
  /// service reuses its per-worker scratch, so after warm-up a repeated
  /// batch shape performs zero heap allocations on the sequential path.
  void QueryBatchInto(std::span<const Text> patterns,
                      std::span<QueryResult> results);

  /// Single-query passthrough.
  QueryResult Query(std::span<const Symbol> pattern) {
    return engine_->Query(pattern);
  }

  /// The engine being served.
  QueryEngine& engine() { return *engine_; }

  /// Worker threads available for fan-out (1 = sequential serving).
  unsigned threads() const;

  /// Telemetry of the most recent QueryBatch.
  const UsiBatchStats& last_batch() const { return last_batch_; }

 private:
  /// Lazily sizes scratch_ to the worker count (idempotent).
  void EnsureScratch();

  QueryEngine* engine_;
  ThreadPool* pool_ = nullptr;            ///< Borrowed, may be null.
  std::unique_ptr<ThreadPool> owned_pool_;
  UsiServiceOptions options_;
  std::vector<QueryScratch> scratch_;     ///< One per pool worker.
  UsiBatchStats last_batch_;
};

}  // namespace usi

#endif  // USI_CORE_USI_SERVICE_HPP_
