#ifndef USI_CORE_USI_SERVICE_HPP_
#define USI_CORE_USI_SERVICE_HPP_

/// \file usi_service.hpp
/// Batched, sharded query serving over any QueryEngine.
///
/// UsiService is the throughput layer the ROADMAP's serving story builds on:
/// a batch of patterns is split into contiguous shards and fanned out across
/// a thread pool, with each shard answered independently through the
/// engine's QueryBatch. Before the fan-out, PrepareBatch runs exactly once
/// (UsiIndex pre-grows the shared Karp-Rabin power table to the batch's max
/// pattern length), and every shard gets a reusable QueryScratch owned by
/// the service — after warm-up, a steady-state batch allocates nothing
/// beyond what the caller hands in. Results land in per-pattern slots, so
/// the output is byte-for-byte the sequential answer in the original order,
/// at any thread count.
///
/// Engines that mutate per-query state (the caching baselines BSL2-4 —
/// SupportsConcurrentQuery() == false) are served sequentially and in batch
/// order, preserving their cache semantics exactly.
///
/// \par Thread safety
/// QueryBatch / QueryBatchInto may be called concurrently from multiple
/// client threads when the engine's SupportsConcurrentQuery() is true: each
/// in-flight batch leases its own block of per-worker QueryScratch from an
/// internal free list, so concurrent batches never share scratch, and the
/// cumulative counters behind totals() are updated under a lock. With C
/// concurrent callers the free list converges on C blocks and stops
/// allocating. PrepareBatch — the one engine call allowed to mutate shared
/// state — runs under a reader/writer protocol: serving holds the shared
/// side, preparation takes the exclusive side, and a batch the engine
/// reports BatchPrepared() for skips the exclusive section, so the warm
/// steady state is contention-free. The engine must not be driven through
/// two different UsiService instances concurrently (each instance owns its
/// own prepare lock). For engines without concurrent-query support the
/// caller must serialize batches externally (the engine itself is the
/// shared mutable state). last_batch() reports the most recently
/// *completed* batch and is only meaningful when batches are not
/// concurrent; concurrent callers should read per-batch telemetry via the
/// UsiBatchStats out-parameter of QueryBatchInto instead.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "usi/core/query_engine.hpp"
#include "usi/text/alphabet.hpp"

namespace usi {

class ThreadPool;

/// Outcome of a serving-layer batch (UsiService and UsiMultiService share
/// the taxonomy). kOk / kBusy / kOverloaded / kUnknownText / kNotReady are
/// all-or-nothing: no query executed, results untouched. The partial
/// statuses — kDeadlineExceeded, kIndexUnavailable and kDegraded — return
/// with every result slot WRITTEN (answered queries carry real answers,
/// unreached ones are default QueryResult{} or, on the degraded paths,
/// tier answers tagged with their provenance), so callers can use what was
/// served.
enum class ServeStatus : u8 {
  kOk = 0,
  kBusy,          ///< Admission: over the in-flight batch cap.
  kUnknownText,   ///< A query named a text id that is not registered.
  kNotReady,      ///< A referenced text has no built generation yet.
  kOverloaded,    ///< Admission: estimated batch cost over the cost cap.
  kDeadlineExceeded,  ///< Deadline hit mid-batch; partial results.
  kIndexUnavailable,  ///< Index backing failed (mmap fault / exception).
  kDegraded,      ///< Batch answered, at least partly, by the degraded tier
                  ///< (hot-pattern cache / sketch estimates) instead of the
                  ///< exact index; per-result provenance says which rung.
};

/// Display name of a ServeStatus ("ok", "busy", ...).
const char* ServeStatusName(ServeStatus status);

/// Tuning for UsiService.
struct UsiServiceOptions {
  /// Pool width when the service owns its pool: 0 = hardware concurrency,
  /// 1 = serve in-thread (no pool). Ignored when a pool is injected.
  unsigned threads = 0;
  /// Floor on patterns per shard; small batches stay on one thread rather
  /// than paying fan-out overhead.
  std::size_t min_shard_size = 16;
  /// Backpressure: max concurrently executing QueryBatchInto calls; 0 =
  /// unbounded. A batch over the cap is rejected with kBusy before any
  /// query executes (and before scratch is touched).
  std::size_t max_inflight_batches = 0;
};

/// Per-batch serving knobs.
struct UsiBatchOptions {
  /// Cooperative deadline: serving checks it between shards (and the engine
  /// between batch stages) and stops early, returning kDeadlineExceeded
  /// with partial results. A batch never overshoots the deadline by more
  /// than one checkpoint interval of engine work. nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Telemetry of one QueryBatch.
struct UsiBatchStats {
  std::size_t patterns = 0;
  std::size_t answered = 0;   ///< Queries actually served (== patterns
                              ///< unless the batch expired or failed).
  std::size_t hash_hits = 0;  ///< Answers served from a precomputed table.
  std::size_t shards = 1;
  unsigned threads_used = 1;
  double seconds = 0;
  bool deadline_expired = false;  ///< The batch hit its deadline.
};

/// Cumulative serving telemetry, accumulated across every batch since the
/// service was constructed. Unlike last_batch(), these survive batch
/// boundaries, so a supervising layer (UsiMultiService) can report per-text
/// lifetime totals; reading them is safe concurrently with serving.
/// `queries` counts ANSWERED queries; rejected batches touch only
/// `rejected` (a shed batch must not corrupt the served totals).
struct UsiServiceTotals {
  u64 batches = 0;
  u64 queries = 0;
  u64 hash_hits = 0;
  u64 rejected = 0;           ///< Batches shed by the in-flight cap.
  u64 deadline_expired = 0;   ///< Batches that returned kDeadlineExceeded.
  u64 serve_failures = 0;     ///< Batches that returned kIndexUnavailable.
};

/// Serves batches of utility queries through one QueryEngine.
class UsiService {
 public:
  /// \p engine is borrowed and must outlive the service. The service owns
  /// its pool, sized per \p options.
  explicit UsiService(QueryEngine& engine,
                      const UsiServiceOptions& options = {});

  /// As above but sharing \p pool (borrowed; null = serve in-thread).
  UsiService(QueryEngine& engine, ThreadPool* pool,
             const UsiServiceOptions& options = {});

  ~UsiService();

  UsiService(const UsiService&) = delete;
  UsiService& operator=(const UsiService&) = delete;

  /// Answers every pattern; results[i] corresponds to patterns[i]. Sharded
  /// across the pool when the engine supports concurrent queries, served
  /// sequentially in order otherwise — the results are identical either way.
  std::vector<QueryResult> QueryBatch(std::span<const Text> patterns);

  /// As QueryBatch, into caller-owned storage (results.size() must be >=
  /// patterns.size()). This is the steady-state serving entry point: the
  /// service reuses leased per-worker scratch, so after warm-up a repeated
  /// batch shape performs zero heap allocations on the sequential path.
  /// When \p stats is non-null it receives this batch's telemetry — the
  /// race-free way to observe per-batch stats from concurrent callers.
  ///
  /// Returns kOk when every query was answered; kBusy when the in-flight
  /// cap rejected the batch (results untouched); kDeadlineExceeded when
  /// \p batch_options.deadline expired mid-batch (partial results, see
  /// ServeStatus); kIndexUnavailable when the engine faulted (a truncated
  /// mapped index, or an exception out of the fallback path) — the process
  /// survives and the batch reports the failure instead.
  ServeStatus QueryBatchInto(std::span<const Text> patterns,
                             std::span<QueryResult> results,
                             UsiBatchStats* stats = nullptr,
                             const UsiBatchOptions& batch_options = {});

  /// Span-of-spans QueryBatchInto: patterns are borrowed from caller
  /// storage (bytes must stay alive and unchanged for the call), so gather
  /// stages scatter pointers instead of copying pattern bytes. Identical
  /// serving behavior and telemetry.
  ServeStatus QueryBatchInto(std::span<const PatternSpan> patterns,
                             std::span<QueryResult> results,
                             UsiBatchStats* stats = nullptr,
                             const UsiBatchOptions& batch_options = {});

  /// Single-query passthrough.
  QueryResult Query(std::span<const Symbol> pattern) {
    return engine_->Query(pattern);
  }

  /// The engine being served.
  QueryEngine& engine() { return *engine_; }

  /// Worker threads available for fan-out (1 = sequential serving).
  unsigned threads() const;

  /// Telemetry of the most recent completed QueryBatch. Only meaningful when
  /// batches are not issued concurrently; see the thread-safety note above.
  const UsiBatchStats& last_batch() const { return last_batch_; }

  /// Cumulative totals since construction; safe to call while serving.
  UsiServiceTotals totals() const;

 private:
  /// One leased block: a QueryScratch per pool worker, handed to exactly one
  /// in-flight batch at a time.
  using ScratchBlock = std::vector<QueryScratch>;

  /// Pops a scratch block off the free list (or makes one), sized to the
  /// current worker count.
  std::unique_ptr<ScratchBlock> AcquireScratch();

  /// Returns a block to the free list.
  void ReleaseScratch(std::unique_ptr<ScratchBlock> block);

  /// Shared body of both QueryBatchInto overloads; P is Text or
  /// PatternSpan.
  template <typename P>
  ServeStatus QueryBatchIntoImpl(std::span<const P> patterns,
                                 std::span<QueryResult> results,
                                 UsiBatchStats* stats,
                                 const UsiBatchOptions& batch_options);

  QueryEngine* engine_;
  ThreadPool* pool_ = nullptr;            ///< Borrowed, may be null.
  std::unique_ptr<ThreadPool> owned_pool_;
  UsiServiceOptions options_;

  /// Serving holds this shared; PrepareBatch (which may mutate the engine)
  /// runs exclusive, so no batch ever reads state mid-growth.
  std::shared_mutex prepare_rw_;

  std::mutex scratch_mu_;  ///< Guards scratch_free_.
  std::vector<std::unique_ptr<ScratchBlock>> scratch_free_;

  std::atomic<u64> inflight_batches_{0};  ///< For max_inflight_batches.

  mutable std::mutex stats_mu_;  ///< Guards last_batch_ and totals_.
  UsiBatchStats last_batch_;
  UsiServiceTotals totals_;
};

}  // namespace usi

#endif  // USI_CORE_USI_SERVICE_HPP_
