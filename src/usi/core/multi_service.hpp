#ifndef USI_CORE_MULTI_SERVICE_HPP_
#define USI_CORE_MULTI_SERVICE_HPP_

/// \file multi_service.hpp
/// Multi-text serving tier: one service fronting many indexes, with async
/// generational rebuilds.
///
/// UsiMultiService owns a registry of named weighted strings. Each text is
/// served through its own UsiIndex + UsiService pair, wrapped in an
/// immutable *generation*; a QueryBatch of mixed-text queries is routed by
/// text id, grouped per text, and each group is sharded across the shared
/// ThreadPool by that text's UsiService. Construction is asynchronous:
/// SubmitText / UpdateText enqueue a staged UsiBuilder run that executes on
/// the pool while queries keep draining against the previous generation.
///
/// \par Generation lifecycle (RCU-style swap)
/// Every text holds its current generation as a shared_ptr swapped under a
/// pointer-copy-scale lock (a mutex held only for the refcount increment —
/// chosen over std::atomic<std::shared_ptr> because libstdc++ implements
/// that with a lock bit ThreadSanitizer cannot model, and the TSan CI job
/// is part of this tier's contract):
///
///     SubmitText/UpdateText ──► build queue ──► build lane (one pool task)
///                                                 │ staged UsiBuilder
///                                                 ▼
///     readers: pin = copy of current     publish: current = new generation
///              │  (shared_ptr copy,               (monotonic by generation
///              ▼   never waits on a build)         number, under entry lock)
///     serve whole batch from the pinned generation
///              │
///              ▼
///     unpin (shared_ptr drops) — the last reader to release an old
///     generation reclaims it; writers never wait for readers.
///
/// A batch pins one generation per referenced text *once*, up front, and
/// serves every query of the batch from the pinned snapshot — so a batch
/// never observes a half-applied rebuild (answers are entirely old-text or
/// entirely new-text, pinned by the generation-swap concurrency test).
///
/// \par Build lane
/// Rebuild jobs run FIFO through a single *build lane*: at most one pool
/// worker executes builds at any moment, so on a pool of W >= 2 threads
/// query fan-out always has W-1 workers available, and on W == 1 queries
/// are served inline on the caller's thread while the lone worker builds.
/// Each job runs the staged UsiBuilder sequentially (a build inside a pool
/// task must not ParallelFor on the same pool); the trade — per-build
/// parallelism for serving isolation — is the "async construction" item of
/// the ROADMAP. Without a pool (injected null), builds run synchronously
/// inside SubmitText/UpdateText.
///
/// \par Admission control
/// max_inflight_batches bounds the number of concurrently executing
/// QueryBatch calls. The cap is enforced with a counter, not a queue: a
/// batch over the cap is rejected immediately with ServeStatus::kBusy (and
/// counted in stats().busy_rejected), so overload sheds load instead of
/// growing an unbounded backlog — the first cut of the ROADMAP's
/// backpressure item.
///
/// \par Thread safety
/// All public members are safe to call concurrently. QueryBatch never
/// blocks on builds (it reads the pinned generation); registry mutations
/// (SubmitText/UpdateText/RemoveText) take the registry lock briefly and
/// never wait for in-flight batches. The destructor waits for pending
/// builds to finish draining.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {

class ThreadPool;

/// Outcome of a UsiMultiService batch. Statuses other than kOk reject the
/// whole batch before any query executes, so results are all-or-nothing.
enum class ServeStatus : u8 {
  kOk = 0,
  kBusy,         ///< Admission control: over max_inflight_batches.
  kUnknownText,  ///< A query named a text id that is not registered.
  kNotReady,     ///< A referenced text has no built generation yet.
};

/// Display name of a ServeStatus ("ok", "busy", ...).
const char* ServeStatusName(ServeStatus status);

/// One routed query: which text to ask, and the pattern. The referenced
/// storage is borrowed for the duration of the QueryBatch call.
struct MultiQuery {
  std::string_view text_id;
  std::span<const Symbol> pattern;
};

/// Tuning for UsiMultiService.
struct UsiMultiServiceOptions {
  /// Shared pool width: 0 = hardware concurrency. The pool serves query
  /// fan-out and the build lane; width 1 still gives async builds (queries
  /// are then served inline on caller threads).
  unsigned threads = 0;
  /// Per-text shard-size floor, forwarded to each generation's UsiService.
  std::size_t min_shard_size = 16;
  /// Admission control: max concurrently executing QueryBatch calls.
  /// 0 = unbounded. Batches over the cap return ServeStatus::kBusy.
  std::size_t max_inflight_batches = 0;
  /// Build options applied when SubmitText is called without explicit
  /// options. threads is overridden to 1 inside the build lane.
  UsiOptions default_build = {};
};

/// Per-text lifetime telemetry, aggregated across generations.
struct UsiTextStats {
  u64 generation = 0;        ///< Generation currently served (0 = none yet).
  u64 builds_scheduled = 0;  ///< SubmitText/UpdateText calls for this text.
  u64 builds_completed = 0;
  u64 batches = 0;    ///< Batches that touched this text.
  u64 queries = 0;    ///< Queries routed to this text.
  u64 hash_hits = 0;  ///< Of those, answered from the precomputed table.
  UsiBuildInfo last_build;  ///< build_info() of the served generation.
};

/// Service-wide telemetry.
struct UsiMultiStats {
  u64 batches = 0;         ///< Batches admitted (status kOk).
  u64 queries = 0;
  u64 busy_rejected = 0;   ///< Batches shed by admission control.
  u64 builds_scheduled = 0;
  u64 builds_completed = 0;
  std::size_t texts = 0;   ///< Registered texts right now.
};

/// Convenience return form of QueryBatch.
struct MultiBatchResult {
  ServeStatus status = ServeStatus::kOk;
  std::vector<QueryResult> results;  ///< Valid only when status == kOk.
};

/// One service fronting many named texts, each with asynchronously rebuilt
/// index generations.
class UsiMultiService {
 public:
  /// The service owns its pool, sized per \p options.
  explicit UsiMultiService(const UsiMultiServiceOptions& options = {});

  /// As above but sharing \p pool (borrowed, must outlive the service;
  /// null = no pool: queries serve inline, builds run synchronously).
  UsiMultiService(ThreadPool* pool, const UsiMultiServiceOptions& options = {});

  /// Waits for pending builds, then tears down.
  ~UsiMultiService();

  UsiMultiService(const UsiMultiService&) = delete;
  UsiMultiService& operator=(const UsiMultiService&) = delete;

  /// Registers (or, if \p id exists, replaces — upsert) a text and schedules
  /// an asynchronous index build with \p build_options. Queries against \p id
  /// keep draining from the previous generation until the new one is
  /// published; a brand-new text serves kNotReady until its first build
  /// lands. Returns the scheduled generation number (monotonic per text,
  /// starting at 1).
  u64 SubmitText(std::string_view id, WeightedString ws,
                 const UsiOptions& build_options);

  /// As above with options_.default_build.
  u64 SubmitText(std::string_view id, WeightedString ws);

  /// Instant-start registration: opens a kV3Mapped index file for \p ws by
  /// mmap (UsiIndex::OpenMapped — header validation + pointer fixup, no
  /// build, no O(n) deserialization) and publishes it as \p id's next
  /// generation immediately. The registered text serves queries as soon as
  /// this returns; the kernel demand-pages the index as queries touch it.
  /// Upserts like SubmitText, so it also swaps a mapped generation under an
  /// id that is currently serving built ones (and vice versa — a later
  /// UpdateText rebuild supersedes the mapped generation normally).
  /// Returns the published generation number, or 0 if the file cannot be
  /// opened (missing, corrupt, or built over a different text) — in which
  /// case the registry is left untouched.
  u64 RegisterTextFromFile(std::string_view id, WeightedString ws,
                           const std::string& path);

  /// Schedules a rebuild of an existing text with new content, reusing the
  /// build options it was submitted with. Returns the scheduled generation
  /// number, or 0 if \p id is not registered.
  u64 UpdateText(std::string_view id, WeightedString ws);

  /// Unregisters \p id; in-flight batches that already pinned a generation
  /// finish against it (the shared_ptr keeps it alive). Returns false if
  /// \p id is not registered.
  bool RemoveText(std::string_view id);

  /// Whether \p id is registered (its first build may still be pending).
  bool HasText(std::string_view id) const;

  /// Registered ids, sorted.
  std::vector<std::string> TextIds() const;

  /// Blocks until every build scheduled for \p id so far has completed.
  /// Returns false if \p id is not registered.
  bool WaitForText(std::string_view id);

  /// Blocks until every build scheduled so far (all texts) has completed.
  void WaitForBuilds();

  /// Answers queries[i] into results[i] (results.size() must be >=
  /// queries.size()). Routes by text id, pins one generation per referenced
  /// text for the whole batch, then serves each per-text group through that
  /// generation's UsiService (sharded across the shared pool). On any
  /// status other than kOk no query executes and results are untouched.
  ServeStatus QueryBatchInto(std::span<const MultiQuery> queries,
                             std::span<QueryResult> results);

  /// As QueryBatchInto, returning owned results.
  MultiBatchResult QueryBatch(std::span<const MultiQuery> queries);

  /// Single-query convenience (a batch of one).
  ServeStatus Query(std::string_view text_id, std::span<const Symbol> pattern,
                    QueryResult& result);

  /// Lifetime telemetry for one text; nullopt if \p id is not registered.
  std::optional<UsiTextStats> StatsFor(std::string_view id) const;

  /// Service-wide telemetry.
  UsiMultiStats stats() const;

  /// Worker threads of the shared pool (1 = no pool / inline serving).
  unsigned threads() const;

 private:
  struct Generation;
  struct TextEntry;
  struct BuildJob;
  struct BatchScratch;

  using EntryPtr = std::shared_ptr<TextEntry>;

  /// Registry lookup (registry lock taken inside).
  EntryPtr FindEntry(std::string_view id) const;

  /// Registry upsert: returns the entry for \p id, creating it if absent
  /// (registry lock taken inside).
  EntryPtr EnsureEntry(std::string_view id);

  /// Registers the job in the build queue and wakes the build lane (or, with
  /// no pool, builds synchronously).
  void ScheduleBuild(EntryPtr entry, WeightedString ws, u64 generation);

  /// Body of the build-lane pool task: drains the queue FIFO, one job at a
  /// time, then retires.
  void BuildLane();

  /// Builds one generation and publishes it (monotonic swap).
  void BuildOne(BuildJob& job);

  std::unique_ptr<BatchScratch> AcquireBatchScratch();
  void ReleaseBatchScratch(std::unique_ptr<BatchScratch> scratch);

  ThreadPool* pool_ = nullptr;  ///< Borrowed, may be null.
  std::unique_ptr<ThreadPool> owned_pool_;
  UsiMultiServiceOptions options_;

  mutable std::mutex registry_mu_;  ///< Guards registry_.
  std::map<std::string, EntryPtr, std::less<>> registry_;

  mutable std::mutex build_mu_;  ///< Guards the four members below.
  std::deque<BuildJob> build_queue_;
  bool build_lane_active_ = false;
  u64 builds_scheduled_ = 0;
  u64 builds_completed_ = 0;
  std::condition_variable build_cv_;  ///< Signals build completions.

  std::mutex batch_scratch_mu_;
  std::vector<std::unique_ptr<BatchScratch>> batch_scratch_free_;

  std::atomic<u64> inflight_batches_{0};
  std::atomic<u64> batches_{0};
  std::atomic<u64> queries_{0};
  std::atomic<u64> busy_rejected_{0};
};

}  // namespace usi

#endif  // USI_CORE_MULTI_SERVICE_HPP_
