#ifndef USI_CORE_MULTI_SERVICE_HPP_
#define USI_CORE_MULTI_SERVICE_HPP_

/// \file multi_service.hpp
/// Multi-text serving tier: one service fronting many indexes, with async
/// generational rebuilds.
///
/// UsiMultiService owns a registry of named weighted strings. Each text is
/// served through its own UsiIndex + UsiService pair, wrapped in an
/// immutable *generation*; a QueryBatch of mixed-text queries is routed by
/// text id, grouped per text, and each group is sharded across the shared
/// ThreadPool by that text's UsiService. Construction is asynchronous:
/// SubmitText / UpdateText enqueue a staged UsiBuilder run that executes on
/// the pool while queries keep draining against the previous generation.
///
/// \par Generation lifecycle (RCU-style swap)
/// Every text holds its current generation as a shared_ptr swapped under a
/// pointer-copy-scale lock (a mutex held only for the refcount increment —
/// chosen over std::atomic<std::shared_ptr> because libstdc++ implements
/// that with a lock bit ThreadSanitizer cannot model, and the TSan CI job
/// is part of this tier's contract):
///
///     SubmitText/UpdateText ──► build queue ──► build lane (one pool task)
///                                                 │ staged UsiBuilder
///                                                 ▼
///     readers: pin = copy of current     publish: current = new generation
///              │  (shared_ptr copy,               (monotonic by generation
///              ▼   never waits on a build)         number, under entry lock)
///     serve whole batch from the pinned generation
///              │
///              ▼
///     unpin (shared_ptr drops) — the last reader to release an old
///     generation reclaims it; writers never wait for readers.
///
/// A batch pins one generation per referenced text *once*, up front, and
/// serves every query of the batch from the pinned snapshot — so a batch
/// never observes a half-applied rebuild (answers are entirely old-text or
/// entirely new-text, pinned by the generation-swap concurrency test).
///
/// \par Build lanes
/// Rebuild jobs run FIFO through a width-configurable *build-lane
/// executor*: up to UsiMultiServiceOptions::build_lanes pool workers
/// (default 1) drain the queue concurrently, with a per-text claim so two
/// lanes never build the same text at once — N texts build in parallel,
/// each text's generations stay strictly sequential. On a pool of W >
/// lanes threads query fan-out keeps W - lanes workers; on W == 1 queries
/// are served inline on the caller's thread while the lone worker builds.
/// Each job runs the staged UsiBuilder sequentially (a build inside a pool
/// task must not ParallelFor on the same pool); the trade — per-build
/// parallelism for serving isolation — is the "async construction" item of
/// the ROADMAP. Without a pool (injected null), builds run synchronously
/// inside SubmitText/UpdateText.
///
/// \par Update tier (appends without rebuilds)
/// AppendText extends a text past its published generation without paying
/// a rebuild: appends land in a per-text DeltaOverlay (update_tier.hpp), a
/// DynamicUsi over a bounded tail window of the base, and batches pin the
/// (generation, overlay) pair together — the base answers occurrences
/// ending inside [0, n0), the overlay answers those ending past n0, and
/// the two halves merge exactly (MergeQueryResults). Once the overlay
/// crosses delta_compact_threshold appended symbols, a *compaction* build
/// is scheduled through the build lanes: the merged content is indexed as
/// a normal generation, and at publish the successor overlay is
/// warm-started from the old one (only appends that landed during the
/// build replay; the window reseeds from the new base). A compaction whose
/// build fails quarantines per the PR 8 semantics — the old base keeps
/// serving and the overlay keeps absorbing appends. SubmitText/UpdateText
/// replace content wholesale and therefore drop the overlay.
///
/// \par Admission control
/// max_inflight_batches bounds the number of concurrently executing
/// QueryBatch calls. The cap is enforced with a counter, not a queue: a
/// batch over the cap is rejected immediately with ServeStatus::kBusy (and
/// counted in stats().busy_rejected), so overload sheds load instead of
/// growing an unbounded backlog — the first cut of the ROADMAP's
/// backpressure item.
///
/// \par Graceful degradation
/// Every registered text carries a DegradedTier (core/degraded_tier.hpp)
/// that records exact answers as they are served. A batch that opts in
/// (MultiBatchOptions::allow_degraded) falls through the degradation ladder
/// instead of being rejected: overload/busy sheds serve the whole batch
/// from the tiers, a quarantined or faulted text answers from its tier
/// while the build lane retries, and deadline expiry fills unreached slots
/// from the tier. Such batches return ServeStatus::kDegraded (or keep
/// kDeadlineExceeded) with per-result provenance and error bounds.
///
/// \par Thread safety
/// All public members are safe to call concurrently. QueryBatch never
/// blocks on builds (it reads the pinned generation); registry mutations
/// (SubmitText/UpdateText/UnregisterText) take the registry lock briefly
/// and never wait for in-flight batches. The destructor waits for pending
/// builds to finish draining.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "usi/core/degraded_tier.hpp"
#include "usi/core/update_tier.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/core/usi_service.hpp"
#include "usi/text/weighted_string.hpp"

namespace usi {

class ThreadPool;

/// One routed query: which text to ask, and the pattern. The referenced
/// storage is borrowed for the duration of the QueryBatch call.
/// (ServeStatus — the shared status taxonomy — lives in usi_service.hpp.)
struct MultiQuery {
  std::string_view text_id;
  std::span<const Symbol> pattern;
};

/// Lifecycle of a text's index builds. Terminal states are kReady and
/// kFailed; WaitForText returns one of them (or kUnknown) instead of
/// hanging on a quarantined text.
enum class BuildState : u8 {
  kUnknown = 0,  ///< No such text registered.
  kPending,      ///< A build is queued but has not started.
  kBuilding,     ///< The build lane is running (or retrying) a build.
  kReady,        ///< The latest scheduled build published its generation.
  kFailed,       ///< The latest build failed terminally (retries exhausted);
                 ///< the previous generation, if any, keeps serving.
};

/// Display name of a BuildState ("unknown", "pending", ...).
const char* BuildStateName(BuildState state);

/// Tuning for UsiMultiService.
struct UsiMultiServiceOptions {
  /// Shared pool width: 0 = hardware concurrency. The pool serves query
  /// fan-out and the build lane; width 1 still gives async builds (queries
  /// are then served inline on caller threads).
  unsigned threads = 0;
  /// Per-text shard-size floor, forwarded to each generation's UsiService.
  std::size_t min_shard_size = 16;
  /// Admission control: max concurrently executing QueryBatch calls.
  /// 0 = unbounded. Batches over the cap return ServeStatus::kBusy.
  std::size_t max_inflight_batches = 0;
  /// Cost-aware admission: cap on the estimated cost (in milliseconds of
  /// serving work) of all in-flight batches. 0 = off. A batch whose
  /// estimated cost would push the in-flight total over the cap is rejected
  /// with kOverloaded — unless nothing is in flight, so a lone expensive
  /// batch always serves. Cost is estimated from per-text ns-per-pattern-byte
  /// telemetry calibrated by served batches (default_cost_ns_per_byte until
  /// a text has served enough bytes).
  double max_inflight_cost_ms = 0;
  /// Cost-model prior: assumed serving cost per pattern byte before a
  /// text's own telemetry has calibrated it.
  double default_cost_ns_per_byte = 50.0;
  /// Build-lane failure containment: how many times a failed build is
  /// retried (with capped exponential backoff) before the text is
  /// quarantined as BuildState::kFailed.
  unsigned max_build_retries = 2;
  /// Base backoff before the first retry; doubles per attempt, capped at
  /// 16x. Kept small by default so test suites and shutdown stay fast.
  unsigned build_retry_backoff_ms = 10;
  /// Build options applied when SubmitText is called without explicit
  /// options. threads is overridden to 1 inside the build lane.
  UsiOptions default_build = {};
  /// Width of the build-lane executor: how many texts may build
  /// concurrently (each text's generations stay sequential via a per-text
  /// claim). Clamped to >= 1. Lanes occupy pool workers while building, so
  /// keep lanes < pool width when serving latency matters.
  unsigned build_lanes = 1;
  /// Update tier: appended symbols a text's delta overlay may hold before a
  /// background compaction folds it into a new base generation. 0 disables
  /// automatic compaction (the overlay grows until the next full rebuild).
  index_t delta_compact_threshold = 4096;
  /// Update tier: tail-window length each overlay seeds from its base. Any
  /// pattern with m - 1 <= delta_context takes the indexed window path; a
  /// longer pattern falls back to a verify-and-sum scan of its O(m +
  /// appended) crossing candidates.
  index_t delta_context = 512;
  /// Graceful degradation: every registered text carries a DegradedTier
  /// that observes exact answers and serves bounded-error ones on the
  /// degraded paths (see MultiBatchOptions::allow_degraded). Disabling
  /// removes the per-text memory cost and makes allow_degraded a no-op
  /// (batches fail with the PR 8 statuses instead).
  bool enable_degraded_tier = true;
  /// Per-text tier geometry (cache capacity, sketch width/depth, ...).
  DegradedTierOptions degraded = {};
};

/// Per-batch knobs for UsiMultiService::QueryBatchInto.
struct MultiBatchOptions {
  /// Cooperative deadline, checked between per-text groups and threaded
  /// into each group's UsiService (between shards) and engine (between
  /// batch stages). Expired batches return kDeadlineExceeded with partial
  /// results. nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Opt-in to the degradation ladder (exact -> hot-pattern cache -> sketch
  /// estimate -> none): instead of rejecting, an overloaded/busy batch, a
  /// text with no servable generation (quarantined build lane) or a group
  /// that lost its index mid-serve is answered from the text's DegradedTier
  /// and the batch returns kDegraded with every slot written — each answer
  /// tagged with its provenance and error bound (QueryResult::provenance /
  /// error_bound). A deadline-expired batch additionally fills *unreached*
  /// slots from the tier (status stays kDeadlineExceeded; provenance says
  /// which slots are tier answers). Off by default: callers that cannot
  /// consume approximate answers keep the PR 8 fail-clean behavior.
  bool allow_degraded = false;
};

/// Per-text lifetime telemetry, aggregated across generations.
struct UsiTextStats {
  u64 generation = 0;        ///< Generation currently served (0 = none yet).
  u64 builds_scheduled = 0;  ///< SubmitText/UpdateText calls for this text.
  u64 builds_completed = 0;
  u64 builds_failed = 0;     ///< Terminal build failures (quarantines).
  u64 build_retries = 0;     ///< Failed attempts that were retried.
  u64 batches = 0;    ///< Batches that touched this text.
  u64 queries = 0;    ///< Queries routed to this text.
  u64 hash_hits = 0;  ///< Of those, answered from the precomputed table.
  u64 appends = 0;       ///< AppendText calls absorbed by the update tier.
  u64 compactions = 0;   ///< Delta-folding generation publishes.
  /// Wall time the most recent compaction publish held the entry lock (the
  /// pause appenders/pinners can observe); 0 before the first compaction.
  u64 compact_publish_ns = 0;
  /// Update-tier overlay telemetry; nullopt when the text has no live
  /// overlay (never appended, or compacted away with nothing pending).
  std::optional<DeltaOverlayStats> delta;
  BuildState build_state = BuildState::kUnknown;
  std::string last_build_error;  ///< Cause of the last build failure.
  /// Calibrated serving cost (ns per pattern byte); 0 until this text has
  /// served enough bytes to calibrate. Feeds cost-aware admission.
  double cost_ns_per_byte = 0;
  UsiBuildInfo last_build;  ///< build_info() of the served generation.
  /// Degraded-tier telemetry (cache occupancy/hit rate, sketch geometry and
  /// mass); nullopt when the tier is disabled service-wide.
  std::optional<DegradedTierStats> degraded;
};

/// Service-wide telemetry.
struct UsiMultiStats {
  u64 batches = 0;         ///< Batches admitted (served to completion or
                           ///< partially — kOk/kDeadlineExceeded/
                           ///< kIndexUnavailable).
  u64 queries = 0;
  u64 busy_rejected = 0;   ///< Batches shed by the in-flight count cap.
  u64 overload_rejected = 0;  ///< Batches shed by cost-aware admission.
  u64 deadline_expired = 0;   ///< Batches that hit their deadline.
  u64 index_unavailable = 0;  ///< Batches that lost an index mid-serve.
  u64 builds_scheduled = 0;
  u64 builds_completed = 0;
  u64 builds_failed = 0;      ///< Terminal build failures (quarantines).
  std::size_t texts = 0;   ///< Registered texts right now.
  u64 appends = 0;      ///< AppendText calls absorbed service-wide.
  u64 compactions = 0;  ///< Delta compactions published service-wide.
  u64 degraded_batches = 0;  ///< Batches that returned kDegraded.
  /// Individual queries answered by a tier rung (cache or sketch) instead
  /// of an exact index; kNone filler slots are not counted.
  u64 degraded_answers = 0;
};

/// Convenience return form of QueryBatch.
struct MultiBatchResult {
  ServeStatus status = ServeStatus::kOk;
  /// Populated on kOk and on the partial statuses (kDeadlineExceeded /
  /// kIndexUnavailable / kDegraded — unreached slots are default
  /// QueryResult{} or provenance-tagged tier answers); cleared on the
  /// all-or-nothing rejections.
  std::vector<QueryResult> results;
};

/// One service fronting many named texts, each with asynchronously rebuilt
/// index generations.
class UsiMultiService {
 public:
  /// The service owns its pool, sized per \p options.
  explicit UsiMultiService(const UsiMultiServiceOptions& options = {});

  /// As above but sharing \p pool (borrowed, must outlive the service;
  /// null = no pool: queries serve inline, builds run synchronously).
  UsiMultiService(ThreadPool* pool, const UsiMultiServiceOptions& options = {});

  /// Waits for pending builds, then tears down.
  ~UsiMultiService();

  UsiMultiService(const UsiMultiService&) = delete;
  UsiMultiService& operator=(const UsiMultiService&) = delete;

  /// Registers (or, if \p id exists, replaces — upsert) a text and schedules
  /// an asynchronous index build with \p build_options. Queries against \p id
  /// keep draining from the previous generation until the new one is
  /// published; a brand-new text serves kNotReady until its first build
  /// lands. Returns the scheduled generation number (monotonic per text,
  /// starting at 1).
  u64 SubmitText(std::string_view id, WeightedString ws,
                 const UsiOptions& build_options);

  /// As above with options_.default_build.
  u64 SubmitText(std::string_view id, WeightedString ws);

  /// Instant-start registration: opens a kV3Mapped index file for \p ws by
  /// mmap (UsiIndex::OpenMapped — header validation + pointer fixup, no
  /// build, no O(n) deserialization) and publishes it as \p id's next
  /// generation immediately. The registered text serves queries as soon as
  /// this returns; the kernel demand-pages the index as queries touch it.
  /// Upserts like SubmitText, so it also swaps a mapped generation under an
  /// id that is currently serving built ones (and vice versa — a later
  /// UpdateText rebuild supersedes the mapped generation normally).
  /// Returns the published generation number, or 0 if the file cannot be
  /// opened (missing, corrupt, or built over a different text) — in which
  /// case the registry is left untouched.
  u64 RegisterTextFromFile(std::string_view id, WeightedString ws,
                           const std::string& path);

  /// Schedules a rebuild of an existing text with new content, reusing the
  /// build options it was submitted with. Returns the scheduled generation
  /// number, or 0 if \p id is not registered. Replacing content supersedes
  /// the update tier: a live delta overlay is dropped with its appends.
  u64 UpdateText(std::string_view id, WeightedString ws);

  /// As above, additionally replacing the text's build options (applied to
  /// this rebuild and every later build, compactions included).
  u64 UpdateText(std::string_view id, WeightedString ws,
                 const UsiOptions& build_options);

  /// Replaces \p id's build options without scheduling anything: later
  /// rebuilds and compactions use them. Returns false when \p id is not
  /// registered.
  bool SetBuildOptions(std::string_view id, const UsiOptions& build_options);

  /// Appends \p text / \p weights (equal length) past \p id's published
  /// content — the update tier: the appended positions are visible to
  /// queries as soon as this returns (exact merged answers, no rebuild),
  /// and a background compaction folds them into a new base generation
  /// once the per-text overlay crosses delta_compact_threshold. The whole
  /// span lands atomically: a concurrent batch sees all of it or none.
  /// Returns kOk; kUnknownText when \p id is not registered; kNotReady
  /// before the first generation has published (appends extend a published
  /// base); kIndexUnavailable when the append was rejected (armed
  /// `delta.append` failpoint, or an allocation failure — in the latter
  /// case pending uncompacted appends are dropped with the overlay).
  ServeStatus AppendText(std::string_view id, std::span<const Symbol> text,
                         std::span<const double> weights);

  /// As above, first replacing the text's build options (the per-text
  /// build-option update surface of the update tier — the next compaction
  /// or rebuild uses them).
  ServeStatus AppendText(std::string_view id, std::span<const Symbol> text,
                         std::span<const double> weights,
                         const UsiOptions& build_options);

  /// Unregisters \p id, RCU-style: the registry entry is removed
  /// immediately (new batches answer kUnknownText), in-flight batches that
  /// already pinned a generation finish against it unharmed (their
  /// shared_ptrs keep entry and generation alive; the last reader
  /// reclaims), queued-but-not-started builds for the text are dropped from
  /// the build lane (their completion is accounted, so WaitForBuilds and a
  /// blocked WaitForText never hang), and a build currently running skips
  /// its publish. Returns false if \p id is not registered. A long-lived
  /// server that registers texts dynamically must unregister them too —
  /// before this existed the registry grew forever.
  bool UnregisterText(std::string_view id);

  /// Alias of UnregisterText (the original name of the operation).
  bool RemoveText(std::string_view id);

  /// Whether \p id is registered (its first build may still be pending).
  bool HasText(std::string_view id) const;

  /// Registered ids, sorted.
  std::vector<std::string> TextIds() const;

  /// Blocks until every build scheduled for \p id so far has reached a
  /// terminal state, then reports it: kReady when the latest build
  /// published, kFailed when it was quarantined (retries exhausted — the
  /// text keeps serving its previous generation, if any), kUnknown when
  /// \p id is not registered. Never hangs on a failed build.
  BuildState WaitForText(std::string_view id);

  /// Build-lane state of \p id right now, without waiting.
  BuildState TextState(std::string_view id) const;

  /// Blocks until every build scheduled so far (all texts) has completed.
  void WaitForBuilds();

  /// Answers queries[i] into results[i] (results.size() must be >=
  /// queries.size()). Routes by text id, pins one generation per referenced
  /// text for the whole batch, then serves each per-text group through that
  /// generation's UsiService (sharded across the shared pool). On the
  /// all-or-nothing statuses (kBusy / kOverloaded / kUnknownText /
  /// kNotReady) no query executes and results are untouched; the partial
  /// statuses (kDeadlineExceeded / kIndexUnavailable / kDegraded) return
  /// with every result slot written — unreached queries carry default
  /// QueryResult{}. With batch_options.allow_degraded, the rejecting
  /// statuses other than kUnknownText are replaced by degraded serving
  /// from the per-text tier (see MultiBatchOptions::allow_degraded).
  ServeStatus QueryBatchInto(std::span<const MultiQuery> queries,
                             std::span<QueryResult> results,
                             const MultiBatchOptions& batch_options = {});

  /// As QueryBatchInto, returning owned results.
  MultiBatchResult QueryBatch(std::span<const MultiQuery> queries);

  /// Single-query convenience (a batch of one).
  ServeStatus Query(std::string_view text_id, std::span<const Symbol> pattern,
                    QueryResult& result);

  /// Lifetime telemetry for one text; nullopt if \p id is not registered.
  std::optional<UsiTextStats> StatsFor(std::string_view id) const;

  /// Service-wide telemetry.
  UsiMultiStats stats() const;

  /// Worker threads of the shared pool (1 = no pool / inline serving).
  unsigned threads() const;

 private:
  struct Generation;
  struct TextEntry;
  struct BuildJob;
  struct BatchScratch;

  using EntryPtr = std::shared_ptr<TextEntry>;

  /// Registry lookup (registry lock taken inside).
  EntryPtr FindEntry(std::string_view id) const;

  /// Registry upsert: returns the entry for \p id, creating it if absent
  /// (registry lock taken inside).
  EntryPtr EnsureEntry(std::string_view id);

  /// Registers the job in the build queue and wakes the build lanes (or,
  /// with no pool, builds synchronously — including synchronous retries).
  /// \p recover_path non-empty marks a recovery job: BuildOne first tries a
  /// heap LoadFromFile of that path before falling back to a full rebuild.
  /// \p compaction jobs fold a delta overlay: \p compact_boundary is the
  /// snapshot length and \p compact_epoch the overlay lineage the publish
  /// must still observe.
  void ScheduleBuild(EntryPtr entry, WeightedString ws, u64 generation,
                     std::string recover_path = {}, bool compaction = false,
                     index_t compact_boundary = 0, u64 compact_epoch = 0);

  /// Body of one build-lane pool task: claims ready jobs whose text no
  /// other lane holds, runs them (delayed retry jobs wait out their
  /// backoff), and retires when the queue drains.
  void BuildLane();

  /// Runs one build attempt and publishes on success (monotonic swap).
  /// Returns true when the job reached a terminal state (published or
  /// quarantined); false when it failed and was re-armed for retry — the
  /// caller requeues it (build lane) or sleeps and retries (no-pool path).
  bool BuildOne(BuildJob& job);

  /// Failure bookkeeping for BuildOne: re-arms \p job with backoff and
  /// returns false while retries remain, else quarantines the text
  /// (BuildState::kFailed) and returns true.
  bool HandleBuildFailure(BuildJob& job, const std::string& what);

  /// Shared body of the AppendText overloads; \p build_options may be null
  /// (keep the text's current options).
  ServeStatus AppendTextImpl(std::string_view id, std::span<const Symbol> text,
                             std::span<const double> weights,
                             const UsiOptions* build_options);

  /// Shared body of the UpdateText overloads; \p build_options may be null.
  u64 UpdateText(std::string_view id, WeightedString ws,
                 const UsiOptions* build_options);

  std::unique_ptr<BatchScratch> AcquireBatchScratch();
  void ReleaseBatchScratch(std::unique_ptr<BatchScratch> scratch);

  /// Degraded whole-batch serve (the overload/busy shed path): every slot
  /// answered from its text's tier (kNone filler where no rung answers).
  /// Returns kDegraded, or kUnknownText when a query names an unregistered
  /// id (results untouched in that case).
  ServeStatus ServeDegradedBatch(std::span<const MultiQuery> queries,
                                 std::span<QueryResult> results);

  /// Fills \p indices' result slots from \p tier (kNone filler where no
  /// rung answers); returns how many slots a rung actually answered.
  std::size_t FillFromTier(DegradedTier* tier,
                           std::span<const MultiQuery> queries,
                           std::span<const u32> indices,
                           std::span<QueryResult> results);

  ThreadPool* pool_ = nullptr;  ///< Borrowed, may be null.
  std::unique_ptr<ThreadPool> owned_pool_;
  UsiMultiServiceOptions options_;

  mutable std::mutex registry_mu_;  ///< Guards registry_.
  std::map<std::string, EntryPtr, std::less<>> registry_;

  mutable std::mutex build_mu_;  ///< Guards the four members below (and
                                 ///< every TextEntry's lane_claimed flag).
  std::deque<BuildJob> build_queue_;
  unsigned build_lanes_active_ = 0;  ///< Lane tasks currently running.
  u64 builds_scheduled_ = 0;
  u64 builds_completed_ = 0;
  std::condition_variable build_cv_;  ///< Signals build completions.

  std::mutex batch_scratch_mu_;
  std::vector<std::unique_ptr<BatchScratch>> batch_scratch_free_;

  std::atomic<u64> inflight_batches_{0};
  std::atomic<u64> batches_{0};
  std::atomic<u64> queries_{0};
  std::atomic<u64> busy_rejected_{0};
  /// Cost-aware admission: estimated serving cost (ns) of all in-flight
  /// batches; compared against options_.max_inflight_cost_ms.
  std::atomic<u64> inflight_cost_ns_{0};
  std::atomic<u64> overload_rejected_{0};
  std::atomic<u64> deadline_expired_{0};
  std::atomic<u64> index_unavailable_{0};
  std::atomic<u64> builds_failed_{0};
  std::atomic<u64> appends_{0};
  std::atomic<u64> compactions_{0};
  std::atomic<u64> degraded_batches_{0};
  std::atomic<u64> degraded_answers_{0};
};

}  // namespace usi

#endif  // USI_CORE_MULTI_SERVICE_HPP_
