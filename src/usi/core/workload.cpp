#include "usi/core/workload.hpp"

#include <algorithm>
#include <cmath>

#include "usi/util/rng.hpp"

namespace usi {
namespace {

Text MaterializePattern(const Text& text, const TopKSubstring& item) {
  return Text(text.begin() + item.witness,
              text.begin() + item.witness + item.length);
}

Text RandomSubstring(const Text& text, index_t min_len, index_t max_len,
                     Rng* rng) {
  const index_t n = static_cast<index_t>(text.size());
  const index_t len = static_cast<index_t>(
      rng->UniformInRange(min_len, std::min<index_t>(max_len, n)));
  const index_t start = static_cast<index_t>(rng->UniformBelow(n - len + 1));
  return Text(text.begin() + start, text.begin() + start + len);
}

}  // namespace

Workload MakeWorkloadW1(const Text& text,
                        const std::vector<TopKSubstring>& frequent_pool,
                        const WorkloadOptions& options) {
  Workload workload;
  workload.patterns.reserve(options.num_queries);
  Rng rng(options.seed);
  USI_CHECK(!text.empty());
  for (std::size_t q = 0; q < options.num_queries; ++q) {
    const bool frequent = !frequent_pool.empty() &&
                          rng.UniformDouble() < options.frequent_fraction;
    if (frequent) {
      const TopKSubstring& item =
          frequent_pool[rng.UniformBelow(frequent_pool.size())];
      workload.patterns.push_back(MaterializePattern(text, item));
      ++workload.from_frequent;
    } else if (!frequent_pool.empty() && rng.Bernoulli(0.5)) {
      // Half of the tail re-queries previously selected frequent patterns —
      // the paper's "queries appearing multiple times".
      const TopKSubstring& item =
          frequent_pool[rng.UniformBelow(frequent_pool.size())];
      workload.patterns.push_back(MaterializePattern(text, item));
      ++workload.from_frequent;
    } else {
      workload.patterns.push_back(RandomSubstring(
          text, options.random_min_len, options.random_max_len, &rng));
      ++workload.random_substrings;
    }
  }
  return workload;
}

Workload MakeWorkloadZipf(const Text& text,
                          const ZipfWorkloadOptions& options) {
  Workload workload;
  workload.patterns.reserve(options.num_queries);
  Rng rng(options.seed);
  USI_CHECK(!text.empty());
  USI_CHECK(options.s >= 0);
  // The ranked hot pool: pool_size random substrings, rank = draw order.
  const std::size_t pool_size = std::max<std::size_t>(1, options.pool_size);
  std::vector<Text> pool;
  pool.reserve(pool_size);
  for (std::size_t r = 0; r < pool_size; ++r) {
    pool.push_back(
        RandomSubstring(text, options.min_len, options.max_len, &rng));
  }
  // Zipf CDF over ranks: weight(r) = (r+1)^-s, sampled by binary search.
  std::vector<double> cdf(pool_size);
  double total = 0;
  for (std::size_t r = 0; r < pool_size; ++r) {
    total += std::pow(static_cast<double>(r + 1), -options.s);
    cdf[r] = total;
  }
  for (std::size_t q = 0; q < options.num_queries; ++q) {
    if (rng.UniformDouble() < options.hot_fraction) {
      const double draw = rng.UniformDouble() * total;
      const std::size_t rank = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
      workload.patterns.push_back(pool[std::min(rank, pool_size - 1)]);
      ++workload.from_frequent;
    } else {
      workload.patterns.push_back(RandomSubstring(
          text, options.min_len, options.max_len, &rng));
      ++workload.random_substrings;
    }
  }
  return workload;
}

Workload MakeWorkloadW2(const Text& text,
                        const std::vector<TopKSubstring>& frequent_pool_w2,
                        const std::vector<TopKSubstring>& frequent_pool_w1,
                        u32 p_percent, const WorkloadOptions& options) {
  Workload workload;
  workload.patterns.reserve(options.num_queries);
  Rng rng(options.seed ^ (0x3200ULL + p_percent));
  USI_CHECK(!text.empty());
  WorkloadOptions w1_options = options;
  w1_options.num_queries = 1;  // Generate the W1 tail one query at a time.
  for (std::size_t q = 0; q < options.num_queries; ++q) {
    if (!frequent_pool_w2.empty() &&
        rng.UniformDouble() < static_cast<double>(p_percent) / 100.0) {
      const TopKSubstring& item =
          frequent_pool_w2[rng.UniformBelow(frequent_pool_w2.size())];
      workload.patterns.push_back(MaterializePattern(text, item));
      ++workload.from_frequent;
    } else {
      w1_options.seed = rng.Next();
      Workload one = MakeWorkloadW1(text, frequent_pool_w1, w1_options);
      workload.from_frequent += one.from_frequent;
      workload.random_substrings += one.random_substrings;
      workload.patterns.push_back(std::move(one.patterns.front()));
    }
  }
  return workload;
}

}  // namespace usi
