#include "usi/util/mapped_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <system_error>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace usi {
namespace {

// ---------------------------------------------------------------------------
// SIGBUS guard plumbing. Everything the signal handler touches is lock-free
// and async-signal-safe: a fixed array of atomic (begin, length) slots for
// the registered ranges, a thread-local pointer to the innermost guard
// frame, and a recovered-fault counter.

/// Upper bound on concurrently open mappings the guard can vouch for. A
/// mapping past the cap still serves (registration is best-effort) — it just
/// cannot be fault-recovered, the pre-guard behavior.
constexpr int kMaxGuardedRanges = 256;

struct GuardedRange {
  std::atomic<const u8*> begin{nullptr};
  std::atomic<std::size_t> length{0};
};

GuardedRange g_ranges[kMaxGuardedRanges];
std::atomic<int> g_registered{0};   ///< Live registrations (guard engaged?).
std::atomic<u64> g_recovered{0};    ///< Faults converted into Run() == false.
std::mutex g_register_mu;           ///< Serializes slot claim/release only.
std::once_flag g_handler_once;
struct sigaction g_previous_bus;    ///< Disposition to restore on re-raise.

/// The innermost active FaultJmpScope target of this thread (null = no
/// guarded region active; a fault then re-raises).
thread_local sigjmp_buf* t_fault_target = nullptr;

/// Async-signal-safe: is \p addr inside any registered mapped range?
bool AddrInGuardedRange(const void* addr) {
  const u8* p = static_cast<const u8*>(addr);
  for (int i = 0; i < kMaxGuardedRanges; ++i) {
    const u8* begin = g_ranges[i].begin.load(std::memory_order_acquire);
    if (begin == nullptr) continue;
    const std::size_t len = g_ranges[i].length.load(std::memory_order_acquire);
    if (p >= begin && p < begin + len) return true;
  }
  return false;
}

void SigbusHandler(int sig, siginfo_t* info, void* /*ucontext*/) {
  if (t_fault_target != nullptr && info != nullptr &&
      AddrInGuardedRange(info->si_addr)) {
    g_recovered.fetch_add(1, std::memory_order_relaxed);
    siglongjmp(*t_fault_target, 1);  // Unwinds to MappedFaultGuard::Run.
  }
  // Not ours (or no guard frame active): restore the previous disposition
  // and re-raise so the fault kills the process exactly as before.
  ::sigaction(sig, &g_previous_bus, nullptr);
  ::raise(sig);
}

void InstallSigbusHandler() {
  struct sigaction action {};
  action.sa_sigaction = &SigbusHandler;
  sigemptyset(&action.sa_mask);
  // SA_NODEFER: after siglongjmp out of the handler SIGBUS stays deliverable
  // (the handler never returns normally, so the kernel would otherwise keep
  // it blocked and turn the next fault into a kill).
  action.sa_flags = SA_SIGINFO | SA_NODEFER;
  ::sigaction(SIGBUS, &action, &g_previous_bus);
}

/// Claims a slot for [data, data+size); returns the slot index or -1 when
/// the table is full (mapping stays usable, just unguarded).
int RegisterRange(const u8* data, std::size_t size) {
  std::call_once(g_handler_once, InstallSigbusHandler);
  std::lock_guard<std::mutex> lock(g_register_mu);
  for (int i = 0; i < kMaxGuardedRanges; ++i) {
    if (g_ranges[i].begin.load(std::memory_order_relaxed) == nullptr) {
      g_ranges[i].length.store(size, std::memory_order_release);
      g_ranges[i].begin.store(data, std::memory_order_release);
      g_registered.fetch_add(1, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void UnregisterRange(const u8* data) {
  std::lock_guard<std::mutex> lock(g_register_mu);
  for (int i = 0; i < kMaxGuardedRanges; ++i) {
    if (g_ranges[i].begin.load(std::memory_order_relaxed) == data) {
      g_ranges[i].begin.store(nullptr, std::memory_order_release);
      g_ranges[i].length.store(0, std::memory_order_release);
      g_registered.fetch_sub(1, std::memory_order_release);
      return;
    }
  }
}

}  // namespace

namespace detail {

FaultJmpScope::FaultJmpScope() : prev_(t_fault_target) {
  t_fault_target = &buf_;
}

FaultJmpScope::~FaultJmpScope() {
  t_fault_target = static_cast<sigjmp_buf*>(prev_);
}

}  // namespace detail

bool MappedFaultGuard::Engaged() {
  return g_registered.load(std::memory_order_acquire) > 0;
}

u64 MappedFaultGuard::RecoveredFaults() {
  return g_recovered.load(std::memory_order_relaxed);
}

MappedFile::MappedFile(const u8* data, std::size_t size)
    : data_(data), size_(size) {
  RegisterRange(data_, size_);
}

std::unique_ptr<MappedFile> MappedFile::OpenReadOnly(const std::string& path,
                                                     int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    if (out_errno != nullptr) *out_errno = errno;
    ::close(fd);
    return nullptr;
  }
  if (!S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* const addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point (and keeping it would leak fds per open index).
  ::close(fd);
  if (addr == MAP_FAILED) return nullptr;
  return std::unique_ptr<MappedFile>(
      new MappedFile(static_cast<const u8*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    UnregisterRange(data_);
    ::munmap(const_cast<u8*>(data_), size_);
  }
}

void MappedFile::AdviseWillNeed() const {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<u8*>(data_), size_, MADV_WILLNEED);
  }
}

void MappedFile::AdviseRandom() const {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<u8*>(data_), size_, MADV_RANDOM);
  }
}

u64 Checksum64(const void* data, std::size_t bytes) {
  // FNV-1a over 64-bit lanes. Folding eight bytes per multiply keeps the
  // scan memory-bound; the splitmix avalanche at the end spreads the last
  // lanes' entropy across all 64 output bits (plain lane-FNV leaves the
  // final bytes underdiffused).
  constexpr u64 kPrime = 0x100000001B3ULL;
  const u8* p = static_cast<const u8*>(data);
  u64 h = 0xCBF29CE484222325ULL ^ bytes;
  while (bytes >= 8) {
    u64 lane;
    std::memcpy(&lane, p, 8);
    h = (h ^ lane) * kPrime;
    p += 8;
    bytes -= 8;
  }
  u64 tail = 0;
  if (bytes > 0) {
    std::memcpy(&tail, p, bytes);
    h = (h ^ tail) * kPrime;
  }
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

std::string StageTempPath(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

namespace {

/// fsyncs one path (file or directory). Returns success.
bool FsyncPath(const char* path) {
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool PublishFile(const std::string& staged, const std::string& path) {
  // Sync the staged bytes BEFORE the rename: rename is atomic for the name,
  // but only a prior fsync guarantees the content the name will point at
  // survives a power cut.
  if (!FsyncPath(staged.c_str())) return false;
  if (std::rename(staged.c_str(), path.c_str()) != 0) return false;
  // Sync the directory entry too; without it the rename itself may be lost,
  // resurfacing the previous image. That outcome is still a complete image
  // (the protocol's invariant), so a failure here is reported but the
  // publish is not rolled back.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? "." : parent.c_str());
}

int RemoveStaleTemps(const std::string& path) {
  const std::filesystem::path published(path);
  const std::string prefix = published.filename().string() + ".tmp.";
  const std::filesystem::path dir =
      published.parent_path().empty() ? "." : published.parent_path();
  int removed = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        std::filesystem::remove(it->path(), ec)) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace usi
