#include "usi/util/mapped_file.hpp"

#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace usi {

std::unique_ptr<MappedFile> MappedFile::OpenReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* const addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point (and keeping it would leak fds per open index).
  ::close(fd);
  if (addr == MAP_FAILED) return nullptr;
  return std::unique_ptr<MappedFile>(
      new MappedFile(static_cast<const u8*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<u8*>(data_), size_);
  }
}

void MappedFile::AdviseWillNeed() const {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<u8*>(data_), size_, MADV_WILLNEED);
  }
}

void MappedFile::AdviseRandom() const {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<u8*>(data_), size_, MADV_RANDOM);
  }
}

u64 Checksum64(const void* data, std::size_t bytes) {
  // FNV-1a over 64-bit lanes. Folding eight bytes per multiply keeps the
  // scan memory-bound; the splitmix avalanche at the end spreads the last
  // lanes' entropy across all 64 output bits (plain lane-FNV leaves the
  // final bytes underdiffused).
  constexpr u64 kPrime = 0x100000001B3ULL;
  const u8* p = static_cast<const u8*>(data);
  u64 h = 0xCBF29CE484222325ULL ^ bytes;
  while (bytes >= 8) {
    u64 lane;
    std::memcpy(&lane, p, 8);
    h = (h ^ lane) * kPrime;
    p += 8;
    bytes -= 8;
  }
  u64 tail = 0;
  if (bytes > 0) {
    std::memcpy(&tail, p, bytes);
    h = (h ^ tail) * kPrime;
  }
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

std::string StageTempPath(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

namespace {

/// fsyncs one path (file or directory). Returns success.
bool FsyncPath(const char* path) {
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool PublishFile(const std::string& staged, const std::string& path) {
  // Sync the staged bytes BEFORE the rename: rename is atomic for the name,
  // but only a prior fsync guarantees the content the name will point at
  // survives a power cut.
  if (!FsyncPath(staged.c_str())) return false;
  if (std::rename(staged.c_str(), path.c_str()) != 0) return false;
  // Sync the directory entry too; without it the rename itself may be lost,
  // resurfacing the previous image. That outcome is still a complete image
  // (the protocol's invariant), so a failure here is reported but the
  // publish is not rolled back.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? "." : parent.c_str());
}

int RemoveStaleTemps(const std::string& path) {
  const std::filesystem::path published(path);
  const std::string prefix = published.filename().string() + ".tmp.";
  const std::filesystem::path dir =
      published.parent_path().empty() ? "." : published.parent_path();
  int removed = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        std::filesystem::remove(it->path(), ec)) {
      ++removed;
    }
  }
  return removed;
}

}  // namespace usi
