#ifndef USI_UTIL_RADIX_SORT_HPP_
#define USI_UTIL_RADIX_SORT_HPP_

/// \file radix_sort.hpp
/// LSD radix sort for integer-keyed records.
///
/// The Section V structure sorts up to 2n-1 suffix-tree node triplets by
/// (frequency desc, string-depth asc); both key components are bounded by n,
/// so two counting-sort passes beat comparison sorting. The sorter is generic
/// over the key extractor so the same code sorts lcp-interval tuples in the
/// sparse rounds of Approximate-Top-K (Section VI, Step 3).

#include <cstddef>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Stable LSD radix sort of \p items by a u64 key in [0, key_bound), using
/// 16-bit digits. Only as many passes as \p key_bound requires are run.
///
/// \tparam T item type.
/// \tparam KeyFn callable T const& -> u64.
template <typename T, typename KeyFn>
void RadixSortByKey(std::vector<T>* items, u64 key_bound, KeyFn key_fn) {
  if (items->size() <= 1) return;
  constexpr int kDigitBits = 16;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  int passes = 0;
  for (u64 bound = (key_bound == 0 ? 1 : key_bound - 1); bound > 0;
       bound >>= kDigitBits) {
    ++passes;
  }
  if (passes == 0) passes = 1;

  std::vector<T> scratch(items->size());
  std::vector<std::size_t> count(kBuckets);
  std::vector<T>* src = items;
  std::vector<T>* dst = &scratch;
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * kDigitBits;
    std::fill(count.begin(), count.end(), 0);
    for (const T& item : *src) {
      ++count[(key_fn(item) >> shift) & (kBuckets - 1)];
    }
    std::size_t offset = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      const std::size_t c = count[bucket];
      count[bucket] = offset;
      offset += c;
    }
    for (const T& item : *src) {
      (*dst)[count[(key_fn(item) >> shift) & (kBuckets - 1)]++] = item;
    }
    std::swap(src, dst);
  }
  if (src != items) *items = std::move(*src);
}

/// Descending variant: sorts by (key_bound - 1 - key).
template <typename T, typename KeyFn>
void RadixSortByKeyDescending(std::vector<T>* items, u64 key_bound,
                              KeyFn key_fn) {
  RadixSortByKey(items, key_bound, [&](const T& item) {
    return key_bound - 1 - key_fn(item);
  });
}

}  // namespace usi

#endif  // USI_UTIL_RADIX_SORT_HPP_
