#ifndef USI_UTIL_COMMON_HPP_
#define USI_UTIL_COMMON_HPP_

/// \file common.hpp
/// Project-wide primitive aliases and assertion macros.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace usi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Index type used for text positions and suffix-array entries. Laptop-scale
/// texts fit in 32 bits; using a fixed-width type keeps the suffix structures
/// compact (half the footprint of size_t-based arrays).
using index_t = std::uint32_t;

/// Sentinel for "no position".
inline constexpr index_t kInvalidIndex = static_cast<index_t>(-1);

/// Always-on invariant check. Used for cheap structural invariants whose
/// violation means a bug, not bad user input; benches rely on correctness, so
/// these stay enabled in release builds.
#define USI_CHECK(cond)                                                        \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "USI_CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                           \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

/// Debug-only assertion for hot paths.
#ifndef NDEBUG
#define USI_DCHECK(cond) USI_CHECK(cond)
#else
#define USI_DCHECK(cond) ((void)0)
#endif

}  // namespace usi

#endif  // USI_UTIL_COMMON_HPP_
