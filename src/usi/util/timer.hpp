#ifndef USI_UTIL_TIMER_HPP_
#define USI_UTIL_TIMER_HPP_

/// \file timer.hpp
/// Wall-clock timing helpers used by the benchmark harness (the paper times
/// queries and construction with std::chrono; so do we).

#include <chrono>

namespace usi {

/// Monotonic stopwatch. Starts on construction; Restart() re-arms it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Re-arms the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace usi

#endif  // USI_UTIL_TIMER_HPP_
