#ifndef USI_UTIL_TABLE_PRINTER_HPP_
#define USI_UTIL_TABLE_PRINTER_HPP_

/// \file table_printer.hpp
/// Fixed-width ASCII table output for the figure/table benches. Each bench
/// binary prints the same rows/series the paper's plot reports, so the
/// "shape" claims (who wins, by what factor) can be read straight off stdout.

#include <string>
#include <vector>

namespace usi {

/// Accumulates rows of stringified cells and prints them column-aligned.
class TablePrinter {
 public:
  /// \p title is printed as a banner above the table.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row (cells already formatted).
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table to stdout.
  void Print() const;

  /// Formats a double with \p precision fraction digits.
  static std::string Num(double value, int precision = 2);

  /// Formats an integer with thousands separators.
  static std::string Int(long long value);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace usi

#endif  // USI_UTIL_TABLE_PRINTER_HPP_
