#include "usi/util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace usi {
namespace {

std::size_t ReadStatusFieldKb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  std::size_t value_kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len, ": %llu kB", &kb) == 1) {
        value_kb = static_cast<std::size_t>(kb);
      }
      break;
    }
  }
  std::fclose(file);
  return value_kb;
}

}  // namespace

std::size_t ReadPeakRssBytes() { return ReadStatusFieldKb("VmHWM") * 1024; }

std::size_t ReadCurrentRssBytes() { return ReadStatusFieldKb("VmRSS") * 1024; }

std::string FormatBytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, units[unit]);
  return buffer;
}

}  // namespace usi
