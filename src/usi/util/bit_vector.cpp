#include "usi/util/bit_vector.hpp"

namespace usi {

RankBitVector::RankBitVector(const BitVector& bits, std::size_t num_bits)
    : num_bits_(num_bits) {
  const std::size_t num_words = (num_bits + 63) / 64;
  words_.assign(num_words, 0);
  USI_CHECK(num_bits <= bits.size());
  // Word-level copy (BitVector keeps bits past size() zero), masking the
  // tail word — one load/store per 64 bits instead of a Test per bit.
  for (std::size_t w = 0; w < num_words; ++w) {
    words_[w] = bits.GetWord(w);
  }
  const std::size_t tail_bits = num_bits & 63;
  if (num_words > 0 && tail_bits != 0) {
    words_[num_words - 1] &= (u64{1} << tail_bits) - 1;
  }
  const std::size_t num_blocks = (num_words + kWordsPerBlock - 1) / kWordsPerBlock;
  block_rank_.assign(num_blocks + 1, 0);
  u64 running = 0;
  for (std::size_t block = 0; block < num_blocks; ++block) {
    block_rank_[block] = running;
    const std::size_t end = std::min(num_words, (block + 1) * kWordsPerBlock);
    for (std::size_t word = block * kWordsPerBlock; word < end; ++word) {
      running += static_cast<u64>(__builtin_popcountll(words_[word]));
    }
  }
  block_rank_[num_blocks] = running;
  ones_ = static_cast<std::size_t>(running);
  words_p_ = words_.data();
  block_rank_p_ = block_rank_.data();
}

std::size_t RankBitVector::Rank1(std::size_t i) const {
  USI_DCHECK(i <= num_bits_);
  const std::size_t word_index = i >> 6;
  const std::size_t block = word_index / kWordsPerBlock;
  u64 rank = block_rank_p_[block];
  for (std::size_t w = block * kWordsPerBlock; w < word_index; ++w) {
    rank += static_cast<u64>(__builtin_popcountll(words_p_[w]));
  }
  const std::size_t tail_bits = i & 63;
  if (tail_bits != 0) {
    const u64 mask =
        (u64{1} << tail_bits) - 1;
    rank += static_cast<u64>(
        __builtin_popcountll(words_p_[word_index] & mask));
  }
  return static_cast<std::size_t>(rank);
}

}  // namespace usi
