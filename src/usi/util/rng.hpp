#ifndef USI_UTIL_RNG_HPP_
#define USI_UTIL_RNG_HPP_

/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation (xoshiro256**).
///
/// Everything in the repository that uses randomness (dataset generators,
/// workload builders, fingerprint bases, HeavyKeeper decay coin flips) goes
/// through this generator so runs are reproducible from a printed seed.

#include <cstdint>

#include "usi/util/common.hpp"

namespace usi {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the four state words from a single 64-bit seed via splitmix64.
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the state from \p seed.
  void Reseed(u64 seed) {
    for (auto& word : state_) {
      word = SplitMix64(&seed);
    }
  }

  /// Next raw 64-bit value.
  u64 Next() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be positive.
  u64 UniformBelow(u64 bound) {
    USI_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection.
    const auto mul = [&](u64 x) {
      return static_cast<unsigned __int128>(x) *
             static_cast<unsigned __int128>(bound);
    };
    unsigned __int128 m = mul(Next());
    auto low = static_cast<u64>(m);
    if (low < bound) {
      const u64 threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = mul(Next());
        low = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  u64 UniformInRange(u64 lo, u64 hi) {
    USI_DCHECK(lo <= hi);
    return lo + UniformBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Stateless 64-bit mixer, also used to derive independent sub-seeds.
  static u64 SplitMix64(u64* state) {
    u64 z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Mixes a value with a salt; handy for deterministic per-item coins.
  static u64 Mix(u64 value, u64 salt) {
    u64 state = value ^ (salt * 0x9E3779B97F4A7C15ULL);
    return SplitMix64(&state);
  }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4];
};

}  // namespace usi

#endif  // USI_UTIL_RNG_HPP_
