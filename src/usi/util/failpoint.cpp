#include "usi/util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace usi {
namespace failpoint {
namespace {

/// Deterministic splitmix64 step for percent draws.
u64 SplitMix64(u64& state) {
  state += 0x9E3779B97F4A7C15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

/// Process-wide site registry. Sites are heap-allocated and never freed:
/// the macros cache Site references in function-local statics, so a site's
/// address must stay valid for the process lifetime (the "leak" is bounded
/// by the number of distinct site names, a few dozen).
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();
    return *instance;
  }

  Site& GetSite(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    return GetSiteLocked(name);
  }

  Site* FindSite(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    return it == sites_.end() ? nullptr : it->second;
  }

  void DisarmAllSites() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, site] : sites_) DisarmSite(*site);
  }

  std::vector<std::string> Names() {
    std::vector<std::string> names;
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(sites_.size());
    for (const auto& [name, site] : sites_) names.push_back(name);
    return names;  // std::map iteration order is already sorted.
  }

  static void ArmSite(Site& site, const Spec& spec) {
    std::lock_guard<std::mutex> lock(site.mu_);
    site.spec_ = spec;
    site.hits_ = 0;
    site.fired_ = 0;
    site.rng_state_ = spec.seed;
    site.action_.store(static_cast<u8>(spec.action),
                       std::memory_order_release);
  }

  static void DisarmSite(Site& site) {
    std::lock_guard<std::mutex> lock(site.mu_);
    site.spec_ = Spec{};
    site.hits_ = 0;
    site.fired_ = 0;
    site.action_.store(static_cast<u8>(Action::kOff),
                       std::memory_order_release);
  }

 private:
  Registry() {
    // Environment arming happens exactly once, before any site is visible:
    // the registry is constructed on first use, and every public entry
    // point goes through Instance().
    if (const char* env = std::getenv("USI_FAILPOINTS")) {
      ApplyString(env);
    }
  }

  Site& GetSiteLocked(std::string_view name) {
    auto it = sites_.find(name);
    if (it != sites_.end()) return *it->second;
    Site* site = new Site(std::string(name));
    sites_.emplace(site->name(), site);
    return *site;
  }

  int ApplyString(std::string_view text) {
    int armed = 0;
    std::lock_guard<std::mutex> lock(mu_);
    while (!text.empty()) {
      const std::size_t sep = text.find(';');
      std::string_view clause = text.substr(0, sep);
      text = sep == std::string_view::npos ? std::string_view{}
                                           : text.substr(sep + 1);
      const std::size_t eq = clause.find('=');
      if (eq == std::string_view::npos || eq == 0) continue;
      Spec spec;
      if (!ParseSpec(clause.substr(eq + 1), &spec)) continue;
      ArmSite(GetSiteLocked(clause.substr(0, eq)), spec);
      ++armed;
    }
    return armed;
  }

  friend int failpoint::ArmFromString(std::string_view text);

  std::mutex mu_;  ///< Guards sites_ (the map, not the Sites themselves).
  std::map<std::string, Site*, std::less<>> sites_;
};

Site& Site::Get(std::string_view name) {
  return Registry::Instance().GetSite(name);
}

bool Site::Evaluate() {
  // Fast path: a disarmed site is one relaxed load (and when the library is
  // compiled without USI_FAILPOINTS, not even that — the macros erase the
  // call entirely).
  if (static_cast<Action>(action_.load(std::memory_order_relaxed)) ==
      Action::kOff) {
    return false;
  }
  switch (EvaluateArmed()) {
    case Action::kOff:
      return false;
    case Action::kError:
      return true;
    case Action::kThrow:
      throw FailpointError(name_);
    case Action::kBadAlloc:
      throw std::bad_alloc();
  }
  return false;
}

Action Site::EvaluateArmed() {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-read under the lock: a concurrent Disarm between the fast-path load
  // and here must win.
  const Action action =
      static_cast<Action>(action_.load(std::memory_order_relaxed));
  if (action == Action::kOff) return Action::kOff;
  ++hits_;
  if (hits_ <= spec_.skip) return Action::kOff;
  if (spec_.fires != 0 && fired_ >= spec_.fires) return Action::kOff;
  if (spec_.percent < 100 &&
      SplitMix64(rng_state_) % 100 >= spec_.percent) {
    return Action::kOff;
  }
  ++fired_;
  return action;
}

void Arm(std::string_view site, const Spec& spec) {
  Registry::ArmSite(Registry::Instance().GetSite(site), spec);
}

void Arm(std::string_view site, Action action, u64 fires, u64 skip) {
  Spec spec;
  spec.action = action;
  spec.fires = fires;
  spec.skip = skip;
  Arm(site, spec);
}

void Disarm(std::string_view site) {
  if (Site* s = Registry::Instance().FindSite(site)) {
    Registry::DisarmSite(*s);
  }
}

void DisarmAll() { Registry::Instance().DisarmAllSites(); }

u64 Site::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

u64 Site::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

u64 HitCount(std::string_view site) {
  Site* s = Registry::Instance().FindSite(site);
  return s == nullptr ? 0 : s->hits();
}

u64 FireCount(std::string_view site) {
  Site* s = Registry::Instance().FindSite(site);
  return s == nullptr ? 0 : s->fired();
}

std::vector<std::string> SiteNames() {
  return Registry::Instance().Names();
}

bool ParseSpec(std::string_view text, Spec* spec) {
  const std::size_t mod = text.find_first_of("@*%");
  const std::string_view action = text.substr(0, mod);
  Spec parsed;
  if (action == "off") {
    parsed.action = Action::kOff;
  } else if (action == "error") {
    parsed.action = Action::kError;
  } else if (action == "throw") {
    parsed.action = Action::kThrow;
  } else if (action == "badalloc") {
    parsed.action = Action::kBadAlloc;
  } else {
    return false;
  }
  std::string_view rest =
      mod == std::string_view::npos ? std::string_view{} : text.substr(mod);
  while (!rest.empty()) {
    const char key = rest.front();
    rest.remove_prefix(1);
    u64 value = 0;
    std::size_t digits = 0;
    while (digits < rest.size() && rest[digits] >= '0' &&
           rest[digits] <= '9') {
      value = value * 10 + static_cast<u64>(rest[digits] - '0');
      ++digits;
    }
    if (digits == 0) return false;
    rest.remove_prefix(digits);
    switch (key) {
      case '@': parsed.skip = value; break;
      case '*': parsed.fires = value; break;
      case '%':
        if (value > 100) return false;
        parsed.percent = static_cast<u32>(value);
        break;
      default: return false;
    }
  }
  *spec = parsed;
  return true;
}

int ArmFromString(std::string_view text) {
  return Registry::Instance().ApplyString(text);
}

}  // namespace failpoint
}  // namespace usi
