#include "usi/util/table_printer.hpp"

#include <algorithm>
#include <cstdio>

namespace usi {

void TablePrinter::Print() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s", static_cast<int>(widths[i] + 3), row[i].c_str());
    }
    std::printf("\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    std::printf("%s\n", std::string(total, '-').c_str());
  }
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::Int(long long value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld", value);
  std::string raw = digits;
  std::string out;
  const bool negative = !raw.empty() && raw[0] == '-';
  const std::size_t start = negative ? 1 : 0;
  const std::size_t len = raw.size() - start;
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[start + i]);
  }
  return negative ? "-" + out : out;
}

}  // namespace usi
