#ifndef USI_UTIL_MEMORY_HPP_
#define USI_UTIL_MEMORY_HPP_

/// \file memory.hpp
/// Memory accounting for the space experiments (Fig. 5a-d, Fig. 6k-p).
///
/// The paper reports peak resident set size (/usr/bin/time -v) and index size
/// (mallinfo2). At laptop scale we report (a) the process peak RSS read from
/// /proc/self/status and (b) exact structure footprints via the per-structure
/// SizeInBytes() methods every index in this repository implements.

#include <cstddef>
#include <string>
#include <vector>

namespace usi {

/// Reads VmHWM (peak resident set size) in bytes from /proc/self/status.
/// Returns 0 if unavailable (non-Linux).
std::size_t ReadPeakRssBytes();

/// Reads VmRSS (current resident set size) in bytes.
std::size_t ReadCurrentRssBytes();

/// Formats a byte count as a human-readable string ("1.25 GB").
std::string FormatBytes(std::size_t bytes);

/// Heap footprint of a vector (capacity, not size).
template <typename T>
std::size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace usi

#endif  // USI_UTIL_MEMORY_HPP_
