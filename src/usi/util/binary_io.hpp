#ifndef USI_UTIL_BINARY_IO_HPP_
#define USI_UTIL_BINARY_IO_HPP_

/// \file binary_io.hpp
/// Minimal binary (de)serialization over stdio, used to persist indexes.
/// Little-endian host assumed (checked via a magic word on load); values are
/// written raw, vectors as a u64 length followed by the elements.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Buffered binary writer. All writes abort the stream on failure; check
/// ok() once at the end.
class BinaryWriter {
 public:
  /// Opens \p path for writing (truncates).
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}

  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Whether every write so far succeeded.
  bool ok() const { return file_ != nullptr && !failed_; }

  /// Writes one trivially-copyable value.
  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return;
    failed_ |= std::fwrite(&value, sizeof(T), 1, file_) != 1;
  }

  /// Writes a vector as length + raw elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<u64>(values.size());
    if (!ok() || values.empty()) return;
    failed_ |=
        std::fwrite(values.data(), sizeof(T), values.size(), file_) !=
        values.size();
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

/// Buffered binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {
    if (file_ != nullptr) {
      // Size errors (FIFOs, special files) degrade the remaining-bytes bound
      // to "unknown", leaving only the element cap — never to an empty file.
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      total_bytes_ = ec ? kUnknownSize : static_cast<u64>(size);
    }
  }

  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Whether every read so far succeeded.
  bool ok() const { return file_ != nullptr && !failed_; }

  /// Reads one trivially-copyable value.
  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return false;
    failed_ |= std::fread(value, sizeof(T), 1, file_) != 1;
    if (!failed_) consumed_bytes_ += sizeof(T);
    return ok();
  }

  /// Reads a vector written by WriteVector. Lengths above \p max_elements or
  /// beyond what the rest of the file can hold are treated as corruption, so
  /// a flipped length field fails the read instead of attempting a huge
  /// allocation.
  template <typename T>
  bool ReadVector(std::vector<T>* values, u64 max_elements = u64{1} << 40) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64 size = 0;
    if (!Read(&size) || size > max_elements ||
        size > RemainingBytes() / sizeof(T)) {
      failed_ = true;
      return false;
    }
    values->resize(size);
    if (size == 0) return true;
    failed_ |= std::fread(values->data(), sizeof(T), size, file_) != size;
    if (!failed_) consumed_bytes_ += sizeof(T) * size;
    return ok();
  }

 private:
  static constexpr u64 kUnknownSize = static_cast<u64>(-1);

  /// Bytes between the current position and the end of the file. Computed
  /// from the size captured at open plus a consumed-bytes counter, so it
  /// stays correct for files beyond 2 GiB even where long is 32 bits.
  u64 RemainingBytes() const {
    if (total_bytes_ == kUnknownSize) return kUnknownSize;
    return total_bytes_ > consumed_bytes_ ? total_bytes_ - consumed_bytes_ : 0;
  }

  std::FILE* file_;
  bool failed_ = false;
  u64 total_bytes_ = 0;
  u64 consumed_bytes_ = 0;
};

}  // namespace usi

#endif  // USI_UTIL_BINARY_IO_HPP_
